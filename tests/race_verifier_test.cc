/** @file Tests for dynamic verification of static race reports. */

#include <gtest/gtest.h>

#include "corpus/patterns.hh"
#include "dynamic/race_verifier.hh"
#include "harness/harness.hh"
#include "test_helpers.hh"

namespace sierra::dynamic {
namespace {

template <typename Fill>
corpus::BuiltApp
buildApp(const std::string &name, Fill fill)
{
    corpus::AppFactory factory(name);
    fill(factory);
    corpus::BuiltApp built = factory.finish();
    harness::HarnessGenerator gen(*built.app); // installs Nondet
    return built;
}

TEST(RaceVerifier, ConfirmsARealRace)
{
    auto built = buildApp("rv-thread", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("RvActivity");
        corpus::addThreadRace(f, act);
    });
    // The seeded true race key.
    std::string key;
    for (const auto &seed : built.truth.seeded) {
        if (seed.fieldKey.find("done$") != std::string::npos)
            key = seed.fieldKey;
    }
    ASSERT_FALSE(key.empty());

    RaceVerifierOptions options;
    options.numSchedules = 24;
    RaceVerificationReport report =
        verifyRacesDynamically(*built.app, {key}, options);
    const VerifiedRace *v = report.find(key);
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(v->conflictObserved);
    EXPECT_TRUE(v->bothOrdersObserved)
        << "thread write vs gui read happens in both orders across "
           "24 schedules";
    EXPECT_EQ(report.confirmed, 1);
}

TEST(RaceVerifier, UnseenLocationIsUnobserved)
{
    auto built = buildApp("rv-unseen", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("UnActivity");
        corpus::addLifecycleSafe(f, act);
    });
    RaceVerifierOptions options;
    options.numSchedules = 4;
    RaceVerificationReport report = verifyRacesDynamically(
        *built.app, {"Ghost.field"}, options);
    ASSERT_EQ(report.races.size(), 1u);
    EXPECT_FALSE(report.races[0].conflictObserved);
    EXPECT_EQ(report.unobserved, 1);
}

TEST(RaceVerifier, OrderedAccessesAreNotConfirmed)
{
    // lifecycleSafe's field is accessed in onCreate and onDestroy --
    // a conflict exists in the trace, but always in one order.
    auto built = buildApp("rv-ordered", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("OrdActivity");
        corpus::addLifecycleSafe(f, act);
    });
    std::string key = built.truth.seeded[0].fieldKey;
    RaceVerifierOptions options;
    options.numSchedules = 12;
    RaceVerificationReport report =
        verifyRacesDynamically(*built.app, {key}, options);
    const VerifiedRace *v = report.find(key);
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(v->conflictObserved);
    EXPECT_FALSE(v->bothOrdersObserved)
        << "onCreate always precedes onDestroy dynamically";
}

TEST(RaceVerifier, DeterministicForFixedSeed)
{
    auto built = buildApp("rv-det", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("DetActivity");
        corpus::addGuardedTimer(f, act);
    });
    std::string key = built.truth.seeded[0].fieldKey;
    RaceVerifierOptions options;
    options.numSchedules = 6;
    auto r1 = verifyRacesDynamically(*built.app, {key}, options);
    auto r2 = verifyRacesDynamically(*built.app, {key}, options);
    EXPECT_EQ(r1.confirmed, r2.confirmed);
    EXPECT_EQ(r1.races[0].schedulesWithConflict,
              r2.races[0].schedulesWithConflict);
}

} // namespace
} // namespace sierra::dynamic
