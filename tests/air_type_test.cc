/** @file Tests for the AIR type system. */

#include <gtest/gtest.h>

#include "air/type.hh"

namespace sierra::air {
namespace {

TEST(AirType, PrimitiveFactories)
{
    EXPECT_EQ(Type::voidTy().kind(), TypeKind::Void);
    EXPECT_EQ(Type::intTy().kind(), TypeKind::Int);
    EXPECT_EQ(Type::boolTy().kind(), TypeKind::Bool);
    EXPECT_EQ(Type::strTy().kind(), TypeKind::Str);
    EXPECT_TRUE(Type::intTy().isPrimitive());
    EXPECT_TRUE(Type::boolTy().isPrimitive());
    EXPECT_FALSE(Type::voidTy().isPrimitive());
    EXPECT_TRUE(Type::voidTy().isVoid());
}

TEST(AirType, ObjectAndArray)
{
    Type obj = Type::object("com.example.Foo");
    EXPECT_EQ(obj.kind(), TypeKind::Object);
    EXPECT_EQ(obj.name(), "com.example.Foo");
    EXPECT_TRUE(obj.isReference());
    EXPECT_FALSE(obj.isPrimitive());

    Type arr = Type::array("Foo");
    EXPECT_EQ(arr.kind(), TypeKind::Array);
    EXPECT_TRUE(arr.isReference());
    EXPECT_EQ(arr.toString(), "Foo[]");
}

TEST(AirType, StringsAreReferences)
{
    EXPECT_TRUE(Type::strTy().isReference());
}

TEST(AirType, ToStringForms)
{
    EXPECT_EQ(Type::voidTy().toString(), "void");
    EXPECT_EQ(Type::intTy().toString(), "int");
    EXPECT_EQ(Type::boolTy().toString(), "bool");
    EXPECT_EQ(Type::strTy().toString(), "str");
    EXPECT_EQ(Type::object("A.B").toString(), "A.B");
    EXPECT_EQ(Type::array("").toString(), "int[]");
}

TEST(AirType, ParseRoundTrip)
{
    const char *cases[] = {"void", "int",  "bool",   "str",
                           "Foo",  "a.b.C", "Foo[]", "int[]"};
    for (const char *text : cases) {
        Type t = Type::parse(text);
        EXPECT_EQ(t.toString(), text) << text;
    }
}

TEST(AirType, ParseIntArrayUsesEmptyElem)
{
    Type t = Type::parse("int[]");
    EXPECT_EQ(t.kind(), TypeKind::Array);
    EXPECT_EQ(t.name(), "");
}

TEST(AirType, Equality)
{
    EXPECT_EQ(Type::object("A"), Type::object("A"));
    EXPECT_NE(Type::object("A"), Type::object("B"));
    EXPECT_NE(Type::intTy(), Type::boolTy());
}

} // namespace
} // namespace sierra::air
