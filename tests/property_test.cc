/** @file Cross-cutting property tests relating the static analyses,
 *  the dynamic detector, and the corpus (parameterized sweeps). */

#include <gtest/gtest.h>

#include <set>

#include "corpus/generator.hh"
#include "corpus/named_apps.hh"
#include "dynamic/event_racer.hh"
#include "dynamic/race_verifier.hh"
#include "sierra/detector.hh"

namespace sierra {
namespace {

/** Static candidate keys (pre-refutation) and surviving keys. */
struct StaticKeys {
    std::set<std::string> candidates;
    std::set<std::string> surviving;
};

StaticKeys
staticKeysOf(framework::App &app)
{
    SierraDetector detector(app);
    AppReport report = detector.analyze({});
    StaticKeys out;
    for (const auto &race : report.races) {
        out.candidates.insert(race.fieldKey);
        if (!race.refuted)
            out.surviving.insert(race.fieldKey);
    }
    return out;
}

class CorpusProperty : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CorpusProperty, DynamicallyConfirmedRacesAreStaticCandidates)
{
    // Soundness-flavored property: any location whose conflicting
    // accesses the interpreter observes in BOTH orders is a real
    // nondeterminism, so the static detector must have produced a
    // candidate for it (before refutation).
    corpus::BuiltApp built = corpus::buildNamedApp(GetParam());
    StaticKeys statics = staticKeysOf(*built.app);

    // Collect every key the dynamic detector conflicts on, then ask
    // the verifier which of those have both orders.
    dynamic::EventRacerOptions er_opts;
    er_opts.numSchedules = 4;
    er_opts.raceCoverageFilter = false;
    dynamic::EventRacerReport er = runEventRacer(*built.app, er_opts);
    std::set<std::string> dynamic_keys;
    for (const auto &race : er.races)
        dynamic_keys.insert(race.fieldKey);

    dynamic::RaceVerifierOptions vo;
    vo.numSchedules = 8;
    dynamic::RaceVerificationReport verification =
        verifyRacesDynamically(
            *built.app,
            {dynamic_keys.begin(), dynamic_keys.end()}, vo);

    for (const auto &race : verification.races) {
        if (!race.bothOrdersObserved)
            continue;
        // Array element keys are finer-grained dynamically; compare on
        // field keys only.
        if (race.fieldKey.find(".$elem") != std::string::npos)
            continue;
        EXPECT_TRUE(statics.candidates.count(race.fieldKey))
            << GetParam() << ": dynamically order-nondeterministic "
            << race.fieldKey << " missing from static candidates";
    }
}

TEST_P(CorpusProperty, DynamicAccessSitesAreStaticallyReachable)
{
    // Call-graph coverage: every field-access site the interpreter
    // executes must belong to a method the static call graph reached.
    corpus::BuiltApp built = corpus::buildNamedApp(GetParam());
    SierraDetector detector(*built.app);

    std::set<std::string> static_sites;
    for (const auto &plan : detector.plans()) {
        analysis::PointsToAnalysis pta(*built.app, plan, {});
        auto result = pta.run();
        for (analysis::NodeId n = 0; n < result->cg.numNodes(); ++n) {
            const air::Method *m = result->cg.node(n).method;
            static_sites.insert(m->qualifiedName());
        }
    }

    dynamic::RunOptions run;
    run.seed = 11;
    dynamic::Interpreter interp(*built.app, run);
    dynamic::Trace trace = interp.run();
    for (const auto &access : trace.accesses) {
        std::string method =
            access.site.substr(0, access.site.find('@'));
        EXPECT_TRUE(static_sites.count(method))
            << GetParam() << ": dynamic access in " << method
            << " not covered by the static call graph";
    }
}

TEST_P(CorpusProperty, ShbgIsAntisymmetric)
{
    corpus::BuiltApp built = corpus::buildNamedApp(GetParam());
    SierraDetector detector(*built.app);
    for (const auto &plan : detector.plans()) {
        HarnessAnalysis ha =
            detector.analyzeActivity(plan.activityClass, [] {
                SierraOptions o;
                o.runRefutation = false;
                return o;
            }());
        int n = ha.pta->actions.size();
        for (int a = 0; a < n; ++a) {
            for (int b = 0; b < n; ++b) {
                EXPECT_FALSE(ha.shbg->reaches(a, b) &&
                             ha.shbg->reaches(b, a))
                    << "cycle " << a << "<->" << b;
            }
        }
    }
}

// ConnectBot's signature includes lockGuarded (monitor-enter/exit in
// both a background thread and a GUI handler), so the sweep covers the
// new opcodes end to end: printing, reparsing, interpretation.
INSTANTIATE_TEST_SUITE_P(Apps, CorpusProperty,
                         ::testing::Values("OpenSudoku", "VuDroid",
                                           "NotePad", "TippyTipper",
                                           "KeePassDroid",
                                           "ConnectBot"));

class FdroidProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(FdroidProperty, RefutationNeverDropsSeededTrueRaces)
{
    corpus::BuiltApp built = corpus::buildFdroidApp(GetParam());
    SierraDetector detector(*built.app);

    SierraOptions no_refute;
    no_refute.runRefutation = false;
    AppReport before = detector.analyze(no_refute);
    AppReport after = detector.analyze({});

    // Refutation is monotone: it only removes reports.
    EXPECT_LE(after.afterRefutation, before.afterRefutation);
    // And never removes a seeded true race.
    corpus::Score score = corpus::scoreReport(after, built.truth);
    EXPECT_EQ(score.missedTrueKeys, 0);
}

INSTANTIATE_TEST_SUITE_P(Sample, FdroidProperty,
                         ::testing::Values(2, 31, 64, 97, 130, 163));

} // namespace
} // namespace sierra
