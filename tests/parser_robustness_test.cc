/** @file Robustness sweeps: the parsers must reject or accept, never
 *  crash, on arbitrary and mutated inputs. */

#include <gtest/gtest.h>

#include <random>

#include "air/parser.hh"
#include "air/printer.hh"
#include "corpus/named_apps.hh"
#include "framework/app_text.hh"

namespace sierra {
namespace {

/** Deterministic pseudo-random byte strings. */
std::string
randomBytes(std::mt19937 &rng, size_t max_len)
{
    // Bias toward structural characters so we reach deeper parser
    // states than pure noise would.
    static const std::string alphabet =
        "abcXYZ019 _$.:;,=@{}()[]\"\\#<>\n\tclass method field regs "
        "const invoke-virtual return-void if goto app activity widget";
    std::string out;
    size_t len = rng() % max_len;
    for (size_t i = 0; i < len; ++i)
        out += alphabet[rng() % alphabet.size()];
    return out;
}

TEST(ParserRobustness, RandomInputNeverCrashes)
{
    std::mt19937 rng(0xF00D);
    for (int i = 0; i < 400; ++i) {
        std::string input = randomBytes(rng, 300);
        air::ParseResult r = air::parseModule(input);
        if (!r.ok())
            EXPECT_FALSE(r.status.error.empty());
    }
}

TEST(ParserRobustness, RandomAppBundleNeverCrashes)
{
    std::mt19937 rng(0xBEEF);
    for (int i = 0; i < 400; ++i) {
        std::string input = "app \"x\" {" + randomBytes(rng, 200) +
                            "}" + randomBytes(rng, 200);
        framework::AppTextResult r = framework::parseAppText(input);
        if (!r.ok())
            EXPECT_FALSE(r.error.empty());
    }
}

TEST(ParserRobustness, MutatedRealModulesNeverCrash)
{
    // Take a real printed module and corrupt single positions.
    corpus::BuiltApp built = corpus::buildNamedApp("VuDroid");
    std::string text = air::printModule(built.app->module());
    std::mt19937 rng(0xCAFE);
    static const char junk[] = {'@', '{', '}', '"', 'x', '0', '-',
                                '.', '\n', '('};
    for (int i = 0; i < 300; ++i) {
        std::string mutated = text;
        size_t pos = rng() % mutated.size();
        mutated[pos] = junk[rng() % sizeof(junk)];
        air::ParseResult r = air::parseModule(mutated);
        // Either it still parses (benign mutation) or it reports a
        // located error; both are fine, crashing is not.
        if (!r.ok()) {
            EXPECT_FALSE(r.status.error.empty());
            EXPECT_GE(r.status.errorLine, 0);
        }
    }
}

TEST(ParserRobustness, TruncatedRealBundlesNeverCrash)
{
    corpus::BuiltApp built = corpus::buildNamedApp("TippyTipper");
    std::string text = framework::printAppText(*built.app);
    for (size_t cut = 0; cut < text.size();
         cut += std::max<size_t>(1, text.size() / 120)) {
        framework::AppTextResult r =
            framework::parseAppText(text.substr(0, cut));
        if (!r.ok())
            EXPECT_FALSE(r.error.empty());
    }
}

TEST(ParserRobustness, DeepNestingIsHandled)
{
    // Many unmatched braces in the app header must terminate cleanly.
    std::string input = "app \"x\" ";
    for (int i = 0; i < 5000; ++i)
        input += "{";
    framework::AppTextResult r = framework::parseAppText(input);
    EXPECT_FALSE(r.ok());
}

} // namespace
} // namespace sierra
