/** @file Tests for context interning and the action registry. */

#include <gtest/gtest.h>

#include "analysis/action.hh"
#include "analysis/context.hh"
#include "analysis/heap.hh"

namespace sierra::analysis {
namespace {

TEST(ContextTable, EmptyContextIsZero)
{
    ContextTable table;
    EXPECT_EQ(table.intern(ContextData{}), kEmptyCtx);
    EXPECT_EQ(table.get(kEmptyCtx).actionId, -1);
    EXPECT_TRUE(table.get(kEmptyCtx).elems.empty());
}

TEST(ContextTable, InterningIsStable)
{
    ContextTable table;
    ContextData d;
    d.actionId = 3;
    d.elems = {7, 9};
    CtxId a = table.intern(d);
    CtxId b = table.intern(d);
    EXPECT_EQ(a, b);
    d.elems = {7};
    EXPECT_NE(table.intern(d), a);
}

TEST(ContextTable, PushElemTruncatesToK)
{
    ContextTable table;
    CtxId c0 = kEmptyCtx;
    CtxId c1 = table.pushElem(c0, 11, 2);
    CtxId c2 = table.pushElem(c1, 12, 2);
    CtxId c3 = table.pushElem(c2, 13, 2);
    const ContextData &d = table.get(c3);
    ASSERT_EQ(d.elems.size(), 2u);
    EXPECT_EQ(d.elems[0], 13) << "most recent first";
    EXPECT_EQ(d.elems[1], 12);
}

TEST(ContextTable, MakeTruncates)
{
    ContextTable table;
    CtxId c = table.make(5, {1, 2, 3, 4}, 2);
    const ContextData &d = table.get(c);
    EXPECT_EQ(d.actionId, 5);
    ASSERT_EQ(d.elems.size(), 2u);
    EXPECT_EQ(d.elems[0], 1);
}

TEST(ContextTable, WithActionPreservesElems)
{
    ContextTable table;
    CtxId c = table.make(-1, {4, 5}, 4);
    CtxId c2 = table.withAction(c, 9);
    EXPECT_NE(c, c2);
    EXPECT_EQ(table.get(c2).actionId, 9);
    EXPECT_EQ(table.get(c2).elems, table.get(c).elems);
    EXPECT_EQ(table.withAction(c2, 9), c2) << "no-op rewrite";
}

TEST(ContextPolicy, Names)
{
    EXPECT_STREQ(contextPolicyName(ContextPolicy::Insensitive),
                 "insensitive");
    EXPECT_STREQ(contextPolicyName(ContextPolicy::ActionSensitive),
                 "action-sensitive");
    EXPECT_STREQ(contextPolicyName(ContextPolicy::Hybrid), "hybrid");
}

TEST(ObjectTable, InterningByIdentity)
{
    ObjectTable table;
    ObjId a = table.siteObject("Foo", 3, kEmptyCtx);
    ObjId b = table.siteObject("Foo", 3, kEmptyCtx);
    ObjId c = table.siteObject("Foo", 4, kEmptyCtx);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(table.get(a).klassName, "Foo");
}

TEST(ObjectTable, InflatedViewsAliasById)
{
    ObjectTable table;
    ObjId v1 = table.inflatedView("android.widget.Button", 100);
    ObjId v2 = table.inflatedView("android.widget.Button", 100);
    ObjId v3 = table.inflatedView("android.widget.Button", 101);
    EXPECT_EQ(v1, v2) << "same id aliases (InflatedViewContext)";
    EXPECT_NE(v1, v3);
    EXPECT_EQ(table.get(v1).kind, ObjKind::InflatedView);
}

TEST(ObjectTable, SingletonsAndSynthetics)
{
    ObjectTable table;
    ObjId looper = table.singleton("android.os.Looper", kMainLooper);
    EXPECT_EQ(looper, table.singleton("android.os.Looper", kMainLooper));
    ObjId msg = table.syntheticObject("android.os.Message", 9);
    EXPECT_NE(looper, msg);
    EXPECT_EQ(table.get(msg).kind, ObjKind::Synthetic);
}

TEST(ActionRegistry, IdentityAndFolding)
{
    ActionRegistry reg;
    int root = reg.create(ActionKind::HarnessRoot, -1, kNoSite, "H",
                          "main");
    int a = reg.create(ActionKind::Lifecycle, root, 5, "A", "onCreate");
    int a2 = reg.create(ActionKind::Lifecycle, root, 5, "A", "onCreate");
    EXPECT_EQ(a, a2) << "same identity interned once";
    int b = reg.create(ActionKind::Lifecycle, root, 6, "A", "onCreate");
    EXPECT_NE(a, b) << "different creation sites differ";
    EXPECT_EQ(reg.size(), 3);
    EXPECT_EQ(reg.get(a).label, "A.onCreate");
}

TEST(ActionKinds, QueuePostedPredicate)
{
    EXPECT_TRUE(isQueuePosted(ActionKind::PostedRunnable));
    EXPECT_TRUE(isQueuePosted(ActionKind::PostedMessage));
    EXPECT_FALSE(isQueuePosted(ActionKind::Lifecycle));
    EXPECT_FALSE(isQueuePosted(ActionKind::Gui));
    EXPECT_FALSE(isQueuePosted(ActionKind::ThreadRun));
    EXPECT_FALSE(isQueuePosted(ActionKind::Receive));
    EXPECT_FALSE(isQueuePosted(ActionKind::AsyncBackground));
}

TEST(ActionModel, AffinityHelpers)
{
    Action a;
    a.affinity = ThreadAffinity::MainLooper;
    EXPECT_TRUE(a.runsOnLooper());
    a.affinity = ThreadAffinity::Background;
    EXPECT_FALSE(a.runsOnLooper());
    a.affinity = ThreadAffinity::CustomLooper;
    EXPECT_TRUE(a.runsOnLooper());
}

} // namespace
} // namespace sierra::analysis
