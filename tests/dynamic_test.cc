/** @file Tests for the interpreter and the dynamic race detector. */

#include <gtest/gtest.h>

#include "corpus/patterns.hh"
#include "dynamic/event_racer.hh"
#include "test_helpers.hh"

namespace sierra::dynamic {
namespace {

using test::makePipeline;

template <typename Fill>
corpus::BuiltApp
buildApp(const std::string &name, Fill fill)
{
    corpus::AppFactory factory(name);
    fill(factory);
    corpus::BuiltApp built = factory.finish();
    // Install the framework + Nondet like the detector would.
    harness::HarnessGenerator gen(*built.app);
    return built;
}

TEST(Interpreter, ExecutesLifecycleChain)
{
    auto built = buildApp("dyn-lifecycle", [](corpus::AppFactory &f) {
        f.addActivity("LcActivity");
    });
    RunOptions opts;
    opts.seed = 7;
    Interpreter interp(*built.app, opts);
    Trace trace = interp.run();

    ASSERT_GE(trace.events.size(), 6u);
    EXPECT_EQ(trace.events[0].label, "LcActivity.onCreate");
    EXPECT_EQ(trace.events[1].label, "LcActivity.onStart");
    EXPECT_EQ(trace.events[2].label, "LcActivity.onResume");
    EXPECT_EQ(trace.events.back().label, "LcActivity.onDestroy");
    // Lifecycle chain edges order consecutive callbacks.
    EXPECT_EQ(trace.events[1].hbPreds, std::vector<int>{0});
}

TEST(Interpreter, HeapEffectsAreReal)
{
    auto built = buildApp("dyn-heap", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("HeapActivity");
        corpus::addReceiverDbRace(f, act);
    });
    RunOptions opts;
    opts.seed = 3;
    Interpreter interp(*built.app, opts);
    Trace trace = interp.run();

    // onCreate wrote the DataBase into the activity field; accesses on
    // DataBase.conn from open/close must appear.
    bool conn_access = false;
    for (const auto &a : trace.accesses)
        conn_access |= a.key.find("conn") != std::string::npos;
    EXPECT_TRUE(conn_access);
}

TEST(Interpreter, AsyncTaskContinuation)
{
    auto built = buildApp("dyn-async", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("AsyncActivity");
        corpus::addAsyncNewsRace(f, act);
    });
    // Try several seeds: at least one schedule clicks the button and
    // completes the doInBackground -> onPostExecute chain.
    bool saw_chain = false;
    for (uint32_t seed = 1; seed < 12 && !saw_chain; ++seed) {
        RunOptions opts;
        opts.seed = seed;
        Interpreter interp(*built.app, opts);
        Trace trace = interp.run();
        for (const auto &ev : trace.events) {
            if (ev.kind == "async-post") {
                saw_chain = true;
                ASSERT_GE(ev.creator, 0);
                EXPECT_EQ(trace.events[ev.creator].kind, "async-bg")
                    << "onPostExecute is posted by the background body";
            }
        }
    }
    EXPECT_TRUE(saw_chain);
}

TEST(Interpreter, GuardProvenanceRecorded)
{
    auto built = buildApp("dyn-guard", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("GuardActivity");
        corpus::addGuardedTimer(f, act);
    });
    bool guard_seen = false;
    for (uint32_t seed = 1; seed < 10 && !guard_seen; ++seed) {
        RunOptions opts;
        opts.seed = seed;
        Interpreter interp(*built.app, opts);
        Trace trace = interp.run();
        for (const auto &[obj, key] : trace.primitiveGuards)
            guard_seen |= key.find("mIsRunning") != std::string::npos;
    }
    EXPECT_TRUE(guard_seen) << "the timer guard is observed as primitive";
}

TEST(EventRacer, DetectsThreadRace)
{
    auto built = buildApp("dyn-thread", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("TrActivity");
        corpus::addThreadRace(f, act);
    });
    EventRacerOptions opts;
    opts.numSchedules = 8;
    EventRacerReport report = runEventRacer(*built.app, opts);
    bool found = false;
    for (const auto &key : report.raceKeys())
        found |= key.find("result$") != std::string::npos ||
                 key.find("done$") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(EventRacer, FifoOrderedPostsAreNotRaces)
{
    auto built = buildApp("dyn-fifo", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("FifoActivity");
        corpus::addOrderedPosts(f, act);
    });
    EventRacerOptions opts;
    opts.numSchedules = 8;
    EventRacerReport report = runEventRacer(*built.app, opts);
    for (const auto &key : report.raceKeys())
        EXPECT_EQ(key.find("cfg$"), std::string::npos)
            << "same-creator FIFO posts are ordered: " << key;
}

TEST(EventRacer, CoverageFilterDropsPrimitiveGuards)
{
    auto built = buildApp("dyn-coverage", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("CovActivity");
        corpus::addGuardedTimer(f, act);
    });
    EventRacerOptions opts;
    opts.numSchedules = 10;
    EventRacerReport report = runEventRacer(*built.app, opts);
    for (const auto &key : report.raceKeys()) {
        EXPECT_EQ(key.find("mIsRunning"), std::string::npos)
            << "primitive guard races are coverage-filtered";
    }

    EventRacerOptions raw = opts;
    raw.raceCoverageFilter = false;
    EventRacerReport unfiltered = runEventRacer(*built.app, raw);
    EXPECT_GE(unfiltered.raceKeys().size(),
              report.raceKeys().size());
}

TEST(EventRacer, DeterministicForFixedSeed)
{
    auto built = buildApp("dyn-deterministic", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("DetActivity");
        corpus::addMessageGuard(f, act);
        corpus::addThreadRace(f, act);
    });
    EventRacerOptions opts;
    opts.numSchedules = 3;
    auto r1 = runEventRacer(*built.app, opts);
    auto r2 = runEventRacer(*built.app, opts);
    EXPECT_EQ(r1.raceKeys(), r2.raceKeys());
    EXPECT_EQ(r1.eventsExecuted, r2.eventsExecuted);
}

TEST(EventRacer, DetectRacesOnHandMadeTrace)
{
    Trace trace;
    TraceEvent e0;
    e0.id = 0;
    e0.label = "a";
    trace.events.push_back(e0);
    TraceEvent e1;
    e1.id = 1;
    e1.label = "b";
    trace.events.push_back(e1);
    TraceEvent e2;
    e2.id = 2;
    e2.label = "c";
    e2.creator = 0;
    e2.hbPreds = {0};
    trace.events.push_back(e2);

    trace.accesses.push_back({0, 5, "X.f", true, "X.w@0"});
    trace.accesses.push_back({1, 5, "X.f", false, "X.r@0"});
    trace.accesses.push_back({2, 5, "X.f", false, "X.r2@0"});

    auto races = detectRaces(trace, true);
    // 0 vs 1 race (unordered, w/r); 0 vs 2 ordered; 1 vs 2 read/read.
    ASSERT_EQ(races.size(), 1u);
    EXPECT_EQ(races[0].fieldKey, "X.f");
}

} // namespace
} // namespace sierra::dynamic
