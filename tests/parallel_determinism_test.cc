/**
 * @file
 * Jobs-count determinism of the full pipeline: SierraDetector::analyze
 * must produce byte-identical reports whether it runs serially or on a
 * thread pool. The parallel path fans out one task per harness plan
 * and merges in plan order; these tests pin that contract on real
 * corpus apps (named + synthetic).
 */

#include <gtest/gtest.h>

#include "corpus/generator.hh"
#include "corpus/named_apps.hh"
#include "test_helpers.hh"

namespace sierra {
namespace {

/** Everything jobs-independent of two reports must match exactly. */
void
expectIdenticalReports(const AppReport &serial, const AppReport &parallel,
                       const std::string &label)
{
    // The rendered report (times excluded: wall-clock differs run to
    // run even serially) is the acceptance-level contract.
    EXPECT_EQ(formatReport(serial, 1000, /*with_times=*/false),
              formatReport(parallel, 1000, /*with_times=*/false))
        << label;

    EXPECT_EQ(serial.harnesses, parallel.harnesses) << label;
    EXPECT_EQ(serial.actions, parallel.actions) << label;
    EXPECT_EQ(serial.hbEdges, parallel.hbEdges) << label;
    EXPECT_DOUBLE_EQ(serial.orderedPct, parallel.orderedPct) << label;
    EXPECT_EQ(serial.racyPairs, parallel.racyPairs) << label;
    EXPECT_EQ(serial.afterRefutation, parallel.afterRefutation) << label;

    // Per-race rows: description, priority, verdict, key, and the
    // activity lists (whose order exercises the plan-order merge).
    ASSERT_EQ(serial.races.size(), parallel.races.size()) << label;
    for (size_t i = 0; i < serial.races.size(); ++i) {
        const AppRace &a = serial.races[i];
        const AppRace &b = parallel.races[i];
        EXPECT_EQ(a.description, b.description) << label << " race " << i;
        EXPECT_EQ(a.priority, b.priority) << label << " race " << i;
        EXPECT_EQ(a.refuted, b.refuted) << label << " race " << i;
        EXPECT_EQ(a.fieldKey, b.fieldKey) << label << " race " << i;
        EXPECT_EQ(a.activities, b.activities) << label << " race " << i;
    }

    // Per-harness artifacts arrive in plan order with identical
    // verdicts regardless of completion order.
    ASSERT_EQ(serial.perHarness.size(), parallel.perHarness.size())
        << label;
    for (size_t h = 0; h < serial.perHarness.size(); ++h) {
        const HarnessAnalysis &x = serial.perHarness[h];
        const HarnessAnalysis &y = parallel.perHarness[h];
        EXPECT_EQ(x.activity, y.activity) << label;
        EXPECT_EQ(x.numActions(), y.numActions()) << label;
        ASSERT_EQ(x.pairs.size(), y.pairs.size())
            << label << " harness " << x.activity;
        for (size_t p = 0; p < x.pairs.size(); ++p) {
            EXPECT_EQ(x.pairs[p].refuted, y.pairs[p].refuted)
                << label << " " << x.activity << " pair " << p;
            EXPECT_EQ(x.pairs[p].priority, y.pairs[p].priority)
                << label << " " << x.activity << " pair " << p;
            EXPECT_EQ(x.pairs[p].loc.key, y.pairs[p].loc.key)
                << label << " " << x.activity << " pair " << p;
        }
        EXPECT_EQ(x.refutation.refuted, y.refutation.refuted) << label;
        EXPECT_EQ(x.refutation.survived, y.refutation.survived) << label;
        EXPECT_EQ(x.refutation.timedOut, y.refutation.timedOut) << label;
    }
}

class NamedAppDeterminism : public ::testing::TestWithParam<const char *>
{
};

TEST_P(NamedAppDeterminism, SerialAndFourJobsMatch)
{
    corpus::BuiltApp built = corpus::buildNamedApp(GetParam());
    SierraDetector detector(*built.app);

    SierraOptions serial_opts;
    serial_opts.jobs = 1;
    AppReport serial = detector.analyze(serial_opts);

    SierraOptions parallel_opts;
    parallel_opts.jobs = 4;
    AppReport parallel = detector.analyze(parallel_opts);

    expectIdenticalReports(serial, parallel, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    ParallelDeterminism, NamedAppDeterminism,
    ::testing::Values("OpenSudoku", "K-9 Mail", "Beem", "FBReader"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

TEST(ParallelDeterminism, SyntheticCorpusSample)
{
    for (int index : {7, 55, 144}) {
        corpus::BuiltApp built = corpus::buildFdroidApp(index);
        SierraDetector detector(*built.app);
        SierraOptions one, four;
        one.jobs = 1;
        four.jobs = 4;
        AppReport serial = detector.analyze(one);
        AppReport parallel = detector.analyze(four);
        expectIdenticalReports(serial, parallel,
                               "fdroid-" + std::to_string(index));
    }
}

TEST(ParallelDeterminism, ManyJobsAndRepeatedRuns)
{
    // More workers than plans, run twice: the second parallel run must
    // also match (no state leaks between analyze() calls).
    corpus::BuiltApp built = corpus::buildNamedApp("OpenSudoku");
    SierraDetector detector(*built.app);
    SierraOptions one, eight;
    one.jobs = 1;
    eight.jobs = 8;
    AppReport serial = detector.analyze(one);
    AppReport first = detector.analyze(eight);
    AppReport second = detector.analyze(eight);
    expectIdenticalReports(serial, first, "jobs=8 run 1");
    expectIdenticalReports(serial, second, "jobs=8 run 2");
}

TEST(ParallelDeterminism, DataflowStageIsJobsDeterministic)
{
    // The dataflow stage (per-task FieldEffects prefilter + lazy
    // constant facts inside each worker's executor) must not perturb
    // the report at any jobs count -- with the stage on or off.
    corpus::BuiltApp built = corpus::buildNamedApp("OpenSudoku");
    SierraDetector detector(*built.app);
    for (bool dataflow : {true, false}) {
        SierraOptions one, four, eight;
        one.jobs = 1;
        four.jobs = 4;
        eight.jobs = 8;
        for (SierraOptions *o : {&one, &four, &eight}) {
            o->effectPrefilter = dataflow;
            o->refuter.exec.useConstFacts = dataflow;
        }
        AppReport serial = detector.analyze(one);
        AppReport j4 = detector.analyze(four);
        AppReport j8 = detector.analyze(eight);
        std::string label =
            dataflow ? "dataflow on" : "dataflow off";
        expectIdenticalReports(serial, j4, label + " jobs=4");
        expectIdenticalReports(serial, j8, label + " jobs=8");
    }
}

TEST(ParallelDeterminism, LockStagesAreJobsDeterministic)
{
    // The escape filter and the lock-set refutation run inside each
    // worker's task; their verdicts (dropped accesses, refutedBy
    // provenance, lockset counters) must not depend on the jobs count.
    // ConnectBot's signature carries lockGuarded, so the stages do
    // real work here.
    corpus::BuiltApp built = corpus::buildNamedApp("ConnectBot");
    SierraDetector detector(*built.app);
    for (bool stages : {true, false}) {
        SierraOptions one, four, eight;
        one.jobs = 1;
        four.jobs = 4;
        eight.jobs = 8;
        for (SierraOptions *o : {&one, &four, &eight}) {
            o->escapeFilter = stages;
            o->locksetRefutation = stages;
        }
        AppReport serial = detector.analyze(one);
        AppReport j4 = detector.analyze(four);
        AppReport j8 = detector.analyze(eight);
        std::string label = stages ? "locks on" : "locks off";
        expectIdenticalReports(serial, j4, label + " jobs=4");
        expectIdenticalReports(serial, j8, label + " jobs=8");
        EXPECT_EQ(serial.locksetRefuted, j4.locksetRefuted) << label;
        EXPECT_EQ(serial.locksetRefuted, j8.locksetRefuted) << label;
        EXPECT_EQ(serial.accessesDropped, j4.accessesDropped) << label;
        EXPECT_EQ(serial.accessesDropped, j8.accessesDropped) << label;
        if (stages)
            EXPECT_GT(serial.locksetRefuted, 0)
                << "lockGuarded must exercise the stage";
        for (size_t h = 0; h < serial.perHarness.size(); ++h) {
            const auto &x = serial.perHarness[h].pairs;
            const auto &y = j8.perHarness[h].pairs;
            ASSERT_EQ(x.size(), y.size()) << label;
            for (size_t p = 0; p < x.size(); ++p)
                EXPECT_EQ(x[p].refutedBy, y[p].refutedBy)
                    << label << " pair " << p;
        }
    }
}

TEST(ParallelDeterminism, DedupKeysAreStableAcrossDetectors)
{
    // The dedup key is built from qualified method names, not Method
    // pointers: two independently built copies of the same app must
    // produce reports in the same order.
    corpus::BuiltApp a = corpus::buildNamedApp("K-9 Mail");
    corpus::BuiltApp b = corpus::buildNamedApp("K-9 Mail");
    SierraDetector da(*a.app);
    SierraDetector db(*b.app);
    SierraOptions opts;
    opts.jobs = 1;
    AppReport ra = da.analyze(opts);
    AppReport rb = db.analyze(opts);
    expectIdenticalReports(ra, rb, "independent detector copies");
}

TEST(ParallelDeterminism, AnalyzeActivitySharesPipelineBody)
{
    // analyzeActivity and the per-plan task inside analyze() run the
    // same runHarness body: single-activity results must agree with
    // the corresponding perHarness entry of a full run.
    corpus::BuiltApp built = corpus::buildNamedApp("Beem");
    SierraDetector detector(*built.app);
    SierraOptions opts;
    opts.jobs = 2;
    AppReport report = detector.analyze(opts);

    for (const auto &ha : report.perHarness) {
        HarnessAnalysis solo = detector.analyzeActivity(ha.activity, {});
        EXPECT_EQ(solo.numActions(), ha.numActions()) << ha.activity;
        EXPECT_EQ(solo.hbEdges(), ha.hbEdges()) << ha.activity;
        ASSERT_EQ(solo.pairs.size(), ha.pairs.size()) << ha.activity;
        for (size_t p = 0; p < solo.pairs.size(); ++p) {
            EXPECT_EQ(solo.pairs[p].refuted, ha.pairs[p].refuted)
                << ha.activity << " pair " << p;
            EXPECT_EQ(solo.pairs[p].loc.key, ha.pairs[p].loc.key)
                << ha.activity << " pair " << p;
        }
    }
}

} // namespace
} // namespace sierra
