/** @file Opcode-level interpreter tests via the evalStatic hook and
 *  hand-written AIR modules. */

#include <gtest/gtest.h>

#include "dynamic/interpreter.hh"
#include "framework/app_text.hh"

namespace sierra::dynamic {
namespace {

/** Parse an app bundle with one Calc class and return the app. */
std::unique_ptr<framework::App>
calcApp(const std::string &methods)
{
    std::string text = R"(
app "calc" {
    activity CalcActivity main
}
class CalcActivity extends android.app.Activity {
    method <init>(): void regs=1 { @0: return-void }
}
class Calc extends java.lang.Object {
    static field out: java.lang.Object
)" + methods + "\n}\n";
    framework::AppTextResult r = framework::parseAppText(text);
    EXPECT_TRUE(r.ok()) << r.error << " line " << r.errorLine;
    return std::move(r.app);
}

int64_t
evalInt(framework::App &app, const std::string &method)
{
    Interpreter interp(app, {});
    Value v = interp.evalStatic("Calc", method);
    EXPECT_EQ(v.kind, Value::Kind::Int) << method;
    return v.i;
}

TEST(InterpreterOpcodes, Arithmetic)
{
    auto app = calcApp(R"(
    static method arith(): int regs=3 {
        @0: r0 = const 10
        @1: r1 = const 3
        @2: r2 = mul r0, r1
        @3: r2 = add r2, r1
        @4: r2 = sub r2, r0
        @5: return r2
    }
    static method divrem(): int regs=3 {
        @0: r0 = const 17
        @1: r1 = const 5
        @2: r2 = div r0, r1
        @3: r1 = rem r0, r1
        @4: r2 = mul r2, r1
        @5: return r2
    }
    static method bits(): int regs=3 {
        @0: r0 = const 12
        @1: r1 = const 10
        @2: r2 = xor r0, r1
        @3: r0 = and r0, r1
        @4: r2 = or r2, r0
        @5: return r2
    })");
    EXPECT_EQ(evalInt(*app, "arith"), 10 * 3 + 3 - 10);
    EXPECT_EQ(evalInt(*app, "divrem"), (17 / 5) * (17 % 5));
    EXPECT_EQ(evalInt(*app, "bits"), ((12 ^ 10) | (12 & 10)));
}

TEST(InterpreterOpcodes, BranchesAndLoops)
{
    auto app2 = calcApp(R"(
    static method sumTo(p0: int): int regs=4 {
        @0: r1 = const 0
        @1: r2 = const 1
        @2: r3 = const 1
        @3: if r2 gt r0 goto @7
        @4: r1 = add r1, r2
        @5: r2 = add r2, r3
        @6: goto @3
        @7: return r1
    }
    static method max(p0: int, p1: int): int regs=2 {
        @0: if r0 ge r1 goto @2
        @1: return r1
        @2: return r0
    })");
    Interpreter interp(*app2, {});
    Value v = interp.evalStatic("Calc", "sumTo", {Value::ofInt(10)});
    EXPECT_EQ(v.i, 55);
    Interpreter interp2(*app2, {});
    EXPECT_EQ(
        interp2.evalStatic("Calc", "max",
                           {Value::ofInt(3), Value::ofInt(9)})
            .i,
        9);
}

TEST(InterpreterOpcodes, ArraysAndStatics)
{
    auto app = calcApp(R"(
    static method arrays(): int regs=6 {
        @0: r0 = const 3
        @1: r1 = new-array java.lang.Object[r0]
        @2: r2 = const 1
        @3: r3 = new java.lang.Object
        @4: aput r1[r2] = r3
        @5: r4 = aget r1[r2]
        @6: putstatic Calc.out = r4
        @7: r5 = const 7
        @8: return r5
    })");
    Interpreter interp(*app, {});
    EXPECT_EQ(interp.evalStatic("Calc", "arrays").i, 7);
    EXPECT_TRUE(interp.staticField("Calc.out").isRef())
        << "the element written at [1] is read back";
}

TEST(InterpreterOpcodes, NullDerefAbortsMethod)
{
    auto app = calcApp(R"(
    static method crash(): int regs=3 {
        @0: r0 = null
        @1: r1 = getfield r0.Calc.out
        @2: r2 = const 5
        @3: return r2
    })");
    Interpreter interp(*app, {});
    Value v = interp.evalStatic("Calc", "crash");
    EXPECT_TRUE(v.isNull())
        << "a null dereference aborts the method (NPE model)";
}

TEST(InterpreterOpcodes, UnaryAndConversion)
{
    auto app = calcApp(R"(
    static method unary(): int regs=3 {
        @0: r0 = const 0
        @1: r1 = not r0
        @2: r2 = neg r1
        @3: r2 = add r1, r2
        @4: return r2
    })");
    // not 0 = 1, neg 1 = -1, 1 + -1 = 0.
    EXPECT_EQ(evalInt(*app, "unary"), 0);
}

TEST(InterpreterOpcodes, RecursionDepthCapped)
{
    auto app = calcApp(R"(
    static method forever(): int regs=2 {
        @0: r1 = invoke-static Calc.forever()
        @1: return r1
    })");
    Interpreter interp(*app, {});
    Value v = interp.evalStatic("Calc", "forever");
    EXPECT_TRUE(v.isNull()) << "call-depth cap returns null";
}

TEST(InterpreterOpcodes, StringsAndTruthiness)
{
    auto app = calcApp(R"(
    static method strTruthy(): int regs=3 {
        @0: r0 = const "nonempty"
        @1: ifz r0 eq goto @4
        @2: r1 = const 1
        @3: return r1
        @4: r1 = const 0
        @5: return r1
    })");
    EXPECT_EQ(evalInt(*app, "strTruthy"), 1);
}

} // namespace
} // namespace sierra::dynamic
