/** @file Shared helpers for building tiny apps inside tests. */

#ifndef SIERRA_TESTS_TEST_HELPERS_HH
#define SIERRA_TESTS_TEST_HELPERS_HH

#include <memory>
#include <string>

#include "corpus/app_factory.hh"
#include "harness/harness.hh"
#include "sierra/detector.hh"

namespace sierra::test {

/** A built app together with its harness plans and detector. */
struct Pipeline {
    corpus::BuiltApp built;
    std::unique_ptr<SierraDetector> detector;

    framework::App &app() { return *built.app; }
};

/** Build an app from a factory-filling callback and wrap a detector. */
template <typename Fill>
Pipeline
makePipeline(const std::string &name, Fill fill)
{
    corpus::AppFactory factory(name);
    fill(factory);
    Pipeline p{factory.finish(), nullptr};
    p.detector = std::make_unique<SierraDetector>(*p.built.app);
    return p;
}

/** Find an action by label substring; -1 if absent. */
inline int
findAction(const analysis::PointsToResult &r, const std::string &needle)
{
    for (const auto &a : r.actions.all()) {
        if (a.label.find(needle) != std::string::npos)
            return a.id;
    }
    return -1;
}

/** Count actions of one kind. */
inline int
countActions(const analysis::PointsToResult &r, analysis::ActionKind k)
{
    int n = 0;
    for (const auto &a : r.actions.all()) {
        if (a.kind == k)
            ++n;
    }
    return n;
}

/** True if some surviving race in the report is on the given key. */
inline bool
reportsKey(const AppReport &report, const std::string &key)
{
    for (const auto &race : report.races) {
        if (!race.refuted && race.fieldKey == key)
            return true;
    }
    return false;
}

} // namespace sierra::test

#endif // SIERRA_TESTS_TEST_HELPERS_HH
