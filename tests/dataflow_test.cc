/** @file Tests for the intraprocedural dataflow framework and its
 *  three shipped clients (constants, reaching defs, liveness). */

#include <gtest/gtest.h>

#include "air/parser.hh"
#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/effects.hh"

namespace sierra::analysis {
namespace {

air::Method *
parseMethod(std::unique_ptr<air::Module> &hold, const std::string &body)
{
    auto r = air::parseModule("class T { " + body + " }");
    EXPECT_TRUE(r.ok()) << r.status.error;
    hold = std::move(r.module);
    return hold->getClass("T")->methods().front().get();
}

TEST(DataflowConstants, StraightLineFolding)
{
    std::unique_ptr<air::Module> hold;
    air::Method *m = parseMethod(hold, R"(
    method f(): void regs=4 {
        @0: r1 = const 6
        @1: r2 = const 7
        @2: r3 = mul r1, r2
        @3: return-void
    })");
    Cfg cfg(*m);
    MethodConstants facts(cfg);
    EXPECT_TRUE(facts.before(2, 1).isConst());
    EXPECT_EQ(facts.before(2, 1).value, 6);
    ASSERT_TRUE(facts.after(2, 3).isConst());
    EXPECT_EQ(facts.after(2, 3).value, 42);
    EXPECT_EQ(facts.numInfeasibleEdges(), 0);
}

TEST(DataflowConstants, MergeOfDifferentValuesIsTop)
{
    std::unique_ptr<air::Module> hold;
    // r2 is 1 on one arm and 2 on the other; at the join it is Top,
    // but on each arm it stays constant.
    air::Method *m = parseMethod(hold, R"(
    method f(p0: int): void regs=4 {
        @0: r2 = const 1
        @1: ifz r1 eq goto @3
        @2: r2 = const 2
        @3: return-void
    })");
    Cfg cfg(*m);
    MethodConstants facts(cfg);
    EXPECT_TRUE(facts.after(2, 2).isConst());
    EXPECT_EQ(facts.after(2, 2).value, 2);
    EXPECT_FALSE(facts.before(3, 2).isConst());
    // The parameter is never constant.
    EXPECT_FALSE(facts.before(1, 1).isConst());
}

TEST(DataflowConstants, ConstantGuardKillsEdgeAndCode)
{
    std::unique_ptr<air::Module> hold;
    // r1 is always 0, so "ifz r1 eq" always jumps: the fallthrough
    // edge is infeasible and @2 is unreachable.
    air::Method *m = parseMethod(hold, R"(
    method f(): void regs=4 {
        @0: r1 = const 0
        @1: ifz r1 eq goto @3
        @2: r2 = const 5
        @3: return-void
    })");
    Cfg cfg(*m);
    MethodConstants facts(cfg);
    EXPECT_EQ(facts.numInfeasibleEdges(), 1);
    EXPECT_FALSE(facts.edgeFeasible(1, 2));
    EXPECT_TRUE(facts.edgeFeasible(1, 3));
    EXPECT_FALSE(facts.reachable(2));
    EXPECT_TRUE(facts.reachable(3));
    // Values in dead code are Bottom, not Const.
    EXPECT_FALSE(facts.after(2, 2).isConst());
}

TEST(DataflowConstants, ConditionalPropagationThroughKilledEdge)
{
    std::unique_ptr<air::Module> hold;
    // The loop-free chain: r1 = 1; if r1 != 0 skip the r2 = 99
    // assignment. Conditional propagation must see r2 = 7 at the join
    // (the killed edge's state is never merged).
    air::Method *m = parseMethod(hold, R"(
    method f(): void regs=4 {
        @0: r1 = const 1
        @1: r2 = const 7
        @2: ifz r1 ne goto @4
        @3: r2 = const 99
        @4: return-void
    })");
    Cfg cfg(*m);
    MethodConstants facts(cfg);
    ASSERT_TRUE(facts.before(4, 2).isConst());
    EXPECT_EQ(facts.before(4, 2).value, 7);
    EXPECT_FALSE(facts.reachable(3));
}

TEST(DataflowConstants, EqEdgeRefinement)
{
    std::unique_ptr<air::Module> hold;
    // Nothing is known about the parameter, but on the taken edge of
    // "ifz p eq" the register is known to be 0.
    air::Method *m = parseMethod(hold, R"(
    method f(p0: int): void regs=4 {
        @0: ifz r1 eq goto @2
        @1: return-void
        @2: r2 = r1
        @3: return-void
    })");
    Cfg cfg(*m);
    MethodConstants facts(cfg);
    ASSERT_TRUE(facts.before(3, 2).isConst());
    EXPECT_EQ(facts.before(3, 2).value, 0);
}

TEST(DataflowConstants, LoopReachesFixpoint)
{
    std::unique_ptr<air::Module> hold;
    // r1 counts down from an unknown start: must converge to Top
    // without spinning (widening guards unbounded lattices; the const
    // lattice has height 2 so plain iteration terminates).
    air::Method *m = parseMethod(hold, R"(
    method f(p0: int): void regs=4 {
        @0: r2 = const 1
        @1: r1 = sub r1, r2
        @2: ifz r1 gt goto @1
        @3: return-void
    })");
    Cfg cfg(*m);
    MethodConstants facts(cfg);
    EXPECT_FALSE(facts.before(3, 1).isConst());
    // The decrement is constant though.
    EXPECT_TRUE(facts.before(1, 2).isConst());
}

TEST(DataflowReachingDefs, EntryAndLocalDefs)
{
    std::unique_ptr<air::Module> hold;
    air::Method *m = parseMethod(hold, R"(
    method f(p0: int): void regs=4 {
        @0: r2 = const 1
        @1: ifz r1 eq goto @3
        @2: r2 = const 2
        @3: return-void
    })");
    Cfg cfg(*m);
    ReachingDefs rd(cfg);
    // The parameter's entry def reaches everywhere.
    EXPECT_EQ(rd.reaching(3, 1),
              std::vector<int>{ReachingDefs::kEntryDef});
    // Both stores to r2 reach the join.
    EXPECT_EQ(rd.reaching(3, 2), (std::vector<int>{0, 2}));
    // Inside the branch arm only def @0 has happened.
    EXPECT_EQ(rd.reaching(2, 2), std::vector<int>{0});
    // r3 is never defined.
    EXPECT_TRUE(rd.reaching(3, 3).empty());
    EXPECT_FALSE(rd.anyDefReaches(3, 3));
}

TEST(DataflowLiveness, StraightLineAndBranch)
{
    std::unique_ptr<air::Module> hold;
    air::Method *m = parseMethod(hold, R"(
    method f(): int regs=4 {
        @0: r1 = const 1
        @1: r2 = const 2
        @2: r1 = const 3
        @3: return r1
    })");
    Cfg cfg(*m);
    Liveness live(cfg);
    // The first store to r1 is overwritten before any read.
    EXPECT_FALSE(live.liveAfter(0, 1));
    // r2 is never read.
    EXPECT_FALSE(live.liveAfter(1, 2));
    // The final r1 flows into the return.
    EXPECT_TRUE(live.liveAfter(2, 1));
}

TEST(DataflowLiveness, LoopCarriedRegisterStaysLive)
{
    std::unique_ptr<air::Module> hold;
    air::Method *m = parseMethod(hold, R"(
    method f(p0: int): void regs=4 {
        @0: r2 = const 1
        @1: r1 = sub r1, r2
        @2: ifz r1 gt goto @1
        @3: return-void
    })");
    Cfg cfg(*m);
    Liveness live(cfg);
    // r1 feeds the next iteration through the back edge.
    EXPECT_TRUE(live.liveAfter(1, 1));
    // r2 is re-read by the loop body via the back edge too.
    EXPECT_TRUE(live.liveAfter(0, 2));
}

TEST(DataflowSolver, BackwardOrderCoversInfiniteLoop)
{
    std::unique_ptr<air::Module> hold;
    // A method whose loop never exits: the backward solve from the
    // synthetic exit cannot reach the loop, and liveness falls back to
    // the conservative all-live default rather than claiming facts.
    air::Method *m = parseMethod(hold, R"(
    method f(): void regs=4 {
        @0: r1 = const 1
        @1: goto @1
    })");
    Cfg cfg(*m);
    Liveness live(cfg);
    EXPECT_TRUE(live.liveAfter(0, 1)); // conservative, not "dead"
}

TEST(FieldEffects, DirectAndTransitive)
{
    auto r = air::parseModule(R"(
    class T {
        field g: int
        static field s: int
        method writer(): void regs=4 {
            @0: putfield r0.T.g = r1
            @1: return-void
        }
        method caller(): void regs=4 {
            @0: invoke-virtual T.writer(r0)
            @1: return-void
        }
        method reader(): int regs=4 {
            @0: r1 = getfield r0.T.g
            @1: return r1
        }
        method pure(): int regs=4 {
            @0: r1 = const 5
            @1: return r1
        }
        method staticToucher(): void regs=4 {
            @0: putstatic T.s = r1
            @1: return-void
        }
    })");
    ASSERT_TRUE(r.ok()) << r.status.error;
    ClassHierarchy cha(*r.module);
    FieldEffects fx(*r.module, cha);

    const air::Klass *t = r.module->getClass("T");
    const air::Method *writer = t->findMethod("writer");
    const air::Method *caller = t->findMethod("caller");
    const air::Method *reader = t->findMethod("reader");
    const air::Method *pure = t->findMethod("pure");
    const air::Method *st = t->findMethod("staticToucher");

    EXPECT_TRUE(fx.of(writer).instanceWrites.count("g"));
    // Transitive: caller inherits writer's effects via CHA.
    EXPECT_TRUE(fx.of(caller).instanceWrites.count("g"));
    EXPECT_FALSE(fx.of(caller).callsUnknown);
    EXPECT_TRUE(fx.of(reader).instanceReads.count("g"));
    EXPECT_TRUE(fx.of(reader).isPure());
    EXPECT_TRUE(fx.isPure(pure));
    EXPECT_FALSE(fx.isPure(writer));
    EXPECT_TRUE(fx.of(st).staticWrites.count("T.s"));

    // Conflicts: writer vs reader share g; pure conflicts with nothing.
    EXPECT_TRUE(FieldEffects::mayConflict(fx.of(writer), fx.of(reader)));
    EXPECT_TRUE(FieldEffects::mayConflict(fx.of(caller), fx.of(reader)));
    EXPECT_FALSE(FieldEffects::mayConflict(fx.of(pure), fx.of(writer)));
    EXPECT_FALSE(
        FieldEffects::mayConflict(fx.of(reader), fx.of(reader)));
    EXPECT_TRUE(FieldEffects::mayConflict(fx.of(st), fx.of(st)));
}

TEST(FieldEffects, UnresolvedCallIsUnknown)
{
    auto r = air::parseModule(R"(
    class T {
        method f(): void regs=4 {
            @0: invoke-virtual Missing.g(r0)
            @1: return-void
        }
    })");
    ASSERT_TRUE(r.ok()) << r.status.error;
    ClassHierarchy cha(*r.module);
    FieldEffects fx(*r.module, cha);
    const air::Method *f = r.module->getClass("T")->findMethod("f");
    EXPECT_TRUE(fx.of(f).callsUnknown);
    EXPECT_FALSE(fx.of(f).isPure());
    // Unknown conflicts with everything, including a pure method.
    FieldEffects::Summary pure;
    EXPECT_TRUE(FieldEffects::mayConflict(fx.of(f), pure));
}

} // namespace
} // namespace sierra::analysis
