/** @file Tests for the on-disk app bundle format. */

#include <gtest/gtest.h>

#include "corpus/named_apps.hh"
#include "framework/app_text.hh"
#include "framework/known_api.hh"
#include "sierra/detector.hh"

namespace sierra::framework {
namespace {

const char *kBundle = R"(
# A tiny bundle.
app "tiny" {
    package org.example.tiny
    activity Main main
    activity Settings
    service Sync
    receiver Recv action "org.example.PING" action "org.example.PONG"
    layout Main {
        widget 100 "btnGo" android.widget.Button onclick onGo
        widget 101 "btnNext" android.widget.Button onclick onNext after 100
    }
}
class Main extends android.app.Activity {
    method <init>(): void regs=1 { @0: return-void }
    method onGo(p0: android.view.View): void regs=2 { @0: return-void }
    method onNext(p0: android.view.View): void regs=2 { @0: return-void }
}
class Settings extends android.app.Activity {
    method <init>(): void regs=1 { @0: return-void }
}
class Sync extends android.app.Service {
    method <init>(): void regs=1 { @0: return-void }
}
class Recv extends android.content.BroadcastReceiver {
    method onReceive(p0: java.lang.Object, p1: android.content.Intent): void regs=3 {
        @0: return-void
    }
}
)";

TEST(AppText, ParsesHeaderAndClasses)
{
    AppTextResult result = parseAppText(kBundle);
    ASSERT_TRUE(result.ok()) << result.error << " at line "
                             << result.errorLine;
    App &app = *result.app;
    EXPECT_EQ(app.name(), "tiny");
    EXPECT_EQ(app.manifest().packageName, "org.example.tiny");
    ASSERT_EQ(app.manifest().activities.size(), 2u);
    EXPECT_EQ(app.manifest().mainActivity, "Main");
    ASSERT_EQ(app.manifest().services.size(), 1u);
    ASSERT_EQ(app.manifest().receivers.size(), 1u);
    EXPECT_EQ(app.manifest().receivers[0].actions.size(), 2u);

    const Layout *layout = app.layoutFor("Main");
    ASSERT_NE(layout, nullptr);
    ASSERT_EQ(layout->widgets().size(), 2u);
    EXPECT_EQ(layout->byId(100)->xmlOnClick, "onGo");
    EXPECT_EQ(layout->byId(101)->enabledAfter,
              std::vector<int>{100});

    // Classes parsed and framework model installed.
    EXPECT_NE(app.module().getClass("Main"), nullptr);
    EXPECT_NE(app.module().getClass(names::activity), nullptr);
}

TEST(AppText, RejectsBadHeaders)
{
    EXPECT_FALSE(parseAppText("nope {}").ok());
    EXPECT_FALSE(parseAppText("app \"x\" { bogus Y }").ok());
    EXPECT_FALSE(parseAppText("app \"x\" {").ok());
    EXPECT_FALSE(
        parseAppText("app \"x\" { layout A { widget q } }").ok());
}

TEST(AppText, RejectsDanglingManifestEntries)
{
    AppTextResult result =
        parseAppText("app \"x\" { activity Ghost }\n");
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("Ghost"), std::string::npos);
}

TEST(AppText, ReportsAirErrorsWithOffsetLines)
{
    AppTextResult result = parseAppText(
        "app \"x\" { activity A }\nclass A extends android.app.Activity "
        "{ method m(): void regs=1 { @0: r9 = wat } }");
    EXPECT_FALSE(result.ok());
    EXPECT_FALSE(result.error.empty());
}

TEST(AppText, RoundTripsCorpusApps)
{
    for (const auto &spec : corpus::namedAppSpecs()) {
        const std::string &name = spec.name;
        corpus::BuiltApp built = corpus::buildNamedApp(spec);
        std::string text = printAppText(*built.app);
        AppTextResult reparsed = parseAppText(text);
        ASSERT_TRUE(reparsed.ok())
            << name << ": " << reparsed.error << " at line "
            << reparsed.errorLine;
        EXPECT_EQ(printAppText(*reparsed.app), text)
            << name << ": second print differs";
        EXPECT_EQ(reparsed.app->manifest().activities,
                  built.app->manifest().activities);
    }
}

TEST(AppText, ReparsedAppAnalyzesIdentically)
{
    corpus::BuiltApp built = corpus::buildNamedApp("OpenSudoku");
    AppTextResult reparsed =
        parseAppText(printAppText(*built.app));
    ASSERT_TRUE(reparsed.ok()) << reparsed.error;

    SierraDetector d1(*built.app);
    SierraDetector d2(*reparsed.app);
    AppReport r1 = d1.analyze({});
    AppReport r2 = d2.analyze({});
    EXPECT_EQ(r1.actions, r2.actions);
    EXPECT_EQ(r1.hbEdges, r2.hbEdges);
    EXPECT_EQ(r1.racyPairs, r2.racyPairs);
    EXPECT_EQ(r1.afterRefutation, r2.afterRefutation);
}

} // namespace
} // namespace sierra::framework
