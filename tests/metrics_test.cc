/**
 * @file
 * Tests for the metrics registry (util/metrics) and its integration
 * with the detector: registry counters mirror the report fields
 * exactly, are identical at every jobs count, and the StageTimes
 * cpu-vs-wall accounting survives any merge order.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/named_apps.hh"
#include "sierra/detector.hh"
#include "util/metrics.hh"

namespace sierra {
namespace {

using util::metrics::HistogramSnapshot;
using util::metrics::Registry;

TEST(MetricsRegistry, CountersAccumulateAndDefaultToZero)
{
    Registry r;
    EXPECT_EQ(r.counter("never.written"), 0);
    r.add("a");
    r.add("a", 41);
    r.add("b", 7);
    EXPECT_EQ(r.counter("a"), 42);
    EXPECT_EQ(r.counter("b"), 7);

    auto all = r.counters();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].first, "a"); // name-sorted
    EXPECT_EQ(all[1].first, "b");

    r.clear();
    EXPECT_EQ(r.counter("a"), 0);
    EXPECT_TRUE(r.counters().empty());
}

TEST(MetricsRegistry, HistogramTracksCountSumMinMaxBuckets)
{
    Registry r;
    r.observe("stage.x.seconds", 0.5e-6); // bucket 0 (<= 1us)
    r.observe("stage.x.seconds", 2e-3);   // <= 1e-2
    r.observe("stage.x.seconds", 50.0);   // overflow bucket

    HistogramSnapshot h = r.histogram("stage.x.seconds");
    EXPECT_EQ(h.count, 3);
    EXPECT_DOUBLE_EQ(h.min, 0.5e-6);
    EXPECT_DOUBLE_EQ(h.max, 50.0);
    EXPECT_NEAR(h.sum, 50.0 + 2e-3 + 0.5e-6, 1e-12);
    EXPECT_NEAR(h.mean(), h.sum / 3, 1e-12);
    EXPECT_EQ(h.buckets[0], 1);
    EXPECT_EQ(h.buckets[util::metrics::kNumBuckets - 1], 1);
    int64_t total = 0;
    for (size_t i = 0; i < util::metrics::kNumBuckets; ++i)
        total += h.buckets[i];
    EXPECT_EQ(total, h.count);

    // Never-observed histograms are empty, not errors.
    EXPECT_EQ(r.histogram("absent").count, 0);
}

TEST(MetricsRegistry, SerializationsContainEveryMetric)
{
    Registry r;
    r.add("pta.nodes", 3);
    r.observe("stage.y.seconds", 0.25);
    std::string json = r.toJson();
    EXPECT_NE(json.find("\"pta.nodes\""), std::string::npos);
    EXPECT_NE(json.find("\"stage.y.seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    std::string text = r.toText();
    EXPECT_NE(text.find("pta.nodes"), std::string::npos);
    EXPECT_NE(text.find("stage.y.seconds"), std::string::npos);
}

TEST(Metrics, ThreadCpuClockIsMonotone)
{
    double a = util::metrics::threadCpuSeconds();
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i)
        sink = sink + i;
    double b = util::metrics::threadCpuSeconds();
    EXPECT_GE(b, a);
}

/** Analyze one corpus app with a metrics registry attached. */
AppReport
analyzeWithMetrics(const std::string &app_name, Registry &registry,
                   int jobs)
{
    corpus::BuiltApp built = corpus::buildNamedApp(app_name);
    SierraDetector detector(*built.app);
    SierraOptions options;
    options.metrics = &registry;
    options.jobs = jobs;
    return detector.analyze(options);
}

TEST(Metrics, CountersMirrorReportFields)
{
    // ConnectBot exercises both refutation kinds.
    Registry m;
    AppReport report = analyzeWithMetrics("ConnectBot", m, 1);

    EXPECT_EQ(m.counter("race.lockset_refuted"),
              report.locksetRefuted);
    EXPECT_EQ(m.counter("refuted_by.lockset"), report.locksetRefuted);
    EXPECT_EQ(m.counter("race.enablement_refuted"),
              report.enablementRefuted);
    EXPECT_EQ(m.counter("refuted_by.enablement"),
              report.enablementRefuted);
    EXPECT_EQ(m.counter("race.accesses_dropped"),
              report.accessesDropped);
    EXPECT_EQ(m.counter("shbg.closure_pairs"), report.hbEdges);
    EXPECT_EQ(m.counter("pta.actions"), report.actions);

    int64_t symbolic_refuted = 0, racy_pairs = 0, accesses = 0;
    for (const HarnessAnalysis &ha : report.perHarness) {
        symbolic_refuted += ha.refutation.refuted;
        racy_pairs += ha.racyPairCount();
        accesses += ha.accessesTotal;
    }
    EXPECT_EQ(m.counter("symbolic.refuted"), symbolic_refuted);
    EXPECT_EQ(m.counter("refuted_by.symbolic"), symbolic_refuted);
    EXPECT_EQ(m.counter("race.racy_pairs"), racy_pairs);
    EXPECT_EQ(m.counter("race.accesses_extracted"), accesses);

    // The four provenance counters partition the racy pairs.
    EXPECT_EQ(m.counter("refuted_by.none") +
                  m.counter("refuted_by.lockset") +
                  m.counter("refuted_by.enablement") +
                  m.counter("refuted_by.symbolic"),
              racy_pairs);

    // Sanity: the pipeline actually did work.
    EXPECT_GT(m.counter("pta.worklist_iterations"), 0);
    EXPECT_GT(m.counter("pta.instr_visits"), 0);
    EXPECT_GT(m.counter("race.access_pairs_considered"), 0);
    EXPECT_GT(m.counter("symbolic.queries"), 0);
    EXPECT_EQ(m.histogram("stage.cg_pa.seconds").count,
              report.harnesses);
    EXPECT_EQ(m.histogram("stage.refutation.seconds").count,
              report.harnesses);
}

TEST(Metrics, RefutedByCountersPartitionPairsAtEveryJobsCount)
{
    // The refuted_by.* provenance counters must partition the racy
    // pairs — every pair counted exactly once, no matter how the
    // plan-level fan-out interleaves the refuters. ConnectBot
    // exercises lockset + symbolic, Beem adds enablement.
    for (const char *app : {"ConnectBot", "Beem"}) {
        for (int jobs : {1, 2, 4}) {
            Registry m;
            AppReport report = analyzeWithMetrics(app, m, jobs);

            int64_t refuted_pairs = 0, racy_pairs = 0;
            for (const HarnessAnalysis &ha : report.perHarness) {
                racy_pairs += ha.racyPairCount();
                for (const race::RacyPair &p : ha.pairs)
                    refuted_pairs += p.refuted ? 1 : 0;
            }
            EXPECT_EQ(m.counter("refuted_by.lockset") +
                          m.counter("refuted_by.enablement") +
                          m.counter("refuted_by.symbolic"),
                      refuted_pairs)
                << app << " jobs=" << jobs;
            EXPECT_EQ(m.counter("refuted_by.none"),
                      racy_pairs - refuted_pairs)
                << app << " jobs=" << jobs;
            // The counter must agree with the report header's
            // enablement-refuted line at every jobs count.
            EXPECT_EQ(m.counter("race.enablement_refuted"),
                      report.enablementRefuted)
                << app << " jobs=" << jobs;
        }
    }
}

TEST(Metrics, RegistryIsIdenticalAtEveryJobsCount)
{
    Registry serial, parallel;
    analyzeWithMetrics("ConnectBot", serial, 1);
    analyzeWithMetrics("ConnectBot", parallel, 4);

    // Every counter — including the symbolic work counters, which are
    // per-harness-deterministic because refuter shards merge before
    // the registry is filled — must be byte-identical. The one carve-out
    // is mem.peak_rss_bytes: a process-wide measurement, deterministic
    // in neither jobs count nor run (see docs/OBSERVABILITY.md).
    auto dropRss = [](std::vector<std::pair<std::string, int64_t>> cs) {
        std::erase_if(cs, [](const auto &c) {
            return c.first == "mem.peak_rss_bytes";
        });
        return cs;
    };
    EXPECT_EQ(dropRss(serial.counters()), dropRss(parallel.counters()));

    // Histogram counts match (observed durations differ, of course).
    auto sh = serial.histograms();
    auto ph = parallel.histograms();
    ASSERT_EQ(sh.size(), ph.size());
    for (size_t i = 0; i < sh.size(); ++i) {
        EXPECT_EQ(sh[i].first, ph[i].first);
        EXPECT_EQ(sh[i].second.count, ph[i].second.count)
            << sh[i].first;
    }
}

TEST(StageTimesAccounting, TotalCpuEqualsSumOfStageFields)
{
    for (int jobs : {1, 4}) {
        Registry m;
        AppReport report = analyzeWithMetrics("K-9 Mail", m, jobs);
        const StageTimes &t = report.times;
        double stage_sum = t.cgPa + t.hbg + t.dataflow + t.escape +
                           t.racy + t.lockset + t.deadlock +
                           t.enablement + t.ifds + t.refutation +
                           t.nullflow;
        // fp-rounding tolerance only: the merge must not lose or
        // double-count any worker's CPU at any jobs count.
        EXPECT_NEAR(t.totalCpu, stage_sum,
                    1e-9 + 1e-9 * stage_sum)
            << "jobs=" << jobs;
        EXPECT_GT(t.totalCpu, 0.0);
    }
}

TEST(StageTimesAccounting, AddIsMergeOrderInvariant)
{
    StageTimes a, b, c;
    a.cgPa = 0.125; a.refutation = 0.5; a.totalCpu = 0.625;
    b.hbg = 0.25; b.racy = 0.0625; b.totalCpu = 0.3125;
    c.lockset = 1.0; c.escape = 0.03125; c.totalCpu = 1.03125;

    StageTimes abc;
    abc.add(a); abc.add(b); abc.add(c);
    StageTimes cba;
    cba.add(c); cba.add(b); cba.add(a);
    EXPECT_DOUBLE_EQ(abc.totalCpu, cba.totalCpu);
    EXPECT_DOUBLE_EQ(abc.cgPa, cba.cgPa);
    EXPECT_DOUBLE_EQ(abc.refutation, cba.refutation);
    // `total` (wall) is a whole-run property, never summed by add().
    EXPECT_DOUBLE_EQ(abc.total, 0.0);
}

TEST(StageTimesAccounting, RefutationStatsMergeSumsWorkerCpu)
{
    symbolic::RefutationStats a, b;
    a.refuted = 2; a.cpuSeconds = 0.5;
    b.survived = 3; b.cpuSeconds = 0.25;
    a.merge(b);
    EXPECT_EQ(a.refuted, 2);
    EXPECT_EQ(a.survived, 3);
    EXPECT_DOUBLE_EQ(a.cpuSeconds, 0.75);
}

} // namespace
} // namespace sierra
