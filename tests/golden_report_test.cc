/**
 * @file
 * Golden-report pinning: the full pipeline's text report for every
 * named app must be byte-identical to the committed snapshot under
 * tests/golden/ (captured before the interned-id/bitset memory
 * overhaul). This is the report-preserving contract all representation
 * changes are held to; regenerate the snapshots only for a change that
 * intentionally alters analysis results, never for a perf refactor.
 *
 * Snapshots are written by the recipe below (formatReport with
 * max_races=50 and no timing line); spaces and slashes in app names
 * become underscores in file names.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cli.hh"
#include "corpus/named_apps.hh"
#include "sierra/detector.hh"

#ifndef SIERRA_GOLDEN_DIR
#define SIERRA_GOLDEN_DIR "tests/golden"
#endif

namespace sierra {
namespace {

std::string
goldenFileName(const std::string &app_name)
{
    std::string fname;
    for (char c : app_name)
        fname += (c == ' ' || c == '/') ? '_' : c;
    return fname;
}

std::string
goldenPath(const std::string &app_name)
{
    return std::string(SIERRA_GOLDEN_DIR) + "/" +
           goldenFileName(app_name) + ".report.txt";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(GoldenReports, AllNamedAppsByteIdentical)
{
    int checked = 0;
    for (const auto &spec : corpus::namedAppSpecs()) {
        std::string path = goldenPath(spec.name);
        std::string expected = readFile(path);
        ASSERT_FALSE(expected.empty())
            << "missing golden snapshot " << path;

        corpus::BuiltApp built = corpus::buildNamedApp(spec);
        SierraDetector detector(*built.app);
        AppReport report = detector.analyze({});
        std::string actual = formatReport(report, 50, false);

        EXPECT_EQ(actual, expected)
            << spec.name << ": report diverged from " << path;
        ++checked;
    }
    EXPECT_EQ(checked, 20) << "the corpus pins all 20 named apps";
}

/**
 * Ablation snapshots: with the nullflow stage off the report must have
 * no severity tokens at all, pinned under tests/golden/nullflow_off/.
 * For every app without a nullflow signature pattern these bytes equal
 * the pre-stage goldens exactly — the stage is purely additive.
 */
TEST(GoldenReports, NullflowOffByteIdentical)
{
    for (const auto &spec : corpus::namedAppSpecs()) {
        std::string path = std::string(SIERRA_GOLDEN_DIR) +
                           "/nullflow_off/" +
                           goldenFileName(spec.name) + ".report.txt";
        std::string expected = readFile(path);
        ASSERT_FALSE(expected.empty())
            << "missing golden snapshot " << path;
        EXPECT_EQ(expected.find("severity:"), std::string::npos)
            << path << " leaked severity tokens into ablated output";

        corpus::BuiltApp built = corpus::buildNamedApp(spec);
        SierraDetector detector(*built.app);
        SierraOptions options;
        options.nullflow = false;
        AppReport report = detector.analyze(options);
        std::string actual = formatReport(report, 50, false);

        EXPECT_EQ(actual, expected)
            << spec.name << ": report diverged from " << path;
    }
}

/** A temp file path that cleans itself up. */
class TempFile
{
  public:
    explicit TempFile(const std::string &suffix)
    {
        _path = std::string(std::tmpnam(nullptr)) + suffix;
    }
    ~TempFile() { std::remove(_path.c_str()); }
    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

/** Drop the `"timesMs": {...}` line: stage timings are the one
 *  nondeterministic part of the JSON report. */
std::string
stripTimesMs(const std::string &json)
{
    std::istringstream in(json);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("  \"timesMs\": {", 0) == 0)
            continue;
        out << line << "\n";
    }
    return out.str();
}

/**
 * Machine-readable pinning (schemaVersion 3): the `--json` report for
 * the three apps carrying nullflow signature patterns, severity and
 * provenance fields included, must match the committed snapshots
 * byte-for-byte once the timing line is stripped.
 */
TEST(GoldenReports, JsonReportsByteIdentical)
{
    for (const std::string name :
         {"FBReader", "Astrid", "XBMC remote"}) {
        std::string path = std::string(SIERRA_GOLDEN_DIR) + "/" +
                           goldenFileName(name) + ".report.json";
        std::string expected = readFile(path);
        ASSERT_FALSE(expected.empty())
            << "missing golden snapshot " << path;
        EXPECT_NE(expected.find("\"schemaVersion\": 3,"),
                  std::string::npos);
        EXPECT_NE(expected.find("\"severity\": "), std::string::npos);

        TempFile file(".air");
        std::ostringstream dout, derr;
        ASSERT_EQ(cli::runCli({"dump", name, "-o", file.path()}, dout,
                              derr),
                  0)
            << derr.str();
        std::ostringstream jout, jerr;
        ASSERT_EQ(cli::runCli({"analyze", file.path(), "--json"},
                              jout, jerr),
                  0)
            << jerr.str();

        EXPECT_EQ(stripTimesMs(jout.str()), expected)
            << name << ": JSON report diverged from " << path;
    }
}

} // namespace
} // namespace sierra
