/**
 * @file
 * Golden-report pinning: the full pipeline's text report for every
 * named app must be byte-identical to the committed snapshot under
 * tests/golden/ (captured before the interned-id/bitset memory
 * overhaul). This is the report-preserving contract all representation
 * changes are held to; regenerate the snapshots only for a change that
 * intentionally alters analysis results, never for a perf refactor.
 *
 * Snapshots are written by the recipe below (formatReport with
 * max_races=50 and no timing line); spaces and slashes in app names
 * become underscores in file names.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "corpus/named_apps.hh"
#include "sierra/detector.hh"

#ifndef SIERRA_GOLDEN_DIR
#define SIERRA_GOLDEN_DIR "tests/golden"
#endif

namespace sierra {
namespace {

std::string
goldenPath(const std::string &app_name)
{
    std::string fname;
    for (char c : app_name)
        fname += (c == ' ' || c == '/') ? '_' : c;
    return std::string(SIERRA_GOLDEN_DIR) + "/" + fname +
           ".report.txt";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(GoldenReports, AllNamedAppsByteIdentical)
{
    int checked = 0;
    for (const auto &spec : corpus::namedAppSpecs()) {
        std::string path = goldenPath(spec.name);
        std::string expected = readFile(path);
        ASSERT_FALSE(expected.empty())
            << "missing golden snapshot " << path;

        corpus::BuiltApp built = corpus::buildNamedApp(spec);
        SierraDetector detector(*built.app);
        AppReport report = detector.analyze({});
        std::string actual = formatReport(report, 50, false);

        EXPECT_EQ(actual, expected)
            << spec.name << ": report diverged from " << path;
        ++checked;
    }
    EXPECT_EQ(checked, 20) << "the corpus pins all 20 named apps";
}

} // namespace
} // namespace sierra
