/**
 * @file
 * Sharded refutation: verdict parity with the serial path, associative
 * stats merging, and the shared refuted-node cache.
 *
 * Contract (see refuter.hh): per-pair verdicts and therefore the
 * refuted/survived/timedOut counts are identical at every jobs count.
 * Work counters (statesExpanded, cacheHits, ...) depend on how queries
 * were grouped into executors, so across jobs counts only the verdict
 * counts are asserted.
 */

#include <gtest/gtest.h>

#include "corpus/named_apps.hh"
#include "test_helpers.hh"

namespace sierra {
namespace {

/** A harness analysis with unrefuted pairs, ready for refuteRaces. */
HarnessAnalysis
unrefutedAnalysis(const std::string &app_name)
{
    corpus::BuiltApp built = corpus::buildNamedApp(app_name);
    SierraDetector detector(*built.app);
    SierraOptions options;
    options.runRefutation = false;
    options.enablement = false; // no pre-refuted pairs for the refuter to skip
    HarnessAnalysis ha = detector.analyzeActivity(
        built.app->manifest().activities[0], options);
    // The result's class hierarchy references the app's module, which
    // refuteRaces walks again; keep the app alive for the test run.
    static std::vector<corpus::BuiltApp> keep_alive;
    keep_alive.push_back(std::move(built));
    return ha;
}

TEST(RefuterParallel, ShardedVerdictsMatchSerial)
{
    HarnessAnalysis ha = unrefutedAnalysis("OpenSudoku");
    ASSERT_GT(ha.pairs.size(), 1u);

    std::vector<race::RacyPair> serial_pairs = ha.pairs;
    std::vector<race::RacyPair> sharded_pairs = ha.pairs;

    symbolic::RefuterOptions serial_opts;
    serial_opts.jobs = 1;
    symbolic::RefutationStats serial = symbolic::refuteRaces(
        *ha.pta, ha.accesses, serial_pairs, serial_opts);

    symbolic::RefuterOptions sharded_opts;
    sharded_opts.jobs = 4;
    symbolic::RefutationStats sharded = symbolic::refuteRaces(
        *ha.pta, ha.accesses, sharded_pairs, sharded_opts);

    EXPECT_EQ(serial.refuted, sharded.refuted);
    EXPECT_EQ(serial.survived, sharded.survived);
    EXPECT_EQ(serial.timedOut, sharded.timedOut);
    for (size_t i = 0; i < serial_pairs.size(); ++i) {
        EXPECT_EQ(serial_pairs[i].refuted, sharded_pairs[i].refuted)
            << "pair " << i;
        EXPECT_EQ(serial_pairs[i].refutationTimedOut,
                  sharded_pairs[i].refutationTimedOut)
            << "pair " << i;
    }
    EXPECT_GT(serial.refuted, 0) << "test app should refute something";
    EXPECT_EQ(serial.refuted + serial.survived,
              static_cast<int>(serial_pairs.size()));
    EXPECT_EQ(sharded.refuted + sharded.survived,
              static_cast<int>(sharded_pairs.size()));
}

TEST(RefuterParallel, MoreWorkersThanPairs)
{
    HarnessAnalysis ha = unrefutedAnalysis("Beem");
    std::vector<race::RacyPair> a = ha.pairs;
    std::vector<race::RacyPair> b = ha.pairs;

    symbolic::RefuterOptions one;
    one.jobs = 1;
    symbolic::RefutationStats sa =
        symbolic::refuteRaces(*ha.pta, ha.accesses, a, one);

    symbolic::RefuterOptions many;
    many.jobs = 64; // clamped to the pair count internally
    symbolic::RefutationStats sb =
        symbolic::refuteRaces(*ha.pta, ha.accesses, b, many);

    EXPECT_EQ(sa.refuted, sb.refuted);
    EXPECT_EQ(sa.survived, sb.survived);
    EXPECT_EQ(sa.timedOut, sb.timedOut);
}

TEST(RefuterParallel, ExecutorStatsMergeIsAssociative)
{
    auto make = [](int64_t q, int64_t p, int64_t s, int64_t c,
                   int64_t b) {
        symbolic::ExecutorStats st;
        st.queries = q;
        st.pathsExplored = p;
        st.statesExpanded = s;
        st.cacheHits = c;
        st.budgetExhausted = b;
        return st;
    };
    symbolic::ExecutorStats a = make(1, 10, 100, 3, 0);
    symbolic::ExecutorStats b = make(7, 20, 250, 0, 2);
    symbolic::ExecutorStats c = make(2, 0, 77, 5, 1);

    // (a + b) + c
    symbolic::ExecutorStats left = a;
    left.merge(b);
    left.merge(c);
    // a + (b + c)
    symbolic::ExecutorStats bc = b;
    bc.merge(c);
    symbolic::ExecutorStats right = a;
    right.merge(bc);

    EXPECT_EQ(left.queries, right.queries);
    EXPECT_EQ(left.pathsExplored, right.pathsExplored);
    EXPECT_EQ(left.statesExpanded, right.statesExpanded);
    EXPECT_EQ(left.cacheHits, right.cacheHits);
    EXPECT_EQ(left.budgetExhausted, right.budgetExhausted);
    EXPECT_EQ(left.queries, 10);
    EXPECT_EQ(left.statesExpanded, 427);
}

TEST(RefuterParallel, RefutationStatsMergeSumsComponents)
{
    symbolic::RefutationStats a;
    a.refuted = 3;
    a.survived = 2;
    a.timedOut = 1;
    a.exec.queries = 9;
    symbolic::RefutationStats b;
    b.refuted = 4;
    b.survived = 0;
    b.timedOut = 0;
    b.exec.queries = 5;
    a.merge(b);
    EXPECT_EQ(a.refuted, 7);
    EXPECT_EQ(a.survived, 2);
    EXPECT_EQ(a.timedOut, 1);
    EXPECT_EQ(a.exec.queries, 14);
}

TEST(RefuterParallel, SharedNodeCacheInvariants)
{
    // The unsound node cache is verdict-affecting, so sharded runs
    // with it enabled are not asserted equal to serial ones — only
    // that the run completes with coherent counts and never "loses"
    // a pair.
    HarnessAnalysis ha = unrefutedAnalysis("OpenSudoku");
    std::vector<race::RacyPair> pairs = ha.pairs;

    symbolic::RefuterOptions opts;
    opts.jobs = 4;
    opts.exec.useNodeCache = true;
    symbolic::RefutationStats stats =
        symbolic::refuteRaces(*ha.pta, ha.accesses, pairs, opts);

    EXPECT_EQ(stats.refuted + stats.survived,
              static_cast<int>(pairs.size()));
    EXPECT_GE(stats.timedOut, 0);
    EXPECT_GT(stats.exec.queries, 0);
}

TEST(RefuterParallel, SharedCacheStructure)
{
    symbolic::RefutedNodeCache cache;
    EXPECT_FALSE(cache.contains(3));
    std::vector<analysis::NodeId> nodes{3, 17, 3, 42};
    cache.insertAll(nodes);
    EXPECT_TRUE(cache.contains(3));
    EXPECT_TRUE(cache.contains(17));
    EXPECT_TRUE(cache.contains(42));
    EXPECT_FALSE(cache.contains(4));
    EXPECT_EQ(cache.size(), 3u);
}

} // namespace
} // namespace sierra
