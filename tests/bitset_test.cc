/** @file ObjBitset tests, checked against a std::set<int> oracle. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/arena.hh"
#include "util/bitset.hh"

namespace sierra::util {
namespace {

std::vector<int>
toVector(const ObjBitset &s)
{
    std::vector<int> out;
    for (int v : s)
        out.push_back(v);
    return out;
}

std::vector<int>
toVector(const std::set<int> &s)
{
    return {s.begin(), s.end()};
}

TEST(Bitset, InsertTestEraseSmall)
{
    ObjBitset s;
    EXPECT_TRUE(s.empty());
    EXPECT_TRUE(s.insert(3));
    EXPECT_FALSE(s.insert(3)) << "duplicate insert reports no change";
    EXPECT_TRUE(s.insert(0));
    EXPECT_TRUE(s.test(3));
    EXPECT_FALSE(s.test(4));
    EXPECT_EQ(s.count(0), 1u);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.erase(3));
    EXPECT_FALSE(s.erase(3));
    EXPECT_EQ(s.size(), 1u);
}

TEST(Bitset, MatchesSetOracleAcrossSpill)
{
    // Deterministic pseudo-random workload crossing the inline->spill
    // boundary (128 ids inline) several times.
    ObjBitset bits;
    std::set<int> oracle;
    uint32_t x = 99;
    for (int i = 0; i < 4000; ++i) {
        x = x * 1664525u + 1013904223u;
        int id = static_cast<int>((x >> 7) % 1500);
        if ((x & 3) == 0) {
            EXPECT_EQ(bits.erase(id), oracle.erase(id) == 1u);
        } else {
            EXPECT_EQ(bits.insert(id), oracle.insert(id).second);
        }
    }
    EXPECT_EQ(bits.size(), oracle.size());
    EXPECT_EQ(toVector(bits), toVector(oracle))
        << "iteration is ascending, exactly like std::set";
}

TEST(Bitset, IterationAscendingAcrossWords)
{
    ObjBitset s;
    std::vector<int> ids = {500, 0, 63, 64, 129, 1000, 65, 1};
    for (int id : ids)
        s.insert(id);
    EXPECT_EQ(toVector(s),
              (std::vector<int>{0, 1, 63, 64, 65, 129, 500, 1000}));
}

TEST(Bitset, UnionWithReportsChange)
{
    ObjBitset a, b;
    a.insert(1);
    a.insert(200);
    b.insert(1);
    EXPECT_FALSE(a.unionWith(b)) << "subset union adds nothing";
    b.insert(999);
    EXPECT_TRUE(a.unionWith(b));
    EXPECT_TRUE(a.test(999));
    EXPECT_EQ(a.size(), 3u);
}

TEST(Bitset, Intersects)
{
    ObjBitset a, b;
    a.insert(5);
    a.insert(640);
    b.insert(6);
    EXPECT_FALSE(a.intersects(b));
    b.insert(640);
    EXPECT_TRUE(a.intersects(b));
    EXPECT_TRUE(b.intersects(a)) << "symmetric";
}

TEST(Bitset, VersionIsMonotoneAndChangeCoupled)
{
    ObjBitset s;
    uint32_t v0 = s.version();
    s.insert(10);
    uint32_t v1 = s.version();
    EXPECT_GT(v1, v0);
    s.insert(10); // no-op
    EXPECT_EQ(s.version(), v1) << "no-op mutations keep the version";
    ObjBitset other;
    other.insert(10);
    s.unionWith(other); // still a no-op union
    EXPECT_EQ(s.version(), v1);
    other.insert(700);
    s.unionWith(other);
    EXPECT_GT(s.version(), v1);
}

TEST(Bitset, CopyAndEquality)
{
    ObjBitset a;
    for (int i = 0; i < 300; i += 3)
        a.insert(i);
    ObjBitset b = a;
    EXPECT_TRUE(a == b);
    EXPECT_EQ(toVector(a), toVector(b));
    b.insert(1);
    EXPECT_FALSE(a == b);
    // Differently-sized backing stores still compare by contents.
    ObjBitset small, big;
    small.insert(2);
    big.insert(2);
    big.insert(5000);
    big.erase(5000);
    EXPECT_TRUE(small == big);
}

TEST(Bitset, ArenaSpill)
{
    Arena arena;
    ObjBitset s(&arena);
    for (int i = 0; i < 2048; i += 2)
        s.insert(i);
    EXPECT_EQ(s.size(), 1024u);
    EXPECT_GT(arena.bytesAllocated(), 0u)
        << "spill storage must come from the arena";
    // Copies of arena-backed sets stay correct.
    ObjBitset t = s;
    EXPECT_TRUE(t == s);
    EXPECT_TRUE(t.test(2046));
}

} // namespace
} // namespace sierra::util
