/** @file A race that is refutable only with dataflow constant facts:
 *  the computedGuard pattern clears its guard with `1 - 1`, so plain
 *  backward execution sees an unknown value while the constant
 *  fixpoint concretizes it. Also checks that the dataflow stage never
 *  drops ground-truth true races on named corpus apps. */

#include <gtest/gtest.h>

#include <set>

#include "corpus/named_apps.hh"
#include "corpus/patterns.hh"
#include "test_helpers.hh"

namespace sierra::symbolic {
namespace {

/** True if some surviving race key contains the fragment. */
bool
reportsKeyContaining(const AppReport &report, const std::string &frag)
{
    for (const auto &race : report.races) {
        if (!race.refuted &&
            race.fieldKey.find(frag) != std::string::npos) {
            return true;
        }
    }
    return false;
}

TEST(RefuterConstants, ComputedGuardNeedsConstantFacts)
{
    auto p = test::makePipeline(
        "const-guard", [](corpus::AppFactory &f) {
            auto &act = f.addActivity("CgActivity");
            corpus::addComputedGuard(f, act);
        });

    SierraOptions off;
    off.refuter.exec.useConstFacts = false;
    // The interprocedural facts would concretize `1 - 1` too; turn the
    // IFDS stage off so the baseline really is fact-free WP.
    off.ifds = false;
    AppReport without = p.detector->analyze(off);
    AppReport with = p.detector->analyze({});

    // Plain WP cannot see that 1 - 1 clears the guard: the guarded
    // write survives as a (false) report.
    EXPECT_TRUE(reportsKeyContaining(without, ".mTicks"));
    // With constant facts the ordering is refuted.
    EXPECT_FALSE(reportsKeyContaining(with, ".mTicks"));
    // The guard-variable race is real and survives both ways.
    EXPECT_TRUE(reportsKeyContaining(without, ".mActive"));
    EXPECT_TRUE(reportsKeyContaining(with, ".mActive"));
}

TEST(RefuterConstants, LiteralGuardRefutedEitherWay)
{
    // Control: the literal-constant guardedTimer is refuted by plain
    // WP too -- constants only add power, never remove it.
    auto p = test::makePipeline(
        "literal-guard", [](corpus::AppFactory &f) {
            auto &act = f.addActivity("LgActivity");
            corpus::addGuardedTimer(f, act);
        });
    SierraOptions off;
    off.refuter.exec.useConstFacts = false;
    AppReport without = p.detector->analyze(off);
    AppReport with = p.detector->analyze({});
    for (const auto &race : without.races) {
        if (race.fieldKey.find("mAccumTime") != std::string::npos) {
            EXPECT_TRUE(race.refuted) << race.fieldKey;
        }
    }
    for (const auto &race : with.races) {
        if (race.fieldKey.find("mAccumTime") != std::string::npos) {
            EXPECT_TRUE(race.refuted) << race.fieldKey;
        }
    }
}

/** Surviving-report keys that are ground-truth true races. */
std::set<std::string>
survivingTrueKeys(const AppReport &report,
                  const corpus::GroundTruth &truth)
{
    std::set<std::string> keys;
    for (const auto &race : report.races) {
        if (!race.refuted && truth.isTrueRaceKey(race.fieldKey))
            keys.insert(race.fieldKey);
    }
    return keys;
}

TEST(RefuterConstants, DataflowNeverDropsTrueRacesOnNamedApps)
{
    // The prefilter + constant facts must be report-preserving at the
    // key level: every ground-truth race key reported by the
    // dataflow-free pipeline is still reported with the stage on.
    // (Individual redundant *rows* on a key may be refuted -- e.g. the
    // stop-after-stop ordering of a guard write -- so row counts can
    // shrink; keys must not.)
    for (const char *name : {"OpenSudoku", "VuDroid", "Beem"}) {
        corpus::BuiltApp built = corpus::buildNamedApp(name);
        SierraDetector det(*built.app);

        SierraOptions off_opts;
        off_opts.effectPrefilter = false;
        off_opts.refuter.exec.useConstFacts = false;
        AppReport r_off = det.analyze(off_opts);
        AppReport r_on = det.analyze({});

        EXPECT_EQ(survivingTrueKeys(r_on, built.truth),
                  survivingTrueKeys(r_off, built.truth))
            << name;

        corpus::Score s_off = corpus::scoreReport(r_off, built.truth);
        corpus::Score s_on = corpus::scoreReport(r_on, built.truth);
        EXPECT_EQ(s_on.missedTrueKeys, s_off.missedTrueKeys) << name;
        EXPECT_LE(s_on.falsePositives, s_off.falsePositives) << name;
    }
}

} // namespace
} // namespace sierra::symbolic
