/** @file Tests for harness generation (paper Section 3.2 / Fig. 4). */

#include <gtest/gtest.h>

#include "air/verifier.hh"
#include "corpus/patterns.hh"
#include "test_helpers.hh"

namespace sierra::harness {
namespace {

using analysis::ActionKind;
using test::makePipeline;

TEST(Harness, GeneratesVerifiableCode)
{
    auto p = makePipeline("harness-verify", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("MainActivity");
        corpus::addReceiverDbRace(f, act);
        corpus::addMessageGuard(f, act);
    });
    EXPECT_TRUE(air::verifyModule(p.app().module()).empty());
}

TEST(Harness, OnePlanPerActivity)
{
    auto p = makePipeline("harness-plans", [](corpus::AppFactory &f) {
        f.addActivity("A1");
        f.addActivity("A2");
        f.addActivity("A3");
    });
    EXPECT_EQ(p.detector->plans().size(), 3u);
    for (const auto &plan : p.detector->plans()) {
        ASSERT_NE(plan.mainMethod, nullptr);
        EXPECT_TRUE(plan.mainMethod->isStatic());
        EXPECT_TRUE(plan.mainMethod->owner()->isSynthetic());
    }
}

TEST(Harness, LifecycleEventSites)
{
    auto p = makePipeline("harness-lifecycle", [](corpus::AppFactory &f) {
        f.addActivity("SoloActivity");
    });
    const HarnessPlan &plan = p.detector->plans()[0];

    std::map<std::string, int> counts;
    for (const auto &ev : plan.eventSites) {
        if (ev.kind == ActionKind::Lifecycle)
            ++counts[ev.callbackName];
    }
    // Entry sequence + pause/resume cycle + stop/restart cycle + exit.
    EXPECT_EQ(counts["onCreate"], 1);
    EXPECT_EQ(counts["onStart"], 2);  // "1" and "2" instances (Fig. 5)
    EXPECT_EQ(counts["onResume"], 3);
    EXPECT_EQ(counts["onPause"], 3);
    EXPECT_EQ(counts["onStop"], 2);
    EXPECT_EQ(counts["onRestart"], 1);
    EXPECT_EQ(counts["onDestroy"], 1);

    // The entry sequence is outside the loop, cycles are inside.
    int in_loop = 0;
    int outside = 0;
    for (const auto &ev : plan.eventSites) {
        if (ev.kind != ActionKind::Lifecycle)
            continue;
        (ev.inEventLoop ? in_loop : outside)++;
    }
    EXPECT_EQ(outside, 6) << "onCreate/onStart/onResume + exit sequence";
    EXPECT_EQ(in_loop, 7);
}

TEST(Harness, XmlGuiCallbacksBecomeEventSites)
{
    auto p = makePipeline("harness-gui", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("GuiActivity");
        corpus::addMessageGuard(f, act); // two xmlOnClick buttons
    });
    const HarnessPlan &plan = p.detector->plans()[0];
    int gui = 0;
    for (const auto &ev : plan.eventSites) {
        if (ev.kind == ActionKind::XmlGui) {
            ++gui;
            EXPECT_TRUE(ev.inEventLoop);
            EXPECT_GT(ev.widgetId, 0);
        }
    }
    EXPECT_EQ(gui, 2);
}

TEST(Harness, ManifestReceiversAndServices)
{
    auto p = makePipeline("harness-recv", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("HostActivity");
        corpus::addServiceStaticRace(f, act); // manifest service
    });
    const HarnessPlan &plan = p.detector->plans()[0];
    int service_sites = 0;
    for (const auto &ev : plan.eventSites) {
        if (ev.kind == ActionKind::ServiceCreate)
            ++service_sites;
    }
    EXPECT_EQ(service_sites, 2)
        << "onCreate + onStartCommand sites are emitted; only those "
           "with bodies become call-graph nodes later";
}

TEST(Harness, SiteLookup)
{
    auto p = makePipeline("harness-lookup", [](corpus::AppFactory &f) {
        f.addActivity("LookupActivity");
    });
    const HarnessPlan &plan = p.detector->plans()[0];
    ASSERT_FALSE(plan.eventSites.empty());
    const EventSite &first = plan.eventSites[0];
    EXPECT_EQ(plan.siteAt(first.method, first.instrIdx), &first);
    EXPECT_EQ(plan.siteAt(first.method, 99999), nullptr);
}

TEST(Harness, NondetProviderInstalled)
{
    auto p = makePipeline("harness-nondet", [](corpus::AppFactory &f) {
        f.addActivity("NdActivity");
    });
    air::Klass *nd = p.app().module().getClass(kNondetClass);
    ASSERT_NE(nd, nullptr);
    EXPECT_TRUE(nd->isSynthetic());
    ASSERT_NE(nd->findMethod("choose"), nullptr);
    EXPECT_TRUE(nd->findMethod("choose")->isStatic());
}

} // namespace
} // namespace sierra::harness
