/** @file Tests for Module/Klass bookkeeping, including fatal paths. */

#include <gtest/gtest.h>

#include "air/builder.hh"
#include "air/module.hh"
#include "air/printer.hh"

namespace sierra::air {
namespace {

TEST(Module, ClassRegistryAndOrder)
{
    Module mod;
    Klass *a = mod.addClass("A");
    Klass *b = mod.addClass("B", "A");
    EXPECT_EQ(mod.numClasses(), 2u);
    EXPECT_EQ(mod.getClass("A"), a);
    EXPECT_EQ(mod.getClass("Missing"), nullptr);
    EXPECT_EQ(mod.requireClass("B"), b);
    // Insertion order is preserved (determinism contract).
    EXPECT_EQ(mod.classes()[0], a);
    EXPECT_EQ(mod.classes()[1], b);
}

TEST(Module, FindMethod)
{
    Module mod;
    Klass *a = mod.addClass("A");
    Method *m = a->addMethod("f", {}, Type::voidTy(), false);
    EXPECT_EQ(mod.findMethod("A", "f"), m);
    EXPECT_EQ(mod.findMethod("A", "g"), nullptr);
    EXPECT_EQ(mod.findMethod("Z", "f"), nullptr);
}

TEST(Module, CodeSizeTracksContent)
{
    Module mod;
    size_t empty = mod.codeSize();
    Klass *a = mod.addClass("A");
    a->addField({"x", Type::intTy(), false});
    EXPECT_GT(mod.codeSize(), empty);
}

TEST(ModuleDeath, DuplicateClassIsFatal)
{
    Module mod;
    mod.addClass("A");
    EXPECT_EXIT(mod.addClass("A"), ::testing::ExitedWithCode(1),
                "duplicate class");
}

TEST(ModuleDeath, RequireMissingClassIsFatal)
{
    Module mod;
    EXPECT_EXIT(mod.requireClass("Nope"),
                ::testing::ExitedWithCode(1), "unknown class");
}

TEST(ModuleDeath, DuplicateMethodIsFatal)
{
    Module mod;
    Klass *a = mod.addClass("A");
    a->addMethod("f", {}, Type::voidTy(), false);
    EXPECT_EXIT(a->addMethod("f", {}, Type::voidTy(), false),
                ::testing::ExitedWithCode(1), "duplicate method");
}

TEST(BuilderDeath, UnboundLabelPanics)
{
    Module mod;
    Klass *a = mod.addClass("A");
    Method *m = a->addMethod("f", {}, Type::voidTy(), false);
    MethodBuilder b(m);
    Label never = b.newLabel();
    b.gotoLabel(never);
    EXPECT_DEATH(b.finish(), "unbound label");
}

TEST(BuilderDeath, DoubleBindPanics)
{
    Module mod;
    Klass *a = mod.addClass("A");
    Method *m = a->addMethod("f", {}, Type::voidTy(), false);
    MethodBuilder b(m);
    Label l = b.newLabel();
    b.bind(l);
    EXPECT_DEATH(b.bind(l), "label bound twice");
}

TEST(BuilderDeath, EmitAfterFinishPanics)
{
    Module mod;
    Klass *a = mod.addClass("A");
    Method *m = a->addMethod("f", {}, Type::voidTy(), false);
    MethodBuilder b(m);
    b.finish();
    EXPECT_DEATH(b.retVoid(), "emit after finish");
}

TEST(Klass, FieldLookupAndFrameworkFlag)
{
    Module mod;
    Klass *a = mod.addClass("android.app.Thing");
    Klass *u = mod.addClass("com.example.Thing");
    a->addField({"f", Type::intTy(), false});
    EXPECT_NE(a->findField("f"), nullptr);
    EXPECT_EQ(a->findField("g"), nullptr);
    EXPECT_TRUE(a->isFramework());
    EXPECT_FALSE(u->isFramework());
    Klass *j = mod.addClass("java.lang.Thing");
    EXPECT_TRUE(j->isFramework());
}

TEST(Printer, MethodRendering)
{
    Module mod;
    Klass *a = mod.addClass("A", "Base");
    a->addInterface("I");
    Method *m = a->addMethod("f", {Type::intTy()}, Type::intTy(),
                             false);
    MethodBuilder b(m);
    b.ret(b.paramReg(0));
    b.finish();
    Method *abs = a->addMethod("g", {}, Type::voidTy(), false);
    abs->setAbstract(true);

    std::string text = printKlass(*a);
    EXPECT_NE(text.find("class A extends Base implements I"),
              std::string::npos);
    EXPECT_NE(text.find("method f(p0: int) : int regs=2"),
              std::string::npos);
    EXPECT_NE(text.find("abstract method g() : void;"),
              std::string::npos);
    EXPECT_NE(text.find("@0: return r1"), std::string::npos);
}

} // namespace
} // namespace sierra::air
