/**
 * @file
 * Tests for the Chrome trace-event session (util/trace): the output is
 * strictly valid JSON, every duration span is balanced, every enabled
 * pipeline stage gets a span, and the event *set* (excluding the
 * jobs-dependent "worker" category) is identical at every jobs count.
 */

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/named_apps.hh"
#include "sierra/detector.hh"
#include "util/trace.hh"

namespace sierra {
namespace {

namespace trace = util::trace;

/*
 * Minimal strict JSON parser — enough to validate the trace output
 * without third-party dependencies. Values are returned as a small
 * variant tree; any syntax error fails the parse (no recovery).
 */
struct JsonValue {
    enum Kind { Null, Bool, Number, String, Array, Object } kind{Null};
    bool boolean{false};
    double number{0};
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue *
    field(const std::string &name) const
    {
        auto it = object.find(name);
        return it == object.end() ? nullptr : &it->second;
    }
    std::string
    str(const std::string &name) const
    {
        const JsonValue *v = field(name);
        return v && v->kind == String ? v->string : "";
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : _text(text) {}

    bool
    parse(JsonValue &out)
    {
        bool ok = value(out);
        skipWs();
        return ok && _pos == _text.size();
    }

  private:
    const std::string &_text;
    size_t _pos{0};

    void
    skipWs()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
    }
    bool
    consume(char c)
    {
        skipWs();
        if (_pos >= _text.size() || _text[_pos] != c)
            return false;
        ++_pos;
        return true;
    }
    bool
    literal(const char *word, JsonValue &out, JsonValue::Kind kind,
            bool b)
    {
        size_t n = std::strlen(word);
        if (_text.compare(_pos, n, word) != 0)
            return false;
        _pos += n;
        out.kind = kind;
        out.boolean = b;
        return true;
    }
    bool
    stringValue(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (_pos < _text.size()) {
            char c = _text[_pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (_pos >= _text.size())
                    return false;
                char e = _text[_pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (_pos + 4 > _text.size())
                        return false;
                    out += '?'; // decoded value irrelevant to tests
                    _pos += 4;
                    break;
                  }
                  default: return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false; // control chars must be escaped
            } else {
                out += c;
            }
        }
        return false;
    }
    bool
    value(JsonValue &out)
    {
        skipWs();
        if (_pos >= _text.size())
            return false;
        char c = _text[_pos];
        if (c == 'n')
            return literal("null", out, JsonValue::Null, false);
        if (c == 't')
            return literal("true", out, JsonValue::Bool, true);
        if (c == 'f')
            return literal("false", out, JsonValue::Bool, false);
        if (c == '"') {
            out.kind = JsonValue::String;
            return stringValue(out.string);
        }
        if (c == '[') {
            ++_pos;
            out.kind = JsonValue::Array;
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                JsonValue elem;
                if (!value(elem))
                    return false;
                out.array.push_back(std::move(elem));
                if (consume(']'))
                    return true;
                if (!consume(','))
                    return false;
            }
        }
        if (c == '{') {
            ++_pos;
            out.kind = JsonValue::Object;
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                skipWs();
                std::string key;
                if (!stringValue(key))
                    return false;
                if (!consume(':'))
                    return false;
                JsonValue elem;
                if (!value(elem))
                    return false;
                out.object.emplace(std::move(key), std::move(elem));
                if (consume('}'))
                    return true;
                if (!consume(','))
                    return false;
            }
        }
        // Number.
        size_t start = _pos;
        if (c == '-')
            ++_pos;
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '.' || _text[_pos] == 'e' ||
                _text[_pos] == 'E' || _text[_pos] == '+' ||
                _text[_pos] == '-'))
            ++_pos;
        if (_pos == start)
            return false;
        try {
            out.number = std::stod(_text.substr(start, _pos - start));
        } catch (...) {
            return false;
        }
        out.kind = JsonValue::Number;
        return true;
    }
};

/** RAII: guarantee the global session is stopped and empty afterwards
 *  so tests compose when the whole binary runs in one process. */
struct SessionGuard {
    ~SessionGuard()
    {
        trace::stop();
        trace::clear();
    }
};

/** Run the detector on a corpus app with tracing on; return the
 *  parsed trace events. */
std::vector<JsonValue>
traceAnalyze(const std::string &app_name, int jobs)
{
    corpus::BuiltApp built = corpus::buildNamedApp(app_name);
    SierraDetector detector(*built.app);
    SierraOptions options;
    options.jobs = jobs;
    trace::start();
    detector.analyze(options);
    trace::stop();
    std::string json = trace::toJson();
    trace::clear();

    JsonValue root;
    EXPECT_TRUE(JsonParser(json).parse(root)) << json.substr(0, 400);
    EXPECT_EQ(root.kind, JsonValue::Object);
    const JsonValue *events = root.field("traceEvents");
    EXPECT_NE(events, nullptr);
    EXPECT_EQ(events->kind, JsonValue::Array);
    return events ? events->array : std::vector<JsonValue>{};
}

TEST(Trace, DisabledByDefaultCollectsNothing)
{
    SessionGuard guard;
    trace::clear();
    ASSERT_FALSE(trace::enabled());
    trace::instant("test", "ignored");
    { SIERRA_TRACE_SPAN(span, "test", "ignored", std::string()); }
    EXPECT_EQ(trace::eventCount(), 0u);
}

TEST(Trace, SpanMacroSkipsArgEvaluationWhenDisabled)
{
    SessionGuard guard;
    ASSERT_FALSE(trace::enabled());
    int evaluations = 0;
    auto expensive = [&]() {
        ++evaluations;
        return std::string("{}");
    };
    {
        SIERRA_TRACE_SPAN(span, "test", "lazy", expensive());
    }
#ifndef SIERRA_TRACE_DISABLED
    EXPECT_EQ(evaluations, 0);
#endif
}

// The next two tests (and InstantEventsPerRefutedPair below) assert
// that instrumentation points actually emit events, so they cannot
// run when -DSIERRA_DISABLE_TRACING=ON compiles the call sites out.
#ifndef SIERRA_TRACE_DISABLED

TEST(Trace, ValidJsonBalancedSpans)
{
    SessionGuard guard;
    std::vector<JsonValue> events = traceAnalyze("OpenSudoku", 1);
    ASSERT_FALSE(events.empty());

    // Every event has the mandatory fields; B/E nest per track.
    std::map<double, std::vector<std::string>> stacks;
    for (const JsonValue &e : events) {
        std::string ph = e.str("ph");
        ASSERT_FALSE(ph.empty());
        const JsonValue *tid = e.field("tid");
        ASSERT_NE(tid, nullptr);
        ASSERT_EQ(tid->kind, JsonValue::Number);
        if (ph == "M")
            continue;
        const JsonValue *ts = e.field("ts");
        ASSERT_NE(ts, nullptr);
        ASSERT_EQ(ts->kind, JsonValue::Number);
        ASSERT_GE(ts->number, 0.0);
        if (ph == "B") {
            stacks[tid->number].push_back(e.str("name"));
        } else if (ph == "E") {
            auto &stack = stacks[tid->number];
            ASSERT_FALSE(stack.empty())
                << "E without B: " << e.str("name");
            EXPECT_EQ(stack.back(), e.str("name"));
            stack.pop_back();
        } else {
            EXPECT_EQ(ph, "i") << "unexpected phase " << ph;
            EXPECT_EQ(e.str("s"), "t");
        }
    }
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
}

TEST(Trace, EverySierraStageGetsASpan)
{
    SessionGuard guard;
    std::vector<JsonValue> events = traceAnalyze("OpenSudoku", 1);
    std::set<std::string> stage_names;
    for (const JsonValue &e : events) {
        if (e.str("ph") == "B" && e.str("cat") == "stage")
            stage_names.insert(e.str("name"));
    }
    for (const char *expected :
         {"stage.cg_pa", "stage.hbg", "stage.dataflow",
          "stage.racy.extract", "stage.escape", "stage.racy.pairs",
          "stage.lockset", "stage.deadlock", "stage.enablement",
          "stage.ifds", "stage.refutation", "stage.nullflow"}) {
        EXPECT_TRUE(stage_names.count(expected))
            << "missing span for " << expected;
    }
}

#endif // SIERRA_TRACE_DISABLED

TEST(Trace, EventSetIsJobsDeterministicOutsideWorkerCategory)
{
    SessionGuard guard;
    auto signature = [](const std::vector<JsonValue> &events) {
        // Multiset of (ph, cat, name); "worker" spans and per-thread
        // metadata legitimately vary with the worker count.
        std::multiset<std::string> out;
        for (const JsonValue &e : events) {
            std::string ph = e.str("ph");
            std::string cat = e.str("cat");
            if (ph == "M" || cat == "worker")
                continue;
            out.insert(ph + "|" + cat + "|" + e.str("name"));
        }
        return out;
    };
    auto serial = signature(traceAnalyze("ConnectBot", 1));
    auto parallel = signature(traceAnalyze("ConnectBot", 4));
    EXPECT_EQ(serial, parallel);
}

#ifndef SIERRA_TRACE_DISABLED

TEST(Trace, InstantEventsPerRefutedPair)
{
    SessionGuard guard;
    // ConnectBot has both lockset and symbolic refutations.
    corpus::BuiltApp built = corpus::buildNamedApp("ConnectBot");
    SierraDetector detector(*built.app);
    SierraOptions options;
    options.jobs = 1;
    trace::start();
    AppReport report = detector.analyze(options);
    trace::stop();
    std::string json = trace::toJson();
    trace::clear();
    JsonValue root;
    ASSERT_TRUE(JsonParser(json).parse(root));

    int lockset = 0, symbolic = 0;
    for (const JsonValue &e : root.field("traceEvents")->array) {
        if (e.str("ph") != "i" || e.str("cat") != "refutation")
            continue;
        const JsonValue *args = e.field("args");
        ASSERT_NE(args, nullptr);
        std::string by = args->str("by");
        if (by == "lockset")
            ++lockset;
        else if (by == "symbolic")
            ++symbolic;
    }
    EXPECT_EQ(lockset, report.locksetRefuted);
    int symbolic_expected = 0;
    for (const HarnessAnalysis &ha : report.perHarness)
        symbolic_expected += ha.refutation.refuted;
    EXPECT_EQ(symbolic, symbolic_expected);
}

#endif // SIERRA_TRACE_DISABLED

TEST(Trace, WriteJsonProducesParseableFile)
{
    SessionGuard guard;
    trace::start();
    trace::instant("test", "marker");
    std::string path = ::testing::TempDir() + "sierra_trace_test.json";
    ASSERT_TRUE(trace::writeJson(path));
    EXPECT_FALSE(trace::enabled()); // writeJson stops the session

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    JsonValue root;
    ASSERT_TRUE(JsonParser(buffer.str()).parse(root));
    EXPECT_EQ(root.str("displayTimeUnit"), "ms");
    std::remove(path.c_str());
}

TEST(Trace, StopPreventsLaterRecording)
{
    SessionGuard guard;
    trace::start();
    trace::instant("test", "one");
    trace::stop();
    trace::instant("test", "two");
    EXPECT_EQ(trace::eventCount(), 1u);
    trace::clear();
    EXPECT_EQ(trace::eventCount(), 0u);
}

} // namespace
} // namespace sierra
