/** @file Tests for the interprocedural IFDS engine (analysis/ifds):
 *  summary propagation, summary-cache reuse, must-write-constant
 *  facts, the use-after-destroy client, and the end-to-end guarantees
 *  of the detector stage (more refutation power, no lost true races,
 *  jobs-determinism). */

#include <set>
#include <utility>
#include <vector>
#include <string>

#include <gtest/gtest.h>

#include "analysis/ifds.hh"
#include "analysis/points_to.hh"
#include "corpus/named_apps.hh"
#include "corpus/patterns.hh"
#include "framework/known_api.hh"
#include "test_helpers.hh"
#include "util/metrics.hh"

namespace sierra::analysis {
namespace {

using air::MethodBuilder;
using air::Type;
using corpus::fieldRef;
namespace names = framework::names;
using test::makePipeline;

/** Run the PA for the first (only) activity of a pipeline. */
std::unique_ptr<PointsToResult>
runPta(test::Pipeline &p)
{
    PointsToAnalysis pta(p.app(), p.detector->plans()[0], {});
    return pta.run();
}

/** The first class whose name starts with the prefix; asserts one. */
const air::Klass *
classWithPrefix(const air::Module &mod, const std::string &prefix)
{
    for (const air::Klass *k : mod.classes()) {
        if (k->name().rfind(prefix, 0) == 0)
            return k;
    }
    return nullptr;
}

TEST(Ifds, ConstantsPropagateThroughSetterChain)
{
    // interprocGuard clears its guard via clear0(0) -> ... -> clear8,
    // so every link's parameter joins to the constant 0 and the chain
    // root accumulates both must-write facts.
    auto p = makePipeline("ifds-chain", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("ChainActivity");
        corpus::addInterprocGuard(f, act);
    });
    auto r = runPta(p);
    InterConstants inter(*r);

    const air::Klass *timer = classWithPrefix(p.app().module(),
                                              "IPGuard$");
    ASSERT_NE(timer, nullptr);
    const std::string cls = timer->name();

    // clear8 stores its parameter into both fields; the summaries
    // prove the parameter is 0 on every invocation.
    const air::Method *leaf = timer->findMethod("clear8");
    ASSERT_NE(leaf, nullptr);
    const auto &leaf_writes = inter.mustWrites(leaf);
    ASSERT_EQ(leaf_writes.size(), 2u);
    for (const auto &w : leaf_writes) {
        EXPECT_EQ(w.field.className, cls);
        EXPECT_EQ(w.value, 0);
        EXPECT_FALSE(w.isStatic);
        EXPECT_TRUE(w.exclusive) << w.field.fieldName
                                 << ": every write rides `this`";
    }
    EXPECT_EQ(leaf_writes[0].field.fieldName, "mHits");
    EXPECT_EQ(leaf_writes[1].field.fieldName, "mOn");

    // The facts compose through the whole chain: clear0's summary
    // carries the same two facts even though it writes nothing itself.
    const air::Method *root = timer->findMethod("clear0");
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(inter.mustWrites(root).size(), 2u);

    // stop() only clears on the guarded path, so it has no must-write
    // fact of its own.
    const air::Method *stop = timer->findMethod("stop");
    ASSERT_NE(stop, nullptr);
    EXPECT_TRUE(inter.mustWrites(stop).empty());

    EXPECT_GE(inter.stats().methods, 11);
    EXPECT_GE(inter.stats().paramConsts, 9)
        << "each clearN formal is the constant 0";
    EXPECT_GE(inter.stats().mustWriteFacts, 2 * 9);
    EXPECT_FALSE(inter.stats().budgetExhausted);
}

TEST(Ifds, SummaryIsComputedOnceAndReusedAcrossCallSites)
{
    // One helper, two call sites with the same constant argument: the
    // helper body is solved once and the second site is served from
    // the summary cache.
    auto p = makePipeline("ifds-reuse", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("ReuseActivity");
        air::Klass *act_k = act.klass();
        air::Method *helper = act_k->addMethod(
            "applyMode", {Type::intTy()}, Type::voidTy(), false);
        {
            MethodBuilder b(helper);
            b.putField(b.thisReg(), fieldRef(act.name(), "mode"),
                       b.paramReg(0));
            b.finish();
        }
        std::string act_cls = act.name();
        act.on("onCreate", [act_cls](MethodBuilder &b) {
            int r = b.newReg();
            b.constInt(r, 3);
            b.call(b.thisReg(), act_cls, "applyMode", {r});
            b.call(b.thisReg(), act_cls, "applyMode", {r});
        });
    });
    auto r = runPta(p);
    InterConstants inter(*r);

    const air::Method *helper = p.app()
                                    .module()
                                    .getClass("ReuseActivity")
                                    ->findMethod("applyMode");
    ASSERT_NE(helper, nullptr);
    EXPECT_EQ(inter.solveCountOf(helper), 1)
        << "two call sites, one summary computation";
    EXPECT_GE(inter.stats().summaryReuses, 1);

    // Both actuals are 3, so the join stays constant and the setter
    // write is a must-write fact.
    const auto &writes = inter.mustWrites(helper);
    ASSERT_EQ(writes.size(), 1u);
    EXPECT_EQ(writes[0].field.fieldName, "mode");
    EXPECT_EQ(writes[0].value, 3);
}

TEST(Ifds, ConflictingCallSitesWidenTheParameter)
{
    // Same helper, different constants: the parameter joins to Top and
    // the must-write fact disappears (no unsound "pick one" value).
    auto p = makePipeline("ifds-widen", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("WidenActivity");
        air::Klass *act_k = act.klass();
        air::Method *helper = act_k->addMethod(
            "applyMode", {Type::intTy()}, Type::voidTy(), false);
        {
            MethodBuilder b(helper);
            b.putField(b.thisReg(), fieldRef(act.name(), "mode"),
                       b.paramReg(0));
            b.finish();
        }
        std::string act_cls = act.name();
        act.on("onCreate", [act_cls](MethodBuilder &b) {
            int r3 = b.newReg();
            int r5 = b.newReg();
            b.constInt(r3, 3);
            b.constInt(r5, 5);
            b.call(b.thisReg(), act_cls, "applyMode", {r3});
            b.call(b.thisReg(), act_cls, "applyMode", {r5});
        });
    });
    auto r = runPta(p);
    InterConstants inter(*r);
    const air::Method *helper = p.app()
                                    .module()
                                    .getClass("WidenActivity")
                                    ->findMethod("applyMode");
    ASSERT_NE(helper, nullptr);
    EXPECT_TRUE(inter.mustWrites(helper).empty());
}

TEST(Ifds, ReturnConstantsJoinOverReturnSites)
{
    auto p = makePipeline("ifds-ret", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("RetActivity");
        air::Klass *act_k = act.klass();
        air::Method *seven =
            act_k->addMethod("seven", {}, Type::intTy(), false);
        {
            MethodBuilder b(seven);
            int r = b.newReg();
            b.constInt(r, 7);
            b.ret(r);
            b.finish();
        }
        std::string act_cls = act.name();
        act.on("onCreate", [act_cls](MethodBuilder &b) {
            b.callTo(b.newReg(), b.thisReg(), act_cls, "seven");
        });
    });
    auto r = runPta(p);
    InterConstants inter(*r);
    const air::Method *seven = p.app()
                                   .module()
                                   .getClass("RetActivity")
                                   ->findMethod("seven");
    ASSERT_NE(seven, nullptr);
    ConstVal v = inter.returnConst(seven);
    EXPECT_TRUE(v.isConst());
    EXPECT_EQ(v.value, 7);
    EXPECT_GE(inter.stats().returnConsts, 1);
}

TEST(Ifds, BudgetExhaustionDiscardsAllFacts)
{
    auto p = makePipeline("ifds-budget", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("BudgetActivity");
        corpus::addInterprocGuard(f, act);
    });
    auto r = runPta(p);
    IfdsOptions tiny;
    tiny.maxStates = 1; // exhausts on the first solve
    InterConstants inter(*r, tiny);
    EXPECT_TRUE(inter.stats().budgetExhausted);

    const air::Klass *timer = classWithPrefix(p.app().module(),
                                              "IPGuard$");
    ASSERT_NE(timer, nullptr);
    const air::Method *leaf = timer->findMethod("clear8");
    ASSERT_NE(leaf, nullptr);
    // Sound degradation: every query answers "don't know".
    EXPECT_TRUE(inter.mustWrites(leaf).empty());
    EXPECT_FALSE(inter.returnConst(leaf).isConst());
    EXPECT_TRUE(inter.reachable(leaf, 0));
    EXPECT_TRUE(inter.edgeFeasible(leaf, 0, 1));
}

TEST(Ifds, UseAfterDestroyClientFindsPostedRead)
{
    auto p = makePipeline("ifds-uad", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("UadActivity");
        corpus::addUseAfterDestroy(f, act);
    });
    HarnessAnalysis ha = p.detector->analyzeActivity("UadActivity");

    ASSERT_EQ(ha.useAfterDestroy.size(), 1u);
    const UseAfterDestroyFinding &f = ha.useAfterDestroy[0];
    EXPECT_NE(f.fieldKey.find("UadActivity.view$"), std::string::npos);
    EXPECT_NE(f.teardownAction.find("onDestroy"), std::string::npos);
    EXPECT_NE(f.writeMethod.find("release$"), std::string::npos)
        << "the null store is inside the setter helper";
    EXPECT_NE(f.readMethod.find("Render$"), std::string::npos);
    EXPECT_GE(f.writeInstr, 0);
    EXPECT_GE(f.readInstr, 0);

    // The finding is surfaced through the app report and its text
    // form, and ablating the stage removes the section.
    AppReport report = p.detector->analyze({});
    ASSERT_EQ(report.useAfterDestroy.size(), 1u);
    EXPECT_NE(formatReport(report).find("use-after-destroy: 1"),
              std::string::npos);
    SierraOptions off;
    off.ifds = false;
    AppReport r_off = p.detector->analyze(off);
    EXPECT_TRUE(r_off.useAfterDestroy.empty());
}

TEST(Ifds, LifecycleOrderedTeardownIsNotFlagged)
{
    // A field nulled in onDestroy but only read from onCreate of the
    // same activity: onCreate happens-before onDestroy, so the read
    // can never follow the teardown.
    auto p = makePipeline("ifds-uad-neg", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("SafeActivity");
        act.addField("mRes", Type::object(names::object));
        std::string act_cls = act.name();
        act.on("onCreate", [act_cls](MethodBuilder &b) {
            int rv = b.newReg();
            int rr = b.newReg();
            b.newObject(rv, names::object);
            b.putField(b.thisReg(), fieldRef(act_cls, "mRes"), rv);
            b.getField(rr, b.thisReg(), fieldRef(act_cls, "mRes"));
        });
        act.on("onDestroy", [act_cls](MethodBuilder &b) {
            int rn = b.newReg();
            b.constNull(rn);
            b.putField(b.thisReg(), fieldRef(act_cls, "mRes"), rn);
        });
    });
    HarnessAnalysis ha = p.detector->analyzeActivity("SafeActivity");
    EXPECT_TRUE(ha.useAfterDestroy.empty());
}

/** Surviving-report keys that are ground-truth true races. */
std::set<std::string>
survivingTrueKeys(const AppReport &report,
                  const corpus::GroundTruth &truth)
{
    std::set<std::string> keys;
    for (const auto &race : report.races) {
        if (!race.refuted && truth.isTrueRaceKey(race.fieldKey))
            keys.insert(race.fieldKey);
    }
    return keys;
}

/** True if some surviving race key contains the fragment. */
bool
reportsKeyContaining(const AppReport &report, const std::string &frag)
{
    for (const auto &race : report.races) {
        if (!race.refuted &&
            race.fieldKey.find(frag) != std::string::npos)
            return true;
    }
    return false;
}

TEST(Ifds, InterprocGuardRefutedOnlyWithSummaries)
{
    // The 9-deep setter chain is beyond the executor's call-descend
    // limit: without the interprocedural must-write facts the havoc
    // keeps the mHits report; with them the strong update conflicts
    // with the guard constraint and the pair is refuted. The guard
    // variable itself (mOn) races either way.
    auto p = makePipeline("ipg", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("IpgActivity");
        corpus::addInterprocGuard(f, act);
    });
    SierraOptions off;
    off.ifds = false;
    AppReport without = p.detector->analyze(off);
    AppReport with = p.detector->analyze({});

    EXPECT_TRUE(reportsKeyContaining(without, ".mHits"));
    EXPECT_FALSE(reportsKeyContaining(with, ".mHits"));
    EXPECT_TRUE(reportsKeyContaining(without, ".mOn"));
    EXPECT_TRUE(reportsKeyContaining(with, ".mOn"));
}

TEST(Ifds, NeverDropsTrueRacesOnAnyNamedApp)
{
    // Per-key true-race preservation across the whole corpus: every
    // ground-truth key reported without the stage is still reported
    // with it, and the stage never adds false positives.
    for (const auto &spec : corpus::namedAppSpecs()) {
        corpus::BuiltApp built = corpus::buildNamedApp(spec);
        SierraDetector det(*built.app);

        SierraOptions off;
        off.ifds = false;
        AppReport r_off = det.analyze(off);
        AppReport r_on = det.analyze({});

        EXPECT_EQ(survivingTrueKeys(r_on, built.truth),
                  survivingTrueKeys(r_off, built.truth))
            << spec.name;

        corpus::Score s_off = corpus::scoreReport(r_off, built.truth);
        corpus::Score s_on = corpus::scoreReport(r_on, built.truth);
        EXPECT_EQ(s_on.missedTrueKeys, s_off.missedTrueKeys)
            << spec.name;
        EXPECT_LE(s_on.falsePositives, s_off.falsePositives)
            << spec.name;
    }
}

TEST(Ifds, IfdsStageIsJobsDeterministic)
{
    // K-9 Mail carries the useAfterDestroy signature pattern, so this
    // covers the new report section too. The report text and every
    // metrics counter must be byte-identical at any jobs count.
    util::metrics::Registry serial, parallel;
    corpus::BuiltApp b1 = corpus::buildNamedApp("K-9 Mail");
    corpus::BuiltApp b4 = corpus::buildNamedApp("K-9 Mail");
    SierraDetector d1(*b1.app);
    SierraDetector d4(*b4.app);
    SierraOptions o1, o4;
    o1.jobs = 1;
    o1.metrics = &serial;
    o4.jobs = 4;
    o4.metrics = &parallel;
    AppReport r1 = d1.analyze(o1);
    AppReport r4 = d4.analyze(o4);

    EXPECT_EQ(formatReport(r1, 50, false), formatReport(r4, 50, false));
    // Peak RSS is a process-wide measurement, not a deterministic
    // count (see docs/OBSERVABILITY.md); drop it before comparing.
    auto dropRss = [](std::vector<std::pair<std::string, int64_t>> cs) {
        std::erase_if(cs, [](const auto &c) {
            return c.first == "mem.peak_rss_bytes";
        });
        return cs;
    };
    EXPECT_EQ(dropRss(serial.counters()), dropRss(parallel.counters()));
    ASSERT_EQ(r1.useAfterDestroy.size(), r4.useAfterDestroy.size());
    for (size_t i = 0; i < r1.useAfterDestroy.size(); ++i)
        EXPECT_EQ(r1.useAfterDestroy[i].toString(),
                  r4.useAfterDestroy[i].toString());
}

} // namespace
} // namespace sierra::analysis
