/** @file Tests for backward symbolic execution and refutation (Fig. 8). */

#include <gtest/gtest.h>

#include "corpus/patterns.hh"
#include "hb/rules.hh"
#include "symbolic/refuter.hh"
#include "test_helpers.hh"

namespace sierra::symbolic {
namespace {

using test::makePipeline;

struct Analyzed {
    test::Pipeline pipeline;
    std::unique_ptr<analysis::PointsToResult> pta;
    std::unique_ptr<hb::Shbg> shbg;
    std::vector<race::Access> accesses;
    std::vector<race::RacyPair> pairs;
};

template <typename Fill>
Analyzed
analyze(const std::string &name, Fill fill)
{
    Analyzed a{makePipeline(name, fill), nullptr, nullptr, {}, {}};
    analysis::PointsToAnalysis pta(
        a.pipeline.app(), a.pipeline.detector->plans()[0], {});
    a.pta = pta.run();
    hb::HbBuilder builder(*a.pta, a.pipeline.detector->plans()[0],
                          a.pipeline.app(), {});
    a.shbg = builder.build();
    a.accesses = race::extractAccesses(*a.pta);
    a.pairs =
        race::findRacyPairs(*a.pta, *a.shbg, a.accesses, {});
    return a;
}

const race::RacyPair *
pairOn(const Analyzed &a, const std::string &key_needle)
{
    for (const auto &p : a.pairs) {
        if (p.loc.key.find(key_needle) != std::string::npos)
            return &p;
    }
    return nullptr;
}

TEST(Executor, Fig8GuardedWriteIsOrderRefuted)
{
    auto a = analyze("exec-fig8", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("SudokuActivity");
        corpus::addGuardedTimer(f, act);
    });
    const race::RacyPair *p = pairOn(a, "mAccumTime");
    ASSERT_NE(p, nullptr) << "candidate exists before refutation";
    ASSERT_FALSE(p->actionPairs.empty());

    BackwardExecutor exec(*a.pta, {});
    bool any_infeasible = false;
    for (const auto &e : p->actionPairs) {
        QueryVerdict d1 = exec.orderFeasible(a.accesses[e.access1],
                                             e.action1, e.action2);
        QueryVerdict d2 = exec.orderFeasible(a.accesses[e.access2],
                                             e.action2, e.action1);
        any_infeasible |= d1 == QueryVerdict::Infeasible ||
                          d2 == QueryVerdict::Infeasible;
    }
    EXPECT_TRUE(any_infeasible)
        << "the mIsRunning strong update refutes one ordering";
    EXPECT_GT(exec.stats().queries, 0);
}

TEST(Executor, GuardVariableRaceItselfSurvives)
{
    auto a = analyze("exec-guardvar", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("GvActivity");
        corpus::addGuardedTimer(f, act);
    });
    // read mIsRunning in run() vs write in stop(): both orders feasible.
    const race::RacyPair *target = nullptr;
    for (const auto &p : a.pairs) {
        if (p.loc.key.find("mIsRunning") == std::string::npos)
            continue;
        const race::Access &x = a.accesses[p.access1];
        const race::Access &y = a.accesses[p.access2];
        if (x.isWrite != y.isWrite) { // the read/write pair
            target = &p;
            break;
        }
    }
    ASSERT_NE(target, nullptr);

    BackwardExecutor exec(*a.pta, {});
    bool survives = false;
    for (const auto &e : target->actionPairs) {
        QueryVerdict d1 = exec.orderFeasible(a.accesses[e.access1],
                                             e.action1, e.action2);
        QueryVerdict d2 = exec.orderFeasible(a.accesses[e.access2],
                                             e.action2, e.action1);
        survives |= d1 != QueryVerdict::Infeasible &&
                    d2 != QueryVerdict::Infeasible;
    }
    EXPECT_TRUE(survives);
}

TEST(Executor, MessageWhatRefutesWrongBranch)
{
    auto a = analyze("exec-what", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("WhatActivity");
        corpus::addMessageGuard(f, act);
    });
    // The flagA write is guarded by what != 2; under the what=2 message
    // action it is unreachable.
    const race::Access *flag_a_write = nullptr;
    int what2_action = -1;
    for (const auto &acc : a.accesses) {
        if (acc.isWrite && acc.fieldName == "flagA")
            flag_a_write = &acc;
    }
    for (const auto &act : a.pta->actions.all()) {
        if (act.messageWhat == 2)
            what2_action = act.id;
    }
    ASSERT_NE(flag_a_write, nullptr);
    ASSERT_GE(what2_action, 0);

    // Find the flagA access instance executable under the what=2
    // action.
    const race::Access *under_what2 = nullptr;
    for (const auto &acc : a.accesses) {
        if (acc.isWrite && acc.fieldName == "flagA" &&
            a.pta->cg.actionsOf(acc.node).count(what2_action)) {
            under_what2 = &acc;
        }
    }
    ASSERT_NE(under_what2, nullptr);

    BackwardExecutor exec(*a.pta, {});
    // Any second action will do: pick the harness-root-created gui one.
    int other = test::findAction(*a.pta, "onSendOne");
    ASSERT_GE(other, 0);
    EXPECT_EQ(exec.orderFeasible(*under_what2, what2_action, other),
              QueryVerdict::Infeasible)
        << "on-demand constant propagation: what=2 cannot take the "
           "what!=2 branch";
}

TEST(Executor, QueryMemoizationHits)
{
    auto a = analyze("exec-memo", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("MemoActivity");
        corpus::addGuardedTimer(f, act);
    });
    const race::RacyPair *p = pairOn(a, "mAccumTime");
    ASSERT_NE(p, nullptr);
    ASSERT_FALSE(p->actionPairs.empty());
    const auto &e = p->actionPairs[0];

    BackwardExecutor exec(*a.pta, {});
    QueryVerdict first = exec.orderFeasible(a.accesses[e.access1],
                                            e.action1, e.action2);
    int64_t hits_before = exec.stats().cacheHits;
    QueryVerdict second = exec.orderFeasible(a.accesses[e.access1],
                                             e.action1, e.action2);
    EXPECT_EQ(first, second);
    EXPECT_GT(exec.stats().cacheHits, hits_before);
}

TEST(Executor, BudgetExhaustionReportsBudget)
{
    auto a = analyze("exec-budget", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("BgtActivity");
        corpus::addGuardedTimer(f, act);
    });
    const race::RacyPair *p = pairOn(a, "mIsRunning");
    ASSERT_NE(p, nullptr);
    const auto &e = p->actionPairs[0];

    ExecutorOptions tiny;
    tiny.maxSteps = 1;
    BackwardExecutor exec(*a.pta, tiny);
    EXPECT_EQ(exec.orderFeasible(a.accesses[e.access1], e.action1,
                                 e.action2),
              QueryVerdict::Budget);
    EXPECT_GT(exec.stats().budgetExhausted, 0);
}

TEST(Refuter, MarksTrapsAndKeepsTrueRaces)
{
    auto a = analyze("refuter", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("RefActivity");
        corpus::addGuardedTimer(f, act);
        corpus::addThreadRace(f, act);
    });
    RefutationStats stats =
        refuteRaces(*a.pta, a.accesses, a.pairs, {});
    EXPECT_EQ(stats.refuted + stats.survived,
              static_cast<int>(a.pairs.size()));
    EXPECT_GT(stats.refuted, 0);
    EXPECT_GT(stats.survived, 0);

    for (const auto &p : a.pairs) {
        if (p.loc.key.find("mAccumTime") != std::string::npos) {
            EXPECT_TRUE(p.refuted) << p.loc.key;
        }
        if (p.loc.key.find("result$") != std::string::npos) {
            EXPECT_FALSE(p.refuted) << p.loc.key;
        }
    }
}

TEST(Refuter, VerdictNames)
{
    EXPECT_STREQ(queryVerdictName(QueryVerdict::Feasible), "feasible");
    EXPECT_STREQ(queryVerdictName(QueryVerdict::Infeasible),
                 "infeasible");
    EXPECT_STREQ(queryVerdictName(QueryVerdict::Budget), "budget");
}

} // namespace
} // namespace sierra::symbolic
