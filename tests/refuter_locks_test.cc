/** @file Tests for lock-set race refutation wired into the pipeline. */

#include <gtest/gtest.h>

#include "corpus/named_apps.hh"
#include "corpus/patterns.hh"
#include "framework/known_api.hh"
#include "test_helpers.hh"

namespace sierra {
namespace {

using air::MethodBuilder;
using air::Type;
using corpus::fieldRef;
namespace names = framework::names;
using test::makePipeline;
using test::reportsKey;

TEST(RefuterLocks, LockGuardedRefutedOnlyWithLockset)
{
    auto p = makePipeline("locks-guarded", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("GuardedActivity");
        corpus::addLockGuarded(f, act);
        corpus::addThreadRace(f, act);
    });

    std::string guarded_key;
    std::string true_key;
    for (const auto &seed : p.built.truth.seeded) {
        if (seed.note.find("lockGuarded") != std::string::npos)
            guarded_key = seed.fieldKey;
        else
            true_key = seed.fieldKey;
    }
    ASSERT_FALSE(guarded_key.empty());
    ASSERT_FALSE(true_key.empty());

    AppReport with = p.detector->analyze({});
    EXPECT_FALSE(reportsKey(with, guarded_key))
        << "both sides hold the field monitor";
    EXPECT_TRUE(reportsKey(with, true_key))
        << "the unguarded race still surfaces";
    EXPECT_GT(with.locksetRefuted, 0);

    SierraOptions off;
    off.locksetRefutation = false;
    AppReport without = p.detector->analyze(off);
    EXPECT_TRUE(reportsKey(without, guarded_key))
        << "without lock sets the guarded pair is a false positive";
    EXPECT_EQ(without.locksetRefuted, 0);
}

TEST(RefuterLocks, ProvenanceRecordedOnPairs)
{
    auto p = makePipeline("locks-provenance", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("ProvActivity");
        corpus::addLockGuarded(f, act);
    });
    HarnessAnalysis ha = p.detector->analyzeActivity(
        p.app().manifest().activities[0], {});

    bool saw_lockset = false;
    for (const auto &pair : ha.pairs) {
        if (pair.refutedBy == race::RefutedBy::Lockset) {
            saw_lockset = true;
            EXPECT_TRUE(pair.refuted);
            EXPECT_NE(pair.toString(*ha.pta, ha.accesses)
                          .find("refuted: lockset"),
                      std::string::npos);
        }
    }
    EXPECT_TRUE(saw_lockset);
    EXPECT_STREQ(race::refutedByName(race::RefutedBy::Lockset),
                 "lockset");
    EXPECT_STREQ(race::refutedByName(race::RefutedBy::Symbolic),
                 "symbolic");
}

TEST(RefuterLocks, SameLooperPairsAreExempt)
{
    // Two GUI callbacks synchronize on the same lock, but both run on
    // the main looper: their race is event-order nondeterminism, which
    // monitors cannot rule out. The lock-set stage must not refute.
    auto p = makePipeline("locks-looper", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("LooperActivity");
        act.addField("lock", Type::object(names::object));
        act.addField("val", Type::object(names::object));
        act.on("onCreate", [&](MethodBuilder &b) {
            int rl = b.newReg();
            b.newObject(rl, names::object);
            b.putField(b.thisReg(), fieldRef("LooperActivity", "lock"),
                       rl);
        });
        for (int i = 0; i < 2; ++i) {
            framework::Widget w;
            w.id = f.nextViewId();
            w.name = "btn" + std::to_string(i);
            w.widgetClass = names::button;
            w.xmlOnClick = "onTap" + std::to_string(i);
            act.layout().addWidget(w);
        }
        auto body = [&](MethodBuilder &b) {
            int rl = b.newReg();
            int rv = b.newReg();
            b.getField(rl, b.thisReg(),
                       fieldRef("LooperActivity", "lock"));
            b.monitorEnter(rl);
            b.newObject(rv, names::object);
            b.putField(b.thisReg(), fieldRef("LooperActivity", "val"),
                       rv);
            b.monitorExit(rl);
        };
        for (int i = 0; i < 2; ++i) {
            air::Method *m = act.klass()->addMethod(
                "onTap" + std::to_string(i),
                {Type::object(names::view)}, Type::voidTy(), false);
            MethodBuilder b(m);
            body(b);
            b.finish();
        }
    });

    AppReport report = p.detector->analyze({});
    bool saw_val_pair = false;
    for (const auto &ha : report.perHarness) {
        for (const auto &pair : ha.pairs) {
            if (pair.loc.key != "LooperActivity.val")
                continue;
            saw_val_pair = true;
            EXPECT_NE(pair.refutedBy, race::RefutedBy::Lockset)
                << "same-looper pairs are outside the lock-set stage";
        }
    }
    EXPECT_TRUE(saw_val_pair) << "the two GUI writes form a racy pair";
    EXPECT_EQ(report.locksetRefuted, 0);
}

/** Per-app preservation: disabling the new stages never changes the
 *  set of missed true races (both must be zero). */
class LocksPreservation : public ::testing::TestWithParam<int>
{
};

TEST_P(LocksPreservation, TrueRacesSurviveWithAndWithout)
{
    const auto &spec = corpus::namedAppSpecs()[GetParam()];
    corpus::BuiltApp built = corpus::buildNamedApp(spec);
    SierraDetector detector(*built.app);

    AppReport with = detector.analyze({});
    corpus::Score s_with = corpus::scoreReport(with, built.truth);
    EXPECT_EQ(s_with.missedTrueKeys, 0) << spec.name;

    SierraOptions off;
    off.escapeFilter = false;
    off.locksetRefutation = false;
    AppReport without = detector.analyze(off);
    corpus::Score s_without = corpus::scoreReport(without, built.truth);
    EXPECT_EQ(s_without.missedTrueKeys, 0) << spec.name;

    // The stages only ever remove reports, never add them.
    EXPECT_LE(with.afterRefutation, without.afterRefutation)
        << spec.name;
    EXPECT_EQ(s_with.truePositives, s_without.truePositives)
        << spec.name << ": pruning must only drop non-true reports";
}

INSTANTIATE_TEST_SUITE_P(
    Named, LocksPreservation, ::testing::Range(0, 20),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string n = corpus::namedAppSpecs()[info.param].name;
        for (char &c : n) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

} // namespace
} // namespace sierra
