/** @file Tests for the framework model: known APIs, lifecycle, layout. */

#include <gtest/gtest.h>

#include "air/builder.hh"
#include "framework/app.hh"
#include "framework/known_api.hh"
#include "framework/lifecycle.hh"

namespace sierra::framework {
namespace {

using air::Type;

class KnownApiTest : public ::testing::Test
{
  protected:
    air::Module mod;

    void
    SetUp() override
    {
        installFrameworkModel(mod);
    }
};

TEST_F(KnownApiTest, InstallIsIdempotent)
{
    size_t before = mod.numClasses();
    installFrameworkModel(mod);
    EXPECT_EQ(mod.numClasses(), before);
}

TEST_F(KnownApiTest, DirectFrameworkCalls)
{
    KnownApis apis(mod);
    EXPECT_EQ(apis.classify({names::handler, "post", 2}),
              ApiKind::HandlerPost);
    EXPECT_EQ(apis.classify({names::handler, "sendEmptyMessage", 2}),
              ApiKind::HandlerSendMessage);
    EXPECT_EQ(apis.classify({names::thread, "start", 1}),
              ApiKind::ThreadStart);
    EXPECT_EQ(apis.classify({names::activity, "findViewById", 2}),
              ApiKind::FindViewById);
    EXPECT_EQ(apis.classify({names::view, "setOnClickListener", 2}),
              ApiKind::SetListener);
    EXPECT_EQ(apis.classify({names::looper, "getMainLooper", 0}),
              ApiKind::LooperMain);
    EXPECT_EQ(apis.classify({names::activity, "registerReceiver", 3}),
              ApiKind::RegisterReceiver);
    EXPECT_EQ(apis.classify({"NoSuchClass", "noSuchMethod", 0}),
              ApiKind::None);
}

TEST_F(KnownApiTest, SubclassCallsResolveToFramework)
{
    // class MyTask extends AsyncTask (no overrides of execute).
    mod.addClass("MyTask", names::asyncTask);
    KnownApis apis(mod);
    EXPECT_EQ(apis.classify({"MyTask", "execute", 1}),
              ApiKind::AsyncTaskExecute);
    EXPECT_EQ(apis.classify({"MyTask", "<init>", 1}), ApiKind::None)
        << "constructors resolve to AsyncTask.<init>, which is not a "
           "concurrency API";
}

TEST_F(KnownApiTest, UserOverrideWins)
{
    // A user subclass that defines its own <init> must not be treated
    // as the framework Object/Thread constructor intrinsic.
    air::Klass *k = mod.addClass("MyThread", names::thread);
    air::Method *init =
        k->addMethod("<init>", {Type::object("Other")},
                     Type::voidTy(), false);
    air::MethodBuilder b(init);
    b.finish();
    KnownApis apis(mod);
    EXPECT_EQ(apis.classify({"MyThread", "<init>", 2}), ApiKind::None);
    // But start() still resolves up to Thread.start.
    EXPECT_EQ(apis.classify({"MyThread", "start", 1}),
              ApiKind::ThreadStart);
}

TEST_F(KnownApiTest, ListenerCallbacks)
{
    EXPECT_EQ(KnownApis::listenerCallback("setOnClickListener"),
              "onClick");
    EXPECT_EQ(KnownApis::listenerCallback("setOnScrollListener"),
              "onScroll");
    EXPECT_EQ(KnownApis::listenerCallback("setOnItemClickListener"),
              "onItemClick");
    EXPECT_EQ(KnownApis::listenerCallback("setAdapter"), "");
}

TEST_F(KnownApiTest, SubtypeQueries)
{
    mod.addClass("MyRecv", names::receiver);
    KnownApis apis(mod);
    EXPECT_TRUE(apis.isSubclassOf("MyRecv", names::receiver));
    EXPECT_TRUE(apis.isSubclassOf("MyRecv", names::object));
    EXPECT_FALSE(apis.isSubclassOf("MyRecv", names::activity));
    EXPECT_TRUE(
        apis.isSubclassOf(names::button, names::view));
}

TEST(LifecycleModel, TransitionsAndCallbacks)
{
    LifecycleModel model;
    EXPECT_TRUE(model.isLifecycleCallback("onCreate"));
    EXPECT_TRUE(model.isLifecycleCallback("onRestart"));
    EXPECT_FALSE(model.isLifecycleCallback("onClick"));

    auto from_paused =
        model.transitionsFrom(LifecycleState::Paused);
    ASSERT_EQ(from_paused.size(), 2u);
    // Paused can resume or stop.
    std::set<std::string> cbs;
    for (const auto &t : from_paused)
        cbs.insert(t.callback);
    EXPECT_TRUE(cbs.count("onResume"));
    EXPECT_TRUE(cbs.count("onStop"));
}

TEST(LifecycleModel, Sequences)
{
    auto entry = LifecycleModel::entrySequence();
    ASSERT_EQ(entry.size(), 3u);
    EXPECT_EQ(entry[0], "onCreate");
    EXPECT_EQ(entry[2], "onResume");
    auto exit = LifecycleModel::exitSequence();
    EXPECT_EQ(exit.back(), "onDestroy");
    EXPECT_EQ(LifecycleModel::cyclePairs().size(), 2u);
}

TEST(Layout, Lookup)
{
    Layout layout("MainActivity");
    layout.addWidget({10, "btnA", names::button, "onA", {}});
    layout.addWidget({11, "btnB", names::button, "onB", {10}});
    ASSERT_NE(layout.byId(10), nullptr);
    EXPECT_EQ(layout.byId(10)->name, "btnA");
    EXPECT_EQ(layout.byId(99), nullptr);
    ASSERT_NE(layout.byName("btnB"), nullptr);
    EXPECT_EQ(layout.byName("btnB")->enabledAfter.size(), 1u);
    EXPECT_EQ(layout.byName("nope"), nullptr);
}

TEST(AppModel, CodeSizeExcludesFrameworkAndSynthetic)
{
    App app("demo");
    installFrameworkModel(app.module());
    size_t empty_size = app.codeSize();
    EXPECT_EQ(empty_size, 0u) << "framework classes don't count";

    app.module().addClass("UserClass", names::object);
    EXPECT_GT(app.codeSize(), 0u);

    air::Klass *synth = app.module().addClass("Harness$X", "");
    synth->setSynthetic(true);
    size_t with_user = app.codeSize();
    app.module().getClass("UserClass");
    EXPECT_EQ(with_user, app.codeSize());
}

TEST(AppModel, ManifestHelpers)
{
    Manifest m;
    m.activities = {"A", "B"};
    EXPECT_TRUE(m.hasActivity("A"));
    EXPECT_FALSE(m.hasActivity("C"));
}

} // namespace
} // namespace sierra::framework
