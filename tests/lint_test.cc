/** @file Tests for the AIR lint driver (use-before-def, unreachable
 *  blocks, dead stores) and issue severity/dedup plumbing. */

#include <gtest/gtest.h>

#include "air/parser.hh"
#include "analysis/lint.hh"

namespace sierra::analysis {
namespace {

using air::Severity;
using air::VerifyIssue;

std::unique_ptr<air::Module>
parse(const std::string &text)
{
    auto r = air::parseModule(text);
    EXPECT_TRUE(r.ok()) << r.status.error;
    return std::move(r.module);
}

bool
hasIssue(const std::vector<VerifyIssue> &issues,
         const std::string &fragment, Severity severity)
{
    for (const auto &i : issues) {
        if (i.severity == severity &&
            i.message.find(fragment) != std::string::npos) {
            return true;
        }
    }
    return false;
}

TEST(Lint, CleanMethodHasNoIssues)
{
    auto mod = parse(R"(
    class T {
        method f(p0: int): int regs=4 {
            @0: r2 = const 1
            @1: r3 = add r1, r2
            @2: return r3
        }
    })");
    EXPECT_TRUE(lintModule(*mod).empty());
}

TEST(Lint, UseBeforeDefIsError)
{
    auto mod = parse(R"(
    class T {
        method f(): int regs=4 {
            @0: r2 = add r1, r1
            @1: return r2
        }
    })");
    auto issues = lintModule(*mod);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_TRUE(hasIssue(issues, "r1 may be used before assignment",
                         Severity::Error));
    EXPECT_EQ(issues[0].where, "T.f@0");
}

TEST(Lint, MaybeUnassignedOnOnePathIsError)
{
    auto mod = parse(R"(
    class T {
        method f(p0: int): int regs=4 {
            @0: ifz r1 eq goto @2
            @1: r2 = const 1
            @2: return r2
        }
    })");
    auto issues = lintModule(*mod);
    EXPECT_TRUE(hasIssue(issues, "r2 may be used before assignment",
                         Severity::Error));
}

TEST(Lint, AssignedOnBothPathsIsClean)
{
    auto mod = parse(R"(
    class T {
        method f(p0: int): int regs=4 {
            @0: ifz r1 eq goto @3
            @1: r2 = const 1
            @2: goto @4
            @3: r2 = const 2
            @4: return r2
        }
    })");
    EXPECT_TRUE(lintModule(*mod).empty());
}

TEST(Lint, UnreachableBlockIsWarning)
{
    auto mod = parse(R"(
    class T {
        method f(): void regs=4 {
            @0: return-void
            @1: r1 = const 1
            @2: return-void
        }
    })");
    LintOptions opts;
    opts.deadStores = false; // isolate the unreachable diagnostic
    auto issues = lintModule(*mod, opts);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_TRUE(
        hasIssue(issues, "unreachable basic block", Severity::Warning));
    EXPECT_EQ(issues[0].where, "T.f@1");
}

TEST(Lint, DeadStoreIsWarning)
{
    auto mod = parse(R"(
    class T {
        method f(): int regs=4 {
            @0: r1 = const 1
            @1: r1 = const 2
            @2: return r1
        }
    })");
    auto issues = lintModule(*mod);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_TRUE(hasIssue(issues, "dead store to r1", Severity::Warning));
    EXPECT_EQ(issues[0].where, "T.f@0");
}

TEST(Lint, StoreReadOnlyOnOnePathIsNotDead)
{
    auto mod = parse(R"(
    class T {
        method f(p0: int): int regs=4 {
            @0: r2 = const 7
            @1: ifz r1 eq goto @3
            @2: return r2
            @3: r3 = const 0
            @4: return r3
        }
    })");
    auto issues = lintModule(*mod);
    // r2 is read on the fallthrough path: live. r3 is read too.
    EXPECT_TRUE(issues.empty()) << issues[0].toString();
}

TEST(Lint, CallsAndStoresAreNotDeadStoreCandidates)
{
    auto mod = parse(R"(
    class T {
        method g(): int regs=2 {
            @0: r1 = const 1
            @1: return r1
        }
        method f(): void regs=4 {
            @0: r1 = invoke-virtual T.g(r0)
            @1: return-void
        }
    })");
    // The call result is unread, but calls may have effects: no lint.
    EXPECT_TRUE(lintModule(*mod).empty());
}

TEST(Lint, OptionsDisableChecks)
{
    auto mod = parse(R"(
    class T {
        method f(): int regs=4 {
            @0: r1 = const 1
            @1: r1 = const 2
            @2: return r1
        }
    })");
    LintOptions opts;
    opts.deadStores = false;
    EXPECT_TRUE(lintModule(*mod, opts).empty());
}

TEST(Lint, RepeatedDiagnosticsAreDeduplicated)
{
    // The same use-before-def register read three times in one method
    // collapses to one issue with a count annotation.
    auto mod = parse(R"(
    class T {
        method f(): int regs=4 {
            @0: r2 = add r1, r1
            @1: r2 = add r1, r1
            @2: r2 = add r1, r1
            @3: return r2
        }
    })");
    LintOptions opts;
    opts.deadStores = false;
    auto issues = lintModule(*mod, opts);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_NE(issues[0].message.find("(x6)"), std::string::npos)
        << issues[0].message;
}

TEST(Lint, PostUnderMonitorIsWarning)
{
    auto mod = parse(R"(
    class T {
        method f(p0: java.lang.Object, p1: java.lang.Runnable): void regs=4 {
            @0: monitor-enter r1
            @1: invoke-virtual android.os.Handler.post(r1, r2)
            @2: monitor-exit r1
            @3: return-void
        }
    })");
    auto issues = lintModule(*mod);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_TRUE(hasIssue(issues, "called with a monitor held",
                         Severity::Warning));
    EXPECT_EQ(issues[0].where, "T.f@1");
}

TEST(Lint, PostOutsideMonitorIsClean)
{
    auto mod = parse(R"(
    class T {
        method f(p0: java.lang.Object, p1: java.lang.Runnable): void regs=4 {
            @0: monitor-enter r1
            @1: monitor-exit r1
            @2: invoke-virtual android.os.Handler.post(r1, r2)
            @3: return-void
        }
    })");
    EXPECT_TRUE(lintModule(*mod).empty());
}

TEST(Lint, SendMessageUnderMonitorIsWarning)
{
    auto mod = parse(R"(
    class T {
        method f(p0: java.lang.Object, p1: java.lang.Object): void regs=4 {
            @0: monitor-enter r1
            @1: invoke-virtual android.os.Handler.sendMessage(r1, r2)
            @2: monitor-exit r1
            @3: return-void
        }
    })");
    auto issues = lintModule(*mod);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_TRUE(hasIssue(issues, "called with a monitor held",
                         Severity::Warning));
}

TEST(Lint, NonPostCallUnderMonitorIsClean)
{
    auto mod = parse(R"(
    class T {
        method g(): void regs=2 {
            @0: return-void
        }
        method f(p0: java.lang.Object): void regs=4 {
            @0: monitor-enter r1
            @1: invoke-virtual T.g(r0)
            @2: monitor-exit r1
            @3: return-void
        }
    })");
    EXPECT_TRUE(lintModule(*mod).empty());
}

TEST(Lint, LockHeldAtPostCanBeDisabled)
{
    auto mod = parse(R"(
    class T {
        method f(p0: java.lang.Object, p1: java.lang.Runnable): void regs=4 {
            @0: monitor-enter r1
            @1: invoke-virtual android.os.Handler.post(r1, r2)
            @2: monitor-exit r1
            @3: return-void
        }
    })");
    LintOptions opts;
    opts.lockHeldAtPost = false;
    EXPECT_TRUE(lintModule(*mod, opts).empty());
}

TEST(Lint, UnreachableCodeProducesNoUseOrStoreNoise)
{
    // Dead code reading an unassigned register: flagged unreachable
    // only, not also use-before-def/dead-store.
    auto mod = parse(R"(
    class T {
        method f(): void regs=4 {
            @0: return-void
            @1: r2 = add r1, r1
            @2: return-void
        }
    })");
    auto issues = lintModule(*mod);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].severity, Severity::Warning);
}

TEST(Lint, LeakedReceiverRegistrationIsWarning)
{
    auto mod = parse(R"(
    class A {
        field recv: java.lang.Object
        method onCreate(): void regs=4 {
            @0: r1 = new A
            @1: putfield r0.A.recv = r1
            @2: r2 = const "org.example.ACTION"
            @3: invoke-virtual android.app.Activity.registerReceiver(r0, r1, r2)
            @4: return-void
        }
    })");
    auto issues = lintModule(*mod);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_TRUE(hasIssue(issues,
                         "not unregistered in any teardown callback",
                         Severity::Warning));
    EXPECT_EQ(issues[0].where, "A.onCreate@3");
}

TEST(Lint, UnregisteredInTeardownIsClean)
{
    auto mod = parse(R"(
    class A {
        field recv: java.lang.Object
        method onCreate(): void regs=4 {
            @0: r1 = new A
            @1: putfield r0.A.recv = r1
            @2: r2 = const "org.example.ACTION"
            @3: invoke-virtual android.app.Activity.registerReceiver(r0, r1, r2)
            @4: return-void
        }
        method onDestroy(): void regs=3 {
            @0: r1 = getfield r0.A.recv
            @1: invoke-virtual android.app.Activity.unregisterReceiver(r0, r1)
            @2: return-void
        }
    })");
    EXPECT_TRUE(lintModule(*mod).empty());
}

TEST(Lint, UnregisterOnOnePathOnlyIsStillLeaked)
{
    // The unregister must happen on *every* path through a teardown
    // callback; a branch that skips it keeps the warning.
    auto mod = parse(R"(
    class A {
        field recv: java.lang.Object
        field flag: int
        method onCreate(): void regs=4 {
            @0: r1 = new A
            @1: putfield r0.A.recv = r1
            @2: r2 = const "org.example.ACTION"
            @3: invoke-virtual android.app.Activity.registerReceiver(r0, r1, r2)
            @4: return-void
        }
        method onDestroy(): void regs=4 {
            @0: r2 = getfield r0.A.flag
            @1: ifz r2 eq goto @4
            @2: r1 = getfield r0.A.recv
            @3: invoke-virtual android.app.Activity.unregisterReceiver(r0, r1)
            @4: return-void
        }
    })");
    auto issues = lintModule(*mod);
    EXPECT_TRUE(hasIssue(issues,
                         "not unregistered in any teardown callback",
                         Severity::Warning));
}

TEST(Lint, ReceiverNeverStoredIsWarning)
{
    auto mod = parse(R"(
    class A {
        method onCreate(): void regs=4 {
            @0: r1 = new A
            @1: r2 = const "org.example.ACTION"
            @2: invoke-virtual android.app.Activity.registerReceiver(r0, r1, r2)
            @3: return-void
        }
    })");
    auto issues = lintModule(*mod);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_TRUE(hasIssue(issues, "never stored in a field",
                         Severity::Warning));
}

TEST(Lint, ListenerOnFieldHeldViewWithoutClearIsWarning)
{
    auto mod = parse(R"(
    class A {
        field pane: java.lang.Object
        field lsn: java.lang.Object
        method onCreate(): void regs=4 {
            @0: r1 = getfield r0.A.pane
            @1: r2 = getfield r0.A.lsn
            @2: invoke-virtual android.view.View.setOnClickListener(r1, r2)
            @3: return-void
        }
    })");
    auto issues = lintModule(*mod);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_TRUE(hasIssue(issues,
                         "not cleared in any teardown callback",
                         Severity::Warning));
    EXPECT_EQ(issues[0].where, "A.onCreate@2");
}

TEST(Lint, ListenerClearedInTeardownIsClean)
{
    auto mod = parse(R"(
    class A {
        field pane: java.lang.Object
        field lsn: java.lang.Object
        method onCreate(): void regs=4 {
            @0: r1 = getfield r0.A.pane
            @1: r2 = getfield r0.A.lsn
            @2: invoke-virtual android.view.View.setOnClickListener(r1, r2)
            @3: return-void
        }
        method onPause(): void regs=4 {
            @0: r1 = getfield r0.A.pane
            @1: r2 = null
            @2: invoke-virtual android.view.View.setOnClickListener(r1, r2)
            @3: return-void
        }
    })");
    EXPECT_TRUE(lintModule(*mod).empty());
}

TEST(Lint, ListenerOnLocalViewIsClean)
{
    // findViewById results die with the activity's view tree; setting a
    // listener on one is the universal idiom, not a leak.
    auto mod = parse(R"(
    class A {
        field lsn: java.lang.Object
        method onCreate(): void regs=5 {
            @0: r1 = const 7
            @1: r2 = invoke-virtual android.app.Activity.findViewById(r0, r1)
            @2: r3 = getfield r0.A.lsn
            @3: invoke-virtual android.view.View.setOnClickListener(r2, r3)
            @4: return-void
        }
    })");
    EXPECT_TRUE(lintModule(*mod).empty());
}

TEST(Lint, LeakedRegistrationCanBeDisabled)
{
    auto mod = parse(R"(
    class A {
        field recv: java.lang.Object
        method onCreate(): void regs=4 {
            @0: r1 = new A
            @1: putfield r0.A.recv = r1
            @2: r2 = const "org.example.ACTION"
            @3: invoke-virtual android.app.Activity.registerReceiver(r0, r1, r2)
            @4: return-void
        }
    })");
    LintOptions opts;
    opts.leakedRegistration = false;
    EXPECT_TRUE(lintModule(*mod, opts).empty());
}

} // namespace
} // namespace sierra::analysis
