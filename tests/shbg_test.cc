/** @file Tests for the SHBG data structure (closure maintenance). */

#include <gtest/gtest.h>

#include "hb/shbg.hh"

namespace sierra::hb {
namespace {

TEST(Shbg, BasicEdges)
{
    Shbg g(4);
    EXPECT_TRUE(g.unordered(0, 1));
    g.addEdge(0, 1, HbRule::Invocation);
    EXPECT_TRUE(g.reaches(0, 1));
    EXPECT_FALSE(g.reaches(1, 0));
    EXPECT_FALSE(g.unordered(0, 1));
    EXPECT_EQ(g.numClosurePairs(), 1);
}

TEST(Shbg, TransitiveClosureOnInsert)
{
    Shbg g(5);
    g.addEdge(0, 1, HbRule::Invocation);
    g.addEdge(1, 2, HbRule::Invocation);
    EXPECT_TRUE(g.reaches(0, 2)) << "closure through 1";
    g.addEdge(3, 0, HbRule::Lifecycle);
    EXPECT_TRUE(g.reaches(3, 2)) << "prefix extended through the cone";
    EXPECT_EQ(g.numClosurePairs(), 3 + 3); // 0<1,0<2,1<2,3<0,3<1,3<2
}

TEST(Shbg, ReflexivityExcluded)
{
    Shbg g(3);
    g.addEdge(0, 0, HbRule::Invocation);
    EXPECT_FALSE(g.reaches(0, 0));
    EXPECT_EQ(g.numClosurePairs(), 0);
}

TEST(Shbg, CycleSuppressed)
{
    Shbg g(3);
    g.addEdge(0, 1, HbRule::Invocation);
    g.addEdge(1, 2, HbRule::Invocation);
    // 2 -> 0 would close a cycle; the edge is dropped with a warning.
    g.addEdge(2, 0, HbRule::GuiOrder);
    EXPECT_FALSE(g.reaches(2, 0));
    EXPECT_TRUE(g.reaches(0, 2));
}

TEST(Shbg, OrderedFraction)
{
    Shbg g(4); // max pairs = 6
    g.addEdge(0, 1, HbRule::Invocation);
    g.addEdge(2, 3, HbRule::Invocation);
    EXPECT_DOUBLE_EQ(g.orderedFraction(), 2.0 / 6.0);
}

TEST(Shbg, EdgeProvenance)
{
    Shbg g(4);
    g.addEdge(0, 1, HbRule::Invocation);
    g.addEdge(1, 2, HbRule::AsyncChain);
    g.addEdge(0, 3, HbRule::GuiOrder);
    EXPECT_EQ(g.numEdgesByRule(HbRule::Invocation), 1);
    EXPECT_EQ(g.numEdgesByRule(HbRule::AsyncChain), 1);
    EXPECT_EQ(g.numEdgesByRule(HbRule::GuiOrder), 1);
    EXPECT_EQ(g.numEdgesByRule(HbRule::InterProcDom), 0);
    EXPECT_EQ(g.directEdges().size(), 3u);
    EXPECT_NE(g.toString().find("async-chain"), std::string::npos);
}

TEST(Shbg, DenseClosureStress)
{
    const int n = 130; // exercises multi-word bitset rows
    Shbg g(n);
    for (int i = 0; i + 1 < n; ++i)
        g.addEdge(i, i + 1, HbRule::Invocation);
    EXPECT_TRUE(g.reaches(0, n - 1));
    EXPECT_EQ(g.numClosurePairs(),
              static_cast<int64_t>(n) * (n - 1) / 2);
    EXPECT_DOUBLE_EQ(g.orderedFraction(), 1.0);
}

} // namespace
} // namespace sierra::hb
