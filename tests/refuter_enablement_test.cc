/** @file Tests for callback-enablement refutation wired into the
 *  pipeline: registration typestate + lifecycle reachability. */

#include <set>

#include <gtest/gtest.h>

#include "corpus/named_apps.hh"
#include "corpus/patterns.hh"
#include "test_helpers.hh"

namespace sierra {
namespace {

using test::makePipeline;
using test::reportsKey;

/** Split a pipeline's seeded truth into the pattern's trap key and the
 *  true-race key by note substring. */
void
splitKeys(const test::Pipeline &p, const std::string &pattern,
          std::string &trap_key, std::string &true_key)
{
    for (const auto &seed : p.built.truth.seeded) {
        if (seed.note.find(pattern) != std::string::npos &&
            seed.cls == corpus::SeedClass::FpTrap) {
            trap_key = seed.fieldKey;
        } else if (seed.cls == corpus::SeedClass::TrueRace) {
            true_key = seed.fieldKey;
        }
    }
}

TEST(RefuterEnablement, RemovedCallbackRefutedOnlyWithEnablement)
{
    auto p = makePipeline("en-removed", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("RemovedActivity");
        corpus::addRemovedCallback(f, act);
        corpus::addThreadRace(f, act);
    });
    std::string trap_key, true_key;
    splitKeys(p, "removedCallback", trap_key, true_key);
    ASSERT_FALSE(trap_key.empty());
    ASSERT_FALSE(true_key.empty());

    AppReport with = p.detector->analyze({});
    EXPECT_FALSE(reportsKey(with, trap_key))
        << "onPause must-removeCallbacks before onDestroy reads";
    EXPECT_TRUE(reportsKey(with, true_key))
        << "unrelated true races still surface";
    EXPECT_GT(with.enablementRefuted, 0);

    SierraOptions off;
    off.enablement = false;
    AppReport without = p.detector->analyze(off);
    EXPECT_TRUE(reportsKey(without, trap_key))
        << "without the stage the trap is a false positive";
    EXPECT_EQ(without.enablementRefuted, 0);
}

TEST(RefuterEnablement, UnregisteredReceiverTrapRefutedOnlyWithStage)
{
    auto p = makePipeline("en-unreg", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("UnregActivity");
        corpus::addUnregisteredFpTrap(f, act);
        corpus::addThreadRace(f, act);
    });
    std::string trap_key, true_key;
    splitKeys(p, "unregisteredFpTrap", trap_key, true_key);
    ASSERT_FALSE(trap_key.empty());
    ASSERT_FALSE(true_key.empty());

    AppReport with = p.detector->analyze({});
    EXPECT_FALSE(reportsKey(with, trap_key));
    EXPECT_TRUE(reportsKey(with, true_key));
    EXPECT_GT(with.enablementRefuted, 0);

    SierraOptions off;
    off.enablement = false;
    AppReport without = p.detector->analyze(off);
    EXPECT_TRUE(reportsKey(without, trap_key));
    EXPECT_EQ(without.enablementRefuted, 0);
}

TEST(RefuterEnablement, RegistrationWindowRaceIsPreserved)
{
    // registeredWindow seeds both sides: a true race between two
    // callbacks live inside the registration window, and a
    // post-teardown read only the enablement stage can exonerate.
    auto p = makePipeline("en-window", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("WindowActivity");
        corpus::addRegisteredWindow(f, act);
    });
    std::string trap_key, true_key;
    splitKeys(p, "registeredWindow", trap_key, true_key);
    ASSERT_FALSE(trap_key.empty());
    ASSERT_FALSE(true_key.empty());

    AppReport with = p.detector->analyze({});
    EXPECT_TRUE(reportsKey(with, true_key))
        << "in-window onReceive vs onClick is a real race";
    EXPECT_FALSE(reportsKey(with, trap_key));

    SierraOptions off;
    off.enablement = false;
    AppReport without = p.detector->analyze(off);
    EXPECT_TRUE(reportsKey(without, true_key));
    EXPECT_TRUE(reportsKey(without, trap_key));
}

TEST(RefuterEnablement, ProvenanceRecordedOnPairs)
{
    auto p = makePipeline("en-provenance", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("ProvActivity");
        corpus::addRemovedCallback(f, act);
    });
    HarnessAnalysis ha = p.detector->analyzeActivity(
        p.app().manifest().activities[0], {});

    bool saw_enablement = false;
    for (const auto &pair : ha.pairs) {
        if (pair.refutedBy == race::RefutedBy::Enablement) {
            saw_enablement = true;
            EXPECT_TRUE(pair.refuted);
            EXPECT_NE(pair.toString(*ha.pta, ha.accesses)
                          .find("refuted: enablement"),
                      std::string::npos);
        }
    }
    EXPECT_TRUE(saw_enablement);
    EXPECT_GT(ha.enablementStats.queries, 0);
    EXPECT_GT(ha.enablementStats.exonerated, 0);
}

TEST(RefuterEnablement, EveryRefutedByVariantHasAUniqueName)
{
    // Guards the printer against a new enum variant shipping unprinted:
    // every variant must map to a distinct, real name.
    std::set<std::string> names;
    for (race::RefutedBy r :
         {race::RefutedBy::None, race::RefutedBy::Lockset,
          race::RefutedBy::Enablement, race::RefutedBy::Symbolic}) {
        const char *name = race::refutedByName(r);
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "?");
        names.insert(name);
    }
    EXPECT_EQ(names.size(), 4u);
    EXPECT_TRUE(names.count("enablement"));
}

TEST(RefuterEnablement, EnablementStageIsJobsDeterministic)
{
    // NPR News carries registeredWindow; the stage's refutations must
    // not depend on worker scheduling.
    corpus::BuiltApp built = corpus::buildNamedApp("NPR News");
    SierraDetector detector(*built.app);

    SierraOptions one;
    one.jobs = 1;
    SierraOptions four;
    four.jobs = 4;
    AppReport serial = detector.analyze(one);
    AppReport parallel = detector.analyze(four);
    EXPECT_GT(serial.enablementRefuted, 0);
    EXPECT_EQ(serial.enablementRefuted, parallel.enablementRefuted);
    EXPECT_EQ(formatReport(serial, 50, false),
              formatReport(parallel, 50, false));
}

/** Per-app preservation: the stage only ever removes reports and never
 *  drops a seeded true race, on every named corpus app. */
class EnablementPreservation : public ::testing::TestWithParam<int>
{
};

TEST_P(EnablementPreservation, TrueRacesSurviveWithAndWithout)
{
    const auto &spec = corpus::namedAppSpecs()[GetParam()];
    corpus::BuiltApp built = corpus::buildNamedApp(spec);
    SierraDetector detector(*built.app);

    AppReport with = detector.analyze({});
    corpus::Score s_with = corpus::scoreReport(with, built.truth);
    EXPECT_EQ(s_with.missedTrueKeys, 0) << spec.name;

    SierraOptions off;
    off.enablement = false;
    AppReport without = detector.analyze(off);
    corpus::Score s_without = corpus::scoreReport(without, built.truth);
    EXPECT_EQ(s_without.missedTrueKeys, 0) << spec.name;

    EXPECT_LE(with.afterRefutation, without.afterRefutation)
        << spec.name;
    EXPECT_EQ(s_with.truePositives, s_without.truePositives)
        << spec.name << ": the stage must only drop non-true reports";
}

INSTANTIATE_TEST_SUITE_P(
    Named, EnablementPreservation, ::testing::Range(0, 20),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string n = corpus::namedAppSpecs()[info.param].name;
        for (char &c : n) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

} // namespace
} // namespace sierra
