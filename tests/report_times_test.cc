/**
 * @file
 * Stage-time rendering completeness (report_times_test).
 *
 * The text `time:` line and the JSON `timesMs` object are both
 * generated from stageTimeEntries(); a static_assert in detector.cc
 * pins the entry count to sizeof(StageTimes). These tests close the
 * remaining gap: every entry actually reaches both renderings, so a
 * stage added to StageTimes cannot silently miss the report or the
 * machine-readable output.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cli.hh"
#include "corpus/named_apps.hh"
#include "sierra/detector.hh"

namespace sierra {
namespace {

AppReport
analyzeNamed(const std::string &name, const SierraOptions &options)
{
    corpus::BuiltApp built = corpus::buildNamedApp(name);
    SierraDetector detector(*built.app);
    return detector.analyze(options);
}

/** The `time: ...` line of a text report ("" if absent). */
std::string
timeLine(const std::string &text)
{
    size_t begin = text.find("time: ");
    if (begin == std::string::npos)
        return "";
    size_t end = text.find('\n', begin);
    return text.substr(begin, end - begin);
}

TEST(ReportTimes, EntriesCoverEveryStageTimesField)
{
    AppReport report = analyzeNamed("NotePad", {});
    std::vector<StageTimeEntry> entries = stageTimeEntries(report);

    // One row per StageTimes double (the static_assert in detector.cc
    // keeps this count in lock-step with the struct).
    EXPECT_EQ(entries.size(), sizeof(StageTimes) / sizeof(double));

    std::set<std::string> json_names, text_names;
    for (const StageTimeEntry &e : entries) {
        EXPECT_TRUE(json_names.insert(e.jsonName).second)
            << "duplicate jsonName " << e.jsonName;
        EXPECT_TRUE(text_names.insert(e.textName).second)
            << "duplicate textName " << e.textName;
    }
}

TEST(ReportTimes, TextTimeLineRendersEveryInTextEntry)
{
    AppReport report = analyzeNamed("NotePad", {});
    std::string line = timeLine(formatReport(report, 50, true));
    ASSERT_FALSE(line.empty());

    for (const StageTimeEntry &e : stageTimeEntries(report)) {
        std::string token = std::string(e.textName) + " ";
        if (!e.inText) {
            EXPECT_EQ(line.find(token), std::string::npos)
                << e.textName << " rendered while gated off:\n"
                << line;
            continue;
        }
        // totalCpu renders inside total's parenthetical: "(cpu Xs)".
        if (std::string(e.jsonName) == "totalCpu")
            token = "(cpu ";
        EXPECT_NE(line.find(token), std::string::npos)
            << e.textName << " missing from the time line:\n"
            << line;
    }

    // And the no-times rendering has no time line at all.
    EXPECT_EQ(timeLine(formatReport(report, 50, false)), "");
}

TEST(ReportTimes, GatedStagesDropFromTextButNeverFromEntries)
{
    SierraOptions off;
    off.nullflow = false;
    off.enablement = false;
    AppReport report = analyzeNamed("NotePad", off);

    std::vector<StageTimeEntry> entries = stageTimeEntries(report);
    EXPECT_EQ(entries.size(), sizeof(StageTimes) / sizeof(double));

    std::string line = timeLine(formatReport(report, 50, true));
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.find("nullflow"), std::string::npos) << line;
    EXPECT_EQ(line.find("enablement"), std::string::npos) << line;
}

/** A temp file path that cleans itself up. */
class TempFile
{
  public:
    explicit TempFile(const std::string &suffix)
    {
        _path = std::string(std::tmpnam(nullptr)) + suffix;
    }
    ~TempFile() { std::remove(_path.c_str()); }
    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

/** The `"timesMs": {...}` object of a JSON report ("" if absent). */
std::string
timesMsObject(const std::string &json)
{
    size_t begin = json.find("\"timesMs\": {");
    if (begin == std::string::npos)
        return "";
    size_t end = json.find('}', begin);
    return json.substr(begin, end - begin + 1);
}

TEST(ReportTimes, JsonTimesMsHasOneKeyPerStageTimesField)
{
    TempFile file(".air");
    std::ostringstream out, err;
    ASSERT_EQ(cli::runCli({"dump", "NotePad", "-o", file.path()}, out,
                          err),
              0)
        << err.str();

    // Unlike the text line, the JSON object keeps every key even for
    // gated-off stages (their value is just 0), so consumers never
    // need existence checks.
    for (bool ablated : {false, true}) {
        std::vector<std::string> args = {"analyze", file.path(),
                                         "--json"};
        if (ablated) {
            args.push_back("--no-nullflow");
            args.push_back("--no-enablement");
        }
        std::ostringstream jout, jerr;
        ASSERT_EQ(cli::runCli(args, jout, jerr), 0) << jerr.str();
        std::string times = timesMsObject(jout.str());
        ASSERT_FALSE(times.empty()) << jout.str().substr(0, 400);

        AppReport report = analyzeNamed("NotePad", {});
        size_t keys = 0;
        for (const StageTimeEntry &e : stageTimeEntries(report)) {
            EXPECT_NE(times.find("\"" + std::string(e.jsonName) +
                                 "\": "),
                      std::string::npos)
                << e.jsonName << " missing from timesMs: " << times;
            ++keys;
        }
        // No extra keys either: entry count == quote-pair count.
        size_t quotes = 0;
        for (char c : times)
            quotes += (c == '"');
        // "timesMs" itself contributes one quoted token.
        EXPECT_EQ(quotes, 2 * (keys + 1)) << times;
    }
}

} // namespace
} // namespace sierra
