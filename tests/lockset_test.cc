/** @file Tests for the must-held lock-set analysis. */

#include <gtest/gtest.h>

#include "analysis/lockset.hh"
#include "analysis/points_to.hh"
#include "corpus/patterns.hh"
#include "framework/known_api.hh"
#include "test_helpers.hh"

namespace sierra::analysis {
namespace {

using air::CondKind;
using air::Label;
using air::Method;
using air::MethodBuilder;
using air::Opcode;
using air::Type;
using corpus::fieldRef;
namespace names = framework::names;
using test::makePipeline;

/** Run the PA for the first (only) activity of a pipeline. */
std::unique_ptr<PointsToResult>
runPta(test::Pipeline &p)
{
    PointsToAnalysis pta(p.app(), p.detector->plans()[0], {});
    return pta.run();
}

/** Define a method with a builder callback (test-local mirror of the
 *  corpus helper, which is file-local to patterns.cc). */
Method *
defineMethod(air::Klass *k, const std::string &name,
             std::vector<Type> params, Type ret,
             const std::function<void(MethodBuilder &)> &body)
{
    Method *m = k->addMethod(name, std::move(params), ret, false);
    MethodBuilder b(m);
    body(b);
    b.finish();
    return m;
}

/** Index of the n-th instruction with the given opcode; -1 if absent. */
int
findInstr(const Method &m, Opcode op, int occurrence = 0)
{
    int seen = 0;
    for (size_t i = 0; i < m.instrs().size(); ++i) {
        if (m.instrs()[i].op == op && seen++ == occurrence)
            return static_cast<int>(i);
    }
    return -1;
}

/** The unique call-graph node of a method named `name` on `cls`. */
NodeId
nodeOf(const PointsToResult &r, const std::string &cls,
       const std::string &name)
{
    for (NodeId n = 0; n < r.cg.numNodes(); ++n) {
        const auto &data = r.cg.node(n);
        if (data.method && data.method->name() == name &&
            data.method->owner()->name() == cls) {
            return n;
        }
    }
    return -1;
}

TEST(LockSet, HeldBetweenEnterAndExit)
{
    auto p = makePipeline("ls-straight", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("StraightActivity");
        act.addField("data", Type::object(names::object));
        act.on("onCreate", [&](MethodBuilder &b) {
            int rl = b.newReg();
            int rv = b.newReg();
            b.newObject(rl, names::object);
            b.monitorEnter(rl);
            b.newObject(rv, names::object);
            b.putField(b.thisReg(), fieldRef("StraightActivity", "data"),
                       rv);
            b.monitorExit(rl);
            b.getField(rv, b.thisReg(),
                       fieldRef("StraightActivity", "data"));
        });
    });
    auto r = runPta(p);
    LockSetAnalysis locks(*r);
    EXPECT_GE(locks.numMonitoredNodes(), 1);

    const Method *m = p.app().module().findMethod("StraightActivity",
                                                  "onCreate");
    ASSERT_NE(m, nullptr);
    NodeId node = nodeOf(*r, "StraightActivity", "onCreate");
    ASSERT_GE(node, 0);

    int put = findInstr(*m, Opcode::PutField);
    int get = findInstr(*m, Opcode::GetField);
    ASSERT_GE(put, 0);
    ASSERT_GE(get, 0);
    EXPECT_EQ(locks.locksHeldAt(node, put).size(), 1u)
        << "the write between enter/exit is protected";
    EXPECT_TRUE(locks.locksHeldAt(node, get).empty())
        << "the read after exit is not";
    // Entry of a lifecycle callback: framework calls with no app locks.
    EXPECT_TRUE(locks.entryLocks(node).empty());
}

TEST(LockSet, SameLockOnBothBranchesSurvivesJoin)
{
    auto p = makePipeline("ls-join", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("JoinActivity");
        act.addField("data", Type::object(names::object));
        act.on("onCreate", [&](MethodBuilder &b) {
            int rl = b.newReg();
            int rc = b.newReg();
            int rv = b.newReg();
            b.newObject(rl, names::object);
            b.constInt(rc, 1);
            Label other = b.newLabel();
            Label join = b.newLabel();
            b.ifz(rc, CondKind::Eq, other);
            b.monitorEnter(rl);
            b.gotoLabel(join);
            b.bind(other);
            b.monitorEnter(rl);
            b.bind(join);
            b.newObject(rv, names::object);
            b.putField(b.thisReg(), fieldRef("JoinActivity", "data"),
                       rv);
            b.monitorExit(rl);
        });
    });
    auto r = runPta(p);
    LockSetAnalysis locks(*r);

    const Method *m =
        p.app().module().findMethod("JoinActivity", "onCreate");
    ASSERT_NE(m, nullptr);
    NodeId node = nodeOf(*r, "JoinActivity", "onCreate");
    ASSERT_GE(node, 0);

    // Both predecessors of the join hold the same must-alias lock, so
    // the intersection keeps it.
    int put = findInstr(*m, Opcode::PutField);
    ASSERT_GE(put, 0);
    EXPECT_EQ(locks.locksHeldAt(node, put).size(), 1u);
}

TEST(LockSet, AmbiguousEnterAcquiresNothing)
{
    // The lock register may alias two allocation sites at the enter;
    // a must-analysis cannot name the held lock and must acquire
    // nothing (the sound direction for refutation).
    auto p = makePipeline("ls-ambig", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("AmbigActivity");
        act.addField("data", Type::object(names::object));
        act.on("onCreate", [&](MethodBuilder &b) {
            int ra = b.newReg();
            int rb = b.newReg();
            int rl = b.newReg();
            int rc = b.newReg();
            int rv = b.newReg();
            b.newObject(ra, names::object);
            b.newObject(rb, names::object);
            b.constInt(rc, 1);
            Label other = b.newLabel();
            Label join = b.newLabel();
            b.ifz(rc, CondKind::Eq, other);
            b.move(rl, ra);
            b.gotoLabel(join);
            b.bind(other);
            b.move(rl, rb);
            b.bind(join);
            b.monitorEnter(rl);
            b.newObject(rv, names::object);
            b.putField(b.thisReg(), fieldRef("AmbigActivity", "data"),
                       rv);
            b.monitorExit(rl);
        });
    });
    auto r = runPta(p);
    LockSetAnalysis locks(*r);

    const Method *m =
        p.app().module().findMethod("AmbigActivity", "onCreate");
    ASSERT_NE(m, nullptr);
    NodeId node = nodeOf(*r, "AmbigActivity", "onCreate");
    ASSERT_GE(node, 0);

    int put = findInstr(*m, Opcode::PutField);
    ASSERT_GE(put, 0);
    EXPECT_TRUE(locks.locksHeldAt(node, put).empty())
        << "|pts(lock)| = 2 at the enter: nothing is must-held";
}

TEST(LockSet, ReentrantDepthAndClamp)
{
    auto p = makePipeline("ls-reentrant", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("ReentrantActivity");
        act.addField("data", Type::object(names::object));
        act.on("onCreate", [&](MethodBuilder &b) {
            int rl = b.newReg();
            int rv = b.newReg();
            b.newObject(rl, names::object);
            // Enter far past the depth cap; the state must clamp.
            for (int i = 0; i < LockSetAnalysis::kDepthCap + 4; ++i)
                b.monitorEnter(rl);
            b.newObject(rv, names::object);
            b.putField(b.thisReg(),
                       fieldRef("ReentrantActivity", "data"), rv);
            // One exit leaves the (clamped) lock still held.
            b.monitorExit(rl);
            b.getField(rv, b.thisReg(),
                       fieldRef("ReentrantActivity", "data"));
        });
    });
    auto r = runPta(p);
    LockSetAnalysis locks(*r);

    const Method *m = p.app().module().findMethod("ReentrantActivity",
                                                  "onCreate");
    ASSERT_NE(m, nullptr);
    NodeId node = nodeOf(*r, "ReentrantActivity", "onCreate");
    ASSERT_GE(node, 0);

    int put = findInstr(*m, Opcode::PutField);
    int get = findInstr(*m, Opcode::GetField);
    ASSERT_GE(put, 0);
    ASSERT_GE(get, 0);

    LockState at_put = locks.stateAt(node, put);
    ASSERT_EQ(at_put.size(), 1u);
    EXPECT_EQ(at_put.begin()->second, LockSetAnalysis::kDepthCap)
        << "reentrant depth clamps at kDepthCap";
    EXPECT_EQ(locks.locksHeldAt(node, get).size(), 1u)
        << "one exit from a reentrant monitor keeps the lock held";
}

TEST(LockSet, LoopEnterConverges)
{
    // A monitor-enter on a loop back edge must not diverge: the meet
    // with the zero-depth entry path empties the state at the head and
    // the fixpoint terminates.
    auto p = makePipeline("ls-loop", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("LoopActivity");
        act.addField("data", Type::object(names::object));
        act.on("onCreate", [&](MethodBuilder &b) {
            int rl = b.newReg();
            int rc = b.newReg();
            int rv = b.newReg();
            b.newObject(rl, names::object);
            b.constInt(rc, 3);
            Label head = b.newLabel();
            b.bind(head);
            b.monitorEnter(rl);
            b.newObject(rv, names::object);
            b.putField(b.thisReg(), fieldRef("LoopActivity", "data"),
                       rv);
            b.ifz(rc, CondKind::Ne, head);
            b.monitorExit(rl);
        });
    });
    auto r = runPta(p);
    LockSetAnalysis locks(*r); // must terminate

    const Method *m =
        p.app().module().findMethod("LoopActivity", "onCreate");
    ASSERT_NE(m, nullptr);
    NodeId node = nodeOf(*r, "LoopActivity", "onCreate");
    ASSERT_GE(node, 0);

    int put = findInstr(*m, Opcode::PutField);
    ASSERT_GE(put, 0);
    // Inside the loop body, after the enter, the lock is held on every
    // path (depth >= 1 regardless of the iteration count).
    EXPECT_EQ(locks.locksHeldAt(node, put).size(), 1u);
}

TEST(LockSet, InterproceduralEntryLocks)
{
    auto p = makePipeline("ls-inter", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("InterActivity");
        act.addField("data", Type::object(names::object));
        // Called only with the monitor held: its entry inherits the
        // caller's lock set.
        defineMethod(act.klass(), "guardedHelper", {}, Type::voidTy(),
                     [&](MethodBuilder &b) {
                         int rv = b.newReg();
                         b.newObject(rv, names::object);
                         b.putField(b.thisReg(),
                                    fieldRef("InterActivity", "data"),
                                    rv);
                     });
        // Called both with and without the monitor: the intersection
        // over call sites is empty.
        defineMethod(act.klass(), "mixedHelper", {}, Type::voidTy(),
                     [&](MethodBuilder &b) {
                         int rv = b.newReg();
                         b.getField(rv, b.thisReg(),
                                    fieldRef("InterActivity", "data"));
                     });
        act.on("onCreate", [&](MethodBuilder &b) {
            int rl = b.newReg();
            b.newObject(rl, names::object);
            b.monitorEnter(rl);
            b.call(b.thisReg(), "InterActivity", "guardedHelper");
            b.call(b.thisReg(), "InterActivity", "mixedHelper");
            b.monitorExit(rl);
            b.call(b.thisReg(), "InterActivity", "mixedHelper");
        });
    });
    auto r = runPta(p);
    LockSetAnalysis locks(*r);

    NodeId guarded = nodeOf(*r, "InterActivity", "guardedHelper");
    NodeId mixed = nodeOf(*r, "InterActivity", "mixedHelper");
    ASSERT_GE(guarded, 0);
    ASSERT_GE(mixed, 0);

    EXPECT_EQ(locks.entryLocks(guarded).size(), 1u)
        << "every caller holds the monitor";
    const air::Method *gm =
        p.app().module().findMethod("InterActivity", "guardedHelper");
    ASSERT_NE(gm, nullptr);
    int put = findInstr(*gm, Opcode::PutField);
    ASSERT_GE(put, 0);
    EXPECT_EQ(locks.locksHeldAt(guarded, put).size(), 1u)
        << "the callee's body is protected by the caller's monitor";

    EXPECT_TRUE(locks.entryLocks(mixed).empty())
        << "one unprotected call site empties the intersection";
}

TEST(LockSet, MonitorFreeAppFastPath)
{
    auto p = makePipeline("ls-free", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("FreeActivity");
        corpus::addThreadRace(f, act);
    });
    auto r = runPta(p);
    LockSetAnalysis locks(*r);
    EXPECT_EQ(locks.numMonitoredNodes(), 0);
    for (NodeId n = 0; n < r->cg.numNodes(); ++n)
        EXPECT_TRUE(locks.entryLocks(n).empty());
}

} // namespace
} // namespace sierra::analysis
