/** @file Tests for the HB rules (paper Section 4.3, Figs. 5-7). */

#include <gtest/gtest.h>

#include "corpus/patterns.hh"
#include "hb/rules.hh"
#include "test_helpers.hh"

namespace sierra::hb {
namespace {

using analysis::ActionKind;
using analysis::PointsToResult;
using test::findAction;
using test::makePipeline;

struct Built {
    test::Pipeline pipeline;
    std::unique_ptr<PointsToResult> pta;
    std::unique_ptr<Shbg> shbg;
};

template <typename Fill>
Built
analyze(const std::string &name, Fill fill, HbOptions hb_opts = {})
{
    Built b{makePipeline(name, fill), nullptr, nullptr};
    analysis::PointsToAnalysis pta(
        b.pipeline.app(), b.pipeline.detector->plans()[0], {});
    b.pta = pta.run();
    HbBuilder builder(*b.pta, b.pipeline.detector->plans()[0],
                      b.pipeline.app(), hb_opts);
    b.shbg = builder.build();
    return b;
}

/** Find the n-th action with a given callback name (order of ids). */
int
nthAction(const PointsToResult &r, const std::string &cb, int n)
{
    int seen = 0;
    for (const auto &a : r.actions.all()) {
        if (a.callbackName == cb && seen++ == n)
            return a.id;
    }
    return -1;
}

TEST(HbRules, LifecycleDominanceSplitsInstances)
{
    auto b = analyze("hb-lifecycle", [](corpus::AppFactory &f) {
        f.addActivity("LcActivity");
    });
    const auto &r = *b.pta;
    int on_create = nthAction(r, "onCreate", 0);
    int on_destroy = nthAction(r, "onDestroy", 0);
    int start1 = nthAction(r, "onStart", 0);   // entry sequence
    int start2 = nthAction(r, "onStart", 1);   // restart cycle
    int stop_loop = nthAction(r, "onStop", 0); // in-loop onStop
    int resume1 = nthAction(r, "onResume", 0);
    int pause_loop = nthAction(r, "onPause", 0);

    // Fig. 5: onCreate precedes everything, onDestroy follows.
    EXPECT_TRUE(b.shbg->reaches(on_create, on_destroy));
    EXPECT_TRUE(b.shbg->reaches(on_create, start2));
    EXPECT_TRUE(b.shbg->reaches(start1, on_destroy));

    // The "1"/"2" split: onStart "1" < onStop < onStart "2".
    EXPECT_TRUE(b.shbg->reaches(start1, stop_loop));
    EXPECT_TRUE(b.shbg->reaches(stop_loop, start2));
    EXPECT_FALSE(b.shbg->reaches(start2, stop_loop))
        << "the second instance follows the stop";

    // onResume "1" < the loop onPause.
    EXPECT_TRUE(b.shbg->reaches(resume1, pause_loop));

    // Distinct loop iterations stay unordered: the pause/resume-cycle
    // pause vs the stop-cycle resume.
    int resume3 = nthAction(r, "onResume", 2);
    EXPECT_TRUE(b.shbg->unordered(pause_loop, resume3) ||
                b.shbg->reaches(pause_loop, resume3));
}

TEST(HbRules, InvocationRule)
{
    auto b = analyze("hb-invoke", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("InvActivity");
        corpus::addThreadRace(f, act);
    });
    int on_create = nthAction(*b.pta, "onCreate", 0);
    int run = findAction(*b.pta, "Worker");
    ASSERT_GE(run, 0);
    EXPECT_TRUE(b.shbg->reaches(on_create, run))
        << "creator happens-before the created thread body";
}

TEST(HbRules, AsyncChain)
{
    auto b = analyze("hb-async", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("AsyncActivity");
        corpus::addAsyncNewsRace(f, act);
    });
    int bg = findAction(*b.pta, "doInBackground");
    int post = findAction(*b.pta, "onPostExecute");
    ASSERT_GE(bg, 0);
    ASSERT_GE(post, 0);
    EXPECT_TRUE(b.shbg->reaches(bg, post))
        << "doInBackground < onPostExecute";
    EXPECT_GE(b.shbg->numEdgesByRule(HbRule::AsyncChain), 1);
}

TEST(HbRules, IntraProceduralPostOrder)
{
    auto b = analyze("hb-rule4", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("PostActivity");
        corpus::addOrderedPosts(f, act);
    });
    int init = findAction(*b.pta, "InitTask");
    int use = findAction(*b.pta, "UseTask");
    ASSERT_GE(init, 0);
    ASSERT_GE(use, 0);
    EXPECT_TRUE(b.shbg->reaches(init, use))
        << "rule 4: posting order on the same looper";
    EXPECT_GE(b.shbg->numEdgesByRule(HbRule::IntraProcDom), 1);
}

TEST(HbRules, Rule4RequiresSameLooper)
{
    // A thread started before a posted runnable: no post-order edge.
    auto b = analyze("hb-rule4-looper", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("MixActivity");
        corpus::addThreadRace(f, act);   // thread started in onCreate
        corpus::addGuardedTimer(f, act); // runnable posted in onCreate
    });
    int thread = findAction(*b.pta, "Worker");
    int timer = findAction(*b.pta, "Timer");
    ASSERT_GE(thread, 0);
    ASSERT_GE(timer, 0);
    EXPECT_TRUE(b.shbg->unordered(thread, timer))
        << "background thread vs posted runnable are not FIFO-ordered";
}

TEST(HbRules, GuiBoundedByResumeAndStop)
{
    auto b = analyze("hb-gui", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("GuiActivity");
        corpus::addMessageGuard(f, act);
    });
    const auto &r = *b.pta;
    int resume1 = nthAction(r, "onResume", 0);
    int send1 = findAction(r, "onSendOne");
    int send2 = findAction(r, "onSendTwo");
    int destroy = nthAction(r, "onDestroy", 0);
    ASSERT_GE(send1, 0);
    ASSERT_GE(send2, 0);

    EXPECT_TRUE(b.shbg->reaches(resume1, send1));
    EXPECT_TRUE(b.shbg->reaches(send1, destroy));
    EXPECT_TRUE(b.shbg->unordered(send1, send2))
        << "independent widgets are unordered (Fig. 6 loop)";
}

TEST(HbRules, EnabledAfterOrdersGuiActions)
{
    auto b = analyze("hb-gui-flow", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("FlowActivity");
        corpus::addGuiFlowSafe(f, act);
    });
    int pick = findAction(*b.pta, "onPick");
    int confirm = findAction(*b.pta, "onConfirm");
    ASSERT_GE(pick, 0);
    ASSERT_GE(confirm, 0);
    EXPECT_TRUE(b.shbg->reaches(pick, confirm))
        << "Fig. 6: onClick2 < onClick3 via the GUI model";
}

TEST(HbRules, InterActionTransitivity)
{
    // Fig. 7: ordered creators posting to the same looper order their
    // posts. onCreate posts the timer runnable; a GUI handler sends a
    // message; onCreate < gui (registration/dominance) so run < msg.
    auto b = analyze("hb-rule6", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("TransActivity");
        corpus::addGuardedTimer(f, act);  // onCreate posts Timer.run
        corpus::addMessageGuard(f, act);  // gui posts handleMessage
    });
    const auto &r = *b.pta;
    int run = findAction(r, "Timer");
    int msg = findAction(r, "handleMessage");
    ASSERT_GE(run, 0);
    ASSERT_GE(msg, 0);
    EXPECT_TRUE(b.shbg->reaches(run, msg))
        << "rule 6 transitivity through ordered creators";
    EXPECT_GE(b.shbg->numEdgesByRule(HbRule::InterActionTrans), 1);
}

TEST(HbRules, RulesCanBeDisabled)
{
    auto fill = [](corpus::AppFactory &f) {
        auto &act = f.addActivity("ToggleActivity");
        corpus::addOrderedPosts(f, act);
    };
    HbOptions no_rules;
    no_rules.enableRule4 = false;
    no_rules.enableRule5 = false;
    no_rules.enableRule6 = false;
    auto off = analyze("hb-toggle-off", fill, no_rules);
    int init = findAction(*off.pta, "InitTask");
    int use = findAction(*off.pta, "UseTask");
    EXPECT_TRUE(off.shbg->unordered(init, use))
        << "without rule 4 the posts stay unordered";
}

TEST(HbRules, OrderedFractionIsSane)
{
    auto b = analyze("hb-fraction", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("FracActivity");
        corpus::addReceiverDbRace(f, act);
    });
    double frac = b.shbg->orderedFraction();
    EXPECT_GT(frac, 0.0);
    EXPECT_LE(frac, 1.0);
}

} // namespace
} // namespace sierra::hb
