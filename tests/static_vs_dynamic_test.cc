/** @file Integration: SIERRA vs the dynamic detector (paper Sec. 6.4). */

#include <gtest/gtest.h>

#include "corpus/named_apps.hh"
#include "dynamic/event_racer.hh"
#include "sierra/detector.hh"

namespace sierra {
namespace {

struct Comparison {
    corpus::Score sierra;
    corpus::Score dynamic;
};

Comparison
compare(const std::string &app_name)
{
    corpus::BuiltApp built = corpus::buildNamedApp(app_name);
    SierraDetector detector(*built.app);
    AppReport report = detector.analyze({});
    Comparison out;
    out.sierra = corpus::scoreReport(report, built.truth);

    dynamic::EventRacerOptions er_opts;
    er_opts.numSchedules = 3;
    dynamic::EventRacerReport er = runEventRacer(*built.app, er_opts);
    out.dynamic = corpus::scoreKeys(er.raceKeys(), built.truth);
    return out;
}

class StaticVsDynamic
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(StaticVsDynamic, StaticFindsAtLeastAsMany)
{
    Comparison c = compare(GetParam());
    // The paper's headline (Section 6.4): the static detector finds far
    // more true races; the dynamic one misses those its schedules and
    // filters never reach.
    EXPECT_GE(c.sierra.truePositives, c.dynamic.truePositives);
    EXPECT_EQ(c.sierra.missedTrueKeys, 0);
    EXPECT_GE(c.dynamic.missedTrueKeys, 0);
}

// ConnectBot carries the lockGuarded monitor pattern: the interpreter
// treats monitor-enter/exit as run-to-completion no-ops, and the
// static/dynamic relation must still hold.
INSTANTIATE_TEST_SUITE_P(Apps, StaticVsDynamic,
                         ::testing::Values("OpenSudoku", "Beem",
                                           "VuDroid", "NotePad",
                                           "ConnectBot"));

TEST(StaticVsDynamic, DynamicMissesSomewhere)
{
    // Across a few apps the dynamic detector must exhibit its
    // characteristic false negatives (coverage limits).
    int total_missed = 0;
    for (const char *app : {"OpenSudoku", "Beem", "NPR News"})
        total_missed += compare(app).dynamic.missedTrueKeys;
    EXPECT_GT(total_missed, 0);
}

} // namespace
} // namespace sierra
