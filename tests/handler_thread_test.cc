/** @file Tests for HandlerThread / custom-looper support. */

#include <gtest/gtest.h>

#include "corpus/patterns.hh"
#include "dynamic/event_racer.hh"
#include "test_helpers.hh"

namespace sierra {
namespace {

using test::makePipeline;

test::Pipeline
makeApp()
{
    return makePipeline("ht-app", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("HtActivity");
        corpus::addHandlerThreadRace(f, act);
    });
}

TEST(HandlerThread, JobsRunOnTheCustomLooper)
{
    auto p = makeApp();
    analysis::PointsToAnalysis pta(p.app(), p.detector->plans()[0], {});
    auto r = pta.run();

    int job_a = test::findAction(*r, "BgJobA");
    int job_b = test::findAction(*r, "BgJobB");
    int init1 = test::findAction(*r, "BgInit1");
    ASSERT_GE(job_a, 0);
    ASSERT_GE(job_b, 0);
    ASSERT_GE(init1, 0);

    EXPECT_EQ(r->actions.get(job_a).affinity,
              analysis::ThreadAffinity::CustomLooper);
    EXPECT_EQ(r->looperOfAction(job_a), r->looperOfAction(job_b))
        << "both jobs target the same HandlerThread looper";
    EXPECT_NE(r->looperOfAction(job_a), r->mainLooperObj);
    EXPECT_EQ(r->looperOfAction(init1), r->looperOfAction(job_a));
}

TEST(HandlerThread, RaceAndOrderingResults)
{
    auto p = makeApp();
    AppReport report = p.detector->analyze({});
    corpus::Score score =
        corpus::scoreReport(report, p.built.truth);
    EXPECT_EQ(score.missedTrueKeys, 0)
        << "the unordered custom-looper posts race";
    EXPECT_EQ(score.falsePositives, 0)
        << "the FIFO-ordered posts (rule 4 on the custom looper) and "
           "all other traps are clean";
    EXPECT_TRUE(test::reportsKey(report, "HtActivity.bgShared$0"));
}

TEST(HandlerThread, MainLooperActionsAreDifferentQueue)
{
    auto p = makeApp();
    analysis::PointsToAnalysis pta(p.app(), p.detector->plans()[0], {});
    auto r = pta.run();
    int job_a = test::findAction(*r, "BgJobA");
    int on_create = -1;
    for (const auto &a : r->actions.all()) {
        if (a.callbackName == "onCreate")
            on_create = a.id;
    }
    ASSERT_GE(job_a, 0);
    ASSERT_GE(on_create, 0);
    EXPECT_NE(r->looperOfAction(job_a), r->looperOfAction(on_create));
}

TEST(HandlerThread, InterpreterRoutesToCustomQueue)
{
    auto p = makeApp();
    // Several schedules: the bg jobs must actually execute and access
    // the shared field.
    bool job_ran = false;
    for (uint32_t seed = 1; seed < 10 && !job_ran; ++seed) {
        dynamic::RunOptions run;
        run.seed = seed;
        dynamic::Interpreter interp(p.app(), run);
        dynamic::Trace trace = interp.run();
        for (const auto &ev : trace.events)
            job_ran |= ev.label.find("BgJob") != std::string::npos;
    }
    EXPECT_TRUE(job_ran);
}

TEST(HandlerThread, DynamicFifoOrdersInitJobs)
{
    // The two init jobs posted back-to-back from onCreate must never
    // be reported as a race by the dynamic detector (same-creator FIFO
    // on the same looper).
    auto p = makeApp();
    dynamic::EventRacerOptions opts;
    opts.numSchedules = 10;
    dynamic::EventRacerReport report =
        runEventRacer(p.app(), opts);
    for (const auto &key : report.raceKeys()) {
        EXPECT_EQ(key.find("bgCfg$"), std::string::npos)
            << "FIFO-ordered init jobs reported as a dynamic race";
    }
}

} // namespace
} // namespace sierra
