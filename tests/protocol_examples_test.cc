/**
 * @file
 * Executable documentation: every wire example in
 * docs/DAEMON_PROTOCOL.md is replayed verbatim against a live
 * ServeSession and its response byte-compared against the documented
 * one. The doc's ```jsonl fences hold alternating request/response
 * lines forming ONE serial session in document order (the doc states
 * this convention); a drifting implementation or a hand-edited example
 * fails here, so the protocol doc cannot rot.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "serve/serve.hh"

#ifndef SIERRA_DOCS_DIR
#define SIERRA_DOCS_DIR "docs"
#endif

namespace sierra::serve {
namespace {

/** The request/response lines of every ```jsonl fence, in doc order. */
std::vector<std::string>
exampleLines(const std::string &doc_path, std::string &error)
{
    std::ifstream in(doc_path, std::ios::binary);
    if (!in) {
        error = "cannot open " + doc_path;
        return {};
    }
    std::vector<std::string> lines;
    std::string line;
    bool in_fence = false;
    int fence_start = 0, lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (!in_fence) {
            if (line == "```jsonl") {
                in_fence = true;
                fence_start = lineno;
            }
            continue;
        }
        if (line == "```") {
            in_fence = false;
            continue;
        }
        if (line.empty())
            continue;
        lines.push_back(line);
    }
    if (in_fence)
        error = "unterminated ```jsonl fence at line " +
                std::to_string(fence_start);
    else if (lines.size() % 2 != 0)
        error = "odd number of example lines: every request needs its "
                "response";
    return lines;
}

TEST(ProtocolExamples, DocExamplesReplayVerbatim)
{
    const std::string doc_path =
        std::string(SIERRA_DOCS_DIR) + "/DAEMON_PROTOCOL.md";
    std::string error;
    std::vector<std::string> lines = exampleLines(doc_path, error);
    ASSERT_TRUE(error.empty()) << error;
    // A format drift that silently matched nothing would "pass"; pin a
    // floor instead. 8 pairs = the documented kinds plus error cases.
    ASSERT_GE(lines.size(), 16u)
        << "suspiciously few examples parsed from " << doc_path;

    // One serial session across all fences, exactly as the doc states:
    // earlier examples' effects (cancellation marks, store warmth) are
    // part of later examples' expected responses.
    ServeSession session(ServeOptions{});
    for (size_t i = 0; i + 1 < lines.size(); i += 2) {
        const std::string &request = lines[i];
        const std::string &documented = lines[i + 1];
        EXPECT_EQ(session.handleLine(request), documented)
            << "documented response differs for request: " << request;
    }
}

} // namespace
} // namespace sierra::serve
