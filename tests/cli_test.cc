/** @file Tests for the sierra command-line tool. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli.hh"

namespace sierra::cli {
namespace {

struct CliRun {
    int code;
    std::string out;
    std::string err;
};

CliRun
run(std::vector<std::string> args)
{
    std::ostringstream out;
    std::ostringstream err;
    int code = runCli(args, out, err);
    return {code, out.str(), err.str()};
}

/** A temp file path that cleans itself up. */
class TempFile
{
  public:
    explicit TempFile(const std::string &suffix)
    {
        _path = std::string(std::tmpnam(nullptr)) + suffix;
    }
    ~TempFile() { std::remove(_path.c_str()); }
    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

TEST(Cli, HelpAndUnknownCommand)
{
    EXPECT_EQ(run({"help"}).code, 0);
    EXPECT_NE(run({"help"}).out.find("usage:"), std::string::npos);
    EXPECT_EQ(run({}).code, 2);
    CliRun bad = run({"frobnicate"});
    EXPECT_EQ(bad.code, 2);
    EXPECT_NE(bad.err.find("unknown command"), std::string::npos);
}

TEST(Cli, ListShowsAppsAndPatterns)
{
    CliRun r = run({"list"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("OpenSudoku"), std::string::npos);
    EXPECT_NE(r.out.find("guardedTimer"), std::string::npos);
    EXPECT_NE(r.out.find("fdroid-173"), std::string::npos);
}

TEST(Cli, DumpAnalyzeRoundTrip)
{
    TempFile file(".air");
    CliRun dump = run({"dump", "OpenSudoku", "-o", file.path()});
    ASSERT_EQ(dump.code, 0) << dump.err;

    CliRun analyze = run({"analyze", file.path()});
    ASSERT_EQ(analyze.code, 0) << analyze.err;
    EXPECT_NE(analyze.out.find("SIERRA report"), std::string::npos);
    EXPECT_NE(analyze.out.find("racy pairs"), std::string::npos);
}

TEST(Cli, DumpFdroidApp)
{
    CliRun r = run({"dump", "fdroid-3"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("app \"fdroid-003\""), std::string::npos);
    EXPECT_EQ(run({"dump", "fdroid-999"}).code, 1);
    EXPECT_EQ(run({"dump", "NoSuchApp"}).code, 1);
}

TEST(Cli, AnalyzeFlags)
{
    TempFile file(".air");
    ASSERT_EQ(run({"dump", "TippyTipper", "-o", file.path()}).code, 0);

    CliRun hybrid = run({"analyze", file.path(), "--policy", "hybrid",
                         "--no-refute"});
    EXPECT_EQ(hybrid.code, 0) << hybrid.err;

    CliRun bad_policy =
        run({"analyze", file.path(), "--policy", "quantum"});
    EXPECT_EQ(bad_policy.code, 2);
    EXPECT_NE(bad_policy.err.find("unknown policy"),
              std::string::npos);

    CliRun missing_value = run({"analyze", file.path(), "--policy"});
    EXPECT_EQ(missing_value.code, 2);
}

TEST(Cli, AnalyzeJson)
{
    TempFile file(".air");
    ASSERT_EQ(run({"dump", "VuDroid", "-o", file.path()}).code, 0);
    CliRun r = run({"analyze", file.path(), "--json"});
    ASSERT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("\"app\": \"VuDroid\""), std::string::npos);
    EXPECT_NE(r.out.find("\"races\": ["), std::string::npos);
    EXPECT_NE(r.out.find("\"racyPairs\":"), std::string::npos);
}

TEST(Cli, AnalyzeJsonCarriesSchemaVersion)
{
    TempFile file(".air");
    ASSERT_EQ(run({"dump", "VuDroid", "-o", file.path()}).code, 0);
    CliRun r = run({"analyze", file.path(), "--json"});
    ASSERT_EQ(r.code, 0) << r.err;
    // The version is the first key, so consumers can dispatch on it
    // before reading anything else.
    EXPECT_NE(r.out.find("{\n  \"schemaVersion\": 3,"),
              std::string::npos)
        << r.out.substr(0, 200);
}

/** Every value in the emitted JSON must be quoted, numeric, boolean,
 *  or a nested container — a bare string value (the PR-6 class of bug,
 *  where a new field was emitted unquoted) breaks strict parsers. */
void
expectValuesWellFormed(const std::string &json)
{
    for (size_t i = 0; i + 2 < json.size(); ++i) {
        // A key ends with `": ` (an escaped quote inside a string
        // value is `\"` and does not match).
        if (json[i] != '"' || json[i + 1] != ':' ||
            json[i + 2] != ' ' || (i > 0 && json[i - 1] == '\\'))
            continue;
        char v = json[i + 3];
        bool ok = v == '"' || v == '[' || v == '{' || v == '-' ||
                  (v >= '0' && v <= '9') || v == 't' || v == 'f' ||
                  v == 'n';
        EXPECT_TRUE(ok) << "unquoted value at offset " << i << ": ..."
                        << json.substr(i, 60) << "...";
        if (!ok)
            return;
    }
}

TEST(Cli, AnalyzeJsonStringFieldsAreQuoted)
{
    // SipDroid exercises every report section: races, use-after-
    // destroy, and deadlocks; VLC adds resolved ICC edges.
    for (const char *app : {"SipDroid", "VLC"}) {
        TempFile file(".air");
        ASSERT_EQ(run({"dump", app, "-o", file.path()}).code, 0);
        CliRun r = run({"analyze", file.path(), "--json", "--metrics"});
        ASSERT_EQ(r.code, 0) << r.err;
        expectValuesWellFormed(r.out);
    }
}

TEST(Cli, AnalyzeJsonDeadlockSection)
{
    TempFile file(".air");
    ASSERT_EQ(run({"dump", "SipDroid", "-o", file.path()}).code, 0);

    CliRun r = run({"analyze", file.path(), "--json"});
    ASSERT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("\"deadlocks\": ["), std::string::npos);
    EXPECT_NE(r.out.find("\"heldLock\":"), std::string::npos);
    EXPECT_NE(r.out.find("\"acquiredLock\":"), std::string::npos);

    CliRun off = run({"analyze", file.path(), "--json",
                      "--no-deadlock"});
    ASSERT_EQ(off.code, 0) << off.err;
    EXPECT_NE(off.out.find("\"deadlocks\": []"), std::string::npos);
}

TEST(Cli, AnalyzeNoDeadlockFlag)
{
    TempFile file(".air");
    ASSERT_EQ(run({"dump", "SipDroid", "-o", file.path()}).code, 0);

    CliRun on = run({"analyze", file.path()});
    ASSERT_EQ(on.code, 0) << on.err;
    EXPECT_NE(on.out.find("deadlocks: 1"), std::string::npos);
    EXPECT_NE(on.out.find("[dl] cycle"), std::string::npos);

    CliRun off = run({"analyze", file.path(), "--no-deadlock"});
    ASSERT_EQ(off.code, 0) << off.err;
    EXPECT_EQ(off.out.find("[dl]"), std::string::npos);
}

TEST(Cli, AnalyzeNoIccFlag)
{
    TempFile file(".air");
    ASSERT_EQ(run({"dump", "VLC", "-o", file.path()}).code, 0);

    CliRun on = run({"analyze", file.path()});
    ASSERT_EQ(on.code, 0) << on.err;
    EXPECT_NE(on.out.find("Feed$2.article"), std::string::npos)
        << "cross-component race expected with ICC on";

    CliRun off = run({"analyze", file.path(), "--no-icc"});
    ASSERT_EQ(off.code, 0) << off.err;
    EXPECT_EQ(off.out.find("Feed$2.article"), std::string::npos)
        << "cross-component race requires the ICC edge";
}

TEST(Cli, DynamicCommand)
{
    TempFile file(".air");
    ASSERT_EQ(run({"dump", "VuDroid", "-o", file.path()}).code, 0);
    CliRun r =
        run({"dynamic", file.path(), "--schedules", "2", "--seed", "9"});
    ASSERT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("schedules: 2"), std::string::npos);
}

TEST(Cli, HarnessCommand)
{
    TempFile file(".air");
    ASSERT_EQ(run({"dump", "VuDroid", "-o", file.path()}).code, 0);

    // Recover the activity name from the dump.
    std::ifstream in(file.path());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    size_t pos = text.find("activity ");
    ASSERT_NE(pos, std::string::npos);
    std::string activity =
        text.substr(pos + 9, text.find(' ', pos + 9) - pos - 9);

    CliRun r = run({"harness", file.path(), activity});
    ASSERT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("Harness$" + activity), std::string::npos);
    EXPECT_NE(r.out.find("invoke-virtual"), std::string::npos);

    EXPECT_EQ(run({"harness", file.path(), "NoSuchActivity"}).code, 1);
}

TEST(Cli, ActionsCommand)
{
    TempFile file(".air");
    ASSERT_EQ(run({"dump", "OpenSudoku", "-o", file.path()}).code, 0);
    std::ifstream in(file.path());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    size_t pos = text.find("activity ");
    std::string activity =
        text.substr(pos + 9, text.find(' ', pos + 9) - pos - 9);

    CliRun r = run({"actions", file.path(), activity});
    ASSERT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("lifecycle"), std::string::npos);
    EXPECT_NE(r.out.find("HB edges by rule:"), std::string::npos);
    EXPECT_NE(r.out.find("closure:"), std::string::npos);
    EXPECT_EQ(run({"actions", file.path(), "Nope"}).code, 1);
    EXPECT_EQ(run({"actions", file.path()}).code, 2);
}

TEST(Cli, LintFlagsSeededDefects)
{
    // A bundle that verifies but trips all three lint checks.
    const char *linty = R"(
app "linty" {
    package org.example.linty
    activity Main main
}
class Main extends android.app.Activity {
    method <init>(): void regs=1 { @0: return-void }
    method useBeforeDef(): int regs=4 {
        @0: r2 = add r1, r1
        @1: return r2
    }
    method deadCode(): void regs=2 {
        @0: return-void
        @1: goto @1
    }
    method deadStore(): int regs=4 {
        @0: r1 = const 1
        @1: r1 = const 2
        @2: return r1
    }
}
)";
    TempFile file(".air");
    {
        std::ofstream out(file.path());
        out << linty;
    }

    CliRun r = run({"lint", file.path()});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.out.find("may be used before assignment"),
              std::string::npos);
    EXPECT_NE(r.out.find("unreachable basic block"), std::string::npos);
    EXPECT_NE(r.out.find("dead store"), std::string::npos);
    EXPECT_NE(r.out.find("3 issue(s)"), std::string::npos) << r.out;

    CliRun errs = run({"lint", file.path(), "--errors-only"});
    EXPECT_EQ(errs.code, 1);
    EXPECT_NE(errs.out.find("may be used before assignment"),
              std::string::npos);
    EXPECT_EQ(errs.out.find("dead store"), std::string::npos);
    EXPECT_EQ(errs.out.find("unreachable"), std::string::npos);
}

TEST(Cli, LintJsonMirrorsTextFindings)
{
    const char *linty = R"(
app "linty" {
    package org.example.linty
    activity Main main
}
class Main extends android.app.Activity {
    method <init>(): void regs=1 { @0: return-void }
    method useBeforeDef(): int regs=4 {
        @0: r2 = add r1, r1
        @1: return r2
    }
    method deadStore(): int regs=4 {
        @0: r1 = const 1
        @1: r1 = const 2
        @2: return r1
    }
}
)";
    TempFile file(".air");
    {
        std::ofstream out(file.path());
        out << linty;
    }

    // Same findings and exit code as the text form, as a JSON array.
    CliRun r = run({"lint", file.path(), "--json"});
    EXPECT_EQ(r.code, 1);
    EXPECT_EQ(r.out.rfind("[", 0), 0u) << r.out;
    EXPECT_NE(r.out.find("\"severity\": \"error\""),
              std::string::npos);
    EXPECT_NE(r.out.find("\"severity\": \"warning\""),
              std::string::npos);
    EXPECT_NE(r.out.find("\"where\": \"Main.useBeforeDef"),
              std::string::npos);
    EXPECT_NE(r.out.find("may be used before assignment"),
              std::string::npos);
    EXPECT_EQ(r.out.find("issue(s)"), std::string::npos)
        << "no text summary line in JSON mode";

    // --errors-only composes: the dead-store warning disappears.
    CliRun errs = run({"lint", file.path(), "--json", "--errors-only"});
    EXPECT_EQ(errs.code, 1);
    EXPECT_EQ(errs.out.find("dead store"), std::string::npos);
    EXPECT_NE(errs.out.find("\"severity\": \"error\""),
              std::string::npos);

    // Clean module: an empty array and exit 0.
    TempFile clean(".air");
    ASSERT_EQ(run({"dump", "VuDroid", "-o", clean.path()}).code, 0);
    CliRun ok = run({"lint", clean.path(), "--json"});
    EXPECT_EQ(ok.code, 0) << ok.out;
    EXPECT_EQ(ok.out, "[]\n");
}

TEST(Cli, LintFlagsLeakedRegistration)
{
    // A receiver registered in onCreate with no teardown unregister:
    // the leaked-registration check fires in both text and JSON modes.
    const char *leaky = R"(
app "leaky" {
    package org.example.leaky
    activity Main main
}
class Main extends android.app.Activity {
    field recv: java.lang.Object
    method <init>(): void regs=1 { @0: return-void }
    method onCreate(): void regs=4 {
        @0: r1 = new Main
        @1: putfield r0.Main.recv = r1
        @2: r2 = const "org.example.ACTION"
        @3: invoke-virtual android.app.Activity.registerReceiver(r0, r1, r2)
        @4: return-void
    }
}
)";
    TempFile file(".air");
    {
        std::ofstream out(file.path());
        out << leaky;
    }

    CliRun r = run({"lint", file.path()});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.out.find("not unregistered in any teardown callback"),
              std::string::npos)
        << r.out;

    CliRun j = run({"lint", file.path(), "--json"});
    EXPECT_EQ(j.code, 1);
    EXPECT_NE(j.out.find("\"severity\": \"warning\""),
              std::string::npos);
    EXPECT_NE(j.out.find("\"where\": \"Main.onCreate@3\""),
              std::string::npos)
        << j.out;
}

TEST(Cli, LintReportsUnbalancedMonitors)
{
    const char *unbalanced = R"(
app "locky" {
    package org.example.locky
    activity Main main
}
class Main extends android.app.Activity {
    method <init>(): void regs=1 { @0: return-void }
    method leaky(): void regs=2 {
        @0: r1 = const 1
        @1: monitor-enter r1
        @2: return-void
    }
}
)";
    TempFile file(".air");
    {
        std::ofstream out(file.path());
        out << unbalanced;
    }
    CliRun r = run({"lint", file.path()});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.out.find("no monitor-exit"), std::string::npos)
        << r.out;
    // Balance violations are verifier errors, not lint warnings.
    CliRun errs = run({"lint", file.path(), "--errors-only"});
    EXPECT_EQ(errs.code, 1);
    EXPECT_NE(errs.out.find("no monitor-exit"), std::string::npos);
}

TEST(Cli, LintCleanAppExitsZero)
{
    TempFile file(".air");
    ASSERT_EQ(run({"dump", "OpenSudoku", "-o", file.path()}).code, 0);
    CliRun r = run({"lint", file.path()});
    EXPECT_EQ(r.code, 0) << r.out;
    EXPECT_NE(r.out.find("no issues"), std::string::npos);
    EXPECT_EQ(run({"lint"}).code, 2);
}

TEST(Cli, AnalyzeNoDataflowFlag)
{
    TempFile file(".air");
    ASSERT_EQ(run({"dump", "VuDroid", "-o", file.path()}).code, 0);
    CliRun r = run({"analyze", file.path(), "--no-dataflow"});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("SIERRA report"), std::string::npos);
}

TEST(Cli, AnalyzeNoIfdsFlag)
{
    // APV's signature carries interprocGuard: its mHits trap is only
    // refuted with the interprocedural summaries, so --no-ifds brings
    // the false positive back.
    TempFile file(".air");
    ASSERT_EQ(run({"dump", "APV", "-o", file.path()}).code, 0);

    CliRun with = run({"analyze", file.path()});
    ASSERT_EQ(with.code, 0) << with.err;
    EXPECT_EQ(with.out.find("mHits"), std::string::npos);

    CliRun without = run({"analyze", file.path(), "--no-ifds"});
    ASSERT_EQ(without.code, 0) << without.err;
    EXPECT_NE(without.out.find("mHits"), std::string::npos)
        << "without summaries the deep setter chain is havocked";

    CliRun json = run({"analyze", file.path(), "--json"});
    ASSERT_EQ(json.code, 0) << json.err;
    EXPECT_NE(json.out.find("\"useAfterDestroy\":"),
              std::string::npos);
    EXPECT_NE(json.out.find("\"ifds\":"), std::string::npos);

    // K-9 Mail carries use-after-destroy findings; every field of a
    // finding must be emitted as a quoted JSON string.
    TempFile k9(".air");
    ASSERT_EQ(run({"dump", "K-9 Mail", "-o", k9.path()}).code, 0);
    CliRun uad = run({"analyze", k9.path(), "--json"});
    ASSERT_EQ(uad.code, 0) << uad.err;
    EXPECT_NE(uad.out.find("\"teardownAction\": \""),
              std::string::npos)
        << "use-after-destroy actions must be quoted JSON strings";
    EXPECT_NE(uad.out.find("\"useAction\": \""), std::string::npos);
}

TEST(Cli, AnalyzeLockFlags)
{
    // ConnectBot's signature carries lockGuarded: the monitor-guarded
    // field is refuted by default and only surfaces with --no-lockset.
    TempFile file(".air");
    ASSERT_EQ(run({"dump", "ConnectBot", "-o", file.path()}).code, 0);

    CliRun with = run({"analyze", file.path()});
    ASSERT_EQ(with.code, 0) << with.err;
    EXPECT_EQ(with.out.find("lockset-refuted: 0"), std::string::npos)
        << "the stage refutes at least one pair by default";
    EXPECT_EQ(with.out.find("guardedVal"), std::string::npos);

    CliRun without = run({"analyze", file.path(), "--no-lockset",
                          "--no-escape"});
    ASSERT_EQ(without.code, 0) << without.err;
    EXPECT_NE(without.out.find("lockset-refuted: 0"),
              std::string::npos);
    EXPECT_NE(without.out.find("accesses dropped: 0"),
              std::string::npos);
    EXPECT_NE(without.out.find("guardedVal"), std::string::npos)
        << "without lock sets the guarded pair is reported";

    CliRun json = run({"analyze", file.path(), "--json"});
    ASSERT_EQ(json.code, 0) << json.err;
    EXPECT_NE(json.out.find("\"locksetRefuted\":"), std::string::npos);
    EXPECT_NE(json.out.find("\"accessesDropped\":"),
              std::string::npos);
}

TEST(Cli, AnalyzeEnablementFlags)
{
    // OpenSudoku's signature carries removedCallback: the post-teardown
    // read is refuted by default and only surfaces with --no-enablement.
    TempFile file(".air");
    ASSERT_EQ(run({"dump", "OpenSudoku", "-o", file.path()}).code, 0);

    CliRun with = run({"analyze", file.path()});
    ASSERT_EQ(with.code, 0) << with.err;
    EXPECT_NE(with.out.find("enablement-refuted:"), std::string::npos);
    EXPECT_EQ(with.out.find("enablement-refuted: 0"),
              std::string::npos)
        << "the stage refutes at least one pair by default";
    EXPECT_EQ(with.out.find("jobTicks"), std::string::npos);

    CliRun without = run({"analyze", file.path(), "--no-enablement"});
    ASSERT_EQ(without.code, 0) << without.err;
    EXPECT_EQ(without.out.find("enablement-refuted"),
              std::string::npos)
        << "--no-enablement output carries no enablement tokens";
    EXPECT_NE(without.out.find("jobTicks"), std::string::npos)
        << "without the stage the removed-callback read is reported";

    CliRun json = run({"analyze", file.path(), "--json"});
    ASSERT_EQ(json.code, 0) << json.err;
    EXPECT_NE(json.out.find("\"enablementRefuted\":"),
              std::string::npos);
    EXPECT_NE(json.out.find("\"enablement\":"), std::string::npos)
        << "timesMs carries the stage unconditionally";
}

TEST(Cli, AnalyzeTraceWritesChromeJson)
{
    TempFile file(".air");
    ASSERT_EQ(run({"dump", "OpenSudoku", "-o", file.path()}).code, 0);

    TempFile trace(".json");
    CliRun r = run({"analyze", file.path(), "--trace", trace.path()});
    ASSERT_EQ(r.code, 0) << r.err;

    std::ifstream in(trace.path());
    ASSERT_TRUE(in.good()) << "--trace did not write the file";
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
#ifndef SIERRA_TRACE_DISABLED
    // With tracing compiled out the file is valid but empty: no
    // spans to look for.
    EXPECT_NE(text.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(text.find("stage.cg_pa"), std::string::npos);
#endif

    CliRun bad = run({"analyze", file.path(), "--trace",
                      "/no/such/dir/trace.json"});
    EXPECT_EQ(bad.code, 1);
    EXPECT_NE(bad.err.find("cannot write trace"), std::string::npos);
}

TEST(Cli, AnalyzeMetricsFlag)
{
    TempFile file(".air");
    ASSERT_EQ(run({"dump", "ConnectBot", "-o", file.path()}).code, 0);

    CliRun text = run({"analyze", file.path(), "--metrics"});
    ASSERT_EQ(text.code, 0) << text.err;
    EXPECT_NE(text.out.find("pta.worklist_iterations"),
              std::string::npos);
    EXPECT_NE(text.out.find("race.lockset_refuted"),
              std::string::npos);
    EXPECT_NE(text.out.find("stage.refutation.seconds"),
              std::string::npos);

    CliRun json = run({"analyze", file.path(), "--json", "--metrics"});
    ASSERT_EQ(json.code, 0) << json.err;
    EXPECT_NE(json.out.find("\"metrics\":"), std::string::npos);
    EXPECT_NE(json.out.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.out.find("\"dataflow\":"), std::string::npos);
    EXPECT_NE(json.out.find("\"racy\":"), std::string::npos);

    // Without the flag the report carries no metrics block.
    CliRun plain = run({"analyze", file.path(), "--json"});
    EXPECT_EQ(plain.out.find("\"metrics\":"), std::string::npos);
}

TEST(Cli, MissingFileFailsCleanly)
{
    CliRun r = run({"analyze", "/definitely/not/here.air"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

} // namespace
} // namespace sierra::cli
