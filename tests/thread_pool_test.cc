/** @file Unit tests for the util thread pool and parallel helpers. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hh"

namespace sierra {
namespace {

TEST(ResolveJobs, ExplicitRequestWins)
{
    EXPECT_EQ(util::resolveJobs(3), 3);
    EXPECT_EQ(util::resolveJobs(1), 1);
}

TEST(ResolveJobs, EnvVarOverridesDefault)
{
    ASSERT_EQ(setenv("SIERRA_JOBS", "5", 1), 0);
    EXPECT_EQ(util::resolveJobs(0), 5);
    EXPECT_EQ(util::resolveJobs(2), 2) << "explicit beats env";
    ASSERT_EQ(setenv("SIERRA_JOBS", "garbage", 1), 0);
    EXPECT_GE(util::resolveJobs(0), 1) << "bad env falls back";
    ASSERT_EQ(setenv("SIERRA_JOBS", "-4", 1), 0);
    EXPECT_GE(util::resolveJobs(0), 1);
    unsetenv("SIERRA_JOBS");
}

TEST(ResolveJobs, DefaultIsAtLeastOne)
{
    unsetenv("SIERRA_JOBS");
    EXPECT_GE(util::resolveJobs(0), 1);
    EXPECT_GE(util::resolveJobs(-7), 1);
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    std::atomic<int> count{0};
    {
        util::ThreadPool pool(4);
        for (int i = 0; i < 200; ++i)
            pool.submit([&] { count.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(count.load(), 200);
    }
}

TEST(ThreadPool, BoundedQueueBackpressure)
{
    // A capacity-2 queue forces submit() to block and hand off work;
    // every task must still run exactly once.
    std::atomic<int> count{0};
    {
        util::ThreadPool pool(2, /*queue_capacity=*/2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&] { count.fetch_add(1); });
        pool.wait();
    }
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    std::atomic<int> count{0};
    util::ThreadPool pool(3);
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&] { count.fetch_add(1); });
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(257);
    util::parallelFor(4, 257, [&](int i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SingleJobRunsInlineInOrder)
{
    // jobs=1 is the serial reference path: same thread, index order,
    // no synchronization needed in the body.
    std::vector<int> order;
    std::thread::id caller = std::this_thread::get_id();
    util::parallelFor(1, 10, [&](int i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    std::vector<int> expect(10);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(order, expect);
}

TEST(ParallelFor, EmptyAndNegativeRangesAreNoOps)
{
    int calls = 0;
    util::parallelFor(4, 0, [&](int) { ++calls; });
    util::parallelFor(4, -3, [&](int) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, PropagatesFirstException)
{
    std::atomic<int> completed{0};
    auto body = [&](int i) {
        if (i == 13)
            throw std::runtime_error("boom 13");
        completed.fetch_add(1);
    };
    EXPECT_THROW(util::parallelFor(4, 64, body), std::runtime_error);
    EXPECT_LT(completed.load(), 64);
}

TEST(ParallelFor, ExceptionPropagatesFromSerialPath)
{
    auto body = [](int i) {
        if (i == 2)
            throw std::logic_error("serial boom");
    };
    EXPECT_THROW(util::parallelFor(1, 5, body), std::logic_error);
}

TEST(ParallelMap, CollectsResultsInIndexOrder)
{
    std::vector<int> squares = util::parallelMap<int>(
        4, 50, [](int i) { return i * i; });
    ASSERT_EQ(squares.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelMap, MoveOnlyResults)
{
    auto out = util::parallelMap<std::unique_ptr<int>>(
        3, 20, [](int i) { return std::make_unique<int>(i); });
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(*out[i], i);
}

} // namespace
} // namespace sierra
