/** @file Semantics tests for the context policies: what k-cfa, k-obj
 *  and hybrid each can and cannot distinguish (paper Section 3.3). */

#include <gtest/gtest.h>

#include "framework/known_api.hh"
#include "test_helpers.hh"

namespace sierra::analysis {
namespace {

using air::InvokeKind;
using air::MethodBuilder;
using air::Type;
namespace names = framework::names;
using test::makePipeline;

/**
 * Fixture app: a static factory `make()` that allocates a Box, called
 * from two distinct call sites in onCreate; the boxes are stored in
 * two activity fields. Whether the two fields alias depends on the
 * context policy.
 */
test::Pipeline
makeFactoryApp(const std::string &name, int indirection_levels)
{
    return makePipeline(name, [&](corpus::AppFactory &f) {
        auto &act = f.addActivity("CtxActivity");
        std::string act_cls = act.name();
        air::Module &mod = f.app().module();
        air::Klass *box = mod.addClass("Box", names::object);
        box->addField({"v", Type::intTy(), false});
        {
            air::Method *init =
                box->addMethod("<init>", {}, Type::voidTy(), false);
            MethodBuilder b(init);
            b.finish();
        }
        air::Klass *factory = mod.addClass("Factory", names::object);
        {
            air::Method *make = factory->addMethod(
                "make", {}, Type::object("Box"), true);
            MethodBuilder b(make);
            int r = b.newReg();
            b.newObject(r, "Box");
            b.invoke(-1, InvokeKind::Special, {"Box", "<init>", 0},
                     {r});
            b.ret(r);
            b.finish();
        }
        // Optional wrapper layers: defeat k=1 call-site contexts.
        std::string callee = "make";
        for (int level = 0; level < indirection_levels; ++level) {
            std::string wrapper = "wrap" + std::to_string(level);
            air::Method *w = factory->addMethod(
                wrapper, {}, Type::object("Box"), true);
            MethodBuilder b(w);
            int r = b.newReg();
            b.callStatic(r, "Factory", callee);
            b.ret(r);
            b.finish();
            callee = wrapper;
        }
        act.addField("boxA", Type::object("Box"));
        act.addField("boxB", Type::object("Box"));
        std::string entry = callee;
        act.on("onCreate", [=](MethodBuilder &b) {
            int ra = b.newReg();
            int rb = b.newReg();
            b.callStatic(ra, "Factory", entry);
            b.putField(b.thisReg(), {act_cls, "boxA"}, ra);
            b.callStatic(rb, "Factory", entry);
            b.putField(b.thisReg(), {act_cls, "boxB"}, rb);
        });
    });
}

/** Points-to sets of the two box fields. */
std::pair<std::set<ObjId>, std::set<ObjId>>
boxFields(const PointsToResult &r)
{
    std::set<ObjId> a;
    std::set<ObjId> b;
    for (const auto &[key, pts] : r.fieldPts) {
        if (r.keyName(key.second) == "CtxActivity.boxA")
            a.insert(pts.begin(), pts.end());
        if (r.keyName(key.second) == "CtxActivity.boxB")
            b.insert(pts.begin(), pts.end());
    }
    return {a, b};
}

std::unique_ptr<PointsToResult>
runPolicy(test::Pipeline &p, ContextPolicy policy, int k)
{
    PointsToOptions opts;
    opts.ctx.policy = policy;
    opts.ctx.k = k;
    opts.ctx.heapK = k;
    PointsToAnalysis pta(p.app(), p.detector->plans()[0], opts);
    return pta.run();
}

bool
disjoint(const std::set<ObjId> &a, const std::set<ObjId> &b)
{
    for (ObjId o : a) {
        if (b.count(o))
            return false;
    }
    return !a.empty() && !b.empty();
}

TEST(ContextPolicy, InsensitiveMergesDirectFactoryCalls)
{
    auto p = makeFactoryApp("ctx-ins", 0);
    auto r = runPolicy(p, ContextPolicy::Insensitive, 1);
    auto [a, b] = boxFields(*r);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "one abstract Box for both call sites";
}

TEST(ContextPolicy, OneCfaSeparatesDirectCallSites)
{
    auto p = makeFactoryApp("ctx-1cfa", 0);
    auto r = runPolicy(p, ContextPolicy::KCfa, 1);
    auto [a, b] = boxFields(*r);
    EXPECT_TRUE(disjoint(a, b))
        << "distinct call sites get distinct contexts";
}

TEST(ContextPolicy, OneCfaMergesThroughAWrapper)
{
    // One wrapper layer: the allocation's k=1 context is the single
    // wrap0->make call site for both paths (the paper's j > k case).
    auto p = makeFactoryApp("ctx-1cfa-wrap", 1);
    auto r = runPolicy(p, ContextPolicy::KCfa, 1);
    auto [a, b] = boxFields(*r);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "k=1 truncation merges the two chains";
}

TEST(ContextPolicy, TwoCfaSeparatesThroughAWrapper)
{
    auto p = makeFactoryApp("ctx-2cfa-wrap", 1);
    auto r = runPolicy(p, ContextPolicy::KCfa, 2);
    auto [a, b] = boxFields(*r);
    EXPECT_TRUE(disjoint(a, b)) << "k=2 keeps the caller's site";
}

TEST(ContextPolicy, ActionSensitivityDoesNotSplitWithinOneAction)
{
    // Both factory calls happen inside the SAME action (onCreate), so
    // action-sensitivity alone cannot separate them: within an action
    // it behaves like hybrid (paper: "within one action the objects
    // may still lose precision due to last k merges").
    auto p = makeFactoryApp("ctx-as-wrap", 1);
    auto r = runPolicy(p, ContextPolicy::ActionSensitive, 1);
    auto [a, b] = boxFields(*r);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(ContextPolicy, KObjSeparatesReceivers)
{
    // Two container objects each storing into their own field through
    // a shared virtual method: k-obj distinguishes by receiver.
    auto p = makePipeline("ctx-kobj", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("ObjActivity");
        std::string act_cls = act.name();
        air::Module &mod = f.app().module();
        air::Klass *cell = mod.addClass("Cell", names::object);
        cell->addField({"payload", Type::object(names::object), false});
        {
            MethodBuilder b(cell->addMethod("<init>", {},
                                            Type::voidTy(), false));
            b.finish();
        }
        {
            air::Method *fill =
                cell->addMethod("fill", {}, Type::voidTy(), false);
            MethodBuilder b(fill);
            int r = b.newReg();
            b.newObject(r, names::object);
            b.putField(b.thisReg(), {"Cell", "payload"}, r);
            b.finish();
        }
        act.addField("c1", Type::object("Cell"));
        act.addField("c2", Type::object("Cell"));
        act.on("onCreate", [=](MethodBuilder &b) {
            int r1 = b.newReg();
            int r2 = b.newReg();
            b.newObject(r1, "Cell");
            b.invoke(-1, InvokeKind::Special, {"Cell", "<init>", 0},
                     {r1});
            b.newObject(r2, "Cell");
            b.invoke(-1, InvokeKind::Special, {"Cell", "<init>", 0},
                     {r2});
            b.call(r1, "Cell", "fill");
            b.call(r2, "Cell", "fill");
            b.putField(b.thisReg(), {act_cls, "c1"}, r1);
            b.putField(b.thisReg(), {act_cls, "c2"}, r2);
        });
    });
    auto r = runPolicy(p, ContextPolicy::KObj, 1);
    // The payloads allocated inside fill() must be distinct per cell.
    std::set<ObjId> p1;
    std::set<ObjId> p2;
    ObjId c1 = -1;
    ObjId c2 = -1;
    for (const auto &[key, pts] : r->fieldPts) {
        if (r->keyName(key.second) == "ObjActivity.c1")
            c1 = *pts.begin();
        if (r->keyName(key.second) == "ObjActivity.c2")
            c2 = *pts.begin();
    }
    ASSERT_GE(c1, 0);
    ASSERT_GE(c2, 0);
    ASSERT_NE(c1, c2);
    for (const auto &[key, pts] : r->fieldPts) {
        if (r->keyName(key.second) != "Cell.payload")
            continue;
        if (key.first == c1)
            p1.insert(pts.begin(), pts.end());
        if (key.first == c2)
            p2.insert(pts.begin(), pts.end());
    }
    EXPECT_TRUE(disjoint(p1, p2))
        << "k-obj gives fill() a per-receiver context";
}

} // namespace
} // namespace sierra::analysis
