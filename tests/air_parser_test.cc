/** @file Tests for the AIR textual parser and printer round-trip. */

#include <gtest/gtest.h>

#include "air/builder.hh"
#include "air/parser.hh"
#include "air/printer.hh"

namespace sierra::air {
namespace {

const char *kSample = R"(
// A small sample module.
class Base {
    field x: int
    method get(): int regs=2 {
        @0: r1 = getfield r0.Base.x
        @1: return r1
    }
}
class Derived extends Base implements Runnable$I {
    static field count: int
    field buf: java.lang.Object[]
    method run(): void regs=5 {
        @0: r1 = const 41
        @1: r2 = const 1
        @2: r3 = add r1, r2
        @3: putfield r0.Base.x = r3
        @4: ifz r3 eq goto @6
        @5: invoke-virtual Derived.helper(r0, r3)
        @6: return-void
    }
    method helper(p0: int): void regs=3 {
        @0: r2 = const "hi there"
        @1: return-void
    }
}
interface Runnable$I {
    abstract method run(): void;
}
)";

TEST(AirParser, ParsesSample)
{
    ParseResult result = parseModule(kSample);
    ASSERT_TRUE(result.ok()) << result.status.error << " at line "
                             << result.status.errorLine;
    Module &mod = *result.module;
    EXPECT_EQ(mod.numClasses(), 3u);

    Klass *base = mod.getClass("Base");
    ASSERT_NE(base, nullptr);
    ASSERT_NE(base->findField("x"), nullptr);
    EXPECT_EQ(base->findField("x")->type.kind(), TypeKind::Int);

    Klass *derived = mod.getClass("Derived");
    ASSERT_NE(derived, nullptr);
    EXPECT_EQ(derived->superName(), "Base");
    ASSERT_EQ(derived->interfaces().size(), 1u);
    EXPECT_EQ(derived->interfaces()[0], "Runnable$I");
    EXPECT_TRUE(derived->findField("count")->isStatic);
    EXPECT_EQ(derived->findField("buf")->type.kind(), TypeKind::Array);

    Method *run = derived->findMethod("run");
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(run->numInstrs(), 7);
    EXPECT_EQ(run->instr(4).op, Opcode::IfZ);
    EXPECT_EQ(run->instr(4).target, 6);
    EXPECT_EQ(run->instr(5).method.toString(), "Derived.helper");

    Klass *iface = mod.getClass("Runnable$I");
    ASSERT_NE(iface, nullptr);
    EXPECT_TRUE(iface->isInterface());
    EXPECT_TRUE(iface->findMethod("run")->isAbstract());
}

TEST(AirParser, RoundTripIsStable)
{
    ParseResult first = parseModule(kSample);
    ASSERT_TRUE(first.ok());
    std::string printed = printModule(*first.module);
    ParseResult second = parseModule(printed);
    ASSERT_TRUE(second.ok()) << second.status.error;
    EXPECT_EQ(printed, printModule(*second.module));
}

TEST(AirParser, MonitorRoundTrip)
{
    const char *text = R"(
class M {
    field f: int
    method m(): void regs=3 {
        @0: r1 = const 1
        @1: monitor-enter r1
        @2: putfield r0.M.f = r1
        @3: monitor-exit r1
        @4: return-void
    }
}
)";
    ParseResult r = parseModule(text);
    ASSERT_TRUE(r.ok()) << r.status.error;
    Method *m = r.module->getClass("M")->findMethod("m");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->instr(1).op, Opcode::MonitorEnter);
    EXPECT_EQ(m->instr(3).op, Opcode::MonitorExit);
    ASSERT_EQ(m->instr(1).srcs.size(), 1u);
    EXPECT_EQ(m->instr(1).srcs[0], 1);

    std::string printed = printModule(*r.module);
    EXPECT_NE(printed.find("monitor-enter r1"), std::string::npos);
    EXPECT_NE(printed.find("monitor-exit r1"), std::string::npos);
    ParseResult again = parseModule(printed);
    ASSERT_TRUE(again.ok()) << again.status.error;
    EXPECT_EQ(printModule(*again.module), printed);
}

TEST(AirParser, StringEscapes)
{
    ParseResult r = parseModule(R"(
class S {
    method f(): void regs=2 {
        @0: r1 = const "a\"b\\c"
        @1: return-void
    }
}
)");
    ASSERT_TRUE(r.ok()) << r.status.error;
    EXPECT_EQ(r.module->getClass("S")->findMethod("f")->instr(0).strValue,
              "a\"b\\c");
}

TEST(AirParser, NegativeConstants)
{
    ParseResult r = parseModule(R"(
class N {
    method f(): void regs=2 {
        @0: r1 = const -17
        @1: return-void
    }
}
)");
    ASSERT_TRUE(r.ok()) << r.status.error;
    EXPECT_EQ(r.module->getClass("N")->findMethod("f")->instr(0).intValue,
              -17);
}

struct BadCase {
    const char *name;
    const char *text;
};

class ParserErrors : public ::testing::TestWithParam<BadCase>
{
};

TEST_P(ParserErrors, Rejected)
{
    ParseResult r = parseModule(GetParam().text);
    EXPECT_FALSE(r.ok()) << GetParam().name;
    EXPECT_FALSE(r.status.error.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Bad, ParserErrors,
    ::testing::Values(
        BadCase{"garbage", "klass Foo {}"},
        BadCase{"unterminated_string",
                "class A { method f(): void regs=1 { @0: r0 = const "
                "\"oops } }"},
        BadCase{"duplicate_class", "class A {} class A {}"},
        BadCase{"duplicate_method",
                "class A { method f(): void; method f(): void; }"},
        BadCase{"out_of_order_index",
                "class A { method f(): void regs=1 { @1: return-void } "
                "}"},
        BadCase{"bad_register",
                "class A { method f(): void regs=1 { @0: return rx } }"},
        BadCase{"bad_condition",
                "class A { method f(): void regs=2 { @0: ifz r1 zz goto "
                "@0 } }"},
        BadCase{"field_without_class",
                "class A { method f(): void regs=2 { @0: r1 = getfield "
                "r0.x } }"},
        BadCase{"unknown_instruction",
                "class A { method f(): void regs=2 { @0: r1 = frobnicate "
                "r0 } }"}),
    [](const ::testing::TestParamInfo<BadCase> &info) {
        return info.param.name;
    });

TEST(AirParser, ParseIntoExistingModule)
{
    Module mod;
    mod.addClass("Existing");
    ParseStatus st = parseInto(mod, "class Fresh {}");
    EXPECT_TRUE(st.ok);
    EXPECT_NE(mod.getClass("Fresh"), nullptr);
    EXPECT_NE(mod.getClass("Existing"), nullptr);

    // Colliding with an existing class is an error, not a crash.
    ParseStatus st2 = parseInto(mod, "class Existing {}");
    EXPECT_FALSE(st2.ok);
}

TEST(AirParser, CommentsAndWhitespace)
{
    ParseResult r = parseModule(
        "# hash comment\n// slash comment\nclass A { }\n");
    ASSERT_TRUE(r.ok()) << r.status.error;
    EXPECT_NE(r.module->getClass("A"), nullptr);
}

} // namespace
} // namespace sierra::air
