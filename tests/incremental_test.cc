/**
 * @file
 * The warm == cold byte-identity contract of incremental re-analysis
 * (docs/CACHING.md): re-submitting an unchanged app reuses every
 * per-harness artifact and reproduces the cold report bytes exactly
 * (which are themselves the golden-snapshot bytes); editing one method
 * body dirties exactly the DepIndex closure of the edit and recomputes
 * only the harnesses whose footprint covers it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "analysis/store.hh"
#include "corpus/named_apps.hh"
#include "serve/incremental.hh"
#include "sierra/artifact.hh"
#include "sierra/detector.hh"

#ifndef SIERRA_GOLDEN_DIR
#define SIERRA_GOLDEN_DIR "tests/golden"
#endif

namespace sierra {
namespace {

namespace store = analysis::store;

std::string
goldenPath(const std::string &app_name)
{
    std::string fname;
    for (char c : app_name)
        fname += (c == ' ' || c == '/') ? '_' : c;
    return std::string(SIERRA_GOLDEN_DIR) + "/" + fname +
           ".report.txt";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Append a dead no-op to the named method's body: the canonical
 *  "benign body edit" of docs/CACHING.md's walkthrough. */
void
appendNop(framework::App &app, const std::string &qualified_name)
{
    for (air::Klass *klass : app.module().classes()) {
        for (const auto &m : klass->methods()) {
            if (m->qualifiedName() == qualified_name) {
                m->instrs().push_back(air::Instruction{});
                return;
            }
        }
    }
    FAIL() << "method not found: " << qualified_name;
}

TEST(Incremental, WarmEqualsColdOverGoldenCorpus)
{
    store::Store st; // memory-only
    serve::IncrementalAnalyzer analyzer(st);
    SierraOptions options;
    for (const corpus::NamedAppSpec &spec : corpus::namedAppSpecs()) {
        corpus::BuiltApp cold_app = corpus::buildNamedApp(spec);
        serve::IncrementalResult cold =
            analyzer.analyze(*cold_app.app, options);
        EXPECT_TRUE(cold.firstSubmission) << spec.name;
        EXPECT_EQ(cold.harnessesReused, 0) << spec.name;
        EXPECT_EQ(cold.harnessesComputed, cold.harnessesTotal)
            << spec.name;
        EXPECT_EQ(cold.methodsChanged, cold.methodsTotal) << spec.name;

        // The cold bytes are the pinned golden bytes: serving through
        // the store must not perturb the report-preserving contract.
        EXPECT_EQ(cold.reportText, readFile(goldenPath(spec.name)))
            << spec.name;

        corpus::BuiltApp warm_app = corpus::buildNamedApp(spec);
        serve::IncrementalResult warm =
            analyzer.analyze(*warm_app.app, options);
        EXPECT_FALSE(warm.firstSubmission) << spec.name;
        EXPECT_EQ(warm.methodsChanged, 0) << spec.name;
        EXPECT_FALSE(warm.shapeChanged) << spec.name;
        EXPECT_EQ(warm.harnessesReused, warm.harnessesTotal)
            << spec.name;
        EXPECT_EQ(warm.harnessesComputed, 0) << spec.name;
        EXPECT_EQ(warm.reportText, cold.reportText)
            << "warm report must be byte-identical for " << spec.name;
    }
}

TEST(Incremental, BodyEditDirtiesExactlyTheDepClosure)
{
    store::Store st;
    serve::IncrementalAnalyzer analyzer(st);
    SierraOptions options;

    corpus::BuiltApp first = corpus::buildNamedApp("OpenSudoku");
    const std::string app_name = first.app->name();
    serve::IncrementalResult cold =
        analyzer.analyze(*first.app, options);
    ASSERT_GE(cold.harnessesTotal, 2)
        << "need >= 2 harnesses to show partial reuse";

    // Load the per-harness footprints the cold run persisted and pick
    // an *app* method covered by exactly one harness, so the edit must
    // recompute that harness and reuse every other.
    std::vector<std::vector<std::string>> footprints;
    for (const std::string &key : st.keys("harness")) {
        auto blob = st.get("harness", key);
        ASSERT_TRUE(blob.has_value());
        auto art = parseArtifact(*blob);
        ASSERT_TRUE(art.has_value());
        std::vector<std::string> names;
        for (const auto &[method, hash] : art->footprint)
            names.push_back(method);
        footprints.push_back(std::move(names));
    }
    ASSERT_EQ(static_cast<int>(footprints.size()),
              cold.harnessesTotal);

    auto coveringHarnesses = [&](const std::string &name) {
        int n = 0;
        for (const auto &fp : footprints) {
            if (std::find(fp.begin(), fp.end(), name) != fp.end())
                ++n;
        }
        return n;
    };
    std::string edited;
    {
        corpus::BuiltApp probe = corpus::buildNamedApp("OpenSudoku");
        for (air::Klass *klass : probe.app->module().classes()) {
            if (klass->isFramework() || klass->isSynthetic())
                continue;
            for (const auto &m : klass->methods()) {
                if (m->hasBody() &&
                    coveringHarnesses(m->qualifiedName()) == 1) {
                    edited = m->qualifiedName();
                    break;
                }
            }
            if (!edited.empty())
                break;
        }
    }
    ASSERT_FALSE(edited.empty())
        << "no app method covered by exactly one harness";

    // The expected dirty set is the DepIndex closure the store itself
    // recorded: the edited method plus its transitive summary callers.
    auto deps_blob = st.get("deps", app_name);
    ASSERT_TRUE(deps_blob.has_value());
    store::DepIndex deps = store::DepIndex::parse(*deps_blob);
    std::set<std::string> expected_dirty = deps.dirtyClosure({edited});

    corpus::BuiltApp second = corpus::buildNamedApp("OpenSudoku");
    appendNop(*second.app, edited);
    serve::IncrementalResult warm =
        analyzer.analyze(*second.app, options);

    EXPECT_FALSE(warm.firstSubmission);
    EXPECT_EQ(warm.methodsChanged, 1);
    EXPECT_FALSE(warm.shapeChanged)
        << "instruction lines must not feed the shape hash";
    EXPECT_EQ(warm.dirty, expected_dirty);
    EXPECT_EQ(warm.harnessesComputed, 1)
        << "only the covering harness recomputes";
    EXPECT_EQ(warm.harnessesReused, warm.harnessesTotal - 1);

    // Byte-identity under the edit: the warm report equals a cold
    // fresh-store analysis of an identically edited app.
    store::Store fresh;
    serve::IncrementalAnalyzer cold_analyzer(fresh);
    corpus::BuiltApp third = corpus::buildNamedApp("OpenSudoku");
    appendNop(*third.app, edited);
    serve::IncrementalResult edited_cold =
        cold_analyzer.analyze(*third.app, options);
    EXPECT_EQ(warm.reportText, edited_cold.reportText);
}

TEST(Incremental, StoreContentsIndependentOfJobsCount)
{
    // Same app at different jobs counts must write byte-identical
    // store blobs under identical keys: keys derive from content, and
    // blobs are serialized from deterministically merged results.
    auto run = [](int jobs, store::Store &st) {
        serve::IncrementalAnalyzer analyzer(st);
        SierraOptions options;
        options.jobs = jobs;
        corpus::BuiltApp built = corpus::buildNamedApp("OpenSudoku");
        return analyzer.analyze(*built.app, options);
    };
    store::Store serial_store, parallel_store;
    serve::IncrementalResult serial = run(1, serial_store);
    serve::IncrementalResult parallel = run(4, parallel_store);

    EXPECT_EQ(serial.reportText, parallel.reportText);
    EXPECT_EQ(serial.shapeHash, parallel.shapeHash)
        << "jobs must not feed the options fingerprint";
    for (const std::string &kind :
         {"methods", "deps", "shape", "harness", "ifds", "refute"}) {
        auto keys = serial_store.keys(kind);
        ASSERT_EQ(keys, parallel_store.keys(kind)) << kind;
        for (const std::string &key : keys) {
            EXPECT_EQ(serial_store.get(kind, key),
                      parallel_store.get(kind, key))
                << kind << "/" << key;
        }
    }
}

TEST(Incremental, OptionsFingerprintSeparatesAblations)
{
    SierraOptions base;
    uint64_t fp = serve::IncrementalAnalyzer::optionsFingerprint(base);

    SierraOptions jobs_only = base;
    jobs_only.jobs = 8;
    EXPECT_EQ(serve::IncrementalAnalyzer::optionsFingerprint(jobs_only),
              fp)
        << "jobs never changes reports, so it must not re-key";

    SierraOptions no_ifds = base;
    no_ifds.ifds = false;
    SierraOptions no_lockset = base;
    no_lockset.locksetRefutation = false;
    SierraOptions small_budget = base;
    small_budget.refuter.exec.maxPaths /= 2;
    EXPECT_NE(serve::IncrementalAnalyzer::optionsFingerprint(no_ifds),
              fp);
    EXPECT_NE(
        serve::IncrementalAnalyzer::optionsFingerprint(no_lockset),
        fp);
    EXPECT_NE(
        serve::IncrementalAnalyzer::optionsFingerprint(small_budget),
        fp);
    // Distinct ablations get distinct harness keys, so a run with
    // ablated options can never satisfy a default-options lookup.
    EXPECT_NE(serve::IncrementalAnalyzer::optionsFingerprint(no_ifds),
              serve::IncrementalAnalyzer::optionsFingerprint(
                  no_lockset));
}

} // namespace
} // namespace sierra
