/** @file Tests for access extraction, racy pairs and prioritization. */

#include <gtest/gtest.h>

#include "corpus/patterns.hh"
#include "hb/rules.hh"
#include "race/racy.hh"
#include "test_helpers.hh"

namespace sierra::race {
namespace {

using test::makePipeline;

struct Analyzed {
    test::Pipeline pipeline;
    std::unique_ptr<analysis::PointsToResult> pta;
    std::unique_ptr<hb::Shbg> shbg;
    std::vector<Access> accesses;
    std::vector<RacyPair> pairs;
};

template <typename Fill>
Analyzed
analyze(const std::string &name, Fill fill)
{
    Analyzed a{makePipeline(name, fill), nullptr, nullptr, {}, {}};
    analysis::PointsToAnalysis pta(
        a.pipeline.app(), a.pipeline.detector->plans()[0], {});
    a.pta = pta.run();
    hb::HbBuilder builder(*a.pta, a.pipeline.detector->plans()[0],
                          a.pipeline.app(), {});
    a.shbg = builder.build();
    a.accesses = extractAccesses(*a.pta);
    a.pairs = findRacyPairs(*a.pta, *a.shbg, a.accesses, {});
    return a;
}

bool
hasPairOnKey(const Analyzed &a, const std::string &key)
{
    for (const auto &p : a.pairs) {
        if (p.loc.key == key)
            return true;
    }
    return false;
}

TEST(Access, ExtractionSkipsHarnessAndFindsAppAccesses)
{
    auto a = analyze("race-access", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("AccActivity");
        corpus::addThreadRace(f, act);
    });
    EXPECT_FALSE(a.accesses.empty());
    for (const auto &acc : a.accesses) {
        const air::Method *m = a.pta->cg.node(acc.node).method;
        EXPECT_FALSE(m->owner()->isSynthetic())
            << "no accesses from harness code";
    }
    // The worker writes a reference-typed field.
    bool ref_write = false;
    for (const auto &acc : a.accesses)
        ref_write |= acc.isWrite && acc.refTyped;
    EXPECT_TRUE(ref_write);
}

TEST(RacyPairs, ThreadVsGuiConflictDetected)
{
    auto a = analyze("race-thread", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("TrActivity");
        corpus::addThreadRace(f, act);
    });
    bool found = false;
    for (const auto &p : a.pairs)
        found |= p.loc.key.find("result$") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(RacyPairs, OrderedAccessesAreNotRacy)
{
    auto a = analyze("race-ordered", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("OrdActivity");
        corpus::addLifecycleSafe(f, act);
        corpus::addOrderedPosts(f, act);
    });
    EXPECT_FALSE(hasPairOnKey(a, "OrdActivity.init$0") ||
                 hasPairOnKey(a, "OrdActivity.init$1"))
        << "onCreate/onDestroy accesses are lifecycle-ordered";
    bool cfg_pair = false;
    for (const auto &p : a.pairs)
        cfg_pair |= p.loc.key.find("cfg$") != std::string::npos;
    EXPECT_FALSE(cfg_pair) << "rule 4 orders the posted runnables";
}

TEST(RacyPairs, ReadReadIsNotARace)
{
    auto a = analyze("race-readread", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("RrActivity");
        act.addField("ro", air::Type::intTy());
        act.on("onResume", [](air::MethodBuilder &b) {
            int r = b.newReg();
            b.getField(r, b.thisReg(), {"RrActivity", "ro"});
        });
        act.on("onPause", [](air::MethodBuilder &b) {
            int r = b.newReg();
            b.getField(r, b.thisReg(), {"RrActivity", "ro"});
        });
    });
    EXPECT_FALSE(hasPairOnKey(a, "RrActivity.ro"));
}

TEST(RacyPairs, ActionPairsCarryMatchingAccessInstances)
{
    auto a = analyze("race-instances", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("InstActivity");
        corpus::addGuardedTimer(f, act);
    });
    for (const auto &p : a.pairs) {
        for (const auto &e : p.actionPairs) {
            const Access &x = a.accesses[e.access1];
            const Access &y = a.accesses[e.access2];
            EXPECT_TRUE(a.pta->cg.actionsOf(x.node).count(e.action1))
                << "access1 must be executable under action1";
            EXPECT_TRUE(a.pta->cg.actionsOf(y.node).count(e.action2))
                << "access2 must be executable under action2";
        }
    }
}

TEST(Prioritize, AppCodeAndRefTypedRankFirst)
{
    auto a = analyze("race-prio", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("PrioActivity");
        corpus::addReceiverDbRace(f, act); // conn is a ref field
        corpus::addGuardedTimer(f, act);   // mIsRunning is int
    });
    prioritize(*a.pta, a.accesses, a.pairs);
    ASSERT_GE(a.pairs.size(), 2u);
    // Priorities are non-increasing.
    for (size_t i = 0; i + 1 < a.pairs.size(); ++i)
        EXPECT_GE(a.pairs[i].priority, a.pairs[i + 1].priority);
    // Some reference-typed race outranks an int guard race.
    int conn_prio = -1;
    int guard_prio = -1;
    for (const auto &p : a.pairs) {
        if (p.loc.key.find(".conn") != std::string::npos)
            conn_prio = std::max(conn_prio, p.priority);
        if (p.loc.key.find("mIsRunning") != std::string::npos)
            guard_prio = std::max(guard_prio, p.priority);
    }
    ASSERT_GE(conn_prio, 0);
    ASSERT_GE(guard_prio, 0);
    EXPECT_GT(conn_prio, guard_prio);
}

TEST(RacyPairs, ToStringMentionsActionsAndLocation)
{
    auto a = analyze("race-str", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("StrActivity");
        corpus::addThreadRace(f, act);
    });
    ASSERT_FALSE(a.pairs.empty());
    std::string s = a.pairs[0].toString(*a.pta, a.accesses);
    EXPECT_NE(s.find("race on"), std::string::npos);
    EXPECT_NE(s.find("||"), std::string::npos);
}

TEST(RacyPairs, MessageActionsOnSameLooperQualify)
{
    auto a = analyze("race-msg", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("MsgActivity");
        corpus::addMessageGuard(f, act);
    });
    bool flag_pair = false;
    for (const auto &p : a.pairs)
        flag_pair |= p.loc.key.find("flagB") != std::string::npos;
    EXPECT_TRUE(flag_pair);
}

} // namespace
} // namespace sierra::race
