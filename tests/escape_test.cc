/** @file Tests for the thread-escape analysis. */

#include <gtest/gtest.h>

#include "analysis/escape.hh"
#include "analysis/points_to.hh"
#include "corpus/patterns.hh"
#include "framework/known_api.hh"
#include "test_helpers.hh"

namespace sierra::analysis {
namespace {

using air::MethodBuilder;
using air::Type;
using corpus::fieldRef;
namespace names = framework::names;
using test::makePipeline;

/** Run the PA for the first (only) activity of a pipeline. */
std::unique_ptr<PointsToResult>
runPta(test::Pipeline &p)
{
    PointsToAnalysis pta(p.app(), p.detector->plans()[0], {});
    return pta.run();
}

/** Objects of a class-name substring, for locating test allocations. */
std::vector<ObjId>
objectsOfClass(const PointsToResult &r, const std::string &needle)
{
    std::vector<ObjId> out;
    for (ObjId o = 0; o < static_cast<ObjId>(r.objects.size()); ++o) {
        if (r.objects.get(o).klassName.find(needle) !=
            std::string::npos) {
            out.push_back(o);
        }
    }
    return out;
}

TEST(Escape, StaticFieldRootAndClosure)
{
    auto p = makePipeline("esc-static", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("StaticActivity");
        act.on("onCreate", [&](MethodBuilder &b) {
            int rh = b.newReg();
            int rv = b.newReg();
            // Holder$E reaches a static field; Inner$E only through
            // the holder's field (escape closes over field edges).
            b.newObject(rh, "Holder$E");
            b.putStatic(fieldRef("Registry$E", "shared"), rh);
            b.newObject(rv, "Inner$E");
            b.putField(rh, fieldRef("Holder$E", "inner"), rv);
        });
    });
    auto r = runPta(p);
    EscapeAnalysis esc(*r);

    auto holders = objectsOfClass(*r, "Holder$E");
    auto inners = objectsOfClass(*r, "Inner$E");
    ASSERT_EQ(holders.size(), 1u);
    ASSERT_EQ(inners.size(), 1u);
    EXPECT_EQ(esc.reasonOf(holders[0]), EscapeReason::StaticField);
    EXPECT_TRUE(esc.escapes(inners[0]))
        << "field-reachable from a static root";
    EXPECT_EQ(esc.reasonOf(inners[0]), EscapeReason::StaticField)
        << "closure inherits the root's reason";
}

TEST(Escape, SyntheticPayloadRoot)
{
    // messageGuard routes a Message payload through a Handler: the
    // payload is a Synthetic object and escapes as such.
    auto p = makePipeline("esc-payload", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("PayloadActivity");
        corpus::addMessageGuard(f, act);
    });
    auto r = runPta(p);
    EscapeAnalysis esc(*r);

    int synthetic = 0;
    for (ObjId o = 0; o < static_cast<ObjId>(r->objects.size()); ++o) {
        if (r->objects.get(o).kind != ObjKind::Synthetic)
            continue;
        ++synthetic;
        EXPECT_TRUE(esc.escapes(o));
        EXPECT_EQ(esc.reasonOf(o), EscapeReason::SyntheticPayload);
    }
    EXPECT_GT(synthetic, 0) << "the pattern creates Message payloads";
}

TEST(Escape, MultiActionRoot)
{
    // threadRace: the activity object is reached by both the
    // background thread's run() and the GUI callback.
    auto p = makePipeline("esc-multi", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("MultiActivity");
        corpus::addThreadRace(f, act);
    });
    auto r = runPta(p);
    EscapeAnalysis esc(*r);

    auto activities = objectsOfClass(*r, "MultiActivity");
    ASSERT_FALSE(activities.empty());
    EXPECT_TRUE(esc.escapes(activities[0]));
    EXPECT_EQ(esc.reasonOf(activities[0]), EscapeReason::MultiAction);
    EXPECT_GT(esc.numEscaping(), 0);
    EXPECT_LE(esc.numEscaping(), esc.numObjects());
}

TEST(Escape, LocalScratchDoesNotEscape)
{
    // A buffer allocated, written and read by a single action stays
    // thread-local even though it flows through heap fields.
    auto p = makePipeline("esc-local", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("LocalActivity");
        act.on("onCreate", [&](MethodBuilder &b) {
            int rs = b.newReg();
            int rv = b.newReg();
            b.newObject(rs, "Scratch$L");
            b.newObject(rv, names::object);
            b.putField(rs, fieldRef("Scratch$L", "buf"), rv);
            b.getField(rv, rs, fieldRef("Scratch$L", "buf"));
        });
    });
    auto r = runPta(p);
    EscapeAnalysis esc(*r);

    auto scratch = objectsOfClass(*r, "Scratch$L");
    ASSERT_EQ(scratch.size(), 1u);
    EXPECT_FALSE(esc.escapes(scratch[0]));
    EXPECT_EQ(esc.reasonOf(scratch[0]), EscapeReason::None);
    EXPECT_STREQ(escapeReasonName(esc.reasonOf(scratch[0])), "none");
}

TEST(Escape, ReasonNamesAreStable)
{
    EXPECT_STREQ(escapeReasonName(EscapeReason::None), "none");
    EXPECT_STREQ(escapeReasonName(EscapeReason::StaticField),
                 "static-field");
    EXPECT_STREQ(escapeReasonName(EscapeReason::SyntheticPayload),
                 "synthetic-payload");
    EXPECT_STREQ(escapeReasonName(EscapeReason::MultiAction),
                 "multi-action");
}

} // namespace
} // namespace sierra::analysis
