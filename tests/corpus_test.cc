/** @file Tests for the corpus: named apps, generator, ground truth. */

#include <gtest/gtest.h>

#include "air/verifier.hh"
#include "corpus/generator.hh"
#include "corpus/named_apps.hh"
#include "corpus/patterns.hh"

namespace sierra::corpus {
namespace {

TEST(NamedApps, TwentySpecs)
{
    EXPECT_EQ(namedAppSpecs().size(), 20u);
    for (const auto &spec : namedAppSpecs()) {
        EXPECT_FALSE(spec.name.empty());
        EXPECT_GT(spec.bytecodeKb, 0);
        EXPECT_GE(spec.activities, 1);
        EXPECT_FALSE(spec.signaturePatterns.empty());
    }
    EXPECT_EQ(namedAppSpec("OpenSudoku").signaturePatterns[0],
              "guardedTimer")
        << "OpenSudoku carries the paper's Fig. 8 pattern";
}

/** Every named app builds, verifies, and seeds ground truth. */
class NamedAppBuild : public ::testing::TestWithParam<int>
{
};

TEST_P(NamedAppBuild, BuildsAndVerifies)
{
    const NamedAppSpec &spec = namedAppSpecs()[GetParam()];
    BuiltApp built = buildNamedApp(spec);
    EXPECT_EQ(built.app->name(), spec.name);
    // ICC patterns add target activities beyond the spec count.
    EXPECT_GE(
        static_cast<int>(built.app->manifest().activities.size()),
        spec.activities);
    EXPECT_TRUE(air::verifyModule(built.app->module()).empty())
        << spec.name;
    EXPECT_FALSE(built.truth.seeded.empty()) << spec.name;
    EXPECT_GT(built.app->codeSize(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    All, NamedAppBuild, ::testing::Range(0, 20),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string n = namedAppSpecs()[info.param].name;
        for (char &c : n) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

TEST(NamedApps, DeterministicBuilds)
{
    BuiltApp a = buildNamedApp("Beem");
    BuiltApp b = buildNamedApp("Beem");
    EXPECT_EQ(a.app->codeSize(), b.app->codeSize());
    EXPECT_EQ(a.truth.seeded.size(), b.truth.seeded.size());
}

TEST(NamedApps, SizesScaleWithSpec)
{
    // Astrid (5.4MB real) must model bigger than VuDroid (63KB real).
    BuiltApp big = buildNamedApp("Astrid");
    BuiltApp small = buildNamedApp("VuDroid");
    EXPECT_GT(big.app->codeSize(), small.app->codeSize());
}

TEST(Generator, FdroidAppsAreDeterministic)
{
    BuiltApp a = buildFdroidApp(17);
    BuiltApp b = buildFdroidApp(17);
    EXPECT_EQ(a.app->codeSize(), b.app->codeSize());
    EXPECT_EQ(a.app->name(), "fdroid-017");
}

/** A sample of the 174 synthetic apps builds and verifies. */
class FdroidBuild : public ::testing::TestWithParam<int>
{
};

TEST_P(FdroidBuild, BuildsAndVerifies)
{
    BuiltApp built = buildFdroidApp(GetParam());
    EXPECT_TRUE(air::verifyModule(built.app->module()).empty());
    EXPECT_FALSE(built.app->manifest().activities.empty());
}

INSTANTIATE_TEST_SUITE_P(Sample, FdroidBuild,
                         ::testing::Values(0, 1, 13, 42, 99, 150, 173));

TEST(Patterns, CatalogShape)
{
    const auto &catalog = patternCatalog();
    EXPECT_EQ(catalog.size(), 31u);
    int true_races = 0;
    int traps = 0;
    int deadlocks = 0;
    for (const auto &entry : catalog) {
        EXPECT_NE(entry.fn, nullptr);
        true_races += entry.seededTrueRaces;
        traps += entry.seededTraps;
        deadlocks += entry.seededDeadlocks;
    }
    EXPECT_GT(true_races, 0);
    EXPECT_GT(traps, 0);
    EXPECT_GT(deadlocks, 0);
}

/** The random-draw pool is pinned to the first 21 catalog entries —
 *  growing the catalog must never reshuffle existing synthetic apps. */
TEST(Patterns, RandomPoolIsFrozenCatalogPrefix)
{
    const auto &pool = randomPatternPool();
    const auto &catalog = patternCatalog();
    ASSERT_EQ(pool.size(), 21u);
    ASSERT_GE(catalog.size(), pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
        EXPECT_STREQ(pool[i].name, catalog[i].name) << i;
        EXPECT_EQ(pool[i].fn, catalog[i].fn) << i;
    }
}

TEST(Patterns, SeedCountsMatchCatalog)
{
    for (const auto &entry : patternCatalog()) {
        AppFactory factory(std::string("probe-") + entry.name);
        auto &act = factory.addActivity("ProbeActivity");
        entry.fn(factory, act);
        BuiltApp built = factory.finish();
        int true_races = 0;
        int traps = 0;
        for (const auto &seed : built.truth.seeded) {
            if (seed.cls == SeedClass::TrueRace)
                ++true_races;
            else
                ++traps;
        }
        EXPECT_EQ(true_races, entry.seededTrueRaces) << entry.name;
        EXPECT_EQ(traps, entry.seededTraps) << entry.name;
        EXPECT_EQ(built.truth.seededDeadlocks, entry.seededDeadlocks)
            << entry.name;
        EXPECT_TRUE(air::verifyModule(built.app->module()).empty())
            << entry.name;
    }
}

TEST(GroundTruth, Scoring)
{
    GroundTruth truth;
    truth.add("A.x", SeedClass::TrueRace, "t1");
    truth.add("A.y", SeedClass::TrueRace, "t2");
    truth.add("A.z", SeedClass::FpTrap, "trap");

    Score s = scoreKeys({"A.x", "A.z", "A.unknown"}, truth);
    EXPECT_EQ(s.truePositives, 1);
    EXPECT_EQ(s.falsePositives, 2) << "trap + unseeded key";
    EXPECT_EQ(s.missedTrueKeys, 1) << "A.y not reported";

    EXPECT_TRUE(truth.isTrueRaceKey("A.x"));
    EXPECT_FALSE(truth.isTrueRaceKey("A.z"));
    EXPECT_TRUE(truth.isSeededKey("A.z"));
    EXPECT_FALSE(truth.isSeededKey("A.q"));
}

} // namespace
} // namespace sierra::corpus
