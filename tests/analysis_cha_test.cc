/** @file Tests for class hierarchy analysis. */

#include <gtest/gtest.h>

#include "air/parser.hh"
#include "analysis/class_hierarchy.hh"

namespace sierra::analysis {
namespace {

const char *kHierarchy = R"(
interface Runner {
    abstract method run(): void;
}
class Base implements Runner {
    field shared: int
    method run(): void regs=1 { @0: return-void }
    method only(): void regs=1 { @0: return-void }
}
class Mid extends Base {
    field own: int
    method run(): void regs=1 { @0: return-void }
}
class Leaf extends Mid {
}
class Other {
}
)";

class ChaTest : public ::testing::Test
{
  protected:
    std::unique_ptr<air::Module> mod;
    std::unique_ptr<ClassHierarchy> cha;

    void
    SetUp() override
    {
        auto r = air::parseModule(kHierarchy);
        ASSERT_TRUE(r.ok()) << r.status.error;
        mod = std::move(r.module);
        cha = std::make_unique<ClassHierarchy>(*mod);
    }
};

TEST_F(ChaTest, Subtyping)
{
    EXPECT_TRUE(cha->isSubtypeOf("Leaf", "Mid"));
    EXPECT_TRUE(cha->isSubtypeOf("Leaf", "Base"));
    EXPECT_TRUE(cha->isSubtypeOf("Leaf", "Runner"));
    EXPECT_TRUE(cha->isSubtypeOf("Base", "Runner"));
    EXPECT_TRUE(cha->isSubtypeOf("Base", "Base"));
    EXPECT_FALSE(cha->isSubtypeOf("Base", "Mid"));
    EXPECT_FALSE(cha->isSubtypeOf("Other", "Runner"));
    EXPECT_FALSE(cha->isSubtypeOf("Unknown", "Base"));
    EXPECT_TRUE(cha->isSubtypeOf("Unknown", "Unknown"));
}

TEST_F(ChaTest, VirtualDispatch)
{
    air::Method *leaf_run = cha->resolveVirtual("Leaf", "run");
    ASSERT_NE(leaf_run, nullptr);
    EXPECT_EQ(leaf_run->owner()->name(), "Mid")
        << "Leaf inherits Mid's override";
    air::Method *base_run = cha->resolveVirtual("Base", "run");
    ASSERT_NE(base_run, nullptr);
    EXPECT_EQ(base_run->owner()->name(), "Base");
    air::Method *only = cha->resolveVirtual("Leaf", "only");
    ASSERT_NE(only, nullptr);
    EXPECT_EQ(only->owner()->name(), "Base");
    EXPECT_EQ(cha->resolveVirtual("Leaf", "nope"), nullptr);
    EXPECT_EQ(cha->resolveVirtual("Unknown", "run"), nullptr);
}

TEST_F(ChaTest, ConcreteSubtypes)
{
    auto runners = cha->concreteSubtypes("Runner");
    // Base, Mid, Leaf (Runner itself is an interface).
    EXPECT_EQ(runners.size(), 3u);
    auto mids = cha->concreteSubtypes("Mid");
    EXPECT_EQ(mids.size(), 2u);
    EXPECT_TRUE(cha->concreteSubtypes("Unknown").empty());
}

TEST_F(ChaTest, FieldResolution)
{
    const air::Field *f = cha->resolveField("Leaf", "shared");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->type.kind(), air::TypeKind::Int);
    EXPECT_EQ(cha->declaringClassOfField("Leaf", "shared"), "Base");
    EXPECT_EQ(cha->declaringClassOfField("Leaf", "own"), "Mid");
    EXPECT_EQ(cha->declaringClassOfField("Leaf", "nope"), "");
    EXPECT_EQ(cha->resolveField("Other", "shared"), nullptr);
}

} // namespace
} // namespace sierra::analysis
