/** @file Tests for the UNDEAD-style deadlock client: cycle detection
 *  over the lock-dependency graph, provenance, and the pipeline
 *  plumbing (report section, --no-deadlock, determinism). */

#include <gtest/gtest.h>

#include "analysis/deadlock.hh"
#include "corpus/named_apps.hh"
#include "corpus/patterns.hh"
#include "sierra/detector.hh"

namespace sierra {
namespace {

corpus::BuiltApp
probeApp(const char *pattern_name)
{
    for (const auto &entry : corpus::patternCatalog()) {
        if (std::string(entry.name) == pattern_name) {
            corpus::AppFactory factory(std::string("probe-") +
                                       pattern_name);
            auto &act = factory.addActivity("ProbeActivity");
            entry.fn(factory, act);
            return factory.finish();
        }
    }
    ADD_FAILURE() << "unknown pattern " << pattern_name;
    return corpus::AppFactory("empty").finish();
}

TEST(Deadlock, EdgeAndFindingToString)
{
    analysis::DeadlockEdge e;
    e.heldLock = "lockA";
    e.acquiredLock = "lockB";
    e.method = "W.run";
    e.instrIdx = 4;
    e.actionLabel = "W.run";
    EXPECT_EQ(e.toString(),
              "acquire lockB holding lockA at W.run@4 [W.run]");

    analysis::DeadlockEdge back = e;
    back.heldLock = "lockB";
    back.acquiredLock = "lockA";
    analysis::DeadlockFinding f;
    f.edges = {e, back};
    std::string s = f.toString();
    EXPECT_NE(s.find("cycle"), std::string::npos);
    EXPECT_NE(s.find("W.run@4"), std::string::npos);
}

TEST(Deadlock, CyclicAcquisitionIsReported)
{
    corpus::BuiltApp built = probeApp("deadlockCycle");
    SierraDetector detector(*built.app);
    AppReport report = detector.analyze({});

    ASSERT_EQ(report.deadlocks.size(), 1u);
    const analysis::DeadlockFinding &f = report.deadlocks[0];
    // A two-lock cycle: each edge acquires the lock the other holds.
    ASSERT_EQ(f.edges.size(), 2u);
    EXPECT_EQ(f.edges[0].heldLock, f.edges[1].acquiredLock);
    EXPECT_EQ(f.edges[0].acquiredLock, f.edges[1].heldLock);
    // Provenance names the two worker threads.
    std::string s = f.toString();
    EXPECT_NE(s.find("Transfer$"), std::string::npos) << s;
    EXPECT_NE(s.find("Audit$"), std::string::npos) << s;

    std::string text = formatReport(report);
    EXPECT_NE(text.find("deadlocks: 1"), std::string::npos) << text;
    EXPECT_NE(text.find("[dl] cycle"), std::string::npos) << text;
}

TEST(Deadlock, ConsistentOrderIsNotReported)
{
    corpus::BuiltApp built = probeApp("deadlockOrdered");
    SierraDetector detector(*built.app);
    AppReport report = detector.analyze({});

    EXPECT_TRUE(report.deadlocks.empty());
    // Empty section is omitted so unaffected reports stay identical.
    EXPECT_EQ(formatReport(report).find("deadlocks:"),
              std::string::npos);
}

TEST(Deadlock, NoDeadlockOptionDisablesTheStage)
{
    corpus::BuiltApp built = probeApp("deadlockCycle");
    SierraDetector detector(*built.app);
    SierraOptions options;
    options.deadlock = false;
    AppReport report = detector.analyze(options);
    EXPECT_TRUE(report.deadlocks.empty());
}

TEST(Deadlock, RunsWithoutLocksetRefutation)
{
    // The stage builds its own lock-set analysis when the refutation
    // stage (the usual producer) is disabled.
    corpus::BuiltApp built = probeApp("deadlockCycle");
    SierraDetector detector(*built.app);
    SierraOptions options;
    options.locksetRefutation = false;
    AppReport report = detector.analyze(options);
    EXPECT_EQ(report.deadlocks.size(), 1u);
}

TEST(Deadlock, FindingsAreDeterministic)
{
    corpus::BuiltApp built = probeApp("deadlockCycle");
    SierraDetector detector(*built.app);
    AppReport a = detector.analyze({});
    AppReport b = detector.analyze({});
    ASSERT_EQ(a.deadlocks.size(), b.deadlocks.size());
    for (size_t i = 0; i < a.deadlocks.size(); ++i)
        EXPECT_EQ(a.deadlocks[i].toString(),
                  b.deadlocks[i].toString());
}

TEST(Deadlock, SeededCyclesAreFoundOnNamedApps)
{
    // Every named app whose signature list seeds a cyclic acquisition
    // reports at least that many cycles; apps seeding none report none
    // of the two-thread kind seeded here.
    int seeded_apps = 0;
    for (const auto &spec : corpus::namedAppSpecs()) {
        corpus::BuiltApp built = corpus::buildNamedApp(spec);
        SierraDetector detector(*built.app);
        AppReport report = detector.analyze({});
        EXPECT_GE(static_cast<int>(report.deadlocks.size()),
                  built.truth.seededDeadlocks)
            << spec.name;
        if (built.truth.seededDeadlocks > 0)
            ++seeded_apps;
    }
    EXPECT_GE(seeded_apps, 1) << "SipDroid seeds deadlockCycle";
}

} // namespace
} // namespace sierra
