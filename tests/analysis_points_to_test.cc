/** @file Tests for the pointer analysis, call graph and action discovery. */

#include <gtest/gtest.h>

#include <set>

#include "corpus/patterns.hh"
#include "framework/known_api.hh"
#include "test_helpers.hh"

namespace sierra::analysis {
namespace {

using air::InvokeKind;
using air::MethodBuilder;
using air::Type;
using corpus::fieldRef;
namespace names = framework::names;
using test::countActions;
using test::findAction;
using test::makePipeline;

/** Run the PA for the first (only) activity of a pipeline. */
std::unique_ptr<PointsToResult>
runPta(test::Pipeline &p,
       ContextPolicy policy = ContextPolicy::ActionSensitive)
{
    PointsToOptions opts;
    opts.ctx.policy = policy;
    PointsToAnalysis pta(p.app(), p.detector->plans()[0], opts);
    return pta.run();
}

TEST(PointsTo, FieldFlowAndThisBinding)
{
    auto p = makePipeline("pta-flow", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("FlowActivity");
        act.addField("holder", Type::object(names::object));
        act.on("onCreate", [&](MethodBuilder &b) {
            int r = b.newReg();
            b.newObject(r, names::object);
            b.putField(b.thisReg(), fieldRef("FlowActivity", "holder"),
                       r);
        });
        act.on("onResume", [&](MethodBuilder &b) {
            int r = b.newReg();
            b.getField(r, b.thisReg(),
                       fieldRef("FlowActivity", "holder"));
        });
    });
    auto r = runPta(p);

    // The onResume read sees the object allocated in onCreate.
    int resume = findAction(*r, "onResume");
    ASSERT_GE(resume, 0);
    NodeId node = r->actions.get(resume).entryNode;
    ASSERT_GE(node, 0);
    const air::Method *m = r->cg.node(node).method;
    // onResume body: @0 getfield into the first temp register.
    const auto &pts = r->pointsTo(node, m->firstTempReg());
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(r->objects.get(*pts.begin()).klassName, names::object);
}

TEST(PointsTo, LifecycleActionsCreatedPerHarnessSite)
{
    auto p = makePipeline("pta-actions", [](corpus::AppFactory &f) {
        f.addActivity("EmptyActivity");
    });
    auto r = runPta(p);
    // Harness invokes onPause at 3 distinct sites (2 loop cycles + the
    // exit sequence); each is its own action even though the activity
    // inherits the framework's bodyless callbacks.
    int pauses = 0;
    for (const auto &a : r->actions.all()) {
        if (a.callbackName == "onPause")
            ++pauses;
    }
    EXPECT_EQ(pauses, 3);
    EXPECT_EQ(countActions(*r, ActionKind::HarnessRoot), 1);
}

TEST(PointsTo, AsyncTaskPhasesBecomeActions)
{
    auto p = makePipeline("pta-async", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("AsyncActivity");
        corpus::addAsyncNewsRace(f, act);
    });
    auto r = runPta(p);
    EXPECT_EQ(countActions(*r, ActionKind::AsyncBackground), 1);
    EXPECT_EQ(countActions(*r, ActionKind::AsyncPost), 1);
    EXPECT_EQ(countActions(*r, ActionKind::Gui), 2)
        << "click + scroll listeners";

    int bg = findAction(*r, "doInBackground");
    int post = findAction(*r, "onPostExecute");
    ASSERT_GE(bg, 0);
    ASSERT_GE(post, 0);
    EXPECT_EQ(r->actions.get(bg).affinity, ThreadAffinity::Background);
    EXPECT_EQ(r->actions.get(post).affinity,
              ThreadAffinity::MainLooper);
    // Both phases are created by the click listener's execute() call.
    int click = findAction(*r, "onClick");
    EXPECT_EQ(r->actions.get(bg).creator, click);
}

TEST(PointsTo, ThreadRunnableTarget)
{
    auto p = makePipeline("pta-thread", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("ThreadActivity");
        corpus::addThreadRace(f, act);
    });
    auto r = runPta(p);
    int run = findAction(*r, "Worker");
    ASSERT_GE(run, 0);
    EXPECT_EQ(r->actions.get(run).kind, ActionKind::ThreadRun);
    EXPECT_EQ(r->actions.get(run).affinity, ThreadAffinity::Background);
    EXPECT_EQ(r->looperOfAction(run), -1);
}

TEST(PointsTo, MessageWhatConstantPropagation)
{
    auto p = makePipeline("pta-msg", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("MsgActivity");
        corpus::addMessageGuard(f, act);
    });
    auto r = runPta(p);
    std::set<int> whats;
    for (const auto &a : r->actions.all()) {
        if (a.kind == ActionKind::PostedMessage)
            whats.insert(a.messageWhat);
    }
    EXPECT_EQ(whats, (std::set<int>{1, 2}))
        << "each sender's constant what is recorded on its action";
}

TEST(PointsTo, InflatedViewContextAliasing)
{
    auto p = makePipeline("pta-view", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("ViewActivity");
        framework::Widget w;
        w.id = 777;
        w.name = "btn";
        w.widgetClass = names::button;
        act.layout().addWidget(w);
        act.addField("v1", Type::object(names::view));
        act.addField("v2", Type::object(names::view));
        act.on("onCreate", [&](MethodBuilder &b) {
            int rid = b.newReg();
            int rv = b.newReg();
            b.constInt(rid, 777);
            b.callTo(rv, b.thisReg(), "ViewActivity", "findViewById",
                     {rid});
            b.putField(b.thisReg(), fieldRef("ViewActivity", "v1"), rv);
        });
        act.on("onResume", [&](MethodBuilder &b) {
            int rid = b.newReg();
            int rv = b.newReg();
            b.constInt(rid, 777);
            b.callTo(rv, b.thisReg(), "ViewActivity", "findViewById",
                     {rid});
            b.putField(b.thisReg(), fieldRef("ViewActivity", "v2"), rv);
        });
    });
    auto r = runPta(p);
    // Both lookups with the same id resolve to the same abstract view.
    std::set<ObjId> views;
    for (const auto &[key, pts] : r->fieldPts) {
        if (r->keyName(key.second) == "ViewActivity.v1" ||
            r->keyName(key.second) == "ViewActivity.v2") {
            for (ObjId o : pts)
                views.insert(o);
        }
    }
    ASSERT_EQ(views.size(), 1u);
    EXPECT_EQ(r->objects.get(*views.begin()).kind,
              ObjKind::InflatedView);
    EXPECT_EQ(r->objects.get(*views.begin()).klassName, names::button);
}

TEST(PointsTo, ActionSensitivitySeparatesAllocations)
{
    auto build = [](corpus::AppFactory &f) {
        auto &act = f.addActivity("AliasActivity");
        corpus::addActionAliasTrap(f, act);
    };
    auto p1 = makePipeline("pta-as", build);
    auto r_as = runPta(p1, ContextPolicy::ActionSensitive);
    auto p2 = makePipeline("pta-hybrid", build);
    auto r_hy = runPta(p2, ContextPolicy::Hybrid);

    // Count distinct abstract Buffer objects.
    auto count_buffers = [](const PointsToResult &r) {
        int n = 0;
        for (size_t i = 0; i < r.objects.size(); ++i) {
            if (r.objects.get(static_cast<ObjId>(i))
                    .klassName.rfind("Buffer$", 0) == 0) {
                ++n;
            }
        }
        return n;
    };
    EXPECT_GE(count_buffers(*r_as), 2)
        << "action-sensitive contexts separate per-action buffers";
    EXPECT_EQ(count_buffers(*r_hy), 1)
        << "hybrid k=1 merges the allocation (paper Section 3.3)";
}

TEST(PointsTo, HandlerLooperAssociation)
{
    auto p = makePipeline("pta-handler", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("HandlerActivity");
        corpus::addGuardedTimer(f, act);
    });
    auto r = runPta(p);
    int run = findAction(*r, "Timer");
    ASSERT_GE(run, 0);
    EXPECT_EQ(r->actions.get(run).kind, ActionKind::PostedRunnable);
    EXPECT_TRUE(r->actions.get(run).runsOnLooper());
    EXPECT_EQ(r->looperOfAction(run), r->mainLooperObj);
}

TEST(PointsTo, SelfRepostFoldsIntoBoundedActions)
{
    auto p = makePipeline("pta-repost", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("RepostActivity");
        corpus::addGuardedTimer(f, act);
    });
    auto r = runPta(p);
    // The timer posts itself via postDelayed; folding must keep the
    // action count finite and small.
    EXPECT_LE(countActions(*r, ActionKind::PostedRunnable), 3);
}

TEST(PointsTo, ReceiverActionBindsSystemIntent)
{
    auto p = makePipeline("pta-recv", [](corpus::AppFactory &f) {
        auto &act = f.addActivity("RecvActivity");
        corpus::addReceiverDbRace(f, act);
    });
    auto r = runPta(p);
    int recv = findAction(*r, "onReceive");
    ASSERT_GE(recv, 0);
    EXPECT_EQ(r->actions.get(recv).kind, ActionKind::Receive);
    // The registering action is onCreate.
    int creator = r->actions.get(recv).creator;
    EXPECT_EQ(r->actions.get(creator).callbackName, "onCreate");
}

TEST(PointsTo, ContextPolicySweepRuns)
{
    for (ContextPolicy policy :
         {ContextPolicy::Insensitive, ContextPolicy::KCfa,
          ContextPolicy::KObj, ContextPolicy::Hybrid,
          ContextPolicy::ActionSensitive}) {
        auto p = makePipeline("pta-sweep", [](corpus::AppFactory &f) {
            auto &act = f.addActivity("SweepActivity");
            corpus::addOrderedPosts(f, act);
            corpus::addThreadRace(f, act);
        });
        auto r = runPta(p, policy);
        EXPECT_GT(r->numRealActions(), 0)
            << contextPolicyName(policy);
        EXPECT_GT(r->cg.numNodes(), 0) << contextPolicyName(policy);
    }
}

} // namespace
} // namespace sierra::analysis
