/** @file Tests for the optional index-sensitive array analysis. */

#include <gtest/gtest.h>

#include "analysis/array_keys.hh"
#include "corpus/named_apps.hh"
#include "corpus/patterns.hh"
#include "framework/known_api.hh"
#include "race/access.hh"
#include "test_helpers.hh"

namespace sierra {
namespace {

using test::makePipeline;

TEST(ArrayKeys, Shapes)
{
    EXPECT_EQ(analysis::arrayWildcardKey("Slot[]"), "Slot[].$elems");
    EXPECT_EQ(analysis::arrayElementKey("Slot[]", 3),
              "Slot[].$elem#3");
    EXPECT_TRUE(analysis::isArrayKey("Slot[].$elems"));
    EXPECT_TRUE(analysis::isArrayKey("Slot[].$elem#0"));
    EXPECT_FALSE(analysis::isArrayKey("Slot.field"));
    EXPECT_TRUE(analysis::isArrayWildcardKey("Slot[].$elems"));
    EXPECT_FALSE(analysis::isArrayWildcardKey("Slot[].$elem#0"));
}

/** Build a MemLoc from a raw key string, deriving array flags the way
 *  the extraction stage does when it interns keys. */
race::MemLoc
testLoc(int obj, const std::string &key)
{
    static util::StringInterner table;
    uint8_t flags = 0;
    if (analysis::isArrayKey(key))
        flags |= analysis::FieldKey::kArray;
    if (analysis::isArrayWildcardKey(key))
        flags |= analysis::FieldKey::kWildcard;
    race::MemLoc l;
    l.obj = obj;
    l.key = analysis::FieldKey::intern(table, key, flags);
    return l;
}

TEST(ArrayKeys, AliasRules)
{
    race::MemLoc elem0 = testLoc(7, "S[].$elem#0");
    race::MemLoc elem1 = testLoc(7, "S[].$elem#1");
    race::MemLoc wild = testLoc(7, "S[].$elems");
    race::MemLoc other_obj = testLoc(8, "S[].$elem#0");
    race::MemLoc field = testLoc(7, "S.f");

    EXPECT_TRUE(race::locsMayAlias(elem0, elem0));
    EXPECT_FALSE(race::locsMayAlias(elem0, elem1))
        << "distinct constant indices do not alias";
    EXPECT_TRUE(race::locsMayAlias(elem0, wild));
    EXPECT_TRUE(race::locsMayAlias(wild, elem1));
    EXPECT_FALSE(race::locsMayAlias(elem0, other_obj));
    EXPECT_FALSE(race::locsMayAlias(field, wild));
}

/** The arrayIndexTrap app under both array models. */
struct TrapRun {
    AppReport report;
    corpus::Score score;
};

TrapRun
runTrap(bool index_sensitive)
{
    corpus::AppFactory factory(index_sensitive ? "trap-is" : "trap-ii");
    auto &act = factory.addActivity("TrapActivity");
    corpus::addArrayIndexTrap(factory, act);
    corpus::BuiltApp built = factory.finish();
    SierraDetector detector(*built.app);
    SierraOptions options;
    options.pta.indexSensitiveArrays = index_sensitive;
    TrapRun out{detector.analyze(options), {}};
    out.score = corpus::scoreReport(out.report, built.truth);
    return out;
}

TEST(IndexSensitivity, RemovesTheKnownFpClass)
{
    TrapRun insensitive = runTrap(false);
    EXPECT_EQ(insensitive.score.knownFalsePositives, 1)
        << "default model reports the disjoint-slot race (paper 6.5)";

    TrapRun sensitive = runTrap(true);
    EXPECT_EQ(sensitive.score.falsePositives, 0)
        << "per-element locations prove the slots disjoint";
    EXPECT_LT(sensitive.report.racyPairs, insensitive.report.racyPairs);
}

TEST(IndexSensitivity, UnknownIndexStillAliases)
{
    // A writer with a non-constant index must still race against a
    // constant-index reader.
    corpus::AppFactory factory("trap-unknown");
    auto &act = factory.addActivity("UnkActivity");
    std::string act_cls = act.name();
    air::Module &mod = factory.app().module();
    mod.addClass("Cell$u", framework::names::object);
    act.addField("cells", air::Type::array("Cell$u"));
    int w1 = factory.nextViewId();
    int w2 = factory.nextViewId();

    framework::Widget wa;
    wa.id = w1;
    wa.name = "a";
    wa.widgetClass = framework::names::button;
    wa.xmlOnClick = "onFixed";
    act.layout().addWidget(wa);
    framework::Widget wb;
    wb.id = w2;
    wb.name = "b";
    wb.widgetClass = framework::names::button;
    wb.xmlOnClick = "onAny";
    act.layout().addWidget(wb);

    act.on("onCreate", [&](air::MethodBuilder &b) {
        int rlen = b.newReg();
        int rarr = b.newReg();
        b.constInt(rlen, 4);
        b.newArray(rarr, "Cell$u", rlen);
        b.putField(b.thisReg(), {act_cls, "cells"}, rarr);
    });
    // Fixed index 0 write.
    act.klass()->addMethod("onFixed",
                           {air::Type::object(framework::names::view)},
                           air::Type::voidTy(), false);
    {
        air::MethodBuilder b(act.klass()->findMethod("onFixed"));
        int rarr = b.newReg();
        int ri = b.newReg();
        int rv = b.newReg();
        b.getField(rarr, b.thisReg(), {act_cls, "cells"});
        b.constInt(ri, 0);
        b.newObject(rv, "Cell$u");
        b.arrayPut(rarr, ri, rv);
        b.finish();
    }
    // Unknown index write (index from Nondet).
    act.klass()->addMethod("onAny",
                           {air::Type::object(framework::names::view)},
                           air::Type::voidTy(), false);
    {
        air::MethodBuilder b(act.klass()->findMethod("onAny"));
        int rarr = b.newReg();
        int ri = b.newReg();
        int rv = b.newReg();
        b.getField(rarr, b.thisReg(), {act_cls, "cells"});
        b.callStatic(ri, "sierra.Nondet", "choose");
        b.newObject(rv, "Cell$u");
        b.arrayPut(rarr, ri, rv);
        b.finish();
    }

    corpus::BuiltApp built = factory.finish();
    SierraDetector detector(*built.app);
    SierraOptions options;
    options.pta.indexSensitiveArrays = true;
    AppReport report = detector.analyze(options);

    bool elems_race = false;
    for (const auto &race : report.races) {
        if (!race.refuted && analysis::isArrayKey(race.fieldKey))
            elems_race = true;
    }
    EXPECT_TRUE(elems_race)
        << "wildcard writer vs fixed-index writer must still race";
}

TEST(IndexSensitivity, OtherResultsUnchanged)
{
    // The option must not disturb non-array analyses.
    auto run = [](bool sensitive) {
        corpus::BuiltApp built = corpus::buildNamedApp("OpenSudoku");
        SierraDetector detector(*built.app);
        SierraOptions options;
        options.pta.indexSensitiveArrays = sensitive;
        return detector.analyze(options);
    };
    AppReport a = run(false);
    AppReport b = run(true);
    EXPECT_EQ(a.actions, b.actions);
    EXPECT_EQ(a.hbEdges, b.hbEdges);
}

} // namespace
} // namespace sierra
