/** @file Focused tests for HB rule 5: inter-procedural, intra-action
 *  domination via ICFG removal-reachability (paper Section 4.3 #5). */

#include <gtest/gtest.h>

#include "framework/known_api.hh"
#include "hb/rules.hh"
#include "test_helpers.hh"

namespace sierra::hb {
namespace {

using air::CondKind;
using air::InvokeKind;
using air::MethodBuilder;
using air::Type;
namespace names = framework::names;
using test::findAction;
using test::makePipeline;

/** A runnable class writing one marker field on the activity. */
void
makeRunnable(corpus::AppFactory &f, const std::string &cls,
             const std::string &act_cls, const std::string &field)
{
    air::Klass *k = f.app().module().addClass(cls, names::object);
    k->addInterface(names::runnable);
    k->addField({"act", Type::object(act_cls), false});
    air::Method *init = k->addMethod(
        "<init>", {Type::object(act_cls)}, Type::voidTy(), false);
    {
        MethodBuilder b(init);
        b.putField(b.thisReg(), {cls, "act"}, b.paramReg(0));
        b.finish();
    }
    air::Method *run = k->addMethod("run", {}, Type::voidTy(), false);
    {
        MethodBuilder b(run);
        int ra = b.newReg();
        int rn = b.newReg();
        b.getField(ra, b.thisReg(), {cls, "act"});
        b.newObject(rn, names::object);
        b.putField(ra, {act_cls, field}, rn);
        b.finish();
    }
}

/**
 * Build an activity whose onCreate calls two helper methods; each
 * helper posts one runnable to the main looper. `guarded` wraps the
 * second helper call in a nondeterministic branch.
 */
test::Pipeline
makeApp(const std::string &name, bool guarded)
{
    return makePipeline(name, [&](corpus::AppFactory &f) {
        auto &act = f.addActivity("R5Activity");
        std::string act_cls = act.name();
        act.addField("outA", Type::object(names::object));
        act.addField("outB", Type::object(names::object));
        act.addField("handler", Type::object(names::handler));
        makeRunnable(f, "R5First", act_cls, "outA");
        makeRunnable(f, "R5Second", act_cls, "outB");

        // Helpers on the activity: each posts one runnable.
        for (const char *helper :
             {"postFirst", "postSecond"}) {
            air::Method *m = act.klass()->addMethod(
                helper, {}, Type::voidTy(), false);
            MethodBuilder b(m);
            int rh = b.newReg();
            int rr = b.newReg();
            std::string cls = std::string(helper) == "postFirst"
                                  ? "R5First"
                                  : "R5Second";
            b.getField(rh, b.thisReg(), {act_cls, "handler"});
            b.newObject(rr, cls);
            b.invoke(-1, InvokeKind::Special, {cls, "<init>", 0},
                     {rr, b.thisReg()});
            b.call(rh, names::handler, "post", {rr});
            b.finish();
        }

        act.on("onCreate", [=](MethodBuilder &b) {
            int rh = b.newReg();
            b.newObject(rh, names::handler);
            b.invoke(-1, InvokeKind::Special,
                     {names::handler, "<init>", 0}, {rh});
            b.putField(b.thisReg(), {act_cls, "handler"}, rh);
            b.call(b.thisReg(), act_cls, "postFirst");
            if (guarded) {
                // Nondeterministic: postSecond may run without
                // postFirst's site being on every path... it still is
                // (postFirst dominates), but the branch exercises the
                // path-sensitivity of the reachability walk.
                air::Label skip = b.newLabel();
                int rc = b.newReg();
                b.callStatic(rc, "sierra.Nondet", "choose");
                b.ifz(rc, CondKind::Eq, skip);
                b.call(b.thisReg(), act_cls, "postSecond");
                b.bind(skip);
            } else {
                b.call(b.thisReg(), act_cls, "postSecond");
            }
        });
    });
}

struct Built {
    test::Pipeline pipeline;
    std::unique_ptr<analysis::PointsToResult> pta;
    std::unique_ptr<Shbg> shbg;
};

Built
analyze(test::Pipeline p, HbOptions options = {})
{
    Built b{std::move(p), nullptr, nullptr};
    analysis::PointsToAnalysis pta(
        b.pipeline.app(), b.pipeline.detector->plans()[0], {});
    b.pta = pta.run();
    HbBuilder builder(*b.pta, b.pipeline.detector->plans()[0],
                      b.pipeline.app(), options);
    b.shbg = builder.build();
    return b;
}

TEST(HbRule5, PostsInSeparateMethodsAreOrdered)
{
    Built b = analyze(makeApp("r5-plain", false));
    int first = findAction(*b.pta, "R5First");
    int second = findAction(*b.pta, "R5Second");
    ASSERT_GE(first, 0);
    ASSERT_GE(second, 0);
    EXPECT_TRUE(b.shbg->reaches(first, second))
        << "removing postFirst's site makes postSecond's unreachable";
    EXPECT_GE(b.shbg->numEdgesByRule(HbRule::InterProcDom), 1);
}

TEST(HbRule5, GuardedSecondPostStillOrdered)
{
    // Even under the branch, every path to postSecond's site passes
    // through postFirst's: the edge must still be added.
    Built b = analyze(makeApp("r5-guarded", true));
    int first = findAction(*b.pta, "R5First");
    int second = findAction(*b.pta, "R5Second");
    ASSERT_GE(first, 0);
    ASSERT_GE(second, 0);
    EXPECT_TRUE(b.shbg->reaches(first, second));
}

TEST(HbRule5, DisabledRuleLeavesThemUnordered)
{
    HbOptions options;
    options.enableRule5 = false;
    Built b = analyze(makeApp("r5-off", false), options);
    int first = findAction(*b.pta, "R5First");
    int second = findAction(*b.pta, "R5Second");
    EXPECT_TRUE(b.shbg->unordered(first, second))
        << "no other rule orders posts in separate methods";
}

TEST(HbRule5, NoEdgeWhenEitherOrderPossible)
{
    // postSecond reachable without passing postFirst: branch picks one
    // of the two helpers, so neither dominates the other.
    auto p = makePipeline("r5-either", [&](corpus::AppFactory &f) {
        auto &act = f.addActivity("EitherActivity");
        std::string act_cls = act.name();
        act.addField("outA", Type::object(names::object));
        act.addField("outB", Type::object(names::object));
        act.addField("handler", Type::object(names::handler));
        makeRunnable(f, "EFirst", act_cls, "outA");
        makeRunnable(f, "ESecond", act_cls, "outB");
        for (const char *helper : {"postA", "postB"}) {
            air::Method *m = act.klass()->addMethod(
                helper, {}, Type::voidTy(), false);
            MethodBuilder b(m);
            int rh = b.newReg();
            int rr = b.newReg();
            std::string cls =
                std::string(helper) == "postA" ? "EFirst" : "ESecond";
            b.getField(rh, b.thisReg(), {act_cls, "handler"});
            b.newObject(rr, cls);
            b.invoke(-1, InvokeKind::Special, {cls, "<init>", 0},
                     {rr, b.thisReg()});
            b.call(rh, names::handler, "post", {rr});
            b.finish();
        }
        act.on("onCreate", [=](MethodBuilder &b) {
            int rh = b.newReg();
            b.newObject(rh, names::handler);
            b.invoke(-1, InvokeKind::Special,
                     {names::handler, "<init>", 0}, {rh});
            b.putField(b.thisReg(), {act_cls, "handler"}, rh);
            air::Label other = b.newLabel();
            air::Label end = b.newLabel();
            int rc = b.newReg();
            b.callStatic(rc, "sierra.Nondet", "choose");
            b.ifz(rc, CondKind::Eq, other);
            b.call(b.thisReg(), act_cls, "postA");
            b.call(b.thisReg(), act_cls, "postB");
            b.gotoLabel(end);
            b.bind(other);
            b.call(b.thisReg(), act_cls, "postB");
            b.call(b.thisReg(), act_cls, "postA");
            b.bind(end);
        });
    });
    Built b = analyze(std::move(p));
    int first = findAction(*b.pta, "EFirst");
    int second = findAction(*b.pta, "ESecond");
    ASSERT_GE(first, 0);
    ASSERT_GE(second, 0);
    EXPECT_TRUE(b.shbg->unordered(first, second))
        << "both post orders are reachable: no rule-5 edge";
}

} // namespace
} // namespace sierra::hb
