/**
 * @file
 * The artifact store's contracts (docs/CACHING.md): content-hash keys
 * are pure functions of the input (stable across fresh builds, jobs
 * counts and processes), the dependency index computes exact dirty
 * closures, serializations round-trip byte-identically, and a
 * version-stamp mismatch discards the on-disk generation.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "analysis/store.hh"
#include "corpus/named_apps.hh"
#include "framework/app_text.hh"
#include "sierra/detector.hh"

namespace sierra {
namespace {

namespace store = analysis::store;
namespace fs = std::filesystem;

struct TempDir {
    std::string path;
    TempDir()
    {
        path = (fs::temp_directory_path() /
                ("sierra_store_test_" +
                 std::to_string(::getpid()) + "_" +
                 std::to_string(counter())))
                   .string();
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    static int
    counter()
    {
        static int n = 0;
        return n++;
    }
};

TEST(Store, MethodHashesStableAcrossFreshBuilds)
{
    // Two independent builds of the same corpus app (fresh modules,
    // fresh arenas, different pointer values) must produce identical
    // per-method env hashes: keys depend only on content.
    corpus::BuiltApp a = corpus::buildNamedApp("OpenSudoku");
    corpus::BuiltApp b = corpus::buildNamedApp("OpenSudoku");
    SierraDetector da(*a.app), db(*b.app); // generate harnesses too
    EXPECT_EQ(store::hashMethods(*a.app), store::hashMethods(*b.app));
    EXPECT_EQ(store::shapeHash(*a.app), store::shapeHash(*b.app));
}

TEST(Store, MethodHashesStableAcrossParseRoundTrip)
{
    corpus::BuiltApp built = corpus::buildNamedApp("OpenSudoku");
    std::string text = framework::printAppText(*built.app);
    framework::AppTextResult reparsed = framework::parseAppText(text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.error;
    // Harness generation mutates the module; hash only app methods
    // here by not constructing detectors.
    EXPECT_EQ(store::hashMethods(*built.app),
              store::hashMethods(*reparsed.app));
}

TEST(Store, BodyEditChangesMethodHashButNotShape)
{
    corpus::BuiltApp a = corpus::buildNamedApp("OpenSudoku");
    corpus::BuiltApp b = corpus::buildNamedApp("OpenSudoku");

    // Append a no-op to the first app method with a body in b.
    const air::Method *edited = nullptr;
    for (air::Klass *klass : b.app->module().classes()) {
        if (klass->isFramework())
            continue;
        for (const auto &m : klass->methods()) {
            if (m->hasBody()) {
                m->instrs().push_back(air::Instruction{});
                edited = m.get();
                break;
            }
        }
        if (edited)
            break;
    }
    ASSERT_NE(edited, nullptr);

    auto ha = store::hashMethods(*a.app);
    auto hb = store::hashMethods(*b.app);
    EXPECT_NE(ha.at(edited->qualifiedName()),
              hb.at(edited->qualifiedName()));
    int differing = 0;
    for (const auto &[name, hash] : ha) {
        if (hb.at(name) != hash)
            ++differing;
    }
    EXPECT_EQ(differing, 1) << "a body edit must re-key only itself";
    // Instruction lines are stripped from the shape: it is unchanged.
    EXPECT_EQ(store::shapeHash(*a.app), store::shapeHash(*b.app));
}

TEST(Store, ClassSliceChangesRekeyMemberMethods)
{
    corpus::BuiltApp a = corpus::buildNamedApp("OpenSudoku");
    corpus::BuiltApp b = corpus::buildNamedApp("OpenSudoku");
    // Retype-by-addition: a new field changes the owner's class slice
    // and with it every member method's env hash.
    air::Klass *victim = nullptr;
    for (air::Klass *klass : b.app->module().classes()) {
        if (!klass->isFramework() && !klass->methods().empty()) {
            victim = klass;
            break;
        }
    }
    ASSERT_NE(victim, nullptr);
    uint64_t before = store::classSliceHash(*victim);
    victim->addField(air::Field{"__storeTestField",
                                air::Type::object("java.lang.Object"),
                                false});
    EXPECT_NE(store::classSliceHash(*victim), before);

    auto ha = store::hashMethods(*a.app);
    auto hb = store::hashMethods(*b.app);
    for (const auto &m : victim->methods()) {
        if (m->hasBody())
            EXPECT_NE(ha.at(m->qualifiedName()),
                      hb.at(m->qualifiedName()));
    }
}

TEST(Store, MethodIndexRoundTrip)
{
    std::map<std::string, uint64_t> index{
        {"A.foo", 0x1234abcd5678ef00ULL},
        {"B.bar", 42},
        {"C.<init>", 0},
    };
    std::string blob = store::serializeMethodIndex(index);
    EXPECT_EQ(store::parseMethodIndex(blob), index);
    // Serialization is deterministic (sorted by name).
    EXPECT_EQ(blob, store::serializeMethodIndex(
                        store::parseMethodIndex(blob)));
}

TEST(Store, DepIndexDirtyClosureIsExact)
{
    // main -> helper -> leaf, plus lonely with no edges.
    store::DepIndex dep;
    dep.addEdge("main", "helper");
    dep.addEdge("helper", "leaf");
    dep.addEdge("other", "leaf");

    // Editing the leaf dirties the whole caller chain.
    auto dirty = dep.dirtyClosure({"leaf"});
    EXPECT_EQ(dirty, (std::set<std::string>{"leaf", "helper", "main",
                                            "other"}));
    // Editing a mid-chain method dirties only its callers.
    dirty = dep.dirtyClosure({"helper"});
    EXPECT_EQ(dirty, (std::set<std::string>{"helper", "main"}));
    // Editing a root dirties only itself.
    dirty = dep.dirtyClosure({"main"});
    EXPECT_EQ(dirty, (std::set<std::string>{"main"}));
    // Unknown methods pass through unchanged.
    dirty = dep.dirtyClosure({"lonely"});
    EXPECT_EQ(dirty, (std::set<std::string>{"lonely"}));
}

TEST(Store, DepIndexSerializeRoundTripAndPrune)
{
    store::DepIndex dep;
    dep.addEdge("main", "helper");
    dep.addEdge("helper", "leaf");
    store::DepIndex back = store::DepIndex::parse(dep.serialize());
    EXPECT_EQ(back.serialize(), dep.serialize());
    EXPECT_EQ(back.numEdges(), 2);
    EXPECT_EQ(back.callersOf("leaf"),
              std::vector<std::string>{"helper"});

    back.prune({"main", "helper"}); // leaf was deleted
    EXPECT_EQ(back.numEdges(), 1);
    EXPECT_TRUE(back.callersOf("leaf").empty());
}

TEST(Store, DiskStoreWarmStartsAcrossInstances)
{
    TempDir dir;
    {
        store::Store first(dir.path);
        first.put("kind", "key1", "blob one");
        first.put("kind", "key2", "blob two");
    }
    // A second instance (standing in for a second process) reads the
    // same artifacts back from disk.
    store::Store second(dir.path);
    auto blob = second.get("kind", "key1");
    ASSERT_TRUE(blob.has_value());
    EXPECT_EQ(*blob, "blob one");
    EXPECT_EQ(second.stats().diskReads, 1);
    EXPECT_EQ(second.keys("kind"),
              (std::vector<std::string>{"key1", "key2"}));
}

TEST(Store, VersionMismatchDiscardsGeneration)
{
    TempDir dir;
    {
        store::Store first(dir.path);
        first.put("kind", "key", "old generation");
    }
    {
        // Corrupt the stamp as an older binary would have left it.
        std::ofstream out(fs::path(dir.path) / "VERSION");
        out << "sierra-store schema 0 known-api 0\n";
    }
    store::Store second(dir.path);
    EXPECT_FALSE(second.get("kind", "key").has_value());
    // The stamp is rewritten to the current version.
    std::ifstream in(fs::path(dir.path) / "VERSION");
    std::string stamp((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    EXPECT_EQ(stamp, store::Store::versionStamp());
}

TEST(Store, SccpFactsAndCfgDigestAreDeterministic)
{
    corpus::BuiltApp a = corpus::buildNamedApp("OpenSudoku");
    corpus::BuiltApp b = corpus::buildNamedApp("OpenSudoku");
    const air::Method *ma = nullptr, *mb = nullptr;
    for (air::Klass *klass : a.app->module().classes()) {
        if (klass->isFramework())
            continue;
        for (const auto &m : klass->methods()) {
            if (m->hasBody()) {
                ma = m.get();
                break;
            }
        }
        if (ma)
            break;
    }
    ASSERT_NE(ma, nullptr);
    for (air::Klass *klass : b.app->module().classes()) {
        for (const auto &m : klass->methods()) {
            if (m->qualifiedName() == ma->qualifiedName())
                mb = m.get();
        }
    }
    ASSERT_NE(mb, nullptr);
    EXPECT_EQ(store::sccpFactsBlob(*ma), store::sccpFactsBlob(*mb));
    EXPECT_EQ(store::cfgDigest(*ma), store::cfgDigest(*mb));
    // Round-trip of the fact rows.
    std::string blob = store::sccpFactsBlob(*ma);
    for (const store::SccpFact &f : store::parseSccpFacts(blob)) {
        EXPECT_GE(f.instr, 0);
        EXPECT_GE(f.reg, 0);
    }
}

TEST(Store, ArtifactSerializationRoundTrips)
{
    HarnessArtifact art;
    art.activity = "MainActivity";
    art.actions = 7;
    art.hbEdges = 21;
    art.accessesTotal = 5;
    art.accessesDropped = 1;
    art.locksetRefuted = 2;
    art.enablementRefuted = 1;
    art.races.push_back({"A.m", 3, "B.n", 4, "C.f",
                         "race with\ttab and\nnewline", 9, false,
                         analysis::NullVerdict::Harmful,
                         "null-source A.m:1 -> C.f -> read\tB.n:4"});
    analysis::UseAfterDestroyFinding uad;
    uad.fieldKey = "C.f";
    uad.teardownAction = "onDestroy";
    uad.useAction = "post#1";
    uad.writeMethod = "C.onDestroy";
    uad.readMethod = "C.run";
    uad.writeInstr = 2;
    uad.readInstr = 5;
    art.useAfterDestroy.push_back(uad);
    analysis::DeadlockFinding dl;
    dl.edges.push_back({"lockA", "lockB", "C.m", 1, "post#2"});
    dl.edges.push_back({"lockB", "lockA", "C.n", 3, "post#3"});
    art.deadlocks.push_back(dl);
    art.footprint.emplace_back("A.m", 0xdeadbeefcafef00dULL);
    art.footprint.emplace_back("B.n", 1);

    std::string blob = serializeArtifact(art);
    auto back = parseArtifact(blob);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(serializeArtifact(*back), blob);
    EXPECT_EQ(back->activity, art.activity);
    EXPECT_EQ(back->races.size(), 1u);
    EXPECT_EQ(back->races[0].description,
              "race with\ttab and\nnewline");
    EXPECT_EQ(back->footprint, art.footprint);
    EXPECT_TRUE(back->useAfterDestroy[0] == uad);
    EXPECT_TRUE(back->deadlocks[0] == dl);

    EXPECT_FALSE(parseArtifact("not an artifact").has_value());
    EXPECT_FALSE(parseArtifact("").has_value());
}

TEST(Store, SummaryExportRoundTrips)
{
    analysis::InterConstants::ExportedSummary s;
    s.method = "A.compute";
    s.open = true;
    s.params.resize(2);
    s.params[1] =
        analysis::ConstVal{analysis::ConstVal::State::Const, 42};
    s.ret = analysis::ConstVal{analysis::ConstVal::State::Top, 0};
    analysis::InterConstants::MustWrite w;
    w.field = air::FieldRef{"A", "flag"};
    w.isStatic = true;
    w.exclusive = true;
    w.value = 1;
    s.mustWrites.push_back(w);
    s.callees = {"A.helper", "B.leaf"};

    std::string blob = analysis::serializeSummaries({s});
    auto back = analysis::parseSummaries(blob);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].method, "A.compute");
    EXPECT_TRUE(back[0].open);
    ASSERT_EQ(back[0].params.size(), 2u);
    EXPECT_TRUE(back[0].params[1].isConst());
    EXPECT_EQ(back[0].params[1].value, 42);
    EXPECT_EQ(back[0].callees,
              (std::vector<std::string>{"A.helper", "B.leaf"}));
    ASSERT_EQ(back[0].mustWrites.size(), 1u);
    EXPECT_EQ(back[0].mustWrites[0].field.toString(), "A.flag");
    EXPECT_EQ(analysis::serializeSummaries(back), blob);
}

} // namespace
} // namespace sierra
