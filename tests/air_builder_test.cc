/** @file Tests for MethodBuilder and the instruction model. */

#include <gtest/gtest.h>

#include "air/builder.hh"
#include "air/klass.hh"
#include "air/module.hh"

namespace sierra::air {
namespace {

class BuilderTest : public ::testing::Test
{
  protected:
    Module mod;
    Klass *klass{nullptr};

    void
    SetUp() override
    {
        klass = mod.addClass("Foo", "");
    }
};

TEST_F(BuilderTest, RegisterConvention)
{
    Method *m = klass->addMethod("bar", {Type::intTy(), Type::intTy()},
                                 Type::voidTy(), false);
    EXPECT_EQ(m->thisReg(), 0);
    EXPECT_EQ(m->paramReg(0), 1);
    EXPECT_EQ(m->paramReg(1), 2);
    EXPECT_EQ(m->firstTempReg(), 3);

    Method *s = klass->addMethod("baz", {Type::intTy()},
                                 Type::voidTy(), true);
    EXPECT_EQ(s->paramReg(0), 0);
    EXPECT_EQ(s->firstTempReg(), 1);
}

TEST_F(BuilderTest, EmitsAndFinishes)
{
    Method *m = klass->addMethod("f", {}, Type::voidTy(), false);
    MethodBuilder b(m);
    int r = b.newReg();
    EXPECT_EQ(r, m->firstTempReg());
    b.constInt(r, 42);
    b.finish();
    ASSERT_EQ(m->numInstrs(), 2);
    EXPECT_EQ(m->instr(0).op, Opcode::ConstInt);
    EXPECT_EQ(m->instr(0).intValue, 42);
    // finish() appends the missing terminator.
    EXPECT_EQ(m->instr(1).op, Opcode::ReturnVoid);
    EXPECT_EQ(m->numRegisters(), r + 1);
}

TEST_F(BuilderTest, NoDoubleTerminator)
{
    Method *m = klass->addMethod("f", {}, Type::voidTy(), false);
    MethodBuilder b(m);
    b.retVoid();
    b.finish();
    EXPECT_EQ(m->numInstrs(), 1);
}

TEST_F(BuilderTest, LabelPatching)
{
    Method *m = klass->addMethod("f", {}, Type::voidTy(), false);
    MethodBuilder b(m);
    int r = b.newReg();
    b.constInt(r, 0);
    Label skip = b.newLabel();
    b.ifz(r, CondKind::Eq, skip);
    b.constInt(r, 1);
    b.bind(skip);
    b.retVoid();
    b.finish();
    // @0 const, @1 ifz -> @3, @2 const, @3 return.
    EXPECT_EQ(m->instr(1).op, Opcode::IfZ);
    EXPECT_EQ(m->instr(1).target, 3);
}

TEST_F(BuilderTest, BackwardLabel)
{
    Method *m = klass->addMethod("loop", {}, Type::voidTy(), false);
    MethodBuilder b(m);
    int r = b.newReg();
    Label head = b.newLabel();
    b.bind(head);
    b.constInt(r, 1);
    b.ifz(r, CondKind::Ne, head);
    b.retVoid();
    b.finish();
    EXPECT_EQ(m->instr(1).target, 0);
}

TEST_F(BuilderTest, InvokeShapes)
{
    Method *m = klass->addMethod("f", {}, Type::voidTy(), false);
    MethodBuilder b(m);
    int r = b.newReg();
    int site = b.call(b.thisReg(), "Foo", "g", {r});
    EXPECT_EQ(site, 0);
    const Instruction &call = m->instr(0);
    EXPECT_EQ(call.op, Opcode::Invoke);
    EXPECT_EQ(call.invokeKind, InvokeKind::Virtual);
    EXPECT_EQ(call.method.className, "Foo");
    EXPECT_EQ(call.method.methodName, "g");
    ASSERT_EQ(call.srcs.size(), 2u); // receiver + arg
    EXPECT_EQ(call.srcs[0], 0);
    EXPECT_EQ(call.method.numArgs, 2);

    int site2 = b.callStatic(r, "Foo", "h");
    const Instruction &scall = m->instr(site2);
    EXPECT_EQ(scall.invokeKind, InvokeKind::Static);
    EXPECT_EQ(scall.dst, r);
    b.finish();
}

TEST_F(BuilderTest, AllocationSiteIndices)
{
    Method *m = klass->addMethod("f", {}, Type::voidTy(), false);
    MethodBuilder b(m);
    int r = b.newReg();
    int s1 = b.newObject(r, "A");
    int s2 = b.newObject(r, "B");
    EXPECT_EQ(s1, 0);
    EXPECT_EQ(s2, 1);
    b.finish();
}

TEST_F(BuilderTest, InstructionPredicates)
{
    Instruction gi;
    gi.op = Opcode::Goto;
    EXPECT_TRUE(gi.isBranch());
    EXPECT_TRUE(gi.isTerminator());
    EXPECT_FALSE(gi.isConditionalBranch());

    Instruction ii;
    ii.op = Opcode::If;
    EXPECT_TRUE(ii.isConditionalBranch());
    EXPECT_FALSE(ii.isTerminator());

    Instruction ret;
    ret.op = Opcode::Return;
    EXPECT_TRUE(ret.isTerminator());
}

TEST(AirInstruction, CondHelpers)
{
    EXPECT_EQ(negateCond(CondKind::Eq), CondKind::Ne);
    EXPECT_EQ(negateCond(CondKind::Lt), CondKind::Ge);
    EXPECT_EQ(negateCond(CondKind::Gt), CondKind::Le);
    EXPECT_TRUE(evalCond(CondKind::Le, 3, 3));
    EXPECT_FALSE(evalCond(CondKind::Lt, 3, 3));
    EXPECT_TRUE(evalCond(CondKind::Ne, 1, 2));
}

TEST(AirInstruction, BinOpEval)
{
    EXPECT_EQ(evalBinOp(BinOpKind::Add, 2, 3), 5);
    EXPECT_EQ(evalBinOp(BinOpKind::Sub, 2, 3), -1);
    EXPECT_EQ(evalBinOp(BinOpKind::Mul, 4, 3), 12);
    EXPECT_EQ(evalBinOp(BinOpKind::Div, 7, 2), 3);
    EXPECT_EQ(evalBinOp(BinOpKind::Div, 7, 0), 0) << "div-by-zero guard";
    EXPECT_EQ(evalBinOp(BinOpKind::Rem, 7, 0), 0);
    EXPECT_EQ(evalBinOp(BinOpKind::And, 6, 3), 2);
    EXPECT_EQ(evalBinOp(BinOpKind::Or, 4, 1), 5);
    EXPECT_EQ(evalBinOp(BinOpKind::Xor, 5, 3), 6);
}

TEST(AirInstruction, NameTables)
{
    CondKind c;
    EXPECT_TRUE(condFromName("le", c));
    EXPECT_EQ(c, CondKind::Le);
    EXPECT_FALSE(condFromName("bogus", c));

    BinOpKind bk;
    EXPECT_TRUE(binopFromName("xor", bk));
    EXPECT_EQ(bk, BinOpKind::Xor);

    InvokeKind ik;
    EXPECT_TRUE(invokeKindFromName("interface", ik));
    EXPECT_EQ(ik, InvokeKind::Interface);
}

} // namespace
} // namespace sierra::air
