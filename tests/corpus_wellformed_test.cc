/** @file Every generated corpus app must verify *and* lint clean:
 *  no use-before-def, no unreachable blocks, no dead stores. This
 *  keeps the generators honest -- lint findings in synthetic apps are
 *  generator bugs, not app bugs. */

#include <gtest/gtest.h>

#include "air/verifier.hh"
#include "analysis/lint.hh"
#include "corpus/generator.hh"
#include "corpus/named_apps.hh"
#include "corpus/patterns.hh"

namespace sierra::corpus {
namespace {

std::string
render(const std::vector<air::VerifyIssue> &issues, size_t max = 10)
{
    std::string out;
    for (size_t i = 0; i < issues.size() && i < max; ++i)
        out += issues[i].toString() + "\n";
    if (issues.size() > max)
        out += "... (" + std::to_string(issues.size()) + " total)\n";
    return out;
}

void
expectWellformed(const framework::App &app)
{
    auto verify = air::verifyModule(app.module());
    EXPECT_TRUE(verify.empty())
        << app.name() << " verifier:\n" << render(verify);
    auto lint = analysis::lintModule(app.module());
    EXPECT_TRUE(lint.empty())
        << app.name() << " lint:\n" << render(lint);
}

/** All 20 named apps, by corpus index. */
class NamedAppWellformed : public ::testing::TestWithParam<int>
{
};

TEST_P(NamedAppWellformed, VerifiesAndLintsClean)
{
    const NamedAppSpec &spec = namedAppSpecs()[GetParam()];
    BuiltApp built = buildNamedApp(spec);
    expectWellformed(*built.app);
}

INSTANTIATE_TEST_SUITE_P(
    All, NamedAppWellformed, ::testing::Range(0, 20),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string n = namedAppSpecs()[info.param].name;
        for (char &c : n) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

TEST(CorpusWellformed, AllFdroidAppsVerifyAndLintClean)
{
    for (int i = 0; i < kFdroidAppCount; ++i) {
        BuiltApp built = buildFdroidApp(i);
        expectWellformed(*built.app);
        if (::testing::Test::HasFailure())
            FAIL() << "first failing app index " << i;
    }
}

/** Each pattern in isolation, too — named/fdroid apps mix patterns,
 *  which can mask a defect one pattern plants and another hides. */
TEST(CorpusWellformed, EveryPatternProbeVerifiesAndLintsClean)
{
    for (const auto &entry : patternCatalog()) {
        AppFactory factory(std::string("probe-") + entry.name);
        auto &act = factory.addActivity("ProbeActivity");
        entry.fn(factory, act);
        BuiltApp built = factory.finish();
        expectWellformed(*built.app);
        if (::testing::Test::HasFailure())
            FAIL() << "first failing pattern " << entry.name;
    }
}

} // namespace
} // namespace sierra::corpus
