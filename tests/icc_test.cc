/** @file Tests for the RAICC-style ICC model: Intent target
 *  resolution, PendingIntent field flows, and the cross-component
 *  races only ICC-extended harnesses can reach. */

#include <gtest/gtest.h>

#include "corpus/patterns.hh"
#include "framework/icc.hh"
#include "sierra/detector.hh"

namespace sierra {
namespace {

using air::InvokeKind;
using air::MethodBuilder;
using framework::IccModel;
using framework::IccSite;
using framework::IccTargetKind;
namespace names = framework::names;

corpus::BuiltApp
probeApp(const char *pattern_name)
{
    for (const auto &entry : corpus::patternCatalog()) {
        if (std::string(entry.name) == pattern_name) {
            corpus::AppFactory factory(std::string("probe-") +
                                       pattern_name);
            auto &act = factory.addActivity("ProbeActivity");
            entry.fn(factory, act);
            return factory.finish();
        }
    }
    ADD_FAILURE() << "unknown pattern " << pattern_name;
    return corpus::AppFactory("empty").finish();
}

/** A sender whose onCreate builds `new Intent(target)` and delivers it
 *  through the given virtual call on the activity. */
corpus::BuiltApp
senderApp(const std::string &deliver, const std::string &target,
          bool declare_target)
{
    corpus::AppFactory factory("icc-fixture");
    auto &act = factory.addActivity("Sender");
    if (declare_target)
        factory.addActivity(target);
    act.on("onCreate", [=](MethodBuilder &b) {
        int rs = b.newReg();
        int ri = b.newReg();
        b.constStr(rs, target);
        b.newObject(ri, names::intent);
        b.invoke(-1, InvokeKind::Special, {names::intent, "<init>", 0},
                 {ri, rs});
        b.call(b.thisReg(), "Sender", deliver, {ri});
    });
    return factory.finish();
}

TEST(Icc, ExplicitStartActivityResolves)
{
    corpus::BuiltApp built =
        senderApp("startActivity", "Detail", true);
    IccModel icc(*built.app);

    ASSERT_EQ(icc.sites().size(), 1u);
    const IccSite &s = icc.sites()[0];
    EXPECT_TRUE(s.resolved());
    EXPECT_EQ(s.targetKind, IccTargetKind::Activity);
    EXPECT_EQ(s.senderClass, "Sender");
    EXPECT_EQ(s.targetClass, "Detail");
    EXPECT_FALSE(s.pending);
    EXPECT_NE(s.toString().find("Sender -> Detail"),
              std::string::npos);

    EXPECT_EQ(icc.stats().callSites, 1);
    EXPECT_EQ(icc.stats().resolved, 1);
    EXPECT_EQ(icc.stats().activityEdges, 1);
    EXPECT_EQ(icc.activityTargetsOf("Sender"),
              std::vector<std::string>{"Detail"});
    EXPECT_TRUE(icc.activityTargetsOf("Detail").empty());
}

TEST(Icc, UndeclaredTargetStaysUnresolved)
{
    // The Intent names a class the manifest does not declare: the
    // string could be any extra, so the site must stay unresolved.
    corpus::BuiltApp built =
        senderApp("startActivity", "NoSuchActivity", false);
    IccModel icc(*built.app);

    ASSERT_EQ(icc.sites().size(), 1u);
    EXPECT_FALSE(icc.sites()[0].resolved());
    EXPECT_EQ(icc.stats().unresolved, 1);
    EXPECT_EQ(icc.stats().activityEdges, 0);
    EXPECT_NE(icc.sites()[0].toString().find("<implicit>"),
              std::string::npos);
}

TEST(Icc, SetClassNameResolves)
{
    corpus::AppFactory factory("icc-fixture");
    auto &act = factory.addActivity("Sender");
    factory.addActivity("Detail");
    act.on("onCreate", [](MethodBuilder &b) {
        int rs = b.newReg();
        int ri = b.newReg();
        b.constStr(rs, "Detail");
        b.newObject(ri, names::intent);
        b.invoke(-1, InvokeKind::Special, {names::intent, "<init>", 0},
                 {ri});
        b.call(ri, names::intent, "setClassName", {rs});
        b.call(b.thisReg(), "Sender", "startActivity", {ri});
    });
    corpus::BuiltApp built = factory.finish();
    IccModel icc(*built.app);

    ASSERT_EQ(icc.sites().size(), 1u);
    EXPECT_EQ(icc.sites()[0].targetClass, "Detail");
}

TEST(Icc, PendingIntentFieldFlowResolves)
{
    // The pattern parks the PendingIntent in an activity field in
    // onCreate and send()s it from a GUI handler: the two-pass field
    // tracking must connect them.
    corpus::BuiltApp built = probeApp("iccPendingIntent");
    IccModel icc(*built.app);

    ASSERT_EQ(icc.stats().pendingSites, 1);
    bool found = false;
    for (const IccSite &s : icc.sites()) {
        if (s.pending) {
            EXPECT_TRUE(s.resolved()) << s.toString();
            EXPECT_EQ(s.targetKind, IccTargetKind::Activity);
            found = true;
        }
    }
    EXPECT_TRUE(found);
    EXPECT_EQ(icc.stats().activityEdges, 1);
}

TEST(Icc, ConflictingPendingFieldIsDropped)
{
    // The same field stores PendingIntents with two different targets:
    // neither may be trusted at the send site.
    corpus::AppFactory factory("icc-fixture");
    auto &act = factory.addActivity("Sender");
    factory.addActivity("A");
    factory.addActivity("B");
    act.addField("pi", air::Type::object(names::pendingIntent));
    auto store = [](MethodBuilder &b, const char *target) {
        int rs = b.newReg();
        int ri = b.newReg();
        int rp = b.newReg();
        b.constStr(rs, target);
        b.newObject(ri, names::intent);
        b.invoke(-1, InvokeKind::Special, {names::intent, "<init>", 0},
                 {ri, rs});
        b.callStatic(rp, names::pendingIntent, "getActivity", {ri});
        b.putField(b.thisReg(), corpus::fieldRef("Sender", "pi"), rp);
    };
    act.on("onCreate", [&](MethodBuilder &b) { store(b, "A"); });
    act.on("onStart", [&](MethodBuilder &b) { store(b, "B"); });
    act.on("onResume", [](MethodBuilder &b) {
        int rp = b.newReg();
        b.getField(rp, b.thisReg(), corpus::fieldRef("Sender", "pi"));
        b.call(rp, names::pendingIntent, "send");
    });
    corpus::BuiltApp built = factory.finish();
    IccModel icc(*built.app);

    ASSERT_EQ(icc.stats().pendingSites, 1);
    for (const IccSite &s : icc.sites()) {
        if (s.pending)
            EXPECT_FALSE(s.resolved()) << s.toString();
    }
    EXPECT_EQ(icc.stats().activityEdges, 0);
}

TEST(Icc, CrossComponentRaceNeedsIccModeling)
{
    // The acceptance property: the seeded cross-component race is
    // found with ICC on and invisible with ICC off, because only the
    // ICC-extended sender harness drives the target's onCreate
    // concurrently with the sender's worker thread.
    corpus::BuiltApp built = probeApp("iccStartActivity");

    std::string key;
    for (const auto &seed : built.truth.seeded) {
        if (seed.requiresIcc)
            key = seed.fieldKey;
    }
    ASSERT_FALSE(key.empty());
    EXPECT_TRUE(built.truth.isIccOnlyTrueKey(key));

    auto survivingKeys = [](const AppReport &report) {
        std::vector<std::string> keys;
        for (const auto &race : report.races) {
            if (!race.refuted)
                keys.push_back(race.fieldKey);
        }
        return keys;
    };

    SierraDetector with_icc(*built.app);
    AppReport on = with_icc.analyze({});
    auto on_keys = survivingKeys(on);
    EXPECT_NE(std::find(on_keys.begin(), on_keys.end(), key),
              on_keys.end())
        << "cross-component race missing with ICC on";

    // Harness generation mutates the module, so the ICC-off detector
    // needs a fresh (deterministic) build of the same app.
    corpus::BuiltApp rebuilt = probeApp("iccStartActivity");
    SierraOptions no_icc;
    no_icc.icc = false;
    SierraDetector without_icc(*rebuilt.app, no_icc);
    AppReport off = without_icc.analyze(no_icc);
    auto off_keys = survivingKeys(off);
    EXPECT_EQ(std::find(off_keys.begin(), off_keys.end(), key),
              off_keys.end())
        << "cross-component race should need the ICC edge";
}

TEST(Icc, StatsFlowIntoReportDeterministically)
{
    corpus::BuiltApp built = probeApp("iccStartActivity");
    SierraDetector detector(*built.app);
    AppReport a = detector.analyze({});
    AppReport b = detector.analyze({});
    EXPECT_EQ(formatReport(a, 50, false), formatReport(b, 50, false));
    EXPECT_EQ(detector.iccStats().callSites, 1);
    EXPECT_EQ(detector.iccStats().resolved, 1);
}

} // namespace
} // namespace sierra
