/** @file Tests for the AIR module verifier. */

#include <gtest/gtest.h>

#include "air/builder.hh"
#include "air/parser.hh"
#include "air/verifier.hh"

namespace sierra::air {
namespace {

std::unique_ptr<Module>
parseOk(const std::string &text)
{
    ParseResult r = parseModule(text);
    EXPECT_TRUE(r.ok()) << r.status.error;
    return std::move(r.module);
}

TEST(AirVerifier, CleanModulePasses)
{
    auto mod = parseOk(R"(
class A {
    field f: int
    method m(): void regs=2 {
        @0: r1 = const 1
        @1: putfield r0.A.f = r1
        @2: return-void
    }
}
)");
    EXPECT_TRUE(verifyModule(*mod).empty());
}

TEST(AirVerifier, RegisterOutOfRange)
{
    auto mod = parseOk(R"(
class A {
    method m(): void regs=1 {
        @0: r5 = const 1
        @1: return-void
    }
}
)");
    auto issues = verifyModule(*mod);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].message.find("out of range"), std::string::npos);
}

TEST(AirVerifier, BranchTargetOutOfRange)
{
    auto mod = parseOk(R"(
class A {
    method m(): void regs=2 {
        @0: r1 = const 0
        @1: ifz r1 eq goto @9
        @2: return-void
    }
}
)");
    auto issues = verifyModule(*mod);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].message.find("branch target"),
              std::string::npos);
}

TEST(AirVerifier, MissingTerminator)
{
    auto mod = parseOk(R"(
class A {
    method m(): void regs=2 {
        @0: r1 = const 0
    }
}
)");
    auto issues = verifyModule(*mod);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].message.find("terminator"), std::string::npos);
}

TEST(AirVerifier, SuperClassCycle)
{
    auto mod = parseOk("class A extends B {} class B extends A {}");
    auto issues = verifyModule(*mod);
    bool found_cycle = false;
    for (const auto &issue : issues)
        found_cycle |= issue.message.find("cycle") != std::string::npos;
    EXPECT_TRUE(found_cycle);
}

TEST(AirVerifier, UnresolvedSuperReported)
{
    auto mod = parseOk("class A extends DoesNotExist {}");
    auto issues = verifyModule(*mod);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].message.find("unresolved super"),
              std::string::npos);
}

TEST(AirVerifier, RegisterFrameSmallerThanParams)
{
    auto mod = parseOk(R"(
class A {
    method m(p0: int, p1: int): void regs=1 {
        @0: return-void
    }
}
)");
    auto issues = verifyModule(*mod);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].message.find("register count"),
              std::string::npos);
}

TEST(AirVerifier, NonStaticInvokeNeedsReceiver)
{
    Module mod;
    Klass *k = mod.addClass("A", "");
    Method *m = k->addMethod("m", {}, Type::voidTy(), false);
    Instruction call;
    call.op = Opcode::Invoke;
    call.invokeKind = InvokeKind::Virtual;
    call.method = {"A", "g", 0};
    m->instrs().push_back(call);
    Instruction ret;
    ret.op = Opcode::ReturnVoid;
    m->instrs().push_back(ret);
    m->setNumRegisters(1);
    auto issues = verifyModule(mod);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].message.find("receiver"), std::string::npos);
}

TEST(AirVerifier, IssuesCarryErrorSeverity)
{
    auto mod = parseOk(R"(
class A {
    method m(): void regs=1 {
        @0: r5 = const 1
        @1: return-void
    }
}
)");
    auto issues = verifyModule(*mod);
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].severity, Severity::Error);
    // toString leads with the severity so output greps by level.
    EXPECT_EQ(issues[0].toString().rfind("error: ", 0), 0u)
        << issues[0].toString();
}

TEST(AirVerifier, RepeatedPerMethodIssuesAreDeduplicated)
{
    // The same complaint at three instructions of one method collapses
    // to one issue with a repeat count.
    auto mod = parseOk(R"(
class A {
    method m(): void regs=1 {
        @0: r5 = const 1
        @1: r5 = const 2
        @2: r5 = const 3
        @3: return-void
    }
}
)");
    auto issues = verifyModule(*mod);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_NE(issues[0].message.find("out of range"), std::string::npos);
    EXPECT_NE(issues[0].message.find("(x3)"), std::string::npos)
        << issues[0].message;
    // The first occurrence's location is kept.
    EXPECT_EQ(issues[0].where, "A.m@0");
}

TEST(AirVerifier, DedupKeepsDistinctMethodsSeparate)
{
    std::vector<VerifyIssue> issues;
    issues.push_back({"A.m@0", "bad thing", Severity::Error});
    issues.push_back({"A.n@0", "bad thing", Severity::Error});
    issues.push_back({"A.m@4", "bad thing", Severity::Error});
    issues.push_back({"A.m@5", "other thing", Severity::Warning});
    auto deduped = dedupeIssues(std::move(issues));
    ASSERT_EQ(deduped.size(), 3u);
    EXPECT_EQ(deduped[0].where, "A.m@0");
    EXPECT_NE(deduped[0].message.find("(x2)"), std::string::npos);
    EXPECT_EQ(deduped[1].where, "A.n@0");
    EXPECT_EQ(deduped[1].message, "bad thing");
    EXPECT_EQ(deduped[2].message, "other thing");
}

TEST(AirVerifier, AbstractWithBodyRejected)
{
    Module mod;
    Klass *k = mod.addClass("A", "");
    Method *m = k->addMethod("m", {}, Type::voidTy(), false);
    m->setAbstract(true);
    Instruction ret;
    ret.op = Opcode::ReturnVoid;
    m->instrs().push_back(ret);
    m->setNumRegisters(1);
    auto issues = verifyModule(mod);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].message.find("abstract"), std::string::npos);
}

TEST(AirVerifier, BalancedMonitorsPass)
{
    // Reentrant (nested) enters with matching exits are fine, as are
    // regions balanced independently on both sides of a branch.
    auto mod = parseOk(R"(
class B {
    field f: int
    method m(p0: int): void regs=4 {
        @0: r2 = const 1
        @1: monitor-enter r2
        @2: monitor-enter r2
        @3: putfield r0.B.f = r1
        @4: monitor-exit r2
        @5: monitor-exit r2
        @6: ifz r1 eq goto @10
        @7: monitor-enter r2
        @8: putfield r0.B.f = r1
        @9: monitor-exit r2
        @10: return-void
    }
}
)");
    EXPECT_TRUE(verifyModule(*mod).empty());
}

TEST(AirVerifier, MonitorExitWithoutEnterRejected)
{
    auto mod = parseOk(R"(
class A {
    method m(): void regs=2 {
        @0: r1 = const 1
        @1: monitor-exit r1
        @2: return-void
    }
}
)");
    auto issues = verifyModule(*mod);
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].severity, Severity::Error);
    EXPECT_NE(issues[0].message.find("without a dominating"),
              std::string::npos)
        << issues[0].message;
}

TEST(AirVerifier, MonitorEnterWithoutExitRejected)
{
    auto mod = parseOk(R"(
class A {
    method m(): void regs=2 {
        @0: r1 = const 1
        @1: monitor-enter r1
        @2: return-void
    }
}
)");
    auto issues = verifyModule(*mod);
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].severity, Severity::Error);
    EXPECT_NE(issues[0].message.find("no monitor-exit"),
              std::string::npos)
        << issues[0].message;
}

TEST(AirVerifier, MonitorUnbalancedOnOnePathRejected)
{
    // The then-path skips the exit: held on some path to return.
    auto mod = parseOk(R"(
class A {
    method m(p0: int): void regs=3 {
        @0: r2 = const 1
        @1: monitor-enter r2
        @2: ifz r1 eq goto @4
        @3: monitor-exit r2
        @4: return-void
    }
}
)");
    auto issues = verifyModule(*mod);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].message.find("no monitor-exit"),
              std::string::npos)
        << issues[0].message;
}

} // namespace
} // namespace sierra::air
