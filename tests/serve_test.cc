/**
 * @file
 * The daemon's wire behavior (docs/DAEMON_PROTOCOL.md): canonical JSON
 * round-trips, every documented error code, pre-cancellation, the
 * serveLoop lifecycle over plain streams, and warm analyze hits via
 * the session-owned store.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "corpus/named_apps.hh"
#include "framework/app_text.hh"
#include "serve/serve.hh"

namespace sierra::serve {
namespace {

int64_t
counterValue(const ServeSession &session, const std::string &name)
{
    for (const auto &[counter, value] : session.metrics().counters()) {
        if (counter == name)
            return value;
    }
    return 0;
}

Json
parseOk(const std::string &text)
{
    Json out;
    std::string error;
    EXPECT_TRUE(Json::parse(text, out, error)) << error << ": " << text;
    return out;
}

TEST(Protocol, DumpIsCanonical)
{
    Json obj = Json::object();
    obj.set("b", Json::integer(1));
    obj.set("a", Json::str("x"));
    Json arr = Json::array();
    arr.push(Json::boolean(true));
    arr.push(Json::null());
    arr.push(Json::integer(-7));
    obj.set("list", std::move(arr));
    // Insertion order, no whitespace -- NOT sorted keys.
    EXPECT_EQ(obj.dump(), R"({"b":1,"a":"x","list":[true,null,-7]})");

    Json esc = Json::object();
    esc.set("s", Json::str("tab\tquote\"back\\nl\nctl\x01"));
    EXPECT_EQ(esc.dump(),
              "{\"s\":\"tab\\tquote\\\"back\\\\nl\\nctl\\u0001\"}");
}

TEST(Protocol, ParseRoundTripsDump)
{
    const std::string text =
        R"({"id":3,"kind":"analyze","nested":{"deep":[1,2,{"x":null}]},"ok":false})";
    EXPECT_EQ(parseOk(text).dump(), text);
    // Whitespace-tolerant on input, canonical on output.
    EXPECT_EQ(parseOk(" { \"a\" : [ 1 , 2 ] } ").dump(),
              R"({"a":[1,2]})");
    // \u escapes decode (and re-encode raw when printable ASCII).
    EXPECT_EQ(parseOk(R"({"s":"A"})").dump(), R"({"s":"A"})");
}

TEST(Protocol, ParseRejectsMalformedInput)
{
    Json out;
    std::string error;
    EXPECT_FALSE(Json::parse("", out, error));
    EXPECT_FALSE(Json::parse("{", out, error));
    EXPECT_FALSE(Json::parse("{\"a\":}", out, error));
    EXPECT_FALSE(Json::parse("[1,]", out, error));
    EXPECT_FALSE(Json::parse("\"unterminated", out, error));
    EXPECT_FALSE(Json::parse("{} extra", out, error));
    EXPECT_FALSE(Json::parse("nul", out, error));
    // The protocol is integer-only: reals are a parse error, not a
    // silent truncation.
    EXPECT_FALSE(Json::parse("{\"x\":1.5}", out, error));
    EXPECT_FALSE(Json::parse("{\"x\":1e3}", out, error));
}

TEST(Serve, PingHelloAndShutdown)
{
    ServeSession session(ServeOptions{});
    EXPECT_EQ(session.handleLine(R"({"id":1,"kind":"ping"})"),
              R"({"id":1,"result":{"pong":true}})");
    EXPECT_EQ(
        session.handleLine(R"({"id":2,"kind":"hello"})"),
        R"({"id":2,"result":{"server":"sierra","schemaVersion":1,"store":"memory"}})");
    EXPECT_FALSE(session.done());
    EXPECT_EQ(session.handleLine(R"({"id":3,"kind":"shutdown"})"),
              R"({"id":3,"result":{"shutdown":true}})");
    EXPECT_TRUE(session.done());
}

TEST(Serve, ErrorCodes)
{
    ServeSession session(ServeOptions{});
    // bad-json: unparseable line; id unknowable, reported as 0.
    Json r = parseOk(session.handleLine("not json"));
    EXPECT_EQ(r.field("id")->asInt(), 0);
    EXPECT_EQ(r.field("error")->field("code")->asStr(), "bad-json");
    // bad-json: parseable but not an object.
    r = parseOk(session.handleLine("[1,2]"));
    EXPECT_EQ(r.field("error")->field("code")->asStr(), "bad-json");
    // missing-field: no id.
    r = parseOk(session.handleLine(R"({"kind":"ping"})"));
    EXPECT_EQ(r.field("id")->asInt(), 0);
    EXPECT_EQ(r.field("error")->field("code")->asStr(),
              "missing-field");
    // missing-field: no kind (id echoes back).
    r = parseOk(session.handleLine(R"({"id":9})"));
    EXPECT_EQ(r.field("id")->asInt(), 9);
    EXPECT_EQ(r.field("error")->field("code")->asStr(),
              "missing-field");
    // missing-field: analyze without app.
    r = parseOk(session.handleLine(R"({"id":10,"kind":"analyze"})"));
    EXPECT_EQ(r.field("error")->field("code")->asStr(),
              "missing-field");
    // unknown-kind.
    r = parseOk(session.handleLine(R"({"id":11,"kind":"frobnicate"})"));
    EXPECT_EQ(r.field("error")->field("code")->asStr(),
              "unknown-kind");
    // parse-error: analyze with a malformed app bundle.
    r = parseOk(session.handleLine(
        R"({"id":12,"kind":"analyze","app":"not an app bundle"})"));
    EXPECT_EQ(r.field("error")->field("code")->asStr(), "parse-error");
    EXPECT_NE(r.field("error")->field("message")->asStr().find("line"),
              std::string::npos);

    EXPECT_EQ(counterValue(session, "serve.errors"), 7);
}

TEST(Serve, PreCancellation)
{
    ServeSession session(ServeOptions{});
    // The loop is serial: cancel names a FUTURE id.
    EXPECT_EQ(
        session.handleLine(R"({"id":1,"kind":"cancel","target":5})"),
        R"({"id":1,"result":{"target":5}})");
    // Unrelated ids are unaffected.
    Json r = parseOk(session.handleLine(R"({"id":2,"kind":"ping"})"));
    EXPECT_NE(r.field("result"), nullptr);
    // The canceled id is rejected when it arrives...
    r = parseOk(session.handleLine(R"({"id":5,"kind":"ping"})"));
    EXPECT_EQ(r.field("error")->field("code")->asStr(), "canceled");
    // ...exactly once: the mark is consumed.
    r = parseOk(session.handleLine(R"({"id":5,"kind":"ping"})"));
    EXPECT_NE(r.field("result"), nullptr);
    EXPECT_EQ(counterValue(session, "serve.canceled"), 1);
}

TEST(Serve, AnalyzeWarmHitThroughSessionStore)
{
    corpus::BuiltApp built = corpus::buildNamedApp("OpenSudoku");
    const std::string app_text = framework::printAppText(*built.app);

    Json request = Json::object();
    request.set("id", Json::integer(1));
    request.set("kind", Json::str("analyze"));
    request.set("app", Json::str(app_text));

    ServeSession session(ServeOptions{});
    Json cold = parseOk(session.handleLine(request.dump()));
    const Json *cold_result = cold.field("result");
    ASSERT_NE(cold_result, nullptr);
    EXPECT_EQ(cold_result->field("app")->asStr(), "OpenSudoku");
    EXPECT_TRUE(
        cold_result->field("store")->field("firstSubmission")->asBool());
    EXPECT_EQ(
        cold_result->field("store")->field("harnessesReused")->asInt(),
        0);

    request.set("id", Json::integer(2));
    Json warm = parseOk(session.handleLine(request.dump()));
    const Json *warm_result = warm.field("result");
    ASSERT_NE(warm_result, nullptr);
    const Json *warm_store = warm_result->field("store");
    EXPECT_FALSE(warm_store->field("firstSubmission")->asBool());
    EXPECT_EQ(warm_store->field("harnessesComputed")->asInt(), 0);
    EXPECT_GT(warm_store->field("harnessesReused")->asInt(), 0);
    EXPECT_EQ(warm_store->field("methodsChanged")->asInt(), 0);
    // Warm == cold on the wire too: same report string, same counts.
    EXPECT_EQ(warm_result->field("report")->asStr(),
              cold_result->field("report")->asStr());
    EXPECT_EQ(warm_result->field("races")->asInt(),
              cold_result->field("races")->asInt());

    EXPECT_GT(counterValue(session, "store.harness_hits"), 0);
}

TEST(Serve, LoopRunsUntilShutdownAndIgnoresBlankLines)
{
    std::istringstream in("{\"id\":1,\"kind\":\"ping\"}\n"
                          "\n"
                          "{\"id\":2,\"kind\":\"stats\"}\n"
                          "{\"id\":3,\"kind\":\"shutdown\"}\n"
                          "{\"id\":4,\"kind\":\"ping\"}\n");
    std::ostringstream out;
    int handled = serveLoop(in, out, ServeOptions{});
    EXPECT_EQ(handled, 3) << "shutdown must stop the loop";

    std::istringstream lines(out.str());
    std::string line;
    int count = 0;
    while (std::getline(lines, line)) {
        Json r = parseOk(line);
        EXPECT_NE(r.field("id"), nullptr);
        ++count;
    }
    EXPECT_EQ(count, 3);
}

TEST(Serve, StatsReportsCountersAndStoreTraffic)
{
    ServeSession session(ServeOptions{});
    session.handleLine(R"({"id":1,"kind":"ping"})");
    Json r = parseOk(session.handleLine(R"({"id":2,"kind":"stats"})"));
    const Json *result = r.field("result");
    ASSERT_NE(result, nullptr);
    // Counts include the stats request itself (incremented on entry).
    EXPECT_EQ(result->field("counters")->field("serve.requests")
                  ->asInt(),
              2);
    const Json *store = result->field("store");
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->field("puts")->asInt(), 0);
}

} // namespace
} // namespace sierra::serve
