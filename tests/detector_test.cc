/** @file End-to-end pipeline tests (integration). */

#include <gtest/gtest.h>

#include "corpus/generator.hh"
#include "corpus/named_apps.hh"
#include "corpus/patterns.hh"
#include "test_helpers.hh"

namespace sierra {
namespace {

using corpus::buildNamedApp;
using corpus::Score;
using corpus::scoreReport;

TEST(Detector, QuickstartShape)
{
    corpus::BuiltApp built = buildNamedApp("OpenSudoku");
    SierraDetector detector(*built.app);
    AppReport report = detector.analyze({});

    EXPECT_EQ(report.harnesses, 2);
    EXPECT_GT(report.actions, 0);
    EXPECT_GT(report.hbEdges, 0);
    EXPECT_GT(report.orderedPct, 0.0);
    EXPECT_LE(report.orderedPct, 100.0);
    EXPECT_GT(report.racyPairs, 0);
    EXPECT_LE(report.afterRefutation, report.racyPairs);
    EXPECT_GT(report.times.total, 0.0);

    std::string text = formatReport(report);
    EXPECT_NE(text.find("OpenSudoku"), std::string::npos);
    EXPECT_NE(text.find("racy pairs"), std::string::npos);
}

/** Ground truth is perfectly reproduced on every named app. */
class NamedAppDetection : public ::testing::TestWithParam<int>
{
};

TEST_P(NamedAppDetection, PerfectGroundTruth)
{
    const auto &spec = corpus::namedAppSpecs()[GetParam()];
    corpus::BuiltApp built = buildNamedApp(spec);
    SierraDetector detector(*built.app);
    AppReport report = detector.analyze({});
    Score score = scoreReport(report, built.truth);
    EXPECT_EQ(score.unexpectedFalsePositives, 0) << spec.name;
    EXPECT_EQ(score.missedTrueKeys, 0) << spec.name;
    EXPECT_GT(score.truePositives, 0) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, NamedAppDetection, ::testing::Range(0, 20),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string n = corpus::namedAppSpecs()[info.param].name;
        for (char &c : n) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

TEST(Detector, RefutationReducesReports)
{
    corpus::BuiltApp built = buildNamedApp("OpenSudoku");
    SierraDetector detector(*built.app);

    SierraOptions no_refute;
    no_refute.runRefutation = false;
    no_refute.locksetRefutation = false; // isolate the symbolic stage
    no_refute.enablement = false;
    AppReport before = detector.analyze(no_refute);
    AppReport after = detector.analyze({});

    EXPECT_EQ(before.racyPairs, after.racyPairs);
    EXPECT_EQ(before.afterRefutation, before.racyPairs)
        << "without refutation every candidate survives";
    EXPECT_LT(after.afterRefutation, after.racyPairs);
}

TEST(Detector, ActionSensitivityAblation)
{
    // Paper Table 3 columns 6-7: racy pairs without action-sensitive
    // contexts vs with. The alias trap only reports without AS.
    auto build = [] {
        corpus::AppFactory factory("ablation");
        auto &act = factory.addActivity("AblationActivity");
        corpus::addActionAliasTrap(factory, act);
        corpus::addThreadRace(factory, act);
        return factory.finish();
    };

    corpus::BuiltApp with_as = build();
    SierraDetector d1(*with_as.app);
    SierraOptions as_opts;
    as_opts.runRefutation = false;
    AppReport as_report = d1.analyze(as_opts);

    corpus::BuiltApp without_as = build();
    SierraDetector d2(*without_as.app);
    SierraOptions hy_opts;
    hy_opts.runRefutation = false;
    hy_opts.pta.ctx.policy = analysis::ContextPolicy::Hybrid;
    AppReport hy_report = d2.analyze(hy_opts);

    EXPECT_GT(hy_report.racyPairs, as_report.racyPairs)
        << "action-sensitivity reduces racy pairs (paper ~5x)";

    bool as_trap = false;
    for (const auto &race : as_report.races)
        as_trap |= race.fieldKey.find("Buffer$") != std::string::npos;
    bool hy_trap = false;
    for (const auto &race : hy_report.races)
        hy_trap |= race.fieldKey.find("Buffer$") != std::string::npos;
    EXPECT_FALSE(as_trap) << "AS separates the per-action buffers";
    EXPECT_TRUE(hy_trap) << "hybrid merges them into a false racy pair";
}

TEST(Detector, PerHarnessAnalysisAvailable)
{
    corpus::BuiltApp built = buildNamedApp("Beem");
    SierraDetector detector(*built.app);
    HarnessAnalysis ha = detector.analyzeActivity(
        built.app->manifest().activities[0], {});
    EXPECT_GT(ha.numActions(), 0);
    EXPECT_GT(ha.hbEdges(), 0);
    EXPECT_GE(ha.racyPairCount(), ha.survivingRaceCount());
    ASSERT_NE(ha.shbg, nullptr);
    ASSERT_NE(ha.pta, nullptr);
}

TEST(Detector, ReportAggregatesAcrossHarnesses)
{
    corpus::BuiltApp built = buildNamedApp("K-9 Mail");
    SierraDetector detector(*built.app);
    AppReport report = detector.analyze({});
    EXPECT_EQ(report.perHarness.size(),
              built.app->manifest().activities.size());
    int total_actions = 0;
    for (const auto &ha : report.perHarness)
        total_actions += ha.numActions();
    EXPECT_EQ(report.actions, total_actions);
}

/** Pipeline invariants over a sample of the synthetic corpus. */
class FdroidDetection : public ::testing::TestWithParam<int>
{
};

TEST_P(FdroidDetection, Invariants)
{
    corpus::BuiltApp built = corpus::buildFdroidApp(GetParam());
    SierraDetector detector(*built.app);
    AppReport report = detector.analyze({});

    EXPECT_LE(report.afterRefutation, report.racyPairs);
    EXPECT_GE(report.orderedPct, 0.0);
    EXPECT_LE(report.orderedPct, 100.0);
    Score score = scoreReport(report, built.truth);
    EXPECT_EQ(score.missedTrueKeys, 0)
        << "every seeded true race is reported";
    EXPECT_EQ(score.unexpectedFalsePositives, 0)
        << "surviving FPs are only the seeded known-FP classes";
}

INSTANTIATE_TEST_SUITE_P(Sample, FdroidDetection,
                         ::testing::Values(0, 7, 23, 55, 101, 144, 173));

} // namespace
} // namespace sierra
