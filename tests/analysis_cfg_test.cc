/** @file Tests for CFG construction and dominator trees. */

#include <gtest/gtest.h>

#include "air/parser.hh"
#include "analysis/cfg.hh"
#include "analysis/dominators.hh"

namespace sierra::analysis {
namespace {

air::Method *
parseMethod(std::unique_ptr<air::Module> &hold, const std::string &body)
{
    auto r = air::parseModule("class T { " + body + " }");
    EXPECT_TRUE(r.ok()) << r.status.error;
    hold = std::move(r.module);
    return hold->getClass("T")->methods().front().get();
}

TEST(Cfg, StraightLine)
{
    std::unique_ptr<air::Module> hold;
    air::Method *m = parseMethod(hold, R"(
    method f(): void regs=2 {
        @0: r1 = const 1
        @1: r1 = const 2
        @2: return-void
    })");
    Cfg cfg(*m);
    // One real block + synthetic exit.
    EXPECT_EQ(cfg.numBlocks(), 2);
    EXPECT_EQ(cfg.blockOf(0), 0);
    EXPECT_EQ(cfg.blockOf(2), 0);
    ASSERT_EQ(cfg.blocks()[0].succs.size(), 1u);
    EXPECT_EQ(cfg.blocks()[0].succs[0], cfg.exitBlock());
}

TEST(Cfg, Diamond)
{
    std::unique_ptr<air::Module> hold;
    air::Method *m = parseMethod(hold, R"(
    method f(): void regs=2 {
        @0: r1 = const 1
        @1: ifz r1 eq goto @4
        @2: r1 = const 2
        @3: goto @5
        @4: r1 = const 3
        @5: return-void
    })");
    Cfg cfg(*m);
    // Blocks: [0-1], [2-3], [4], [5], exit.
    EXPECT_EQ(cfg.numBlocks(), 5);
    int head = cfg.blockOf(0);
    EXPECT_EQ(cfg.blocks()[head].succs.size(), 2u);
    int join = cfg.blockOf(5);
    EXPECT_EQ(cfg.blocks()[join].preds.size(), 2u);

    DominatorTree dom(cfg);
    EXPECT_TRUE(dom.dominates(head, join));
    EXPECT_FALSE(dom.dominates(cfg.blockOf(2), join));
    EXPECT_FALSE(dom.dominates(cfg.blockOf(4), join));
    EXPECT_TRUE(dom.instrDominates(0, 5));
    EXPECT_TRUE(dom.instrDominates(1, 2));
    EXPECT_FALSE(dom.instrDominates(2, 4));
    EXPECT_FALSE(dom.instrDominates(4, 5)) << "one arm does not dominate";
}

TEST(Cfg, Loop)
{
    std::unique_ptr<air::Module> hold;
    air::Method *m = parseMethod(hold, R"(
    method f(): void regs=2 {
        @0: r1 = const 0
        @1: r1 = const 1
        @2: ifz r1 ne goto @1
        @3: return-void
    })");
    Cfg cfg(*m);
    int header = cfg.blockOf(1);
    EXPECT_EQ(cfg.blocks()[header].preds.size(), 2u)
        << "entry + back edge";
    DominatorTree dom(cfg);
    EXPECT_TRUE(dom.dominates(cfg.blockOf(0), header));
    EXPECT_TRUE(dom.instrDominates(1, 3));
}

TEST(Cfg, InstrLevelEdges)
{
    std::unique_ptr<air::Module> hold;
    air::Method *m = parseMethod(hold, R"(
    method f(): void regs=2 {
        @0: r1 = const 1
        @1: ifz r1 eq goto @3
        @2: r1 = const 2
        @3: return-void
    })");
    Cfg cfg(*m);
    auto s1 = cfg.instrSuccs(1);
    ASSERT_EQ(s1.size(), 2u);
    EXPECT_EQ(s1[0], 2);
    EXPECT_EQ(s1[1], 3);
    auto p3 = cfg.instrPreds(3);
    ASSERT_EQ(p3.size(), 2u);

    auto p2 = cfg.instrPreds(2);
    ASSERT_EQ(p2.size(), 1u);
    EXPECT_EQ(p2[0], 1);
}

TEST(Cfg, UnreachableCodeHasNoDominator)
{
    std::unique_ptr<air::Module> hold;
    air::Method *m = parseMethod(hold, R"(
    method f(): void regs=2 {
        @0: return-void
        @1: r1 = const 1
        @2: return-void
    })");
    Cfg cfg(*m);
    DominatorTree dom(cfg);
    EXPECT_FALSE(dom.reachable(cfg.blockOf(1)));
    EXPECT_FALSE(dom.dominates(cfg.blockOf(1), cfg.blockOf(0)));
}

TEST(Cfg, ThrowEndsBlockToExit)
{
    std::unique_ptr<air::Module> hold;
    air::Method *m = parseMethod(hold, R"(
    method f(): void regs=2 {
        @0: r1 = null
        @1: throw r1
    })");
    Cfg cfg(*m);
    EXPECT_EQ(cfg.blocks()[cfg.blockOf(1)].succs[0], cfg.exitBlock());
}

TEST(Cfg, ToStringMentionsBlocks)
{
    std::unique_ptr<air::Module> hold;
    air::Method *m = parseMethod(hold, R"(
    method f(): void regs=1 {
        @0: return-void
    })");
    Cfg cfg(*m);
    std::string s = cfg.toString();
    EXPECT_NE(s.find("B0"), std::string::npos);
    EXPECT_NE(s.find("exit"), std::string::npos);
}

} // namespace
} // namespace sierra::analysis
