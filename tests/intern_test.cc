/** @file Tests for the deterministic string interner. */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/intern.hh"

namespace sierra::util {
namespace {

TEST(Intern, FirstInternOrderAssignsDenseIds)
{
    StringInterner t;
    EXPECT_EQ(t.intern("a"), 0u);
    EXPECT_EQ(t.intern("b"), 1u);
    EXPECT_EQ(t.intern("c"), 2u);
    EXPECT_EQ(t.intern("b"), 1u) << "re-intern returns the same id";
    EXPECT_EQ(t.size(), 3u);
}

TEST(Intern, NameRoundTrips)
{
    StringInterner t;
    InternId id = t.intern("ClassA.fieldX");
    EXPECT_EQ(t.name(id), "ClassA.fieldX");
    // The reference must be stable across further interning (deque
    // storage never moves elements).
    const std::string *p = &t.name(id);
    for (int i = 0; i < 1000; ++i)
        t.intern("filler" + std::to_string(i));
    EXPECT_EQ(p, &t.name(id));
}

TEST(Intern, FindDoesNotIntern)
{
    StringInterner t;
    EXPECT_EQ(t.find("missing"), StringInterner::kInvalid);
    EXPECT_EQ(t.size(), 0u);
    InternId id = t.intern("present");
    EXPECT_EQ(t.find("present"), id);
}

TEST(Intern, SameOrderSameIds)
{
    // The determinism contract: two interners fed the same sequence
    // assign identical ids.
    std::vector<std::string> keys = {"x", "y", "x", "z", "y", "w"};
    StringInterner a, b;
    for (const std::string &k : keys)
        EXPECT_EQ(a.intern(k), b.intern(k)) << k;
}

TEST(Intern, FreezeKeepsPrimaryIdsAndRoutesNewToOverflow)
{
    StringInterner t;
    InternId early = t.intern("early");
    t.freeze();
    EXPECT_TRUE(t.frozen());
    EXPECT_EQ(t.intern("early"), early)
        << "frozen primary lookups still hit";
    InternId late = t.intern("late");
    EXPECT_GE(late, 1u) << "overflow ids continue after the primary";
    EXPECT_EQ(t.intern("late"), late);
    EXPECT_EQ(t.name(late), "late");
    EXPECT_EQ(t.find("late"), late);
    EXPECT_EQ(t.size(), 2u);
}

TEST(Intern, PostFreezeConcurrentInternIsSafe)
{
    StringInterner t;
    for (int i = 0; i < 64; ++i)
        t.intern("pre" + std::to_string(i));
    t.freeze();

    // Hammer mixed primary hits and overflow misses from 4 threads;
    // under TSan this doubles as a data-race check.
    std::vector<std::thread> threads;
    for (int w = 0; w < 4; ++w) {
        threads.emplace_back([&t, w] {
            for (int i = 0; i < 200; ++i) {
                t.intern("pre" + std::to_string(i % 64));
                t.intern("post" + std::to_string(i % 8));
                (void)w;
            }
        });
    }
    for (auto &th : threads)
        th.join();

    // Every string maps to exactly one id and round-trips.
    for (int i = 0; i < 8; ++i) {
        std::string s = "post" + std::to_string(i);
        InternId id = t.find(s);
        ASSERT_NE(id, StringInterner::kInvalid) << s;
        EXPECT_EQ(t.name(id), s);
    }
    EXPECT_EQ(t.size(), 64u + 8u);
}

} // namespace
} // namespace sierra::util
