/** @file Tests for the constraint store and the built-in solver. */

#include <gtest/gtest.h>

#include "symbolic/constraint.hh"

namespace sierra::symbolic {
namespace {

using air::CondKind;

/** Shared interner standing in for the harness's PointsToResult: all
 *  keys in one store must come from the same table (ids compare). */
util::StringInterner &
testKeys()
{
    static util::StringInterner table;
    return table;
}

analysis::FieldKey
key(std::string_view name)
{
    return analysis::FieldKey::intern(testKeys(), name);
}

race::MemLoc
loc(const std::string &k, int obj = 1)
{
    race::MemLoc l;
    l.obj = obj;
    l.key = key(k);
    return l;
}

Atom
atom(Operand lhs, CondKind c, Operand rhs)
{
    Atom a;
    a.lhs = std::move(lhs);
    a.cond = c;
    a.rhs = std::move(rhs);
    return a;
}

TEST(Solver, SingleNeIsSatisfiable)
{
    // Regression: the unbounded interval must not be "fully excluded"
    // by one point (a signed-overflow bug found during bring-up).
    std::vector<Atom> atoms{atom(Operand::locOp(loc("A.f")), CondKind::Ne,
                                 Operand::constant(0))};
    EXPECT_TRUE(solveLocConstSystem(atoms));
}

TEST(Solver, EqNeContradiction)
{
    std::vector<Atom> atoms{
        atom(Operand::locOp(loc("A.f")), CondKind::Eq,
             Operand::constant(1)),
        atom(Operand::locOp(loc("A.f")), CondKind::Ne,
             Operand::constant(1))};
    EXPECT_FALSE(solveLocConstSystem(atoms));
}

TEST(Solver, TwoDifferentEqsContradict)
{
    std::vector<Atom> atoms{
        atom(Operand::locOp(loc("A.f")), CondKind::Eq,
             Operand::constant(1)),
        atom(Operand::locOp(loc("A.f")), CondKind::Eq,
             Operand::constant(2))};
    EXPECT_FALSE(solveLocConstSystem(atoms));
}

TEST(Solver, DistinctObjectsDoNotConflict)
{
    std::vector<Atom> atoms{
        atom(Operand::locOp(loc("A.f", 1)), CondKind::Eq,
             Operand::constant(1)),
        atom(Operand::locOp(loc("A.f", 2)), CondKind::Eq,
             Operand::constant(2))};
    EXPECT_TRUE(solveLocConstSystem(atoms))
        << "same field on different objects";
}

TEST(Solver, IntervalEmptiness)
{
    std::vector<Atom> atoms{
        atom(Operand::locOp(loc("A.f")), CondKind::Gt,
             Operand::constant(5)),
        atom(Operand::locOp(loc("A.f")), CondKind::Lt,
             Operand::constant(6))};
    EXPECT_FALSE(solveLocConstSystem(atoms)) << "5 < x < 6 is empty";

    std::vector<Atom> ok{
        atom(Operand::locOp(loc("A.f")), CondKind::Ge,
             Operand::constant(5)),
        atom(Operand::locOp(loc("A.f")), CondKind::Le,
             Operand::constant(5))};
    EXPECT_TRUE(solveLocConstSystem(ok));
}

TEST(Solver, FiniteIntervalFullyExcluded)
{
    std::vector<Atom> atoms{
        atom(Operand::locOp(loc("A.f")), CondKind::Ge,
             Operand::constant(3)),
        atom(Operand::locOp(loc("A.f")), CondKind::Le,
             Operand::constant(4)),
        atom(Operand::locOp(loc("A.f")), CondKind::Ne,
             Operand::constant(3)),
        atom(Operand::locOp(loc("A.f")), CondKind::Ne,
             Operand::constant(4))};
    EXPECT_FALSE(solveLocConstSystem(atoms));
}

TEST(Solver, EqOutsideInterval)
{
    std::vector<Atom> atoms{
        atom(Operand::locOp(loc("A.f")), CondKind::Eq,
             Operand::constant(10)),
        atom(Operand::locOp(loc("A.f")), CondKind::Lt,
             Operand::constant(5))};
    EXPECT_FALSE(solveLocConstSystem(atoms));
}

TEST(Store, AddConstConstEvaluates)
{
    ConstraintStore s;
    EXPECT_TRUE(s.add(atom(Operand::constant(1), CondKind::Eq,
                           Operand::constant(1))));
    EXPECT_EQ(s.size(), 0u) << "trivially true atoms are dropped";
    EXPECT_FALSE(s.add(atom(Operand::constant(1), CondKind::Eq,
                            Operand::constant(2))));
    EXPECT_TRUE(s.failed());
}

TEST(Store, UnknownOperandsDrop)
{
    ConstraintStore s;
    EXPECT_TRUE(s.add(atom(Operand::unknown(), CondKind::Eq,
                           Operand::constant(2))));
    EXPECT_EQ(s.size(), 0u);
    EXPECT_TRUE(s.consistent());
}

TEST(Store, RegSubstitutionResolvesAtoms)
{
    ConstraintStore s;
    // r5 != 0, then (backward) r5 := loc, then loc := 0 -> contradiction.
    ASSERT_TRUE(s.add(atom(Operand::regOp(5), CondKind::Ne,
                           Operand::constant(0))));
    ASSERT_TRUE(s.substituteReg(5, Operand::locOp(loc("T.flag"))));
    EXPECT_EQ(s.size(), 1u);
    EXPECT_FALSE(
        s.substituteLoc(loc("T.flag"), Operand::constant(0)))
        << "strong update to 0 conflicts with != 0";
    EXPECT_TRUE(s.failed());
}

TEST(Store, StrongUpdateThroughRegister)
{
    ConstraintStore s;
    ASSERT_TRUE(s.add(atom(Operand::locOp(loc("T.flag")), CondKind::Eq,
                           Operand::constant(1))));
    // loc := r7 (backward over "putfield flag = r7")...
    ASSERT_TRUE(s.substituteLoc(loc("T.flag"), Operand::regOp(7)));
    // ...then r7 := 1 (backward over "const r7 = 1"): consistent.
    EXPECT_TRUE(s.substituteReg(7, Operand::constant(1)));
    EXPECT_TRUE(s.consistent());
}

TEST(Store, NormalizationSwapsConstLeft)
{
    ConstraintStore s;
    ASSERT_TRUE(s.add(atom(Operand::constant(3), CondKind::Lt,
                           Operand::locOp(loc("T.x")))));
    // 3 < x normalizes to x > 3; adding x < 2 contradicts.
    EXPECT_FALSE(s.add(atom(Operand::locOp(loc("T.x")), CondKind::Lt,
                            Operand::constant(2))));
}

TEST(Store, DropHelpers)
{
    ConstraintStore s;
    ASSERT_TRUE(s.add(atom(Operand::regOp(3), CondKind::Eq,
                           Operand::constant(1))));
    ASSERT_TRUE(s.add(atom(Operand::locOp(loc("T.a")), CondKind::Eq,
                           Operand::constant(1))));
    ASSERT_TRUE(s.add(atom(Operand::locOp(loc("T.b")), CondKind::Eq,
                           Operand::constant(2))));
    s.dropRegAtoms();
    EXPECT_EQ(s.size(), 2u);
    s.dropLocsByKey({key("T.a")});
    EXPECT_EQ(s.size(), 1u);
    s.dropRegsInRange(0, 10); // no reg atoms left: no-op
    EXPECT_EQ(s.size(), 1u);
}

TEST(Store, DropRegsInRange)
{
    ConstraintStore s;
    ASSERT_TRUE(s.add(atom(Operand::regOp(65536 + 2), CondKind::Eq,
                           Operand::constant(1))));
    ASSERT_TRUE(s.add(atom(Operand::regOp(3), CondKind::Eq,
                           Operand::constant(1))));
    s.dropRegsInRange(65536, 2 * 65536);
    EXPECT_EQ(s.size(), 1u) << "only the second frame's atom dropped";
}

TEST(Store, SubstituteKeyWithConst)
{
    ConstraintStore s;
    race::MemLoc what = loc("android.os.Message.what", 42);
    ASSERT_TRUE(s.add(atom(Operand::locOp(what), CondKind::Eq,
                           Operand::constant(2))));
    EXPECT_FALSE(
        s.substituteKeyWithConst(key("android.os.Message.what"), 1))
        << "a what==2 guard cannot hold for a what=1 message";
}

TEST(Store, SelfComparisonSimplifies)
{
    ConstraintStore s;
    EXPECT_TRUE(s.add(atom(Operand::locOp(loc("T.x")), CondKind::Eq,
                           Operand::locOp(loc("T.x")))));
    EXPECT_EQ(s.size(), 0u);
    EXPECT_FALSE(s.add(atom(Operand::locOp(loc("T.x")), CondKind::Ne,
                            Operand::locOp(loc("T.x")))));
}

TEST(Store, ToStringShowsAtoms)
{
    ConstraintStore s;
    ASSERT_TRUE(s.add(atom(Operand::locOp(loc("T.flag")), CondKind::Ne,
                           Operand::constant(0))));
    EXPECT_NE(s.toString().find("T.flag"), std::string::npos);
    EXPECT_NE(s.toString().find("ne"), std::string::npos);
}

} // namespace
} // namespace sierra::symbolic
