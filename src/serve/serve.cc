#include "serve.hh"

#include <istream>
#include <ostream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "framework/app_text.hh"

namespace sierra::serve {

ServeSession::ServeSession(const ServeOptions &options)
    : _options(options)
{
    _store = options.storeDir.empty()
                 ? std::make_unique<analysis::store::Store>()
                 : std::make_unique<analysis::store::Store>(
                       options.storeDir);
}

ServeSession::~ServeSession() = default;

std::string
ServeSession::errorResponse(int64_t id, const std::string &code,
                            const std::string &message)
{
    _metrics.add("serve.errors");
    Json err = Json::object();
    err.set("code", Json::str(code));
    err.set("message", Json::str(message));
    Json response = Json::object();
    response.set("id", Json::integer(id));
    response.set("error", std::move(err));
    return response.dump();
}

std::string
ServeSession::handleLine(const std::string &line)
{
    _metrics.add("serve.requests");
    Json request;
    std::string parse_error;
    if (!Json::parse(line, request, parse_error))
        return errorResponse(0, "bad-json", parse_error);
    if (!request.isObject())
        return errorResponse(0, "bad-json",
                             "request must be a JSON object");
    return handle(request);
}

std::string
ServeSession::handle(const Json &request)
{
    const Json *id_field = request.field("id");
    if (!id_field || id_field->kind() != Json::Kind::Int)
        return errorResponse(0, "missing-field",
                             "\"id\" (integer) is required");
    const int64_t id = id_field->asInt();

    const Json *kind_field = request.field("kind");
    if (!kind_field || kind_field->kind() != Json::Kind::Str)
        return errorResponse(id, "missing-field",
                             "\"kind\" (string) is required");
    const std::string &kind = kind_field->asStr();

    // Pre-cancellation: the loop is serial, so a `cancel` naming a
    // future id deterministically rejects that id when it arrives.
    if (_canceled.count(id)) {
        _canceled.erase(id);
        _metrics.add("serve.canceled");
        return errorResponse(id, "canceled",
                             "request " + std::to_string(id) +
                                 " was canceled");
    }

    Json result = Json::object();

    if (kind == "ping") {
        result.set("pong", Json::boolean(true));
    } else if (kind == "hello") {
        result.set("server", Json::str("sierra"));
        result.set("schemaVersion",
                   Json::integer(kProtocolSchemaVersion));
        result.set("store", Json::str(_store->onDisk() ? "disk"
                                                       : "memory"));
    } else if (kind == "analyze") {
        const Json *app_field = request.field("app");
        if (!app_field || app_field->kind() != Json::Kind::Str)
            return errorResponse(id, "missing-field",
                                 "\"app\" (string) is required");
        SierraOptions options;
        options.jobs = _options.jobs;
        const Json *jobs_field = request.field("jobs");
        if (jobs_field && jobs_field->kind() == Json::Kind::Int)
            options.jobs = static_cast<int>(jobs_field->asInt());

        framework::AppTextResult parsed =
            framework::parseAppText(app_field->asStr());
        if (!parsed.ok()) {
            return errorResponse(
                id, "parse-error",
                parsed.error + " (line " +
                    std::to_string(parsed.errorLine) + ")");
        }
        IncrementalAnalyzer analyzer(*_store, &_metrics);
        IncrementalResult r = analyzer.analyze(*parsed.app, options);

        result.set("app", Json::str(r.report.app));
        result.set("harnesses", Json::integer(r.harnessesTotal));
        result.set("races", Json::integer(r.report.racyPairs));
        result.set("afterRefutation",
                   Json::integer(r.report.afterRefutation));
        Json store_info = Json::object();
        store_info.set("firstSubmission",
                       Json::boolean(r.firstSubmission));
        store_info.set("harnessesReused",
                       Json::integer(r.harnessesReused));
        store_info.set("harnessesComputed",
                       Json::integer(r.harnessesComputed));
        store_info.set("methodsTotal", Json::integer(r.methodsTotal));
        store_info.set("methodsChanged",
                       Json::integer(r.methodsChanged));
        store_info.set("dirtyMethods",
                       Json::integer(
                           static_cast<int64_t>(r.dirty.size())));
        store_info.set("shapeChanged", Json::boolean(r.shapeChanged));
        result.set("store", std::move(store_info));
        result.set("report", Json::str(r.reportText));
    } else if (kind == "stats") {
        Json counters = Json::object();
        for (const auto &[name, value] : _metrics.counters())
            counters.set(name, Json::integer(value));
        result.set("counters", std::move(counters));
        const analysis::store::StoreStats &s = _store->stats();
        Json store_stats = Json::object();
        store_stats.set("gets", Json::integer(s.gets));
        store_stats.set("hits", Json::integer(s.hits));
        store_stats.set("puts", Json::integer(s.puts));
        store_stats.set("diskReads", Json::integer(s.diskReads));
        store_stats.set("bytesWritten", Json::integer(s.bytesWritten));
        result.set("store", std::move(store_stats));
    } else if (kind == "cancel") {
        const Json *target_field = request.field("target");
        if (!target_field ||
            target_field->kind() != Json::Kind::Int)
            return errorResponse(id, "missing-field",
                                 "\"target\" (integer) is required");
        _canceled.insert(target_field->asInt());
        result.set("target", Json::integer(target_field->asInt()));
    } else if (kind == "shutdown") {
        _done = true;
        result.set("shutdown", Json::boolean(true));
    } else {
        return errorResponse(id, "unknown-kind",
                             "unknown request kind \"" + kind + "\"");
    }

    Json response = Json::object();
    response.set("id", Json::integer(id));
    response.set("result", std::move(result));
    return response.dump();
}

int
serveLoop(std::istream &in, std::ostream &out,
          const ServeOptions &options)
{
    ServeSession session(options);
    int handled = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        out << session.handleLine(line) << "\n";
        out.flush();
        ++handled;
        if (session.done())
            break;
    }
    return handled;
}

int
serveSocket(const std::string &path, const ServeOptions &options,
            std::ostream &err)
{
    int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0) {
        err << "serve: cannot create socket\n";
        return 1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        err << "serve: socket path too long: " << path << "\n";
        ::close(listener);
        return 1;
    }
    ::unlink(path.c_str());
    path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
    if (::bind(listener, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listener, 1) != 0) {
        err << "serve: cannot bind " << path << "\n";
        ::close(listener);
        return 1;
    }

    // One session for the daemon's lifetime: the store persists
    // across connections, so a reconnecting client warm-starts.
    ServeSession session(options);
    while (!session.done()) {
        int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0)
            break;
        std::string buffer;
        char chunk[4096];
        while (!session.done()) {
            ssize_t n = ::read(fd, chunk, sizeof(chunk));
            if (n <= 0)
                break;
            buffer.append(chunk, static_cast<size_t>(n));
            size_t nl;
            while ((nl = buffer.find('\n')) != std::string::npos) {
                std::string line = buffer.substr(0, nl);
                buffer.erase(0, nl + 1);
                if (line.empty())
                    continue;
                std::string response =
                    session.handleLine(line) + "\n";
                size_t off = 0;
                while (off < response.size()) {
                    ssize_t w = ::write(fd, response.data() + off,
                                        response.size() - off);
                    if (w <= 0)
                        break;
                    off += static_cast<size_t>(w);
                }
                if (session.done())
                    break;
            }
        }
        ::close(fd);
    }
    ::close(listener);
    ::unlink(path.c_str());
    return 0;
}

} // namespace sierra::serve
