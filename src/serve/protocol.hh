/**
 * @file
 * Minimal JSON values for the daemon's jsonl wire protocol
 * (docs/DAEMON_PROTOCOL.md). Self-contained on purpose: the daemon
 * must not grow a dependency for a protocol this small, and a
 * hand-rolled writer keeps the byte-level output canonical (object
 * keys in insertion order, no whitespace, integers only) -- the
 * protocol doc's examples are compared byte-for-byte by
 * protocol_examples_test.
 */

#ifndef SIERRA_SERVE_PROTOCOL_HH
#define SIERRA_SERVE_PROTOCOL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace sierra::serve {

/** One JSON value (number = int64: the protocol never needs reals). */
class Json
{
  public:
    enum class Kind { Null, Bool, Int, Str, Array, Object };

    Json() = default;

    static Json null() { return Json(); }
    static Json boolean(bool b);
    static Json integer(int64_t v);
    static Json str(std::string s);
    static Json array();
    static Json object();

    Kind kind() const { return _kind; }
    bool isObject() const { return _kind == Kind::Object; }

    bool asBool() const { return _bool; }
    int64_t asInt() const { return _int; }
    const std::string &asStr() const { return _str; }
    const std::vector<Json> &items() const { return _items; }

    /** Object field by key; null if absent or not an object. */
    const Json *field(const std::string &key) const;

    /** Object insert (keeps insertion order -- serialization order). */
    void set(const std::string &key, Json value);
    /** Array append. */
    void push(Json value);

    /** Canonical one-line serialization (no spaces, "\uXXXX" only for
     *  control characters). */
    std::string dump() const;

    /** Parse one JSON document; null Kind + false on error. */
    static bool parse(const std::string &text, Json &out,
                      std::string &error);

  private:
    void dumpTo(std::string &out) const;

    Kind _kind{Kind::Null};
    bool _bool{false};
    int64_t _int{0};
    std::string _str;
    std::vector<Json> _items;                          //!< array
    std::vector<std::pair<std::string, Json>> _fields; //!< object
};

} // namespace sierra::serve

#endif // SIERRA_SERVE_PROTOCOL_HH
