/**
 * @file
 * The `sierra serve` daemon: a long-running analysis service speaking
 * newline-delimited JSON (docs/DAEMON_PROTOCOL.md is the normative
 * wire description; protocol_examples_test replays its examples
 * verbatim against ServeLoop).
 *
 * The loop is transport-agnostic and strictly serial: it reads one
 * request line, answers one response line, in order. Determinism is a
 * feature -- byte-identical request streams produce byte-identical
 * response streams (timing and pids never appear on the wire), which
 * is what lets the protocol doc's examples be executable tests.
 *
 * Transports: stdin/stdout (`sierra serve`) or a Unix domain socket
 * (`sierra serve --socket PATH`), one connection at a time.
 */

#ifndef SIERRA_SERVE_SERVE_HH
#define SIERRA_SERVE_SERVE_HH

#include <iosfwd>
#include <memory>
#include <set>
#include <string>

#include "incremental.hh"
#include "protocol.hh"

namespace sierra::serve {

/** Wire-protocol schema version (bump on breaking changes). */
inline constexpr int kProtocolSchemaVersion = 1;

struct ServeOptions {
    std::string storeDir; //!< empty = memory-only store
    int jobs{0};          //!< default pipeline jobs (0 = auto)
};

/**
 * One daemon session over a request/response stream pair. Owns the
 * artifact store (disk-backed when ServeOptions::storeDir is set) and
 * the metrics registry the `stats` request reports from.
 */
class ServeSession
{
  public:
    explicit ServeSession(const ServeOptions &options);
    ~ServeSession();

    /** Handle one raw request line; returns the response line
     *  (without the trailing newline). */
    std::string handleLine(const std::string &line);

    /** True once a `shutdown` request was answered. */
    bool done() const { return _done; }

    const util::metrics::Registry &metrics() const { return _metrics; }

  private:
    std::string handle(const Json &request);
    std::string errorResponse(int64_t id, const std::string &code,
                              const std::string &message);

    ServeOptions _options;
    std::unique_ptr<analysis::store::Store> _store;
    util::metrics::Registry _metrics;
    std::set<int64_t> _canceled; //!< ids marked by `cancel`
    bool _done{false};
};

/**
 * Run a full session: read jsonl requests from `in`, write jsonl
 * responses to `out`, until EOF or a `shutdown` request. Returns the
 * number of requests handled.
 */
int serveLoop(std::istream &in, std::ostream &out,
              const ServeOptions &options);

/** Serve over a Unix domain socket at `path` (created, mode 0600;
 *  removed on exit). Accepts one connection at a time; returns 0 on
 *  clean shutdown, nonzero on socket errors (message to `err`). */
int serveSocket(const std::string &path, const ServeOptions &options,
                std::ostream &err);

} // namespace sierra::serve

#endif // SIERRA_SERVE_SERVE_HH
