#include "incremental.hh"

#include <map>

#include "air/method.hh"
#include "util/trace.hh"

namespace sierra::serve {

namespace store = analysis::store;

uint64_t
IncrementalAnalyzer::optionsFingerprint(const SierraOptions &o)
{
    // Only report-affecting stage toggles participate: two submissions
    // under different toggles must never share artifacts, while jobs
    // and metrics are free to vary (the pipeline is deterministic in
    // both). Refuter budgets ride along for safety -- a budget change
    // can flip a refutation verdict.
    uint64_t bits = 0;
    auto fold = [&](bool b) { bits = (bits << 1) | (b ? 1u : 0u); };
    fold(o.runRefutation);
    fold(o.effectPrefilter);
    fold(o.escapeFilter);
    fold(o.locksetRefutation);
    fold(o.enablement);
    fold(o.ifds);
    fold(o.deadlock);
    fold(o.icc);
    fold(o.nullflow);
    uint64_t h = store::mixHash(store::fnv64("sierra-options"), bits);
    h = store::mixHash(
        h, static_cast<uint64_t>(o.refuter.maxActionPairsPerRace));
    h = store::mixHash(h, static_cast<uint64_t>(o.refuter.exec.maxPaths));
    h = store::mixHash(h, static_cast<uint64_t>(o.refuter.exec.maxSteps));
    h = store::mixHash(
        h, static_cast<uint64_t>(o.refuter.exec.maxDepth));
    return h;
}

IncrementalResult
IncrementalAnalyzer::analyze(framework::App &app,
                             const SierraOptions &options)
{
    SIERRA_TRACE_SPAN(span, "stage", "stage.store",
                      util::trace::arg("app", app.name()));

    IncrementalResult res;

    // Harness generation happens at detector construction, so hashing
    // after it covers the synthetic harness classes too -- they are
    // part of every harness's footprint.
    SierraDetector detector(app, options);

    const uint64_t opts_hash = optionsFingerprint(options);
    const std::map<std::string, uint64_t> hashes =
        store::hashMethods(app);
    const uint64_t shape = store::mixHash(store::shapeHash(app),
                                          opts_hash);
    res.shapeHash = store::hashHex(shape);
    res.methodsTotal = static_cast<int>(hashes.size());

    // Diff against the previous submission of the same app name.
    const std::string app_key = app.name();
    std::set<std::string> changed;
    store::DepIndex deps;
    if (auto prev = _store.get("methods", app_key)) {
        res.firstSubmission = false;
        const std::map<std::string, uint64_t> prev_index =
            store::parseMethodIndex(*prev);
        for (const auto &[name, hash] : hashes) {
            auto it = prev_index.find(name);
            if (it == prev_index.end() || it->second != hash)
                changed.insert(name);
        }
        for (const auto &[name, hash] : prev_index) {
            if (!hashes.count(name))
                changed.insert(name); // removed bodies dirty callers
        }
        if (auto prev_deps = _store.get("deps", app_key))
            deps = store::DepIndex::parse(*prev_deps);
        if (auto prev_shape = _store.get("shape", app_key))
            res.shapeChanged = *prev_shape != res.shapeHash;
        else
            res.shapeChanged = true;
    } else {
        res.firstSubmission = true;
        for (const auto &[name, hash] : hashes)
            changed.insert(name);
        res.shapeChanged = true;
    }
    res.methodsChanged = static_cast<int>(changed.size());
    res.dirty = deps.dirtyClosure(changed);

    // Per-harness reuse. The artifact key folds the activity into the
    // shape+options hash; the stored footprint then proves the
    // artifact is still valid under the *current* method bodies.
    store::DepIndex new_deps;
    int hits = 0, misses = 0;
    int64_t ifds_saved = 0;
    HarnessReuse reuse;
    reuse.tryLoad = [&](const harness::HarnessPlan &plan,
                        HarnessArtifact &out) {
        const std::string key = store::hashHex(store::mixHash(
            shape, store::fnv64(plan.activityClass)));
        auto blob = _store.get("harness", key);
        if (!blob)
            return false;
        auto parsed = parseArtifact(*blob);
        if (!parsed || parsed->activity != plan.activityClass)
            return false;
        for (const auto &[method, hash] : parsed->footprint) {
            auto it = hashes.find(method);
            if (it == hashes.end() || it->second != hash)
                return false; // a reachable body changed: recompute
        }
        out = std::move(*parsed);
        ++hits;
        return true;
    };
    reuse.onComputed = [&](const harness::HarnessPlan &plan,
                           const HarnessAnalysis &ha,
                           const HarnessArtifact &art) {
        ++misses;
        const std::string key = store::hashHex(store::mixHash(
            shape, store::fnv64(plan.activityClass)));
        _store.put("harness", key, serializeArtifact(art));

        // Per-method facts under content-hash keys: IFDS summaries
        // feed the dependency index; SCCP facts and CFG digests are
        // stored on first sight of a body (their key already encodes
        // the body, so a hit can never be stale).
        if (ha.inter) {
            for (const auto &sum : ha.inter->exportSummaries()) {
                for (const std::string &callee : sum.callees)
                    new_deps.addEdge(sum.method, callee);
                auto it = hashes.find(sum.method);
                if (it == hashes.end())
                    continue;
                const std::string mkey = store::hashHex(it->second);
                if (!_store.get("ifds", mkey)) {
                    _store.put("ifds", mkey,
                               analysis::serializeSummaries({sum}));
                    ++ifds_saved;
                }
            }
        }
        // Refutation verdicts: one row per race site pair. These are
        // the persistable face of the symbolic stage -- the in-memory
        // refuted-node cache holds process-local node ids and is
        // deliberately not serialized (docs/CACHING.md explains why).
        std::string verdicts;
        for (const ArtifactRace &r : art.races) {
            verdicts += r.m1 + "\t" + std::to_string(r.i1) + "\t" +
                        r.m2 + "\t" + std::to_string(r.i2) + "\t" +
                        r.key + "\t" + (r.refuted ? "1" : "0") + "\n";
        }
        _store.put("refute", key, verdicts);
    };

    res.report = detector.analyze(options, &reuse);
    res.reportText = formatReport(res.report, 50, /*with_times=*/false);
    res.harnessesTotal = res.report.harnesses;
    res.harnessesReused = hits;
    res.harnessesComputed = misses;

    // Persist per-body facts for every *changed* method (cheap, local
    // solves) so diagnostics can inspect them without a pipeline run.
    if (!changed.empty()) {
        std::map<std::string, const air::Method *> by_name;
        for (const air::Klass *klass : app.module().classes()) {
            if (klass->isFramework())
                continue;
            for (const auto &m : klass->methods()) {
                if (m->hasBody())
                    by_name.emplace(m->qualifiedName(), m.get());
            }
        }
        for (const std::string &name : changed) {
            auto hit = hashes.find(name);
            auto mit = by_name.find(name);
            if (hit == hashes.end() || mit == by_name.end())
                continue;
            const std::string mkey = store::hashHex(hit->second);
            if (_store.get("cfg", mkey))
                continue;
            _store.put("cfg", mkey, store::cfgDigest(*mit->second));
            _store.put("sccp", mkey,
                       store::sccpFactsBlob(*mit->second));
        }
    }

    // Roll the app's incremental state forward: union the dependency
    // edges (reused harnesses contributed none, but their old edges
    // are still valid -- their methods did not change), then prune to
    // methods that still exist. A fully clean re-submission (nothing
    // changed, nothing computed) leaves the state bit-identical, so
    // skip the re-serialization entirely.
    const bool state_dirty = res.firstSubmission || !changed.empty() ||
                             new_deps.numEdges() > 0 ||
                             res.shapeChanged;
    if (state_dirty) {
        deps.merge(new_deps);
        std::set<std::string> keep;
        for (const auto &[name, hash] : hashes)
            keep.insert(name);
        deps.prune(keep);
        _store.put("methods", app_key,
                   store::serializeMethodIndex(hashes));
        _store.put("deps", app_key, deps.serialize());
        _store.put("shape", app_key, res.shapeHash);
    }

    if (_metrics) {
        _metrics->add("store.harness_hits", hits);
        _metrics->add("store.harness_misses", misses);
        _metrics->add("store.methods_changed", res.methodsChanged);
        _metrics->add("store.dirty_methods",
                      static_cast<int64_t>(res.dirty.size()));
        _metrics->add("store.ifds_saved", ifds_saved);
    }
    return res;
}

} // namespace sierra::serve
