/**
 * @file
 * Incremental re-analysis on top of the artifact store: the engine
 * behind `sierra serve` (docs/CACHING.md has the full model).
 *
 * Each submission of an app is diffed against the store's record of
 * the previous submission with the same app name: the per-method
 * content hashes identify *changed* methods, and the reverse
 * dependency index over the IFDS summary graph widens them to the
 * *dirty* set (changed methods plus transitive callers whose
 * summaries embed their facts). Per-harness artifacts whose footprint
 * still validates are merged as-is; everything else re-runs the full
 * pipeline for its harness. Because the detector merge consumes only
 * artifact fields, a warm report is byte-identical to a cold one.
 */

#ifndef SIERRA_SERVE_INCREMENTAL_HH
#define SIERRA_SERVE_INCREMENTAL_HH

#include <set>
#include <string>
#include <vector>

#include "analysis/store.hh"
#include "sierra/detector.hh"

namespace sierra::serve {

/** Outcome of one (possibly warm) analysis pass. */
struct IncrementalResult {
    AppReport report;
    /** `formatReport(report, 50, false)` (no timing line): the byte-
     *  stable form both the daemon and the golden tests compare. */
    std::string reportText;
    int harnessesTotal{0};
    int harnessesReused{0};   //!< artifacts merged without recompute
    int harnessesComputed{0}; //!< full pipeline runs
    int methodsTotal{0};
    int methodsChanged{0};    //!< env-hash differs from last submission
    //! changed plus transitive callers via the IFDS dependency index
    std::set<std::string> dirty;
    std::string shapeHash;    //!< hex app-shape hash
    bool shapeChanged{false}; //!< vs. the previous submission
    bool firstSubmission{false};
};

/**
 * Drives SierraDetector with HarnessReuse hooks wired to a Store.
 * Stateless between calls except for what lives in the store, so one
 * analyzer (and one store) can serve many apps interleaved.
 */
class IncrementalAnalyzer
{
  public:
    explicit IncrementalAnalyzer(analysis::store::Store &store,
                                 util::metrics::Registry *metrics
                                 = nullptr)
        : _store(store), _metrics(metrics)
    {
    }

    /** Analyze `app` under `options`, reusing stored artifacts where
     *  valid and persisting fresh ones. */
    IncrementalResult analyze(framework::App &app,
                              const SierraOptions &options);

    /** The content-hash fingerprint of the ablation-relevant options
     *  (jobs and metrics excluded: they never change reports). */
    static uint64_t optionsFingerprint(const SierraOptions &options);

  private:
    analysis::store::Store &_store;
    util::metrics::Registry *_metrics;
};

} // namespace sierra::serve

#endif // SIERRA_SERVE_INCREMENTAL_HH
