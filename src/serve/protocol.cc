#include "protocol.hh"

#include <cctype>

namespace sierra::serve {

Json
Json::boolean(bool b)
{
    Json j;
    j._kind = Kind::Bool;
    j._bool = b;
    return j;
}

Json
Json::integer(int64_t v)
{
    Json j;
    j._kind = Kind::Int;
    j._int = v;
    return j;
}

Json
Json::str(std::string s)
{
    Json j;
    j._kind = Kind::Str;
    j._str = std::move(s);
    return j;
}

Json
Json::array()
{
    Json j;
    j._kind = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j._kind = Kind::Object;
    return j;
}

const Json *
Json::field(const std::string &key) const
{
    if (_kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : _fields) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

void
Json::set(const std::string &key, Json value)
{
    for (auto &[k, v] : _fields) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    _fields.emplace_back(key, std::move(value));
}

void
Json::push(Json value)
{
    _items.push_back(std::move(value));
}

namespace {

void
dumpString(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (c < 0x20) {
                static const char *hex = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

} // namespace

void
Json::dumpTo(std::string &out) const
{
    switch (_kind) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += _bool ? "true" : "false";
        break;
      case Kind::Int:
        out += std::to_string(_int);
        break;
      case Kind::Str:
        dumpString(out, _str);
        break;
      case Kind::Array: {
        out += '[';
        bool first = true;
        for (const Json &item : _items) {
            if (!first)
                out += ',';
            first = false;
            item.dumpTo(out);
        }
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, value] : _fields) {
            if (!first)
                out += ',';
            first = false;
            dumpString(out, key);
            out += ':';
            value.dumpTo(out);
        }
        out += '}';
        break;
      }
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

// -- parsing ----------------------------------------------------------

namespace {

struct Parser {
    const std::string &text;
    size_t pos{0};
    std::string error;

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg + " at offset " + std::to_string(pos);
        return false;
    }

    bool
    parseValue(Json &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json::str(std::move(s));
            return true;
        }
        if (c == 't' || c == 'f')
            return parseBool(out);
        if (c == 'n') {
            if (text.compare(pos, 4, "null") == 0) {
                pos += 4;
                out = Json::null();
                return true;
            }
            return fail("bad literal");
        }
        return parseNumber(out);
    }

    bool
    parseObject(Json &out)
    {
        ++pos; // '{'
        out = Json::object();
        skipWs();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos >= text.size() || text[pos] != ':')
                return fail("expected ':'");
            ++pos;
            Json value;
            if (!parseValue(value))
                return false;
            out.set(key, std::move(value));
            skipWs();
            if (pos >= text.size())
                return fail("unterminated object");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(Json &out)
    {
        ++pos; // '['
        out = Json::array();
        skipWs();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            Json value;
            if (!parseValue(value))
                return false;
            out.push(std::move(value));
            skipWs();
            if (pos >= text.size())
                return fail("unterminated array");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size()) {
            char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                ++pos;
                if (pos >= text.size())
                    return fail("bad escape");
                char e = text[pos];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos + 4 >= text.size())
                        return fail("bad \\u escape");
                    int code = 0;
                    for (int i = 1; i <= 4; ++i) {
                        char h = text[pos + static_cast<size_t>(i)];
                        int digit;
                        if (h >= '0' && h <= '9')
                            digit = h - '0';
                        else if (h >= 'a' && h <= 'f')
                            digit = h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            digit = h - 'A' + 10;
                        else
                            return fail("bad \\u escape");
                        code = (code << 4) | digit;
                    }
                    pos += 4;
                    // The protocol is ASCII; encode BMP code points as
                    // UTF-8 so round-trips are lossless anyway.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out +=
                            static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3f));
                        out +=
                            static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("bad escape");
                }
                ++pos;
                continue;
            }
            out += c;
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    parseBool(Json &out)
    {
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            out = Json::boolean(true);
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            out = Json::boolean(false);
            return true;
        }
        return fail("bad literal");
    }

    bool
    parseNumber(Json &out)
    {
        size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            ++pos;
        if (pos == start ||
            (text[start] == '-' && pos == start + 1))
            return fail("bad number");
        // Reject reals explicitly: the protocol is integer-only.
        if (pos < text.size() &&
            (text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E'))
            return fail("non-integer number");
        out = Json::integer(
            std::stoll(text.substr(start, pos - start)));
        return true;
    }
};

} // namespace

bool
Json::parse(const std::string &text, Json &out, std::string &error)
{
    Parser p{text, 0, {}};
    if (!p.parseValue(out)) {
        error = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        error = "trailing content at offset " + std::to_string(p.pos);
        return false;
    }
    return true;
}

} // namespace sierra::serve
