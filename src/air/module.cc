#include "module.hh"

#include "logging.hh"
#include "printer.hh"

namespace sierra::air {

Klass *
Module::addClass(std::string name, std::string super_name)
{
    if (_classes.count(name))
        fatal("duplicate class ", name);
    auto k = std::make_unique<Klass>(name, std::move(super_name),
                                     &_arena);
    Klass *raw = k.get();
    _classes[raw->name()] = std::move(k);
    _order.push_back(raw);
    return raw;
}

Klass *
Module::getClass(const std::string &name) const
{
    auto it = _classes.find(name);
    return it == _classes.end() ? nullptr : it->second.get();
}

Klass *
Module::requireClass(const std::string &name) const
{
    Klass *k = getClass(name);
    if (!k)
        fatal("unknown class ", name);
    return k;
}

Method *
Module::findMethod(const std::string &class_name,
                   const std::string &method_name) const
{
    Klass *k = getClass(class_name);
    return k ? k->findMethod(method_name) : nullptr;
}

size_t
Module::codeSize() const
{
    return printModule(*this).size();
}

} // namespace sierra::air
