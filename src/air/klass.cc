#include "klass.hh"

#include "logging.hh"

namespace sierra::air {

std::string
Method::qualifiedName() const
{
    return _owner->name() + "." + _name;
}

MethodRef
Method::ref() const
{
    MethodRef r;
    r.className = _owner->name();
    r.methodName = _name;
    r.numArgs = numParams() + (_isStatic ? 0 : 1);
    return r;
}

bool
Klass::isFramework() const
{
    return _name.rfind("android.", 0) == 0 ||
           _name.rfind("java.", 0) == 0;
}

const Field *
Klass::findField(const std::string &name) const
{
    for (const auto &f : _fields) {
        if (f.name == name)
            return &f;
    }
    return nullptr;
}

Method *
Klass::addMethod(std::string name, std::vector<Type> param_types,
                 Type return_type, bool is_static)
{
    if (_methodIndex.count(name))
        fatal("duplicate method ", _name, ".", name);
    auto m = std::make_unique<Method>(this, std::move(name),
                                      std::move(param_types),
                                      std::move(return_type), is_static,
                                      _arena);
    Method *raw = m.get();
    _methodIndex[raw->name()] = raw;
    _methods.push_back(std::move(m));
    return raw;
}

Method *
Klass::findMethod(const std::string &name) const
{
    auto it = _methodIndex.find(name);
    return it == _methodIndex.end() ? nullptr : it->second;
}

} // namespace sierra::air
