#include "verifier.hh"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "logging.hh"

namespace sierra::air {

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Error: return "error";
      case Severity::Warning: return "warning";
    }
    return "?";
}

std::vector<VerifyIssue>
dedupeIssues(std::vector<VerifyIssue> issues)
{
    // Scope = `where` with any "@idx" instruction suffix stripped, so
    // the same complaint at many instructions of one method collapses.
    auto scopeOf = [](const std::string &where) {
        size_t at = where.rfind('@');
        return at == std::string::npos ? where : where.substr(0, at);
    };

    std::map<std::pair<std::string, std::string>, size_t> first;
    std::vector<VerifyIssue> out;
    std::vector<int> counts;
    for (VerifyIssue &issue : issues) {
        auto key = std::make_pair(scopeOf(issue.where), issue.message);
        auto [it, inserted] = first.try_emplace(key, out.size());
        if (inserted) {
            out.push_back(std::move(issue));
            counts.push_back(1);
        } else {
            ++counts[it->second];
        }
    }
    for (size_t i = 0; i < out.size(); ++i) {
        if (counts[i] > 1)
            out[i].message += strCat(" (x", counts[i], ")");
    }
    return out;
}

namespace {

/** Expected operand shape per opcode: {num srcs, has dst, has target}. */
struct Shape {
    int numSrcs;
    bool hasDst;
    bool hasTarget;
};

bool
shapeFor(Opcode op, Shape &out)
{
    switch (op) {
      case Opcode::Nop: out = {0, false, false}; return true;
      case Opcode::ConstInt: out = {0, true, false}; return true;
      case Opcode::ConstStr: out = {0, true, false}; return true;
      case Opcode::ConstNull: out = {0, true, false}; return true;
      case Opcode::Move: out = {1, true, false}; return true;
      case Opcode::BinOp: out = {2, true, false}; return true;
      case Opcode::UnOp: out = {1, true, false}; return true;
      case Opcode::New: out = {0, true, false}; return true;
      case Opcode::NewArray: out = {1, true, false}; return true;
      case Opcode::GetField: out = {1, true, false}; return true;
      case Opcode::PutField: out = {2, false, false}; return true;
      case Opcode::GetStatic: out = {0, true, false}; return true;
      case Opcode::PutStatic: out = {1, false, false}; return true;
      case Opcode::ArrayGet: out = {2, true, false}; return true;
      case Opcode::ArrayPut: out = {3, false, false}; return true;
      case Opcode::Invoke: return false; // variable arity
      case Opcode::Return: out = {1, false, false}; return true;
      case Opcode::ReturnVoid: out = {0, false, false}; return true;
      case Opcode::If: out = {2, false, true}; return true;
      case Opcode::IfZ: out = {1, false, true}; return true;
      case Opcode::Goto: out = {0, false, true}; return true;
      case Opcode::Throw: out = {1, false, false}; return true;
      case Opcode::MonitorEnter: out = {1, false, false}; return true;
      case Opcode::MonitorExit: out = {1, false, false}; return true;
    }
    return false;
}

class Verifier
{
  public:
    explicit Verifier(const Module &module) : _module(module) {}

    std::vector<VerifyIssue> run();

  private:
    void report(std::string where, std::string message)
    {
        _issues.push_back({std::move(where), std::move(message)});
    }

    void checkHierarchy(const Klass &klass);
    void checkMethod(const Method &method);
    void checkInstr(const Method &method, int idx);
    void checkMonitors(const Method &method);

    const Module &_module;
    std::vector<VerifyIssue> _issues;
};

void
Verifier::checkHierarchy(const Klass &klass)
{
    // Detect super-class cycles and dangling super references.
    std::unordered_set<const Klass *> seen;
    const Klass *cur = &klass;
    while (cur) {
        if (!seen.insert(cur).second) {
            report(klass.name(), "super-class cycle involving " +
                                     cur->name());
            return;
        }
        if (cur->superName().empty())
            return;
        const Klass *super = _module.getClass(cur->superName());
        if (!super) {
            report(klass.name(),
                   "unresolved super class " + cur->superName());
            return;
        }
        cur = super;
    }
}

void
Verifier::checkMethod(const Method &method)
{
    if (method.isAbstract() && method.hasBody()) {
        report(method.qualifiedName(), "abstract method has a body");
        return;
    }
    if (!method.hasBody())
        return;
    const auto &instrs = method.instrs();
    if (!instrs.back().isTerminator() &&
        !instrs.back().isConditionalBranch()) {
        report(method.qualifiedName(),
               "body does not end in a terminator");
    }
    if (method.numRegisters() < method.firstTempReg()) {
        report(method.qualifiedName(),
               strCat("register count ", method.numRegisters(),
                      " smaller than parameter frame ",
                      method.firstTempReg()));
    }
    for (int i = 0; i < method.numInstrs(); ++i)
        checkInstr(method, i);
    checkMonitors(method);
}

/**
 * Structural monitor balance.
 *
 * A small instruction-level fixpoint tracks, per lock register, the
 * interval [min, max] of possible monitor depths at each program point.
 * Two classes of defects are errors:
 *
 *  - monitor-exit reachable with depth 0 on some path ("exit without a
 *    dominating enter");
 *  - return reachable with depth > 0 on some path ("enter with no exit
 *    on some path to return").
 *
 * Depths are clamped at a small cap so enters inside loops converge.
 */
void
Verifier::checkMonitors(const Method &method)
{
    constexpr int kDepthCap = 8;
    const auto &instrs = method.instrs();
    const int n = method.numInstrs();
    bool any = false;
    for (const Instruction &instr : instrs) {
        if (instr.op == Opcode::MonitorEnter ||
            instr.op == Opcode::MonitorExit) {
            any = true;
            break;
        }
    }
    if (!any)
        return;

    // reg -> [min, max] depth; absent means [0, 0].
    using State = std::map<int, std::pair<int, int>>;
    std::vector<State> in(n);
    std::vector<bool> reached(n, false);

    auto succsOf = [&](int idx, std::vector<int> &out) {
        out.clear();
        const Instruction &instr = instrs[idx];
        if (instr.op == Opcode::Goto) {
            out.push_back(instr.target);
            return;
        }
        if (instr.isConditionalBranch()) {
            out.push_back(instr.target);
            if (idx + 1 < n)
                out.push_back(idx + 1);
            return;
        }
        if (instr.isTerminator())
            return;
        if (idx + 1 < n)
            out.push_back(idx + 1);
    };

    auto mergeInto = [](State &dst, const State &src) {
        bool changed = false;
        // Keys absent on one side mean depth [0, 0] there.
        for (const auto &[r, range] : src) {
            auto it = dst.find(r);
            if (it == dst.end()) {
                auto widened = std::make_pair(0, range.second);
                if (widened != std::make_pair(0, 0)) {
                    dst.emplace(r, widened);
                    changed = true;
                }
            } else {
                int lo = std::min(it->second.first, range.first);
                int hi = std::max(it->second.second, range.second);
                if (std::make_pair(lo, hi) != it->second) {
                    it->second = {lo, hi};
                    changed = true;
                }
            }
        }
        for (auto &[r, range] : dst) {
            if (src.find(r) == src.end() && range.first != 0) {
                range.first = 0;
                changed = true;
            }
        }
        return changed;
    };

    std::vector<int> work{0};
    std::vector<int> succs;
    if (n > 0)
        reached[0] = true;
    while (!work.empty()) {
        int idx = work.back();
        work.pop_back();
        if (idx < 0 || idx >= n)
            continue;
        State out = in[idx];
        const Instruction &instr = instrs[idx];
        if (instr.op == Opcode::MonitorEnter && !instr.srcs.empty()) {
            auto &range = out[instr.srcs[0]];
            range.first = std::min(range.first + 1, kDepthCap);
            range.second = std::min(range.second + 1, kDepthCap);
        } else if (instr.op == Opcode::MonitorExit &&
                   !instr.srcs.empty()) {
            auto &range = out[instr.srcs[0]];
            range.first = std::max(range.first - 1, 0);
            range.second = std::max(range.second - 1, 0);
            if (range == std::make_pair(0, 0))
                out.erase(instr.srcs[0]);
        }
        succsOf(idx, succs);
        for (int s : succs) {
            if (s < 0 || s >= n)
                continue; // reported by the shape check
            if (!reached[s]) {
                reached[s] = true;
                in[s] = out;
                work.push_back(s);
            } else if (mergeInto(in[s], out)) {
                work.push_back(s);
            }
        }
    }

    for (int idx = 0; idx < n; ++idx) {
        if (!reached[idx])
            continue;
        const Instruction &instr = instrs[idx];
        std::string where = strCat(method.qualifiedName(), "@", idx);
        if (instr.op == Opcode::MonitorExit && !instr.srcs.empty()) {
            auto it = in[idx].find(instr.srcs[0]);
            if (it == in[idx].end() || it->second.first == 0) {
                report(where,
                       strCat("monitor-exit r", instr.srcs[0],
                              " without a dominating monitor-enter"));
            }
        }
        if (instr.op == Opcode::Return || instr.op == Opcode::ReturnVoid) {
            for (const auto &[r, range] : in[idx]) {
                if (range.second > 0) {
                    report(where,
                           strCat("monitor-enter r", r,
                                  " with no monitor-exit on some path "
                                  "to return"));
                }
            }
        }
    }
}

void
Verifier::checkInstr(const Method &method, int idx)
{
    const Instruction &instr = method.instr(idx);
    std::string where =
        strCat(method.qualifiedName(), "@", idx);

    auto check_reg = [&](int r) {
        if (r < 0 || r >= method.numRegisters()) {
            report(where, strCat("register r", r, " out of range (",
                                 method.numRegisters(), " registers)"));
        }
    };

    Shape shape;
    if (shapeFor(instr.op, shape)) {
        if (static_cast<int>(instr.srcs.size()) != shape.numSrcs) {
            report(where, strCat("expected ", shape.numSrcs,
                                 " source registers, got ",
                                 instr.srcs.size()));
        }
        if (shape.hasDst && instr.dst < 0)
            report(where, "missing destination register");
        if (!shape.hasDst && instr.dst >= 0)
            report(where, "unexpected destination register");
        if (shape.hasTarget &&
            (instr.target < 0 || instr.target >= method.numInstrs())) {
            report(where, strCat("branch target @", instr.target,
                                 " out of range"));
        }
    }

    for (int r : instr.srcs)
        check_reg(r);
    if (instr.dst >= 0)
        check_reg(instr.dst);

    // Reference resolution; classes outside the module are allowed for
    // framework-API targets but other structural facts are checked.
    if (instr.op == Opcode::New && instr.typeName.empty())
        report(where, "new with empty class name");
    if ((instr.op == Opcode::GetField || instr.op == Opcode::PutField ||
         instr.op == Opcode::GetStatic || instr.op == Opcode::PutStatic)) {
        if (instr.field.className.empty() || instr.field.fieldName.empty())
            report(where, "incomplete field reference");
    }
    if (instr.op == Opcode::Invoke) {
        if (instr.method.className.empty() ||
            instr.method.methodName.empty()) {
            report(where, "incomplete method reference");
        }
        bool needs_receiver = instr.invokeKind != InvokeKind::Static;
        if (needs_receiver && instr.srcs.empty())
            report(where, "non-static invoke without a receiver");
    }
}

std::vector<VerifyIssue>
Verifier::run()
{
    for (const Klass *k : _module.classes()) {
        checkHierarchy(*k);
        for (const auto &m : k->methods())
            checkMethod(*m);
    }
    return std::move(_issues);
}

} // namespace

std::vector<VerifyIssue>
verifyModule(const Module &module)
{
    return dedupeIssues(Verifier(module).run());
}

void
verifyOrDie(const Module &module)
{
    auto issues = verifyModule(module);
    if (issues.empty())
        return;
    for (const auto &issue : issues)
        std::cerr << "verify: " << issue.toString() << "\n";
    fatal("module failed verification with ", issues.size(), " issue(s)");
}

} // namespace sierra::air
