/**
 * @file
 * AIR class definitions.
 */

#ifndef SIERRA_AIR_KLASS_HH
#define SIERRA_AIR_KLASS_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "method.hh"
#include "type.hh"

namespace sierra::air {

/** An instance or static field declaration. */
struct Field {
    std::string name;
    Type type;
    bool isStatic{false};
};

/**
 * An AIR class: name, super class, interfaces, fields and methods.
 *
 * Named Klass to sidestep the keyword; instances are owned by a Module.
 */
class Klass
{
  public:
    /** `arena` (the owning Module's) backs method bodies; standalone
     *  Klass instances without one fall back to heap storage. */
    Klass(std::string name, std::string super_name,
          util::Arena *arena = nullptr)
        : _name(std::move(name)), _superName(std::move(super_name)),
          _arena(arena)
    {
    }

    const std::string &name() const { return _name; }
    const std::string &superName() const { return _superName; }
    void setSuperName(std::string s) { _superName = std::move(s); }

    const std::vector<std::string> &interfaces() const
    {
        return _interfaces;
    }
    void addInterface(std::string iface)
    {
        _interfaces.push_back(std::move(iface));
    }

    bool isInterface() const { return _isInterface; }
    void setInterface(bool v) { _isInterface = v; }
    /** True for classes synthesized by the harness generator. */
    bool isSynthetic() const { return _isSynthetic; }
    void setSynthetic(bool v) { _isSynthetic = v; }
    /** True for Android framework model classes (android.* etc.). */
    bool isFramework() const;

    const std::vector<Field> &fields() const { return _fields; }
    void addField(Field f) { _fields.push_back(std::move(f)); }
    /** Find a field declared directly on this class; null if absent. */
    const Field *findField(const std::string &name) const;

    /** Create and register a method; returns a stable pointer. */
    Method *addMethod(std::string name, std::vector<Type> param_types,
                      Type return_type, bool is_static);

    /** Find a method declared directly on this class; null if absent. */
    Method *findMethod(const std::string &name) const;

    const std::vector<std::unique_ptr<Method>> &methods() const
    {
        return _methods;
    }

  private:
    std::string _name;
    std::string _superName;
    util::Arena *_arena{nullptr};
    std::vector<std::string> _interfaces;
    bool _isInterface{false};
    bool _isSynthetic{false};
    std::vector<Field> _fields;
    std::vector<std::unique_ptr<Method>> _methods;
    std::unordered_map<std::string, Method *> _methodIndex;
};

} // namespace sierra::air

#endif // SIERRA_AIR_KLASS_HH
