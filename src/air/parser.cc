#include "parser.hh"

#include <cctype>
#include <stdexcept>

#include "logging.hh"

namespace sierra::air {

namespace {

/** Token categories recognized by the AIR lexer. */
enum class Tok {
    Ident,
    Int,
    Str,
    Punct, //!< one of { } ( ) [ ] : ; , = @ .
    Eof,
};

struct Token {
    Tok kind{Tok::Eof};
    std::string text;
    int64_t intValue{0};
    int line{1};
};

/** Parse failure carrying a message and a line number. */
struct ParseFail : std::runtime_error {
    int line;
    ParseFail(const std::string &msg, int l)
        : std::runtime_error(msg), line(l)
    {
    }
};

bool
isIdentStart(char c)
{
    // '<' admits constructor names like "<init>".
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$' || c == '<';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$' || c == '-' || c == '<' || c == '>';
}

/** Whole-input lexer; keeps the parser itself simple. */
class Lexer
{
  public:
    explicit Lexer(const std::string &text) : _text(text) {}

    std::vector<Token> run();

  private:
    void fail(const std::string &msg) { throw ParseFail(msg, _line); }

    const std::string &_text;
    size_t _pos{0};
    int _line{1};
};

std::vector<Token>
Lexer::run()
{
    std::vector<Token> out;
    const std::string punct = "{}()[]:;,=@.";
    while (_pos < _text.size()) {
        char c = _text[_pos];
        if (c == '\n') {
            ++_line;
            ++_pos;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++_pos;
            continue;
        }
        if (c == '#' || (c == '/' && _pos + 1 < _text.size() &&
                         _text[_pos + 1] == '/')) {
            while (_pos < _text.size() && _text[_pos] != '\n')
                ++_pos;
            continue;
        }
        Token t;
        t.line = _line;
        if (isIdentStart(c)) {
            size_t start = _pos;
            while (_pos < _text.size() && isIdentChar(_text[_pos]))
                ++_pos;
            t.kind = Tok::Ident;
            t.text = _text.substr(start, _pos - start);
        } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                   (c == '-' && _pos + 1 < _text.size() &&
                    std::isdigit(
                        static_cast<unsigned char>(_text[_pos + 1])))) {
            size_t start = _pos;
            if (c == '-')
                ++_pos;
            while (_pos < _text.size() &&
                   std::isdigit(static_cast<unsigned char>(_text[_pos]))) {
                ++_pos;
            }
            t.kind = Tok::Int;
            t.text = _text.substr(start, _pos - start);
            t.intValue = std::stoll(t.text);
        } else if (c == '"') {
            ++_pos;
            std::string value;
            while (_pos < _text.size() && _text[_pos] != '"') {
                char d = _text[_pos];
                if (d == '\\' && _pos + 1 < _text.size()) {
                    ++_pos;
                    char e = _text[_pos];
                    if (e == 'n')
                        value += '\n';
                    else
                        value += e;
                } else {
                    if (d == '\n')
                        ++_line;
                    value += d;
                }
                ++_pos;
            }
            if (_pos >= _text.size())
                fail("unterminated string literal");
            ++_pos; // closing quote
            t.kind = Tok::Str;
            t.text = std::move(value);
        } else if (punct.find(c) != std::string::npos) {
            t.kind = Tok::Punct;
            t.text = std::string(1, c);
            ++_pos;
        } else {
            fail(strCat("unexpected character '", c, "'"));
        }
        out.push_back(std::move(t));
    }
    Token eof;
    eof.kind = Tok::Eof;
    eof.line = _line;
    out.push_back(eof);
    return out;
}

/** Recursive-descent parser over the token stream. */
class Parser
{
  public:
    Parser(Module &module, std::vector<Token> tokens)
        : _module(module), _tokens(std::move(tokens))
    {
    }

    void run();

  private:
    const Token &peek() const { return _tokens[_idx]; }
    const Token &next() { return _tokens[_idx++]; }

    [[noreturn]] void
    fail(const std::string &msg)
    {
        throw ParseFail(msg, peek().line);
    }

    bool isPunct(const std::string &p) const
    {
        return peek().kind == Tok::Punct && peek().text == p;
    }
    bool isIdent(const std::string &s) const
    {
        return peek().kind == Tok::Ident && peek().text == s;
    }
    void
    expectPunct(const std::string &p)
    {
        if (!isPunct(p))
            fail(strCat("expected '", p, "', got '", peek().text, "'"));
        next();
    }
    void
    expectIdent(const std::string &s)
    {
        if (!isIdent(s))
            fail(strCat("expected '", s, "', got '", peek().text, "'"));
        next();
    }
    std::string
    expectAnyIdent()
    {
        if (peek().kind != Tok::Ident)
            fail(strCat("expected identifier, got '", peek().text, "'"));
        return next().text;
    }
    int64_t
    expectInt()
    {
        if (peek().kind != Tok::Int)
            fail(strCat("expected integer, got '", peek().text, "'"));
        return next().intValue;
    }

    /** Dotted name: Ident ('.' Ident)*. */
    std::string parseDottedName();
    /** Dotted name with optional trailing "[]". */
    Type parseType();
    /** "rN" register token. */
    int parseReg();
    /** Split "a.b.c" into ("a.b", "c"). */
    static std::pair<std::string, std::string>
    splitLast(const std::string &dotted);

    void parseClass();
    void parseMethod(Klass *klass, bool is_static, bool is_abstract);
    Instruction parseInstruction();
    /** Body of an instruction that starts with "rD = ...". */
    Instruction parseAssignment(int dst);
    int parseBranchTarget();

    Module &_module;
    std::vector<Token> _tokens;
    size_t _idx{0};
};

std::string
Parser::parseDottedName()
{
    std::string name = expectAnyIdent();
    while (isPunct(".")) {
        // Lookahead: only consume the dot if an identifier follows.
        if (_tokens[_idx + 1].kind != Tok::Ident)
            break;
        next();
        name += "." + next().text;
    }
    return name;
}

Type
Parser::parseType()
{
    std::string name = parseDottedName();
    if (isPunct("[")) {
        next();
        expectPunct("]");
        return Type::parse(name + "[]");
    }
    return Type::parse(name);
}

int
Parser::parseReg()
{
    const Token &t = peek();
    if (t.kind != Tok::Ident || t.text.size() < 2 || t.text[0] != 'r')
        fail(strCat("expected register, got '", t.text, "'"));
    for (size_t i = 1; i < t.text.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(t.text[i])))
            fail(strCat("expected register, got '", t.text, "'"));
    }
    next();
    return std::stoi(t.text.substr(1));
}

std::pair<std::string, std::string>
Parser::splitLast(const std::string &dotted)
{
    size_t pos = dotted.rfind('.');
    if (pos == std::string::npos)
        return {"", dotted};
    return {dotted.substr(0, pos), dotted.substr(pos + 1)};
}

void
Parser::run()
{
    while (peek().kind != Tok::Eof)
        parseClass();
}

void
Parser::parseClass()
{
    bool is_interface = false;
    if (isIdent("interface")) {
        is_interface = true;
        next();
    } else {
        expectIdent("class");
    }
    std::string name = parseDottedName();
    std::string super;
    if (isIdent("extends")) {
        next();
        super = parseDottedName();
    }
    std::vector<std::string> ifaces;
    if (isIdent("implements")) {
        next();
        ifaces.push_back(parseDottedName());
        while (isPunct(",")) {
            next();
            ifaces.push_back(parseDottedName());
        }
    }
    if (_module.getClass(name))
        fail(strCat("duplicate class '", name, "'"));
    Klass *k = _module.addClass(name, super);
    k->setInterface(is_interface);
    for (auto &i : ifaces)
        k->addInterface(std::move(i));

    expectPunct("{");
    while (!isPunct("}")) {
        bool is_static = false;
        bool is_abstract = false;
        while (isIdent("static") || isIdent("abstract")) {
            if (isIdent("static"))
                is_static = true;
            else
                is_abstract = true;
            next();
        }
        if (isIdent("field")) {
            next();
            std::string fname = expectAnyIdent();
            expectPunct(":");
            Type ftype = parseType();
            k->addField({fname, ftype, is_static});
        } else if (isIdent("method")) {
            next();
            parseMethod(k, is_static, is_abstract);
        } else {
            fail(strCat("expected field or method, got '", peek().text,
                        "'"));
        }
    }
    expectPunct("}");
}

void
Parser::parseMethod(Klass *klass, bool is_static, bool is_abstract)
{
    std::string name = expectAnyIdent();
    expectPunct("(");
    std::vector<Type> params;
    while (!isPunct(")")) {
        expectAnyIdent(); // parameter name "pN" (documentary only)
        expectPunct(":");
        params.push_back(parseType());
        if (isPunct(","))
            next();
    }
    expectPunct(")");
    expectPunct(":");
    Type ret = parseType();

    if (klass->findMethod(name))
        fail(strCat("duplicate method '", klass->name(), ".", name, "'"));
    Method *m = klass->addMethod(name, std::move(params), ret, is_static);
    m->setAbstract(is_abstract);

    if (isPunct(";")) {
        next();
        return;
    }
    // "regs=N { instrs }"
    expectIdent("regs");
    expectPunct("=");
    int num_regs = static_cast<int>(expectInt());
    m->setNumRegisters(num_regs);
    expectPunct("{");
    while (!isPunct("}")) {
        // "@N:" index prefix; verified to be sequential.
        expectPunct("@");
        int64_t idx = expectInt();
        if (idx != m->numInstrs())
            fail(strCat("instruction index @", idx, " out of order"));
        expectPunct(":");
        m->instrs().push_back(parseInstruction());
    }
    expectPunct("}");
}

int
Parser::parseBranchTarget()
{
    expectPunct("@");
    return static_cast<int>(expectInt());
}

Instruction
Parser::parseInstruction()
{
    Instruction i;
    const Token &t = peek();
    if (t.kind != Tok::Ident)
        fail(strCat("expected instruction, got '", t.text, "'"));

    const std::string &w = t.text;
    if (w == "nop") {
        next();
        i.op = Opcode::Nop;
        return i;
    }
    if (w == "return-void") {
        next();
        i.op = Opcode::ReturnVoid;
        return i;
    }
    if (w == "return") {
        next();
        i.op = Opcode::Return;
        i.srcs = {parseReg()};
        return i;
    }
    if (w == "throw") {
        next();
        i.op = Opcode::Throw;
        i.srcs = {parseReg()};
        return i;
    }
    if (w == "goto") {
        next();
        i.op = Opcode::Goto;
        i.target = parseBranchTarget();
        return i;
    }
    if (w == "if") {
        next();
        i.op = Opcode::If;
        i.srcs.push_back(parseReg());
        std::string cname = expectAnyIdent();
        if (!condFromName(cname, i.cond))
            fail(strCat("bad condition '", cname, "'"));
        i.srcs.push_back(parseReg());
        expectIdent("goto");
        i.target = parseBranchTarget();
        return i;
    }
    if (w == "ifz") {
        next();
        i.op = Opcode::IfZ;
        i.srcs.push_back(parseReg());
        std::string cname = expectAnyIdent();
        if (!condFromName(cname, i.cond))
            fail(strCat("bad condition '", cname, "'"));
        expectIdent("goto");
        i.target = parseBranchTarget();
        return i;
    }
    if (w == "putfield") {
        next();
        i.op = Opcode::PutField;
        int obj = parseReg();
        expectPunct(".");
        auto [cls, fld] = splitLast(parseDottedName());
        if (cls.empty())
            fail("field reference needs a class name");
        i.field = {cls, fld};
        expectPunct("=");
        i.srcs = {obj, parseReg()};
        return i;
    }
    if (w == "putstatic") {
        next();
        i.op = Opcode::PutStatic;
        auto [cls, fld] = splitLast(parseDottedName());
        if (cls.empty())
            fail("field reference needs a class name");
        i.field = {cls, fld};
        expectPunct("=");
        i.srcs = {parseReg()};
        return i;
    }
    if (w == "monitor-enter") {
        next();
        i.op = Opcode::MonitorEnter;
        i.srcs = {parseReg()};
        return i;
    }
    if (w == "monitor-exit") {
        next();
        i.op = Opcode::MonitorExit;
        i.srcs = {parseReg()};
        return i;
    }
    if (w == "aput") {
        next();
        i.op = Opcode::ArrayPut;
        int arr = parseReg();
        expectPunct("[");
        int idx = parseReg();
        expectPunct("]");
        expectPunct("=");
        i.srcs = {arr, idx, parseReg()};
        return i;
    }
    if (w.rfind("invoke-", 0) == 0) {
        // result-less invoke
        return parseAssignment(-1);
    }

    // Everything else starts with a destination register.
    int dst = parseReg();
    expectPunct("=");
    return parseAssignment(dst);
}

Instruction
Parser::parseAssignment(int dst)
{
    Instruction i;
    i.dst = dst;
    const Token &t = peek();
    if (t.kind != Tok::Ident)
        fail(strCat("expected instruction body, got '", t.text, "'"));
    const std::string w = t.text;

    if (w == "const") {
        next();
        if (peek().kind == Tok::Int) {
            i.op = Opcode::ConstInt;
            i.intValue = next().intValue;
        } else if (peek().kind == Tok::Str) {
            i.op = Opcode::ConstStr;
            i.strValue = next().text;
        } else {
            fail("expected const payload");
        }
        return i;
    }
    if (w == "null") {
        next();
        i.op = Opcode::ConstNull;
        return i;
    }
    if (w == "new") {
        next();
        i.op = Opcode::New;
        i.typeName = parseDottedName();
        return i;
    }
    if (w == "new-array") {
        next();
        i.op = Opcode::NewArray;
        i.typeName = parseDottedName();
        expectPunct("[");
        i.srcs = {parseReg()};
        expectPunct("]");
        return i;
    }
    if (w == "getfield") {
        next();
        i.op = Opcode::GetField;
        i.srcs = {parseReg()};
        expectPunct(".");
        auto [cls, fld] = splitLast(parseDottedName());
        if (cls.empty())
            fail("field reference needs a class name");
        i.field = {cls, fld};
        return i;
    }
    if (w == "getstatic") {
        next();
        i.op = Opcode::GetStatic;
        auto [cls, fld] = splitLast(parseDottedName());
        if (cls.empty())
            fail("field reference needs a class name");
        i.field = {cls, fld};
        return i;
    }
    if (w == "aget") {
        next();
        i.op = Opcode::ArrayGet;
        int arr = parseReg();
        expectPunct("[");
        int idx = parseReg();
        expectPunct("]");
        i.srcs = {arr, idx};
        return i;
    }
    if (w.rfind("invoke-", 0) == 0) {
        next();
        i.op = Opcode::Invoke;
        std::string kind_name = w.substr(7);
        if (!invokeKindFromName(kind_name, i.invokeKind))
            fail(strCat("bad invoke kind '", kind_name, "'"));
        auto [cls, mth] = splitLast(parseDottedName());
        if (cls.empty())
            fail("method reference needs a class name");
        i.method = {cls, mth, 0};
        expectPunct("(");
        while (!isPunct(")")) {
            i.srcs.push_back(parseReg());
            if (isPunct(","))
                next();
        }
        expectPunct(")");
        i.method.numArgs = static_cast<int>(i.srcs.size());
        return i;
    }

    BinOpKind bop;
    if (binopFromName(w, bop)) {
        next();
        i.op = Opcode::BinOp;
        i.binop = bop;
        i.srcs.push_back(parseReg());
        expectPunct(",");
        i.srcs.push_back(parseReg());
        return i;
    }
    UnOpKind uop;
    if (unopFromName(w, uop)) {
        next();
        i.op = Opcode::UnOp;
        i.unop = uop;
        i.srcs = {parseReg()};
        return i;
    }

    // Fallback: "rD = rS" move.
    if (w.size() >= 2 && w[0] == 'r' &&
        std::isdigit(static_cast<unsigned char>(w[1]))) {
        i.op = Opcode::Move;
        i.srcs = {parseReg()};
        return i;
    }
    fail(strCat("unknown instruction '", w, "'"));
}

} // namespace

ParseStatus
parseInto(Module &module, const std::string &text)
{
    try {
        Lexer lexer(text);
        Parser parser(module, lexer.run());
        parser.run();
        return {};
    } catch (const ParseFail &e) {
        ParseStatus st;
        st.ok = false;
        st.error = e.what();
        st.errorLine = e.line;
        return st;
    }
}

ParseResult
parseModule(const std::string &text)
{
    ParseResult result;
    auto module = std::make_unique<Module>();
    result.status = parseInto(*module, text);
    if (result.status.ok)
        result.module = std::move(module);
    return result;
}

} // namespace sierra::air
