/**
 * @file
 * Parser for the AIR textual format produced by printer.hh.
 *
 * The textual format is the analysis-facing analogue of an APK: corpus
 * apps can be written by hand in it, and printed modules round-trip.
 */

#ifndef SIERRA_AIR_PARSER_HH
#define SIERRA_AIR_PARSER_HH

#include <memory>
#include <string>

#include "module.hh"

namespace sierra::air {

/** Success/failure of a parse; never throws. */
struct ParseStatus {
    bool ok{true};
    std::string error;
    int errorLine{0};
};

/** The outcome of parsing a standalone module. */
struct ParseResult {
    std::unique_ptr<Module> module; //!< null on failure
    ParseStatus status;

    bool ok() const { return module != nullptr; }
};

/** Parse classes from AIR text into an existing module. */
ParseStatus parseInto(Module &module, const std::string &text);

/** Parse a whole module from AIR text. */
ParseResult parseModule(const std::string &text);

} // namespace sierra::air

#endif // SIERRA_AIR_PARSER_HH
