#include "printer.hh"

#include <sstream>

#include "klass.hh"
#include "module.hh"

namespace sierra::air {

std::string
printMethod(const Method &method, bool with_body)
{
    std::ostringstream os;
    os << "    ";
    if (method.isStatic())
        os << "static ";
    if (method.isAbstract())
        os << "abstract ";
    os << "method " << method.name() << "(";
    for (int i = 0; i < method.numParams(); ++i) {
        if (i)
            os << ", ";
        os << "p" << i << ": " << method.paramTypes()[i].toString();
    }
    os << ") : " << method.returnType().toString();
    if (method.isAbstract() || !method.hasBody()) {
        os << ";\n";
        return os.str();
    }
    os << " regs=" << method.numRegisters() << " {\n";
    if (with_body) {
        for (int i = 0; i < method.numInstrs(); ++i) {
            os << "        @" << i << ": " << method.instr(i).toString()
               << "\n";
        }
    }
    os << "    }\n";
    return os.str();
}

std::string
printKlass(const Klass &klass, bool with_bodies)
{
    std::ostringstream os;
    if (klass.isInterface())
        os << "interface ";
    else
        os << "class ";
    os << klass.name();
    if (!klass.superName().empty())
        os << " extends " << klass.superName();
    if (!klass.interfaces().empty()) {
        os << " implements ";
        for (size_t i = 0; i < klass.interfaces().size(); ++i) {
            if (i)
                os << ", ";
            os << klass.interfaces()[i];
        }
    }
    os << " {\n";
    for (const auto &f : klass.fields()) {
        os << "    ";
        if (f.isStatic)
            os << "static ";
        os << "field " << f.name << ": " << f.type.toString() << "\n";
    }
    for (const auto &m : klass.methods())
        os << printMethod(*m, with_bodies);
    os << "}\n";
    return os.str();
}

std::string
printModule(const Module &module)
{
    std::ostringstream os;
    for (const Klass *k : module.classes())
        os << printKlass(*k) << "\n";
    return os.str();
}

} // namespace sierra::air
