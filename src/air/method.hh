/**
 * @file
 * AIR method bodies.
 */

#ifndef SIERRA_AIR_METHOD_HH
#define SIERRA_AIR_METHOD_HH

#include <string>
#include <vector>

#include "instruction.hh"
#include "type.hh"
#include "util/arena.hh"

namespace sierra::air {

class Klass;

/**
 * A method body: a flat instruction vector over a register file.
 *
 * Register convention: for instance methods register 0 is `this` and
 * registers 1..numParams hold the declared parameters; for static methods
 * registers 0..numParams-1 hold the parameters. Remaining registers are
 * temporaries.
 */
class Method
{
  public:
    /** `arena`, when given (the owning Module's), backs the instruction
     *  storage; without one the body lives on the heap. */
    Method(Klass *owner, std::string name, std::vector<Type> param_types,
           Type return_type, bool is_static,
           util::Arena *arena = nullptr)
        : _owner(owner), _name(std::move(name)),
          _paramTypes(std::move(param_types)),
          _returnType(std::move(return_type)), _isStatic(is_static),
          _instrs(arena)
    {
    }

    Klass *owner() const { return _owner; }
    const std::string &name() const { return _name; }
    /** "ClassName.methodName", the global identity of this method. */
    std::string qualifiedName() const;

    const std::vector<Type> &paramTypes() const { return _paramTypes; }
    const Type &returnType() const { return _returnType; }
    bool isStatic() const { return _isStatic; }
    bool isAbstract() const { return _isAbstract; }
    void setAbstract(bool abstract) { _isAbstract = abstract; }

    /** Number of declared parameters, excluding `this`. */
    int numParams() const { return static_cast<int>(_paramTypes.size()); }
    /** First register index that is a temporary (after this + params). */
    int firstTempReg() const
    {
        return numParams() + (_isStatic ? 0 : 1);
    }
    /** Register holding `this`; panics for static methods via verifier. */
    int thisReg() const { return 0; }
    /** Register holding the idx-th declared parameter. */
    int paramReg(int idx) const { return idx + (_isStatic ? 0 : 1); }

    int numRegisters() const { return _numRegisters; }
    void setNumRegisters(int n) { _numRegisters = n; }

    util::ArenaVector<Instruction> &instrs() { return _instrs; }
    const util::ArenaVector<Instruction> &instrs() const
    {
        return _instrs;
    }
    int numInstrs() const { return static_cast<int>(_instrs.size()); }

    const Instruction &instr(int idx) const { return _instrs[idx]; }

    /** A method with no body (abstract or framework-modeled). */
    bool hasBody() const { return !_instrs.empty(); }

    MethodRef ref() const;

  private:
    Klass *_owner;
    std::string _name;
    std::vector<Type> _paramTypes;
    Type _returnType;
    bool _isStatic;
    bool _isAbstract{false};
    int _numRegisters{0};
    util::ArenaVector<Instruction> _instrs;
};

} // namespace sierra::air

#endif // SIERRA_AIR_METHOD_HH
