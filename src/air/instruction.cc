#include "instruction.hh"

#include <sstream>

#include "logging.hh"

namespace sierra::air {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::ConstInt: return "const-int";
      case Opcode::ConstStr: return "const-str";
      case Opcode::ConstNull: return "const-null";
      case Opcode::Move: return "move";
      case Opcode::BinOp: return "binop";
      case Opcode::UnOp: return "unop";
      case Opcode::New: return "new";
      case Opcode::NewArray: return "new-array";
      case Opcode::GetField: return "getfield";
      case Opcode::PutField: return "putfield";
      case Opcode::GetStatic: return "getstatic";
      case Opcode::PutStatic: return "putstatic";
      case Opcode::ArrayGet: return "aget";
      case Opcode::ArrayPut: return "aput";
      case Opcode::Invoke: return "invoke";
      case Opcode::Return: return "return";
      case Opcode::ReturnVoid: return "return-void";
      case Opcode::If: return "if";
      case Opcode::IfZ: return "ifz";
      case Opcode::Goto: return "goto";
      case Opcode::Throw: return "throw";
      case Opcode::MonitorEnter: return "monitor-enter";
      case Opcode::MonitorExit: return "monitor-exit";
    }
    panic("unreachable opcode");
}

const char *
condName(CondKind c)
{
    switch (c) {
      case CondKind::Eq: return "eq";
      case CondKind::Ne: return "ne";
      case CondKind::Lt: return "lt";
      case CondKind::Le: return "le";
      case CondKind::Gt: return "gt";
      case CondKind::Ge: return "ge";
    }
    panic("unreachable cond");
}

const char *
binopName(BinOpKind b)
{
    switch (b) {
      case BinOpKind::Add: return "add";
      case BinOpKind::Sub: return "sub";
      case BinOpKind::Mul: return "mul";
      case BinOpKind::Div: return "div";
      case BinOpKind::Rem: return "rem";
      case BinOpKind::And: return "and";
      case BinOpKind::Or: return "or";
      case BinOpKind::Xor: return "xor";
    }
    panic("unreachable binop");
}

const char *
unopName(UnOpKind u)
{
    switch (u) {
      case UnOpKind::Not: return "not";
      case UnOpKind::Neg: return "neg";
    }
    panic("unreachable unop");
}

const char *
invokeKindName(InvokeKind k)
{
    switch (k) {
      case InvokeKind::Virtual: return "virtual";
      case InvokeKind::Static: return "static";
      case InvokeKind::Special: return "special";
      case InvokeKind::Interface: return "interface";
    }
    panic("unreachable invoke kind");
}

bool
condFromName(const std::string &name, CondKind &out)
{
    static const struct { const char *n; CondKind k; } table[] = {
        {"eq", CondKind::Eq}, {"ne", CondKind::Ne}, {"lt", CondKind::Lt},
        {"le", CondKind::Le}, {"gt", CondKind::Gt}, {"ge", CondKind::Ge},
    };
    for (const auto &e : table) {
        if (name == e.n) {
            out = e.k;
            return true;
        }
    }
    return false;
}

bool
binopFromName(const std::string &name, BinOpKind &out)
{
    static const struct { const char *n; BinOpKind k; } table[] = {
        {"add", BinOpKind::Add}, {"sub", BinOpKind::Sub},
        {"mul", BinOpKind::Mul}, {"div", BinOpKind::Div},
        {"rem", BinOpKind::Rem}, {"and", BinOpKind::And},
        {"or", BinOpKind::Or}, {"xor", BinOpKind::Xor},
    };
    for (const auto &e : table) {
        if (name == e.n) {
            out = e.k;
            return true;
        }
    }
    return false;
}

bool
unopFromName(const std::string &name, UnOpKind &out)
{
    if (name == "not") {
        out = UnOpKind::Not;
        return true;
    }
    if (name == "neg") {
        out = UnOpKind::Neg;
        return true;
    }
    return false;
}

bool
invokeKindFromName(const std::string &name, InvokeKind &out)
{
    static const struct { const char *n; InvokeKind k; } table[] = {
        {"virtual", InvokeKind::Virtual}, {"static", InvokeKind::Static},
        {"special", InvokeKind::Special},
        {"interface", InvokeKind::Interface},
    };
    for (const auto &e : table) {
        if (name == e.n) {
            out = e.k;
            return true;
        }
    }
    return false;
}

CondKind
negateCond(CondKind c)
{
    switch (c) {
      case CondKind::Eq: return CondKind::Ne;
      case CondKind::Ne: return CondKind::Eq;
      case CondKind::Lt: return CondKind::Ge;
      case CondKind::Le: return CondKind::Gt;
      case CondKind::Gt: return CondKind::Le;
      case CondKind::Ge: return CondKind::Lt;
    }
    panic("unreachable cond");
}

bool
evalCond(CondKind c, int64_t lhs, int64_t rhs)
{
    switch (c) {
      case CondKind::Eq: return lhs == rhs;
      case CondKind::Ne: return lhs != rhs;
      case CondKind::Lt: return lhs < rhs;
      case CondKind::Le: return lhs <= rhs;
      case CondKind::Gt: return lhs > rhs;
      case CondKind::Ge: return lhs >= rhs;
    }
    panic("unreachable cond");
}

int64_t
evalBinOp(BinOpKind b, int64_t lhs, int64_t rhs)
{
    switch (b) {
      case BinOpKind::Add: return lhs + rhs;
      case BinOpKind::Sub: return lhs - rhs;
      case BinOpKind::Mul: return lhs * rhs;
      case BinOpKind::Div: return rhs == 0 ? 0 : lhs / rhs;
      case BinOpKind::Rem: return rhs == 0 ? 0 : lhs % rhs;
      case BinOpKind::And: return lhs & rhs;
      case BinOpKind::Or: return lhs | rhs;
      case BinOpKind::Xor: return lhs ^ rhs;
    }
    panic("unreachable binop");
}

namespace {

std::string
reg(int r)
{
    return "r" + std::to_string(r);
}

std::string
escapeStr(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

std::string
Instruction::toString() const
{
    std::ostringstream os;
    switch (op) {
      case Opcode::Nop:
        os << "nop";
        break;
      case Opcode::ConstInt:
        os << reg(dst) << " = const " << intValue;
        break;
      case Opcode::ConstStr:
        os << reg(dst) << " = const \"" << escapeStr(strValue) << "\"";
        break;
      case Opcode::ConstNull:
        os << reg(dst) << " = null";
        break;
      case Opcode::Move:
        os << reg(dst) << " = " << reg(srcs[0]);
        break;
      case Opcode::BinOp:
        os << reg(dst) << " = " << binopName(binop) << " " << reg(srcs[0])
           << ", " << reg(srcs[1]);
        break;
      case Opcode::UnOp:
        os << reg(dst) << " = " << unopName(unop) << " " << reg(srcs[0]);
        break;
      case Opcode::New:
        os << reg(dst) << " = new " << typeName;
        break;
      case Opcode::NewArray:
        os << reg(dst) << " = new-array " << typeName << "[" << reg(srcs[0])
           << "]";
        break;
      case Opcode::GetField:
        os << reg(dst) << " = getfield " << reg(srcs[0]) << "."
           << field.toString();
        break;
      case Opcode::PutField:
        os << "putfield " << reg(srcs[0]) << "." << field.toString()
           << " = " << reg(srcs[1]);
        break;
      case Opcode::GetStatic:
        os << reg(dst) << " = getstatic " << field.toString();
        break;
      case Opcode::PutStatic:
        os << "putstatic " << field.toString() << " = " << reg(srcs[0]);
        break;
      case Opcode::ArrayGet:
        os << reg(dst) << " = aget " << reg(srcs[0]) << "[" << reg(srcs[1])
           << "]";
        break;
      case Opcode::ArrayPut:
        os << "aput " << reg(srcs[0]) << "[" << reg(srcs[1]) << "] = "
           << reg(srcs[2]);
        break;
      case Opcode::Invoke: {
        if (dst >= 0)
            os << reg(dst) << " = ";
        os << "invoke-" << invokeKindName(invokeKind) << " "
           << method.toString() << "(";
        for (size_t i = 0; i < srcs.size(); ++i) {
            if (i)
                os << ", ";
            os << reg(srcs[i]);
        }
        os << ")";
        break;
      }
      case Opcode::Return:
        os << "return " << reg(srcs[0]);
        break;
      case Opcode::ReturnVoid:
        os << "return-void";
        break;
      case Opcode::If:
        os << "if " << reg(srcs[0]) << " " << condName(cond) << " "
           << reg(srcs[1]) << " goto @" << target;
        break;
      case Opcode::IfZ:
        os << "ifz " << reg(srcs[0]) << " " << condName(cond) << " goto @"
           << target;
        break;
      case Opcode::Goto:
        os << "goto @" << target;
        break;
      case Opcode::Throw:
        os << "throw " << reg(srcs[0]);
        break;
      case Opcode::MonitorEnter:
        os << "monitor-enter " << reg(srcs[0]);
        break;
      case Opcode::MonitorExit:
        os << "monitor-exit " << reg(srcs[0]);
        break;
    }
    return os.str();
}

} // namespace sierra::air
