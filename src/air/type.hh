/**
 * @file
 * AIR type system.
 *
 * AIR (Android-like IR) uses a deliberately small type lattice: the
 * analyses in this library care about reference identity (for points-to),
 * integers/booleans (for symbolic guards) and strings (for message
 * payloads), which is exactly what the SIERRA paper's analyses consume.
 */

#ifndef SIERRA_AIR_TYPE_HH
#define SIERRA_AIR_TYPE_HH

#include <string>

namespace sierra::air {

/** Coarse type kinds used by AIR values and fields. */
enum class TypeKind {
    Void,
    Int,
    Bool,
    Str,
    Object, //!< a class reference; Type::name holds the class name
    Array,  //!< an array; Type::name holds the element class name ("" = int)
};

/**
 * A value type in the AIR type system.
 *
 * Types are small value objects; object types carry their class name.
 */
class Type
{
  public:
    Type() : _kind(TypeKind::Void) {}
    Type(TypeKind kind, std::string name = "")
        : _kind(kind), _name(std::move(name)) {}

    static Type voidTy() { return Type(TypeKind::Void); }
    static Type intTy() { return Type(TypeKind::Int); }
    static Type boolTy() { return Type(TypeKind::Bool); }
    static Type strTy() { return Type(TypeKind::Str); }
    static Type object(std::string class_name)
    {
        return Type(TypeKind::Object, std::move(class_name));
    }
    static Type array(std::string elem_class)
    {
        return Type(TypeKind::Array, std::move(elem_class));
    }

    TypeKind kind() const { return _kind; }
    /** Class name for Object types, element class for Array types. */
    const std::string &name() const { return _name; }

    bool isVoid() const { return _kind == TypeKind::Void; }
    bool isPrimitive() const
    {
        return _kind == TypeKind::Int || _kind == TypeKind::Bool;
    }
    bool isReference() const
    {
        return _kind == TypeKind::Object || _kind == TypeKind::Array ||
               _kind == TypeKind::Str;
    }

    bool operator==(const Type &other) const
    {
        return _kind == other._kind && _name == other._name;
    }
    bool operator!=(const Type &other) const { return !(*this == other); }

    /** Render the type in AIR textual syntax, e.g. "int" or "Foo[]". */
    std::string toString() const;

    /** Parse a type from AIR textual syntax; fatal() on bad input. */
    static Type parse(const std::string &text);

  private:
    TypeKind _kind;
    std::string _name;
};

} // namespace sierra::air

#endif // SIERRA_AIR_TYPE_HH
