#include "type.hh"

#include "logging.hh"

namespace sierra::air {

std::string
Type::toString() const
{
    switch (_kind) {
      case TypeKind::Void: return "void";
      case TypeKind::Int: return "int";
      case TypeKind::Bool: return "bool";
      case TypeKind::Str: return "str";
      case TypeKind::Object: return _name;
      case TypeKind::Array:
        return (_name.empty() ? std::string("int") : _name) + "[]";
    }
    panic("unreachable type kind");
}

Type
Type::parse(const std::string &text)
{
    if (text == "void")
        return voidTy();
    if (text == "int")
        return intTy();
    if (text == "bool")
        return boolTy();
    if (text == "str")
        return strTy();
    if (text.size() > 2 && text.substr(text.size() - 2) == "[]") {
        std::string elem = text.substr(0, text.size() - 2);
        if (elem == "int")
            elem = "";
        return array(elem);
    }
    if (text.empty())
        fatal("cannot parse empty type");
    return object(text);
}

} // namespace sierra::air
