/**
 * @file
 * Fluent construction API for AIR method bodies.
 *
 * The corpus generators and the harness generator build code through this
 * builder; labels hide instruction indices until finish() patches them.
 */

#ifndef SIERRA_AIR_BUILDER_HH
#define SIERRA_AIR_BUILDER_HH

#include <string>
#include <vector>

#include "method.hh"

namespace sierra::air {

/** An unresolved branch target handed out by MethodBuilder::newLabel(). */
struct Label {
    int id{-1};
};

/**
 * Builds one Method body instruction by instruction.
 *
 * Typical use:
 * @code
 *   MethodBuilder b(method);
 *   int r = b.newReg();
 *   b.constInt(r, 1);
 *   Label done = b.newLabel();
 *   b.ifz(r, CondKind::Eq, done);
 *   ...
 *   b.bind(done);
 *   b.returnVoid();
 *   b.finish();
 * @endcode
 */
class MethodBuilder
{
  public:
    /** Wrap a freshly created, empty method. */
    explicit MethodBuilder(Method *method);

    /** Allocate a fresh temporary register. */
    int newReg();

    /** Register holding `this` for instance methods. */
    int thisReg() const { return _method->thisReg(); }
    /** Register holding declared parameter idx. */
    int paramReg(int idx) const { return _method->paramReg(idx); }

    // --- constants and moves ------------------------------------------
    void constInt(int dst, int64_t value);
    void constStr(int dst, std::string value);
    void constNull(int dst);
    void move(int dst, int src);
    void binOp(int dst, BinOpKind op, int lhs, int rhs);
    void unOp(int dst, UnOpKind op, int src);

    // --- heap ---------------------------------------------------------
    /** Allocation site; returns the instruction index (site id). */
    int newObject(int dst, std::string class_name);
    int newArray(int dst, std::string elem_class, int length_reg);
    void getField(int dst, int obj, FieldRef field);
    void putField(int obj, FieldRef field, int value);
    void getStatic(int dst, FieldRef field);
    void putStatic(FieldRef field, int value);
    void arrayGet(int dst, int arr, int idx);
    void arrayPut(int arr, int idx, int value);

    // --- calls --------------------------------------------------------
    /**
     * Emit an invoke; args include the receiver first for non-static
     * kinds. Returns the instruction index (call site id).
     */
    int invoke(int dst, InvokeKind kind, MethodRef method,
               std::vector<int> args);
    /** invoke-virtual sugar: receiver + args, discarding the result. */
    int call(int receiver, const std::string &class_name,
             const std::string &method_name, std::vector<int> args = {});
    /** invoke-virtual sugar with a result register. */
    int callTo(int dst, int receiver, const std::string &class_name,
               const std::string &method_name, std::vector<int> args = {});
    /** invoke-static sugar. */
    int callStatic(int dst, const std::string &class_name,
                   const std::string &method_name,
                   std::vector<int> args = {});

    // --- control flow -------------------------------------------------
    Label newLabel();
    /** Bind a label to the next emitted instruction. */
    void bind(Label label);
    void iff(int lhs, CondKind cond, int rhs, Label target);
    void ifz(int src, CondKind cond, Label target);
    void gotoLabel(Label target);
    void ret(int src);
    void retVoid();
    void throwReg(int src);
    void nop();

    // --- synchronization ----------------------------------------------
    void monitorEnter(int obj);
    void monitorExit(int obj);

    /** Current next-instruction index (useful for site bookkeeping). */
    int nextIndex() const
    {
        return static_cast<int>(_method->instrs().size());
    }

    /**
     * Patch labels, set the register count and (unless the body already
     * ends in a terminator) append return-void. Must be called once.
     */
    void finish();

    Method *method() const { return _method; }

  private:
    int emit(Instruction instr);

    Method *_method;
    int _nextReg;
    bool _finished{false};
    std::vector<int> _labelTargets;            //!< label id -> instr index
    std::vector<std::pair<int, int>> _patches; //!< (instr index, label id)
};

} // namespace sierra::air

#endif // SIERRA_AIR_BUILDER_HH
