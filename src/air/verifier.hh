/**
 * @file
 * Structural well-formedness checks for AIR modules.
 */

#ifndef SIERRA_AIR_VERIFIER_HH
#define SIERRA_AIR_VERIFIER_HH

#include <string>
#include <vector>

#include "module.hh"

namespace sierra::air {

/** One verification diagnostic. */
struct VerifyIssue {
    std::string where; //!< "Class.method@idx" or "Class"
    std::string message;

    std::string toString() const { return where + ": " + message; }
};

/**
 * Check a module for structural problems.
 *
 * Verifies: register indices within bounds, branch targets within method
 * bodies, operand counts per opcode, referenced classes/fields/methods
 * resolvable (unless the class is outside the module, which is reported),
 * bodies ending in terminators, and super-class links being acyclic.
 *
 * @return all issues found; empty means the module is well formed.
 */
std::vector<VerifyIssue> verifyModule(const Module &module);

/** Convenience: verify and fatal() with a readable dump on any issue. */
void verifyOrDie(const Module &module);

} // namespace sierra::air

#endif // SIERRA_AIR_VERIFIER_HH
