/**
 * @file
 * Structural well-formedness checks for AIR modules.
 */

#ifndef SIERRA_AIR_VERIFIER_HH
#define SIERRA_AIR_VERIFIER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "module.hh"

namespace sierra::air {

/** How serious a diagnostic is. */
enum class Severity : uint8_t {
    Error,   //!< the module is malformed / the code is certainly wrong
    Warning, //!< suspicious but executable (lint findings)
};

const char *severityName(Severity s);

/** One verification or lint diagnostic. */
struct VerifyIssue {
    std::string where; //!< "Class.method@idx" or "Class"
    std::string message;
    Severity severity{Severity::Error};

    std::string toString() const
    {
        return std::string(severityName(severity)) + ": " + where + ": " +
               message;
    }
};

/**
 * Collapse repeated per-method diagnostics: issues in the same method
 * (same `where` up to the "@idx" suffix) with the same message are
 * merged into the first occurrence, annotated with "(xN)". Keeps output
 * stable and greppable when one structural defect repeats per
 * instruction. Relative order of surviving issues is preserved.
 */
std::vector<VerifyIssue> dedupeIssues(std::vector<VerifyIssue> issues);

/**
 * Check a module for structural problems.
 *
 * Verifies: register indices within bounds, branch targets within method
 * bodies, operand counts per opcode, referenced classes/fields/methods
 * resolvable (unless the class is outside the module, which is reported),
 * bodies ending in terminators, super-class links being acyclic, and
 * monitor-enter/monitor-exit being structurally balanced (no exit
 * without a dominating enter, no enter left open on a path to return).
 *
 * @return all issues found; empty means the module is well formed.
 */
std::vector<VerifyIssue> verifyModule(const Module &module);

/** Convenience: verify and fatal() with a readable dump on any issue. */
void verifyOrDie(const Module &module);

} // namespace sierra::air

#endif // SIERRA_AIR_VERIFIER_HH
