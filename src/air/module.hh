/**
 * @file
 * AIR module: the unit of analysis, holding all classes of one app plus
 * the framework model classes.
 */

#ifndef SIERRA_AIR_MODULE_HH
#define SIERRA_AIR_MODULE_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "klass.hh"
#include "util/arena.hh"

namespace sierra::air {

/**
 * A closed world of classes.
 *
 * Iteration order over classes is insertion order, which keeps every
 * downstream analysis deterministic.
 */
class Module
{
  public:
    Module() = default;
    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    /** Create and register a class; fatal() on duplicates. */
    Klass *addClass(std::string name, std::string super_name = "");

    /** Look up a class by name; null if absent. */
    Klass *getClass(const std::string &name) const;

    /** Look up a class by name; fatal() if absent. */
    Klass *requireClass(const std::string &name) const;

    /** Resolve "ClassName.method"; null if either part is absent. */
    Method *findMethod(const std::string &class_name,
                       const std::string &method_name) const;

    const std::vector<Klass *> &classes() const { return _order; }
    size_t numClasses() const { return _order.size(); }

    /**
     * Approximate "bytecode size" of the module in bytes: the length of
     * its textual serialization. Used as the Table 2 dex-size analogue.
     */
    size_t codeSize() const;

    /** Arena backing all method bodies (for the
     *  `arena.bytes_allocated` metric). */
    const util::Arena &arena() const { return _arena; }

  private:
    // The arena is declared first so it is destroyed last: Klass and
    // Method destructors still touch arena-backed instruction storage.
    util::Arena _arena;
    std::unordered_map<std::string, std::unique_ptr<Klass>> _classes;
    std::vector<Klass *> _order;
};

} // namespace sierra::air

#endif // SIERRA_AIR_MODULE_HH
