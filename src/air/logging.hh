/**
 * @file
 * Error and status reporting helpers, modeled after gem5's logging.hh.
 *
 * panic()  - internal invariant violated (a bug in this library); aborts.
 * fatal()  - unrecoverable user error (bad input module, bad config);
 *            exits with an error code.
 * warn()   - something is suspicious but analysis can continue.
 */

#ifndef SIERRA_AIR_LOGGING_HH
#define SIERRA_AIR_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace sierra {

namespace detail {

inline void
formatInto(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    formatInto(os, rest...);
}

} // namespace detail

/** Concatenate all arguments into one string using operator<<. */
template <typename... Args>
std::string
strCat(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    return os.str();
}

/** Abort: an internal invariant of the library was violated. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::cerr << "panic: " << strCat(args...) << std::endl;
    std::abort();
}

/** Exit: the user supplied input the library cannot process. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::cerr << "fatal: " << strCat(args...) << std::endl;
    std::exit(1);
}

/** Non-fatal diagnostic. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::cerr << "warn: " << strCat(args...) << std::endl;
}

/** panic() unless the condition holds. */
#define SIERRA_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::sierra::panic("assertion '", #cond, "' failed at ",           \
                            __FILE__, ":", __LINE__, ": ",                  \
                            ::sierra::strCat(__VA_ARGS__));                 \
        }                                                                   \
    } while (0)

} // namespace sierra

#endif // SIERRA_AIR_LOGGING_HH
