/**
 * @file
 * AIR instruction set.
 *
 * AIR methods are flat vectors of register-machine instructions with
 * index-based branch targets, mirroring the shape of Dalvik bytecode
 * closely enough for the SIERRA analyses: allocation sites, virtual
 * dispatch, field accesses, and conditional control flow are all explicit.
 */

#ifndef SIERRA_AIR_INSTRUCTION_HH
#define SIERRA_AIR_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sierra::air {

/** Opcodes of the AIR register machine. */
enum class Opcode : uint8_t {
    Nop,
    ConstInt,  //!< dst <- intValue
    ConstStr,  //!< dst <- strValue
    ConstNull, //!< dst <- null
    Move,      //!< dst <- srcs[0]
    BinOp,     //!< dst <- srcs[0] binop srcs[1]
    UnOp,      //!< dst <- unop srcs[0]
    New,       //!< dst <- new typeName (allocation site)
    NewArray,  //!< dst <- new typeName[srcs[0]]
    GetField,  //!< dst <- srcs[0].field
    PutField,  //!< srcs[0].field <- srcs[1]
    GetStatic, //!< dst <- field (static)
    PutStatic, //!< field <- srcs[0] (static)
    ArrayGet,  //!< dst <- srcs[0][srcs[1]]
    ArrayPut,  //!< srcs[0][srcs[1]] <- srcs[2]
    Invoke,    //!< dst <- call method(srcs...); receiver is srcs[0] unless
               //!< the invoke kind is Static
    Return,    //!< return srcs[0]
    ReturnVoid,
    If,        //!< if (srcs[0] cond srcs[1]) goto target
    IfZ,       //!< if (srcs[0] cond 0/null) goto target
    Goto,      //!< goto target
    Throw,     //!< throw srcs[0]
    MonitorEnter, //!< acquire the monitor of srcs[0]
    MonitorExit,  //!< release the monitor of srcs[0]
};

/** Dispatch flavor of an Invoke instruction. */
enum class InvokeKind : uint8_t {
    Virtual,   //!< dynamic dispatch on the receiver's class
    Static,    //!< no receiver
    Special,   //!< constructor / explicit super call; no dynamic dispatch
    Interface, //!< like Virtual, through an interface type
};

/** Branch conditions for If/IfZ. */
enum class CondKind : uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/** Binary arithmetic/logical operators. */
enum class BinOpKind : uint8_t { Add, Sub, Mul, Div, Rem, And, Or, Xor };

/** Unary operators. */
enum class UnOpKind : uint8_t { Not, Neg };

/** A named instance or static field on a named class. */
struct FieldRef {
    std::string className;
    std::string fieldName;

    bool operator==(const FieldRef &o) const
    {
        return className == o.className && fieldName == o.fieldName;
    }
    std::string toString() const { return className + "." + fieldName; }
};

/**
 * A symbolic method reference.
 *
 * AIR has no overloading; methods are identified by (class, name). The
 * argument count is kept for verification only.
 */
struct MethodRef {
    std::string className;
    std::string methodName;
    int numArgs{0}; //!< including the receiver for non-static invokes

    bool operator==(const MethodRef &o) const
    {
        return className == o.className && methodName == o.methodName;
    }
    std::string toString() const { return className + "." + methodName; }
};

/**
 * One AIR instruction.
 *
 * A single struct (rather than a virtual hierarchy) keeps instruction
 * storage dense; only the fields relevant to the opcode are meaningful.
 */
struct Instruction {
    Opcode op{Opcode::Nop};
    int dst{-1};                //!< destination register, -1 if none
    std::vector<int> srcs;      //!< source registers (invoke args etc.)
    int64_t intValue{0};        //!< ConstInt payload
    std::string strValue;       //!< ConstStr payload
    std::string typeName;       //!< New/NewArray class name
    FieldRef field;             //!< Get/Put{Field,Static} target
    MethodRef method;           //!< Invoke target
    InvokeKind invokeKind{InvokeKind::Virtual};
    CondKind cond{CondKind::Eq};
    BinOpKind binop{BinOpKind::Add};
    UnOpKind unop{UnOpKind::Not};
    int target{-1};             //!< branch target (instruction index)

    bool isBranch() const
    {
        return op == Opcode::If || op == Opcode::IfZ || op == Opcode::Goto;
    }
    bool isConditionalBranch() const
    {
        return op == Opcode::If || op == Opcode::IfZ;
    }
    bool isTerminator() const
    {
        return op == Opcode::Return || op == Opcode::ReturnVoid ||
               op == Opcode::Goto || op == Opcode::Throw;
    }
    bool isInvoke() const { return op == Opcode::Invoke; }
    bool writesRegister() const { return dst >= 0; }

    /** Render in AIR textual syntax (without trailing newline). */
    std::string toString() const;
};

/** Printable names for the enum values (used by printer and parser). */
const char *opcodeName(Opcode op);
const char *condName(CondKind c);
const char *binopName(BinOpKind b);
const char *unopName(UnOpKind u);
const char *invokeKindName(InvokeKind k);

/** Inverse lookups; return false when the name is unknown. */
bool condFromName(const std::string &name, CondKind &out);
bool binopFromName(const std::string &name, BinOpKind &out);
bool unopFromName(const std::string &name, UnOpKind &out);
bool invokeKindFromName(const std::string &name, InvokeKind &out);

/** Negate a branch condition (Eq <-> Ne, Lt <-> Ge, ...). */
CondKind negateCond(CondKind c);

/** Evaluate "lhs cond rhs" over concrete integers. */
bool evalCond(CondKind c, int64_t lhs, int64_t rhs);

/** Evaluate a binary operator over concrete integers (Div/Rem by 0 = 0). */
int64_t evalBinOp(BinOpKind b, int64_t lhs, int64_t rhs);

} // namespace sierra::air

#endif // SIERRA_AIR_INSTRUCTION_HH
