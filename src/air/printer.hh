/**
 * @file
 * Textual serialization of AIR modules.
 *
 * The printed form round-trips through the parser (see parser.hh) and its
 * byte length doubles as the module's "bytecode size" for Table 2.
 */

#ifndef SIERRA_AIR_PRINTER_HH
#define SIERRA_AIR_PRINTER_HH

#include <string>

namespace sierra::air {

class Module;
class Klass;
class Method;

/** Print one method in AIR textual syntax. With `with_body` false the
 *  signature line (including `regs=`) and braces print but the
 *  instruction lines are omitted -- the "shape" projection the
 *  analysis store hashes (analysis/store.hh). */
std::string printMethod(const Method &method, bool with_body = true);

/** Print one class in AIR textual syntax (`with_bodies` as above). */
std::string printKlass(const Klass &klass, bool with_bodies = true);

/** Print an entire module in AIR textual syntax. */
std::string printModule(const Module &module);

} // namespace sierra::air

#endif // SIERRA_AIR_PRINTER_HH
