#include "builder.hh"

#include "klass.hh"
#include "logging.hh"

namespace sierra::air {

MethodBuilder::MethodBuilder(Method *method)
    : _method(method), _nextReg(method->firstTempReg())
{
    SIERRA_ASSERT(method->instrs().empty(),
                  "builder requires an empty method: ",
                  method->qualifiedName());
}

int
MethodBuilder::newReg()
{
    return _nextReg++;
}

int
MethodBuilder::emit(Instruction instr)
{
    SIERRA_ASSERT(!_finished, "emit after finish()");
    int idx = nextIndex();
    _method->instrs().push_back(std::move(instr));
    return idx;
}

void
MethodBuilder::constInt(int dst, int64_t value)
{
    Instruction i;
    i.op = Opcode::ConstInt;
    i.dst = dst;
    i.intValue = value;
    emit(std::move(i));
}

void
MethodBuilder::constStr(int dst, std::string value)
{
    Instruction i;
    i.op = Opcode::ConstStr;
    i.dst = dst;
    i.strValue = std::move(value);
    emit(std::move(i));
}

void
MethodBuilder::constNull(int dst)
{
    Instruction i;
    i.op = Opcode::ConstNull;
    i.dst = dst;
    emit(std::move(i));
}

void
MethodBuilder::move(int dst, int src)
{
    Instruction i;
    i.op = Opcode::Move;
    i.dst = dst;
    i.srcs = {src};
    emit(std::move(i));
}

void
MethodBuilder::binOp(int dst, BinOpKind op, int lhs, int rhs)
{
    Instruction i;
    i.op = Opcode::BinOp;
    i.dst = dst;
    i.binop = op;
    i.srcs = {lhs, rhs};
    emit(std::move(i));
}

void
MethodBuilder::unOp(int dst, UnOpKind op, int src)
{
    Instruction i;
    i.op = Opcode::UnOp;
    i.dst = dst;
    i.unop = op;
    i.srcs = {src};
    emit(std::move(i));
}

int
MethodBuilder::newObject(int dst, std::string class_name)
{
    Instruction i;
    i.op = Opcode::New;
    i.dst = dst;
    i.typeName = std::move(class_name);
    return emit(std::move(i));
}

int
MethodBuilder::newArray(int dst, std::string elem_class, int length_reg)
{
    Instruction i;
    i.op = Opcode::NewArray;
    i.dst = dst;
    i.typeName = std::move(elem_class);
    i.srcs = {length_reg};
    return emit(std::move(i));
}

void
MethodBuilder::getField(int dst, int obj, FieldRef field)
{
    Instruction i;
    i.op = Opcode::GetField;
    i.dst = dst;
    i.srcs = {obj};
    i.field = std::move(field);
    emit(std::move(i));
}

void
MethodBuilder::putField(int obj, FieldRef field, int value)
{
    Instruction i;
    i.op = Opcode::PutField;
    i.srcs = {obj, value};
    i.field = std::move(field);
    emit(std::move(i));
}

void
MethodBuilder::getStatic(int dst, FieldRef field)
{
    Instruction i;
    i.op = Opcode::GetStatic;
    i.dst = dst;
    i.field = std::move(field);
    emit(std::move(i));
}

void
MethodBuilder::putStatic(FieldRef field, int value)
{
    Instruction i;
    i.op = Opcode::PutStatic;
    i.srcs = {value};
    i.field = std::move(field);
    emit(std::move(i));
}

void
MethodBuilder::arrayGet(int dst, int arr, int idx)
{
    Instruction i;
    i.op = Opcode::ArrayGet;
    i.dst = dst;
    i.srcs = {arr, idx};
    emit(std::move(i));
}

void
MethodBuilder::arrayPut(int arr, int idx, int value)
{
    Instruction i;
    i.op = Opcode::ArrayPut;
    i.srcs = {arr, idx, value};
    emit(std::move(i));
}

int
MethodBuilder::invoke(int dst, InvokeKind kind, MethodRef method,
                      std::vector<int> args)
{
    Instruction i;
    i.op = Opcode::Invoke;
    i.dst = dst;
    i.invokeKind = kind;
    method.numArgs = static_cast<int>(args.size());
    i.method = std::move(method);
    i.srcs = std::move(args);
    return emit(std::move(i));
}

int
MethodBuilder::call(int receiver, const std::string &class_name,
                    const std::string &method_name, std::vector<int> args)
{
    std::vector<int> all{receiver};
    all.insert(all.end(), args.begin(), args.end());
    return invoke(-1, InvokeKind::Virtual, {class_name, method_name, 0},
                  std::move(all));
}

int
MethodBuilder::callTo(int dst, int receiver, const std::string &class_name,
                      const std::string &method_name, std::vector<int> args)
{
    std::vector<int> all{receiver};
    all.insert(all.end(), args.begin(), args.end());
    return invoke(dst, InvokeKind::Virtual, {class_name, method_name, 0},
                  std::move(all));
}

int
MethodBuilder::callStatic(int dst, const std::string &class_name,
                          const std::string &method_name,
                          std::vector<int> args)
{
    return invoke(dst, InvokeKind::Static, {class_name, method_name, 0},
                  std::move(args));
}

Label
MethodBuilder::newLabel()
{
    Label l;
    l.id = static_cast<int>(_labelTargets.size());
    _labelTargets.push_back(-1);
    return l;
}

void
MethodBuilder::bind(Label label)
{
    SIERRA_ASSERT(label.id >= 0 &&
                  label.id < static_cast<int>(_labelTargets.size()),
                  "bad label");
    SIERRA_ASSERT(_labelTargets[label.id] == -1, "label bound twice");
    _labelTargets[label.id] = nextIndex();
}

void
MethodBuilder::iff(int lhs, CondKind cond, int rhs, Label target)
{
    Instruction i;
    i.op = Opcode::If;
    i.cond = cond;
    i.srcs = {lhs, rhs};
    int idx = emit(std::move(i));
    _patches.emplace_back(idx, target.id);
}

void
MethodBuilder::ifz(int src, CondKind cond, Label target)
{
    Instruction i;
    i.op = Opcode::IfZ;
    i.cond = cond;
    i.srcs = {src};
    int idx = emit(std::move(i));
    _patches.emplace_back(idx, target.id);
}

void
MethodBuilder::gotoLabel(Label target)
{
    Instruction i;
    i.op = Opcode::Goto;
    int idx = emit(std::move(i));
    _patches.emplace_back(idx, target.id);
}

void
MethodBuilder::ret(int src)
{
    Instruction i;
    i.op = Opcode::Return;
    i.srcs = {src};
    emit(std::move(i));
}

void
MethodBuilder::retVoid()
{
    Instruction i;
    i.op = Opcode::ReturnVoid;
    emit(std::move(i));
}

void
MethodBuilder::throwReg(int src)
{
    Instruction i;
    i.op = Opcode::Throw;
    i.srcs = {src};
    emit(std::move(i));
}

void
MethodBuilder::nop()
{
    Instruction i;
    i.op = Opcode::Nop;
    emit(std::move(i));
}

void
MethodBuilder::monitorEnter(int obj)
{
    Instruction i;
    i.op = Opcode::MonitorEnter;
    i.srcs = {obj};
    emit(std::move(i));
}

void
MethodBuilder::monitorExit(int obj)
{
    Instruction i;
    i.op = Opcode::MonitorExit;
    i.srcs = {obj};
    emit(std::move(i));
}

void
MethodBuilder::finish()
{
    SIERRA_ASSERT(!_finished, "finish() called twice");
    auto &instrs = _method->instrs();
    if (instrs.empty() || !instrs.back().isTerminator())
        retVoid();
    for (const auto &[instr_idx, label_id] : _patches) {
        int target = _labelTargets[label_id];
        SIERRA_ASSERT(target >= 0, "unbound label in ",
                      _method->qualifiedName());
        instrs[instr_idx].target = target;
    }
    _method->setNumRegisters(_nextReg);
    _finished = true;
}

} // namespace sierra::air
