#include "harness.hh"

#include <functional>

#include "air/builder.hh"
#include "air/logging.hh"
#include "framework/known_api.hh"
#include "framework/lifecycle.hh"

namespace sierra::harness {

using air::CondKind;
using air::InvokeKind;
using air::Label;
using air::MethodBuilder;
using air::Type;
using analysis::ActionKind;

HarnessGenerator::HarnessGenerator(framework::App &app, bool model_icc)
    : _app(app)
{
    framework::installFrameworkModel(app.module());
    ensureNondetClass();
    // The ICC scan runs before any harness is generated, so it only
    // sees app code (harness classes are synthetic and Intent-free
    // anyway).
    if (model_icc)
        _icc = std::make_unique<framework::IccModel>(app);
}

std::string
HarnessGenerator::harnessClassName(const std::string &activity)
{
    return "Harness$" + activity;
}

void
HarnessGenerator::ensureNondetClass()
{
    air::Module &mod = _app.module();
    if (mod.getClass(kNondetClass))
        return;
    air::Klass *k = mod.addClass(kNondetClass,
                                 framework::names::object);
    k->setSynthetic(true);
    k->addMethod("choose", {}, Type::intTy(), true);
}

std::vector<HarnessPlan>
HarnessGenerator::generateAll()
{
    std::vector<HarnessPlan> plans;
    for (const auto &activity : _app.manifest().activities)
        plans.push_back(generate(activity));
    return plans;
}

HarnessPlan
HarnessGenerator::generate(const std::string &activity_class)
{
    air::Module &mod = _app.module();
    air::Klass *activity = mod.getClass(activity_class);
    if (!activity)
        fatal("harness: unknown activity ", activity_class);

    air::Klass *hk = mod.addClass(harnessClassName(activity_class),
                                  framework::names::object);
    hk->setSynthetic(true);
    air::Method *main =
        hk->addMethod("main", {}, Type::voidTy(), true);

    HarnessPlan plan;
    plan.activityClass = activity_class;
    plan.mainMethod = main;

    MethodBuilder b(main);

    auto event = [&](int site_idx, ActionKind kind,
                     const std::string &callback,
                     const std::string &target_class, int widget_id,
                     bool in_loop, int instance) {
        EventSite s;
        s.method = main;
        s.instrIdx = site_idx;
        s.kind = kind;
        s.callbackName = callback;
        s.targetClass = target_class;
        s.widgetId = widget_id;
        s.inEventLoop = in_loop;
        s.lifecycleInstance = instance;
        plan.eventSites.push_back(std::move(s));
    };

    // --- prologue: allocate the activity, run the entry sequence -----
    int ra = b.newReg();
    b.newObject(ra, activity_class);
    if (air::Method *init = activity->findMethod("<init>")) {
        if (!init->isStatic()) {
            b.invoke(-1, InvokeKind::Special,
                     {activity_class, "<init>", 0}, {ra});
        }
    }
    auto lifecycle = [&](const std::string &cb, bool in_loop,
                         int instance) {
        int idx = b.call(ra, activity_class, cb);
        event(idx, ActionKind::Lifecycle, cb, activity_class, -1,
              in_loop, instance);
    };
    lifecycle("onCreate", false, 1);
    lifecycle("onStart", false, 1);
    lifecycle("onResume", false, 1);

    // Manifest receivers and services live across the activity's
    // lifetime; instantiate them before the event loop.
    std::vector<std::pair<std::string, int>> receiver_regs;
    for (const auto &spec : _app.manifest().receivers) {
        if (!spec.declaredInManifest)
            continue;
        if (!mod.getClass(spec.className)) {
            warn("harness: unknown receiver class ", spec.className);
            continue;
        }
        int rr = b.newReg();
        b.newObject(rr, spec.className);
        if (mod.findMethod(spec.className, "<init>")) {
            b.invoke(-1, InvokeKind::Special,
                     {spec.className, "<init>", 0}, {rr});
        }
        receiver_regs.emplace_back(spec.className, rr);
    }
    std::vector<std::pair<std::string, int>> service_regs;
    for (const auto &spec : _app.manifest().services) {
        if (!mod.getClass(spec.className)) {
            warn("harness: unknown service class ", spec.className);
            continue;
        }
        int rs = b.newReg();
        b.newObject(rs, spec.className);
        if (mod.findMethod(spec.className, "<init>")) {
            b.invoke(-1, InvokeKind::Special,
                     {spec.className, "<init>", 0}, {rs});
        }
        service_regs.emplace_back(spec.className, rs);
    }

    // ICC target activities (resolved activity->activity Intent edges,
    // sorted by IccModel): instantiated alongside receivers/services,
    // driven by their own event-loop case below.
    std::vector<std::pair<std::string, int>> icc_regs;
    if (_icc) {
        for (const std::string &target :
             _icc->activityTargetsOf(activity_class)) {
            air::Klass *tk = mod.getClass(target);
            if (!tk) {
                warn("harness: unknown icc target ", target);
                continue;
            }
            int rt = b.newReg();
            b.newObject(rt, target);
            if (air::Method *init = tk->findMethod("<init>")) {
                if (!init->isStatic()) {
                    b.invoke(-1, InvokeKind::Special,
                             {target, "<init>", 0}, {rt});
                }
            }
            icc_regs.emplace_back(target, rt);
        }
    }

    // --- the nondeterministic event loop ------------------------------
    // Cases: 0 = pause/resume cycle, 1 = stop/restart cycle, then GUI
    // callbacks from the layout, then receivers, then services.
    struct Case {
        std::function<void()> emit;
    };
    std::vector<Case> cases;

    cases.push_back({[&] {
        lifecycle("onPause", true, 1);
        lifecycle("onResume", true, 2);
    }});
    cases.push_back({[&] {
        lifecycle("onPause", true, 2);
        lifecycle("onStop", true, 1);
        lifecycle("onRestart", true, 1);
        lifecycle("onStart", true, 2);
        lifecycle("onResume", true, 3);
    }});

    const framework::Layout *layout = _app.layoutFor(activity_class);
    if (layout) {
        for (const auto &widget : layout->widgets()) {
            if (widget.xmlOnClick.empty())
                continue;
            const framework::Widget *w = &widget;
            cases.push_back({[&, w] {
                int rv = b.newReg();
                int rid = b.newReg();
                b.constInt(rid, w->id);
                b.callTo(rv, ra, activity_class, "findViewById", {rid});
                int idx = b.call(ra, activity_class, w->xmlOnClick, {rv});
                event(idx, ActionKind::XmlGui, w->xmlOnClick,
                      activity_class, w->id, true, 1);
            }});
        }
    }
    for (const auto &[recv_class, rr] : receiver_regs) {
        const std::string &rc = recv_class;
        int reg = rr;
        cases.push_back({[&, rc, reg] {
            int rin = b.newReg();
            b.newObject(rin, framework::names::intent);
            int idx = b.call(reg, rc, "onReceive", {ra, rin});
            event(idx, ActionKind::Receive, "onReceive", rc, -1, true,
                  1);
        }});
    }
    for (const auto &[svc_class, rs] : service_regs) {
        const std::string &sc = svc_class;
        int reg = rs;
        cases.push_back({[&, sc, reg] {
            int idx = b.call(reg, sc, "onCreate");
            event(idx, ActionKind::ServiceCreate, "onCreate", sc, -1,
                  true, 1);
            int rin = b.newReg();
            b.newObject(rin, framework::names::intent);
            int idx2 = b.call(reg, sc, "onStartCommand", {rin});
            event(idx2, ActionKind::ServiceCreate, "onStartCommand", sc,
                  -1, true, 1);
        }});
    }
    // One case per ICC target: the framework launches the target and
    // drives its whole lifecycle. The sites sit inside the loop
    // (inEventLoop = true), so they stay SHBG-unordered against the
    // sender's own loop events while the intra-case dominance still
    // orders the target's onCreate..onDestroy sequence.
    for (const auto &[icc_class, rt] : icc_regs) {
        const std::string &tc = icc_class;
        int reg = rt;
        cases.push_back({[&, tc, reg] {
            for (const char *cb :
                 {"onCreate", "onStart", "onResume", "onPause",
                  "onStop", "onDestroy"}) {
                int idx = b.call(reg, tc, cb);
                event(idx, ActionKind::Lifecycle, cb, tc, -1, true, 1);
            }
        }});
    }

    Label loop_head = b.newLabel();
    Label loop_exit = b.newLabel();
    b.bind(loop_head);
    int rc = b.newReg();
    b.callStatic(rc, kNondetClass, "choose");
    b.ifz(rc, CondKind::Eq, loop_exit);

    int rsel = b.newReg();
    b.callStatic(rsel, kNondetClass, "choose");
    std::vector<Label> case_labels;
    int rk = b.newReg();
    for (size_t i = 0; i < cases.size(); ++i) {
        case_labels.push_back(b.newLabel());
        b.constInt(rk, static_cast<int64_t>(i));
        b.iff(rsel, CondKind::Eq, rk, case_labels[i]);
    }
    b.gotoLabel(loop_head);
    for (size_t i = 0; i < cases.size(); ++i) {
        b.bind(case_labels[i]);
        cases[i].emit();
        b.gotoLabel(loop_head);
    }

    // --- epilogue: the exit sequence ----------------------------------
    b.bind(loop_exit);
    lifecycle("onPause", false, 3);
    lifecycle("onStop", false, 2);
    lifecycle("onDestroy", false, 1);
    b.retVoid();
    b.finish();

    return plan;
}

} // namespace sierra::harness
