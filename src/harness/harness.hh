/**
 * @file
 * Automatic per-activity harness generation (paper Section 3.2, Fig. 4).
 *
 * For each Activity the generator synthesizes a `Harness$<Activity>`
 * class whose static main():
 *   - instantiates the activity and runs the lifecycle entry sequence
 *     (onCreate, onStart "1", onResume "1"),
 *   - loops nondeterministically over: the pause/resume cycle, the
 *     stop/restart cycle, layout-XML GUI callbacks, manifest broadcast
 *     receivers and services,
 *   - runs the lifecycle exit sequence (onPause, onStop, onDestroy).
 *
 * Each callback invocation in the harness is an *event site*; the
 * pointer analysis turns event sites into actions, and the HB rules
 * order them by harness-CFG dominance (splitting cyclic callbacks into
 * "1"/"2" instances exactly as in paper Figure 5).
 *
 * Callbacks registered dynamically in code (setOnClickListener,
 * registerReceiver, Handler construction, ...) are not emitted here:
 * the pointer analysis discovers them on the fly at their registration
 * sites, which subsumes the paper's harness/call-graph fixpoint
 * iteration.
 */

#ifndef SIERRA_HARNESS_HARNESS_HH
#define SIERRA_HARNESS_HARNESS_HH

#include <memory>
#include <string>
#include <vector>

#include "analysis/entry_plan.hh"
#include "framework/app.hh"
#include "framework/icc.hh"

namespace sierra::harness {

/** A generated harness: the analysis entrypoint for one activity. */
using HarnessPlan = analysis::EntryPlan;
using EventSite = analysis::EntryEventSite;

/** Name of the synthetic nondeterminism provider class. */
inline constexpr const char *kNondetClass = "sierra.Nondet";

/**
 * Generates harnesses into an app's module.
 *
 * Also installs the framework model classes and the Nondet provider on
 * construction, so a freshly built corpus app becomes analyzable.
 *
 * With `model_icc` on, construction additionally builds the app's
 * framework::IccModel, and each activity harness gains one event-loop
 * case per resolved activity->activity ICC edge: the case instantiates
 * the target activity and drives its full lifecycle, so the target's
 * callbacks interleave with the sender's events and cross-component
 * races become visible to the unchanged downstream pipeline.
 */
class HarnessGenerator
{
  public:
    explicit HarnessGenerator(framework::App &app,
                              bool model_icc = false);

    /** Generate the harness for one activity. */
    HarnessPlan generate(const std::string &activity_class);

    /** Generate harnesses for all manifest activities. */
    std::vector<HarnessPlan> generateAll();

    /** The harness class name for an activity. */
    static std::string harnessClassName(const std::string &activity);

    /** The ICC model, when `model_icc` was requested (else null). */
    const framework::IccModel *icc() const { return _icc.get(); }

  private:
    void ensureNondetClass();

    framework::App &_app;
    std::unique_ptr<framework::IccModel> _icc;
};

} // namespace sierra::harness

#endif // SIERRA_HARNESS_HARNESS_HH
