/**
 * @file
 * An event-driven interpreter for AIR apps.
 *
 * This is the substrate for the dynamic race detector (the paper's
 * EventRacer Android comparison, Section 6.4): it actually executes the
 * app's code under a randomized event schedule -- lifecycle transitions,
 * GUI events, message/runnable delivery, background threads, broadcast
 * and service events -- and records a trace of events, happens-before
 * edges and memory accesses.
 *
 * Events execute atomically (the looper guarantee); background bodies
 * are also executed atomically but are unordered against concurrent
 * events in the trace's happens-before relation, which is what the race
 * detector consumes.
 */

#ifndef SIERRA_DYNAMIC_INTERPRETER_HH
#define SIERRA_DYNAMIC_INTERPRETER_HH

#include <deque>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "analysis/class_hierarchy.hh"
#include "framework/app.hh"
#include "framework/known_api.hh"
#include "framework/lifecycle.hh"
#include "value.hh"

namespace sierra::dynamic {

/** One executed event (trace node). */
struct TraceEvent {
    int id{-1};
    std::string label;       //!< e.g. "MainActivity.onCreate"
    std::string kind;        //!< lifecycle/gui/post/message/thread/...
    bool onMainLooper{true};
    int creator{-1};         //!< event that enqueued/enabled this one
    //! ids of events that happen-before this one (direct edges)
    std::vector<int> hbPreds;
};

/** One memory access in the trace. */
struct TraceAccess {
    int event{-1};
    int obj{-1};             //!< heap index; -1 for statics
    std::string key;         //!< canonical "Class.field"
    bool isWrite{false};
    std::string site;        //!< "Class.method@idx"
};

/** A full execution trace of one schedule. */
struct Trace {
    std::vector<TraceEvent> events;
    std::vector<TraceAccess> accesses;
    //! (obj, key) pairs observed as branch guards, split by whether the
    //! guarded variable is primitive (race-coverage filter material)
    std::set<std::pair<int, std::string>> primitiveGuards;
    std::set<std::pair<int, std::string>> referenceGuards;
};

/** Interpreter/scheduler options. */
struct RunOptions {
    uint32_t seed{1};
    int maxEvents{160};      //!< events per schedule
    int maxStepsPerEvent{20000};
    int maxCallDepth{64};
};

/**
 * Executes one app under one randomized schedule and yields the trace.
 */
class Interpreter
{
  public:
    Interpreter(const framework::App &app, RunOptions options);

    /** Run one schedule to completion. */
    Trace run();

    /**
     * Evaluate one static method directly (no scheduling) -- a
     * debugging/testing entry point for AIR code. Accesses it performs
     * are recorded under a single synthetic event.
     */
    Value evalStatic(const std::string &class_name,
                     const std::string &method_name,
                     std::vector<Value> args = {});

    /** Read a static field after evalStatic/run (null if unset). */
    Value staticField(const std::string &key) const;

  private:
    struct PendingEvent {
        std::string label;
        std::string kind;
        const air::Method *method{nullptr};
        std::vector<Value> args;
        bool onMainLooper{true};
        int looperRef{-1};//!< heap ref of the target looper; -1 = main
        int creator{-1};
        int queueSeq{-1}; //!< FIFO position on its looper queue
        //! AsyncTask continuation: post onPostExecute when done
        int asyncTaskRef{-1};
    };

    int newObject(const std::string &klass);
    Value invoke(const air::Method *method, std::vector<Value> args,
                 int depth);
    Value intrinsic(framework::ApiKind kind,
                    const air::Instruction &instr,
                    const air::Method *caller,
                    const std::vector<Value> &args);
    void record(int obj, const std::string &key, bool is_write,
                const air::Method *m, int idx);
    std::string fieldKeyOf(int obj, const air::FieldRef &ref) const;

    /** Enqueue an event; returns its pending index. */
    void post(PendingEvent ev);
    /** Execute one pending event, assigning a trace id. */
    void execute(PendingEvent ev);

    void driveActivity(const std::string &activity);
    void fireLifecycle(int act_ref, const std::string &activity,
                       const std::string &cb, int creator);

    const framework::App &_app;
    RunOptions _opts;
    std::mt19937 _rng;
    analysis::ClassHierarchy _cha;
    framework::LifecycleModel _lifecycle;

    std::vector<RtObject> _heap;
    std::map<std::string, Value> _statics;
    std::map<int, int> _viewObjects; //!< view id -> heap ref

    //! per-looper FIFOs of posted events (-1 = the main looper)
    std::map<int, std::deque<PendingEvent>> _looperQueues;
    //! canonical main-looper object (lazily created)
    int _mainLooperRef{-1};
    int looperOfHandler(int handler_ref);
    //! started-but-not-executed background bodies
    std::vector<PendingEvent> _background;
    //! registered listeners: (view ref, callback, listener ref)
    struct ListenerReg {
        int view;
        std::string callback;
        int listener;
        int registrar; //!< event that registered it
    };
    std::vector<ListenerReg> _listeners;
    //! registered broadcast receivers (heap refs) + registering event
    std::vector<std::pair<int, int>> _receivers;

    Trace _trace;
    int _currentEvent{-1};
    int _queueSeqCounter{0};
    int _eventBudget{0};
    //! (creator event, looper) -> last executed event it posted there
    std::map<std::pair<int, int>, int> _lastPostedBy;
    //! provenance of the registers in the current frame (guards)
    struct Frame;
};

} // namespace sierra::dynamic

#endif // SIERRA_DYNAMIC_INTERPRETER_HH
