#include "race_verifier.hh"

#include <map>
#include <set>

namespace sierra::dynamic {

const VerifiedRace *
RaceVerificationReport::find(const std::string &key) const
{
    for (const auto &race : races) {
        if (race.fieldKey == key)
            return &race;
    }
    return nullptr;
}

RaceVerificationReport
verifyRacesDynamically(const framework::App &app,
                       const std::vector<std::string> &race_keys,
                       const RaceVerifierOptions &options)
{
    // Per key: the site pairs observed in conflict, with the order(s)
    // seen. A pair observed as (a before b) in one schedule and
    // (b before a) in another is a confirmed order nondeterminism.
    // Limitation: orders are merged across heap objects sharing the
    // key (object identities are not stable across schedules), so two
    // objects each seen in one opposite order can over-confirm.
    struct PairOrders {
        bool forward{false};
        bool backward{false};
    };
    std::map<std::string, std::map<std::pair<std::string, std::string>,
                                   PairOrders>>
        orders;
    std::map<std::string, int> schedules_with_conflict;
    std::set<std::string> wanted(race_keys.begin(), race_keys.end());

    for (int s = 0; s < options.numSchedules; ++s) {
        RunOptions run = options.run;
        run.seed = options.run.seed + static_cast<uint32_t>(s) * 6151;
        Interpreter interp(app, run);
        Trace trace = interp.run();

        // First conflicting occurrence order per (key, site pair) in
        // this schedule, in trace order.
        std::map<std::pair<int, std::string>,
                 std::vector<const TraceAccess *>>
            by_loc;
        for (const auto &a : trace.accesses) {
            if (wanted.count(a.key))
                by_loc[{a.obj, a.key}].push_back(&a);
        }
        std::set<std::string> conflicted_keys;
        for (const auto &[loc, accesses] : by_loc) {
            for (size_t i = 0; i < accesses.size(); ++i) {
                for (size_t j = i + 1; j < accesses.size(); ++j) {
                    const TraceAccess &x = *accesses[i];
                    const TraceAccess &y = *accesses[j];
                    if (!x.isWrite && !y.isWrite)
                        continue;
                    if (x.event == y.event)
                        continue;
                    conflicted_keys.insert(x.key);
                    // x executed before y in this schedule.
                    auto pair_key =
                        std::make_pair(std::min(x.site, y.site),
                                       std::max(x.site, y.site));
                    PairOrders &po = orders[x.key][pair_key];
                    if (x.site <= y.site)
                        po.forward = true;
                    else
                        po.backward = true;
                }
            }
        }
        for (const auto &key : conflicted_keys)
            ++schedules_with_conflict[key];
    }

    RaceVerificationReport report;
    for (const auto &key : race_keys) {
        VerifiedRace v;
        v.fieldKey = key;
        auto sit = schedules_with_conflict.find(key);
        v.schedulesWithConflict =
            sit == schedules_with_conflict.end() ? 0 : sit->second;
        v.conflictObserved = v.schedulesWithConflict > 0;
        auto oit = orders.find(key);
        if (oit != orders.end()) {
            for (const auto &[pair_key, po] : oit->second) {
                if (po.forward && po.backward)
                    v.bothOrdersObserved = true;
            }
        }
        if (v.bothOrdersObserved)
            ++report.confirmed;
        else if (v.conflictObserved)
            ++report.observed;
        else
            ++report.unobserved;
        report.races.push_back(std::move(v));
    }
    return report;
}

} // namespace sierra::dynamic
