/**
 * @file
 * Runtime values and heap objects for the AIR interpreter.
 */

#ifndef SIERRA_DYNAMIC_VALUE_HH
#define SIERRA_DYNAMIC_VALUE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sierra::dynamic {

/** A runtime value: null, integer, string, or heap reference. */
struct Value {
    enum class Kind { Null, Int, Str, Ref };
    Kind kind{Kind::Null};
    int64_t i{0};
    std::string s;
    int ref{-1}; //!< heap object index

    static Value null() { return {}; }
    static Value
    ofInt(int64_t v)
    {
        Value out;
        out.kind = Kind::Int;
        out.i = v;
        return out;
    }
    static Value
    ofStr(std::string v)
    {
        Value out;
        out.kind = Kind::Str;
        out.s = std::move(v);
        return out;
    }
    static Value
    ofRef(int r)
    {
        Value out;
        out.kind = Kind::Ref;
        out.ref = r;
        return out;
    }

    bool isNull() const { return kind == Kind::Null; }
    bool isRef() const { return kind == Kind::Ref; }
    /** Branch truthiness: null/0 are false-y (compare against zero). */
    int64_t
    asCondInt() const
    {
        switch (kind) {
          case Kind::Null: return 0;
          case Kind::Int: return i;
          case Kind::Str: return s.empty() ? 0 : 1;
          case Kind::Ref: return ref + 1; // non-zero
        }
        return 0;
    }

    std::string toString() const;
};

/** One heap object. */
struct RtObject {
    std::string klass;
    std::map<std::string, Value> fields; //!< canonical key -> value
    std::vector<Value> elems;            //!< array payload
    int viewId{-1};                      //!< for inflated views
};

} // namespace sierra::dynamic

#endif // SIERRA_DYNAMIC_VALUE_HH
