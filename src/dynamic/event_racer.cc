#include "event_racer.hh"

#include <map>
#include <set>

#include "air/logging.hh"

namespace sierra::dynamic {

namespace {

/** Reachability closure over the trace's HB edges (events are few). */
class HbClosure
{
  public:
    explicit HbClosure(const Trace &trace)
    {
        const int n = static_cast<int>(trace.events.size());
        _words = (n + 63) / 64;
        _reach.assign(n, std::vector<uint64_t>(_words, 0));
        // Events are created in execution order, so predecessors always
        // have smaller ids: one forward pass closes the relation.
        for (int e = 0; e < n; ++e) {
            for (int p : trace.events[e].hbPreds) {
                if (p < 0 || p >= n)
                    continue;
                _reach[e][p >> 6] |= uint64_t(1) << (p & 63);
                for (size_t w = 0; w < _words; ++w)
                    _reach[e][w] |= _reach[p][w];
            }
        }
    }

    bool
    ordered(int a, int b) const
    {
        if (a == b)
            return true;
        return bit(a, b) || bit(b, a);
    }

  private:
    bool
    bit(int a, int b) const
    {
        return (_reach[a][b >> 6] >> (b & 63)) & 1;
    }

    size_t _words{0};
    std::vector<std::vector<uint64_t>> _reach;
};

} // namespace

std::vector<DynamicRace>
detectRaces(const Trace &trace, bool coverage_filter)
{
    HbClosure hb(trace);
    std::vector<DynamicRace> out;
    std::set<std::tuple<std::string, std::string, std::string>> seen;

    // Group accesses per location to keep the pair scan tight.
    std::map<std::pair<int, std::string>, std::vector<int>> by_loc;
    for (size_t i = 0; i < trace.accesses.size(); ++i) {
        const TraceAccess &a = trace.accesses[i];
        by_loc[{a.obj, a.key}].push_back(static_cast<int>(i));
    }

    for (const auto &[loc, indices] : by_loc) {
        for (size_t ii = 0; ii < indices.size(); ++ii) {
            for (size_t jj = ii + 1; jj < indices.size(); ++jj) {
                const TraceAccess &x = trace.accesses[indices[ii]];
                const TraceAccess &y = trace.accesses[indices[jj]];
                if (!x.isWrite && !y.isWrite)
                    continue;
                if (x.event == y.event)
                    continue;
                if (hb.ordered(x.event, y.event))
                    continue;
                DynamicRace race;
                race.fieldKey = x.key;
                race.event1 = trace.events[x.event].label;
                race.event2 = trace.events[y.event].label;
                race.site1 = x.site;
                race.site2 = y.site;
                if (coverage_filter &&
                    trace.primitiveGuards.count(loc)) {
                    // "Race coverage": the variable guards a branch the
                    // detector observed; EventRacer reasons only about
                    // primitive variables here.
                    race.filteredByCoverage = true;
                }
                auto key = std::make_tuple(
                    std::min(x.site, y.site), std::max(x.site, y.site),
                    x.key);
                if (seen.insert(key).second)
                    out.push_back(std::move(race));
            }
        }
    }
    return out;
}

std::vector<std::string>
EventRacerReport::raceKeys() const
{
    std::set<std::string> keys;
    for (const auto &race : races) {
        if (!race.filteredByCoverage)
            keys.insert(race.fieldKey);
    }
    return {keys.begin(), keys.end()};
}

EventRacerReport
runEventRacer(const framework::App &app,
              const EventRacerOptions &options)
{
    EventRacerReport report;
    std::set<std::tuple<std::string, std::string, std::string>> seen;

    for (int s = 0; s < options.numSchedules; ++s) {
        RunOptions run = options.run;
        run.seed = options.run.seed + static_cast<uint32_t>(s) * 7919;
        Interpreter interp(app, run);
        Trace trace = interp.run();
        ++report.schedulesRun;
        report.eventsExecuted +=
            static_cast<int64_t>(trace.events.size());

        auto races =
            detectRaces(trace, options.raceCoverageFilter);
        for (auto &race : races) {
            ++report.rawRaceCount;
            auto key = std::make_tuple(
                std::min(race.site1, race.site2),
                std::max(race.site1, race.site2), race.fieldKey);
            if (seen.insert(key).second)
                report.races.push_back(std::move(race));
        }
    }
    return report;
}

} // namespace sierra::dynamic
