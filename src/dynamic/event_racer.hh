/**
 * @file
 * A dynamic event-race detector in the style of EventRacer Android
 * (Bielik et al., OOPSLA'15) -- the comparison baseline of paper
 * Section 6.4.
 *
 * The detector runs the interpreter under a handful of randomized
 * schedules, computes the happens-before closure of each trace (creation
 * edges, same-creator FIFO, lifecycle chains), and reports conflicting
 * accesses from unordered events. Its "race coverage" analogue filters
 * races on variables it observed guarding branches -- but, like the real
 * tool, only for primitive-typed variables, so pointer-guarded ad-hoc
 * synchronization still produces false positives (paper: 102 of 182
 * EventRacer reports). Being dynamic, it only sees code the schedules
 * actually executed -- the source of its false negatives.
 */

#ifndef SIERRA_DYNAMIC_EVENT_RACER_HH
#define SIERRA_DYNAMIC_EVENT_RACER_HH

#include <string>
#include <vector>

#include "interpreter.hh"

namespace sierra::dynamic {

/** One dynamic race report. */
struct DynamicRace {
    std::string fieldKey; //!< canonical "Class.field"
    std::string event1;   //!< labels of the two racing events
    std::string event2;
    std::string site1;
    std::string site2;
    bool filteredByCoverage{false};
};

/** Detector options. */
struct EventRacerOptions {
    RunOptions run;
    int numSchedules{3};
    bool raceCoverageFilter{true};
};

/** Aggregate result over all schedules. */
struct EventRacerReport {
    std::vector<DynamicRace> races; //!< after coverage filtering
    int rawRaceCount{0};            //!< before coverage filtering
    int schedulesRun{0};
    int64_t eventsExecuted{0};

    /** Distinct field keys among (unfiltered) reports. */
    std::vector<std::string> raceKeys() const;
};

/** Run the dynamic detector over one app. */
EventRacerReport runEventRacer(const framework::App &app,
                               const EventRacerOptions &options = {});

/** Detect races in a single trace (exposed for unit tests). */
std::vector<DynamicRace> detectRaces(const Trace &trace,
                                     bool coverage_filter);

} // namespace sierra::dynamic

#endif // SIERRA_DYNAMIC_EVENT_RACER_HH
