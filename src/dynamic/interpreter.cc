#include "interpreter.hh"

#include "air/logging.hh"
#include "analysis/array_keys.hh"
#include "framework/known_api.hh"

namespace sierra::dynamic {

using air::Instruction;
using air::InvokeKind;
using air::Method;
using air::Opcode;
using framework::ApiKind;
namespace names = framework::names;

std::string
Value::toString() const
{
    switch (kind) {
      case Kind::Null: return "null";
      case Kind::Int: return std::to_string(i);
      case Kind::Str: return "\"" + s + "\"";
      case Kind::Ref: return "@" + std::to_string(ref);
    }
    return "?";
}

/** Register provenance: where a value was loaded from (guard hunting). */
struct RegProv {
    bool valid{false};
    int obj{-1};
    std::string key;
    bool primitive{false};
};

/** One interpreter frame. */
struct Interpreter::Frame {
    std::vector<Value> regs;
    std::vector<RegProv> prov;
};

Interpreter::Interpreter(const framework::App &app, RunOptions options)
    : _app(app), _opts(options), _rng(options.seed),
      _cha(app.module())
{
}

int
Interpreter::newObject(const std::string &klass)
{
    RtObject obj;
    obj.klass = klass;
    _heap.push_back(std::move(obj));
    return static_cast<int>(_heap.size()) - 1;
}

std::string
Interpreter::fieldKeyOf(int obj, const air::FieldRef &ref) const
{
    std::string decl =
        _cha.declaringClassOfField(_heap[obj].klass, ref.fieldName);
    if (decl.empty())
        decl = ref.className;
    return decl + "." + ref.fieldName;
}

void
Interpreter::record(int obj, const std::string &key, bool is_write,
                    const Method *m, int idx)
{
    TraceAccess a;
    a.event = _currentEvent;
    a.obj = obj;
    a.key = key;
    a.isWrite = is_write;
    a.site = m->qualifiedName() + "@" + std::to_string(idx);
    _trace.accesses.push_back(std::move(a));
}

int
Interpreter::looperOfHandler(int handler_ref)
{
    auto it = _heap[handler_ref].fields.find("android.os.Handler.$looper");
    if (it == _heap[handler_ref].fields.end() || !it->second.isRef())
        return -1; // unbound handlers deliver to the main looper
    int looper = it->second.ref;
    return looper == _mainLooperRef ? -1 : looper;
}

void
Interpreter::post(PendingEvent ev)
{
    if (ev.onMainLooper) {
        ev.queueSeq = _queueSeqCounter++;
        _looperQueues[ev.looperRef].push_back(std::move(ev));
    } else {
        _background.push_back(std::move(ev));
    }
}

Value
Interpreter::intrinsic(ApiKind kind, const Instruction &instr,
                       const Method *caller,
                       const std::vector<Value> &args)
{
    (void)caller;
    auto arg = [&](size_t i) {
        return i < args.size() ? args[i] : Value::null();
    };
    auto runnable_entry = [&](const Value &r) -> const Method * {
        if (!r.isRef())
            return nullptr;
        const Method *m = _cha.resolveVirtual(_heap[r.ref].klass, "run");
        return m && m->hasBody() ? m : nullptr;
    };

    switch (kind) {
      case ApiKind::HandlerPost:
      case ApiKind::ViewPost:
      case ApiKind::RunOnUiThread: {
        Value r = arg(1);
        if (const Method *m = runnable_entry(r)) {
            PendingEvent ev;
            ev.label = _heap[r.ref].klass + ".run";
            ev.kind = "post";
            ev.method = m;
            ev.args = {r};
            ev.onMainLooper = true;
            if (kind == ApiKind::HandlerPost && arg(0).isRef())
                ev.looperRef = looperOfHandler(arg(0).ref);
            ev.creator = _currentEvent;
            post(std::move(ev));
        }
        return Value::null();
      }
      case ApiKind::HandlerSendMessage: {
        Value h = arg(0);
        if (!h.isRef())
            return Value::null();
        const Method *m =
            _cha.resolveVirtual(_heap[h.ref].klass, "handleMessage");
        if (!m || !m->hasBody())
            return Value::null();
        Value msg;
        if (instr.method.methodName == "sendEmptyMessage") {
            int ref = newObject(names::message);
            _heap[ref].fields["android.os.Message.what"] = arg(1);
            msg = Value::ofRef(ref);
        } else {
            msg = arg(1);
        }
        PendingEvent ev;
        ev.label = _heap[h.ref].klass + ".handleMessage";
        ev.kind = "message";
        ev.method = m;
        ev.args = {h, msg};
        ev.onMainLooper = true;
        ev.looperRef = looperOfHandler(h.ref);
        ev.creator = _currentEvent;
        post(std::move(ev));
        return Value::null();
      }
      case ApiKind::AsyncTaskExecute: {
        Value t = arg(0);
        if (!t.isRef())
            return Value::null();
        const std::string &cls = _heap[t.ref].klass;
        // onPreExecute runs synchronously on the calling thread.
        if (const Method *pre =
                _cha.resolveVirtual(cls, "onPreExecute")) {
            if (pre->hasBody())
                invoke(pre, {t}, 0);
        }
        if (const Method *bg =
                _cha.resolveVirtual(cls, "doInBackground")) {
            if (bg->hasBody()) {
                PendingEvent ev;
                ev.label = cls + ".doInBackground";
                ev.kind = "async-bg";
                ev.method = bg;
                ev.args = {t};
                ev.onMainLooper = false;
                ev.creator = _currentEvent;
                ev.asyncTaskRef = t.ref;
                post(std::move(ev));
            }
        }
        return Value::null();
      }
      case ApiKind::ThreadStart: {
        Value t = arg(0);
        if (!t.isRef())
            return Value::null();
        const Method *m = _cha.resolveVirtual(_heap[t.ref].klass, "run");
        Value self = t;
        if (!m || !m->hasBody()) {
            auto it = _heap[t.ref].fields.find(
                "java.lang.Thread.$target");
            if (it == _heap[t.ref].fields.end() || !it->second.isRef())
                return Value::null();
            self = it->second;
            m = _cha.resolveVirtual(_heap[self.ref].klass, "run");
            if (!m || !m->hasBody())
                return Value::null();
        }
        PendingEvent ev;
        ev.label = _heap[self.ref].klass + ".run";
        ev.kind = "thread";
        ev.method = m;
        ev.args = {self};
        ev.onMainLooper = false;
        ev.creator = _currentEvent;
        post(std::move(ev));
        return Value::null();
      }
      case ApiKind::ExecutorExecute: {
        Value r = arg(1);
        if (const Method *m = runnable_entry(r)) {
            PendingEvent ev;
            ev.label = _heap[r.ref].klass + ".run";
            ev.kind = "executor";
            ev.method = m;
            ev.args = {r};
            ev.onMainLooper = false;
            ev.creator = _currentEvent;
            post(std::move(ev));
        }
        return Value::null();
      }
      case ApiKind::ThreadInit: {
        Value t = arg(0);
        if (t.isRef() && args.size() >= 2 && args[1].isRef()) {
            _heap[t.ref].fields["java.lang.Thread.$target"] = args[1];
        }
        return Value::null();
      }
      case ApiKind::FindViewById: {
        Value id = arg(1);
        int view_id = static_cast<int>(id.i);
        auto it = _viewObjects.find(view_id);
        if (it != _viewObjects.end())
            return Value::ofRef(it->second);
        std::string klass = names::view;
        for (const auto &[activity, layout] : _app.layouts()) {
            if (const framework::Widget *w = layout.byId(view_id)) {
                klass = w->widgetClass;
                break;
            }
        }
        int ref = newObject(klass);
        _heap[ref].viewId = view_id;
        _viewObjects[view_id] = ref;
        return Value::ofRef(ref);
      }
      case ApiKind::SetListener: {
        Value view = arg(0);
        Value listener = arg(1);
        if (!view.isRef() || !listener.isRef())
            return Value::null();
        std::string cb = framework::KnownApis::listenerCallback(
            instr.method.methodName);
        _listeners.push_back(
            {view.ref, cb, listener.ref, _currentEvent});
        return Value::null();
      }
      case ApiKind::RegisterReceiver: {
        Value r = arg(1);
        if (r.isRef())
            _receivers.emplace_back(r.ref, _currentEvent);
        return Value::null();
      }
      case ApiKind::UnregisterReceiver: {
        Value r = arg(1);
        if (r.isRef()) {
            for (auto it = _receivers.begin(); it != _receivers.end();
                 ++it) {
                if (it->first == r.ref) {
                    _receivers.erase(it);
                    break;
                }
            }
        }
        return Value::null();
      }
      case ApiKind::SendBroadcast: {
        for (auto [recv, registrar] : _receivers) {
            const Method *m =
                _cha.resolveVirtual(_heap[recv].klass, "onReceive");
            if (!m || !m->hasBody())
                continue;
            PendingEvent ev;
            ev.label = _heap[recv].klass + ".onReceive";
            ev.kind = "receive";
            ev.method = m;
            int intent = newObject(names::intent);
            ev.args = {Value::ofRef(recv), Value::null(),
                       Value::ofRef(intent)};
            ev.onMainLooper = true;
            ev.creator = _currentEvent;
            post(std::move(ev));
        }
        return Value::null();
      }
      case ApiKind::StartService: {
        for (const auto &svc : _app.manifest().services) {
            for (const char *cb : {"onCreate", "onStartCommand"}) {
                const Method *m = _cha.resolveVirtual(svc.className, cb);
                if (!m || !m->hasBody())
                    continue;
                PendingEvent ev;
                ev.label = svc.className + "." + cb;
                ev.kind = "service";
                ev.method = m;
                int self = newObject(svc.className);
                ev.args = {Value::ofRef(self)};
                if (m->numParams() >= 1)
                    ev.args.push_back(
                        Value::ofRef(newObject(names::intent)));
                ev.onMainLooper = true;
                ev.creator = _currentEvent;
                post(std::move(ev));
            }
        }
        return Value::null();
      }
      case ApiKind::BindService: {
        Value conn = arg(2);
        if (!conn.isRef())
            return Value::null();
        const Method *m = _cha.resolveVirtual(
            _heap[conn.ref].klass, "onServiceConnected");
        if (m && m->hasBody()) {
            PendingEvent ev;
            ev.label = _heap[conn.ref].klass + ".onServiceConnected";
            ev.kind = "service-conn";
            ev.method = m;
            ev.args = {conn, Value::null()};
            ev.onMainLooper = true;
            ev.creator = _currentEvent;
            post(std::move(ev));
        }
        return Value::null();
      }
      case ApiKind::MessageObtain: {
        int ref = newObject(names::message);
        _heap[ref].fields["android.os.Message.what"] = Value::ofInt(0);
        return Value::ofRef(ref);
      }
      case ApiKind::LooperMain:
      case ApiKind::LooperMy:
        if (_mainLooperRef < 0)
            _mainLooperRef = newObject(names::looper);
        return Value::ofRef(_mainLooperRef);
      case ApiKind::HandlerThreadGetLooper: {
        Value t = arg(0);
        if (!t.isRef())
            return Value::null();
        auto it = _heap[t.ref].fields.find(
            "android.os.HandlerThread.$looper");
        if (it != _heap[t.ref].fields.end())
            return it->second;
        Value looper = Value::ofRef(newObject(names::looper));
        _heap[t.ref].fields["android.os.HandlerThread.$looper"] = looper;
        return looper;
      }
      case ApiKind::HandlerInit: {
        Value h = arg(0);
        if (h.isRef() && args.size() >= 2 && args[1].isRef()) {
            _heap[h.ref].fields["android.os.Handler.$looper"] = args[1];
        }
        return Value::null();
      }
      case ApiKind::ObjectInit:
      case ApiKind::NullCheck:
      case ApiKind::HandlerRemove:
      case ApiKind::SetContentView:
      case ApiKind::StartActivity:
      case ApiKind::IntentSetClass:
      case ApiKind::PendingIntentGetActivity:
      case ApiKind::PendingIntentGetService:
      case ApiKind::PendingIntentGetBroadcast:
      case ApiKind::PendingIntentSend:
      case ApiKind::None:
        return Value::null();
    }
    return Value::null();
}

Value
Interpreter::invoke(const Method *method, std::vector<Value> args,
                    int depth)
{
    if (depth > _opts.maxCallDepth || !method->hasBody())
        return Value::null();
    // The synthetic Nondet provider.
    if (method->owner()->name() == "sierra.Nondet")
        return Value::ofInt(static_cast<int64_t>(_rng() % 3));

    Frame frame;
    frame.regs.assign(method->numRegisters(), Value::null());
    frame.prov.assign(method->numRegisters(), RegProv{});
    for (size_t i = 0; i < args.size() &&
                       i < static_cast<size_t>(method->firstTempReg());
         ++i) {
        frame.regs[i] = args[i];
    }

    int pc = 0;
    int steps = 0;
    while (pc >= 0 && pc < method->numInstrs()) {
        if (++steps > _opts.maxStepsPerEvent)
            return Value::null();
        const Instruction &instr = method->instr(pc);
        auto reg = [&](int r) -> Value & { return frame.regs[r]; };
        auto clear_prov = [&](int r) { frame.prov[r] = RegProv{}; };
        auto note_guard = [&](int r) {
            const RegProv &p = frame.prov[r];
            if (!p.valid)
                return;
            auto key = std::make_pair(p.obj, p.key);
            if (p.primitive)
                _trace.primitiveGuards.insert(key);
            else
                _trace.referenceGuards.insert(key);
        };

        switch (instr.op) {
          case Opcode::Nop:
            break;
          case Opcode::ConstInt:
            reg(instr.dst) = Value::ofInt(instr.intValue);
            clear_prov(instr.dst);
            break;
          case Opcode::ConstStr:
            reg(instr.dst) = Value::ofStr(instr.strValue);
            clear_prov(instr.dst);
            break;
          case Opcode::ConstNull:
            reg(instr.dst) = Value::null();
            clear_prov(instr.dst);
            break;
          case Opcode::Move:
            reg(instr.dst) = reg(instr.srcs[0]);
            frame.prov[instr.dst] = frame.prov[instr.srcs[0]];
            break;
          case Opcode::BinOp:
            reg(instr.dst) = Value::ofInt(
                air::evalBinOp(instr.binop, reg(instr.srcs[0]).asCondInt(),
                               reg(instr.srcs[1]).asCondInt()));
            clear_prov(instr.dst);
            break;
          case Opcode::UnOp: {
            int64_t v = reg(instr.srcs[0]).asCondInt();
            reg(instr.dst) = Value::ofInt(
                instr.unop == air::UnOpKind::Not ? (v == 0 ? 1 : 0) : -v);
            clear_prov(instr.dst);
            break;
          }
          case Opcode::New:
            reg(instr.dst) = Value::ofRef(newObject(instr.typeName));
            clear_prov(instr.dst);
            break;
          case Opcode::NewArray: {
            int ref = newObject(
                (instr.typeName.empty() ? "int" : instr.typeName) + "[]");
            int64_t len = reg(instr.srcs[0]).asCondInt();
            _heap[ref].elems.assign(
                static_cast<size_t>(std::max<int64_t>(0, len)),
                Value::null());
            reg(instr.dst) = Value::ofRef(ref);
            clear_prov(instr.dst);
            break;
          }
          case Opcode::GetField: {
            Value base = reg(instr.srcs[0]);
            if (!base.isRef())
                return Value::null(); // NullPointerException
            std::string key = fieldKeyOf(base.ref, instr.field);
            record(base.ref, key, false, method, pc);
            auto it = _heap[base.ref].fields.find(key);
            reg(instr.dst) = it == _heap[base.ref].fields.end()
                                 ? Value::null()
                                 : it->second;
            const air::Field *f = _cha.resolveField(
                instr.field.className, instr.field.fieldName);
            frame.prov[instr.dst] = {true, base.ref, key,
                                     f && f->type.isPrimitive()};
            break;
          }
          case Opcode::PutField: {
            Value base = reg(instr.srcs[0]);
            if (!base.isRef())
                return Value::null();
            std::string key = fieldKeyOf(base.ref, instr.field);
            record(base.ref, key, true, method, pc);
            _heap[base.ref].fields[key] = reg(instr.srcs[1]);
            break;
          }
          case Opcode::GetStatic: {
            std::string decl = _cha.declaringClassOfField(
                instr.field.className, instr.field.fieldName);
            if (decl.empty())
                decl = instr.field.className;
            std::string key = decl + "." + instr.field.fieldName;
            record(-1, key, false, method, pc);
            auto it = _statics.find(key);
            reg(instr.dst) =
                it == _statics.end() ? Value::null() : it->second;
            frame.prov[instr.dst] = RegProv{};
            break;
          }
          case Opcode::PutStatic: {
            std::string decl = _cha.declaringClassOfField(
                instr.field.className, instr.field.fieldName);
            if (decl.empty())
                decl = instr.field.className;
            std::string key = decl + "." + instr.field.fieldName;
            record(-1, key, true, method, pc);
            _statics[key] = reg(instr.srcs[0]);
            break;
          }
          case Opcode::ArrayGet: {
            Value base = reg(instr.srcs[0]);
            if (!base.isRef())
                return Value::null();
            int64_t gidx = reg(instr.srcs[1]).asCondInt();
            // The dynamic detector sees concrete indices, so it is
            // naturally index-sensitive (like real dynamic tools).
            record(base.ref,
                   analysis::arrayElementKey(_heap[base.ref].klass,
                                             gidx),
                   false, method, pc);
            auto &elems = _heap[base.ref].elems;
            int64_t idx = gidx;
            reg(instr.dst) = (idx >= 0 && idx <
                              static_cast<int64_t>(elems.size()))
                                 ? elems[idx]
                                 : Value::null();
            clear_prov(instr.dst);
            break;
          }
          case Opcode::ArrayPut: {
            Value base = reg(instr.srcs[0]);
            if (!base.isRef())
                return Value::null();
            int64_t pidx = reg(instr.srcs[1]).asCondInt();
            record(base.ref,
                   analysis::arrayElementKey(_heap[base.ref].klass,
                                             pidx),
                   true, method, pc);
            auto &elems = _heap[base.ref].elems;
            int64_t idx = pidx;
            if (idx >= 0) {
                if (idx >= static_cast<int64_t>(elems.size()))
                    elems.resize(idx + 1, Value::null());
                elems[idx] = reg(instr.srcs[2]);
            }
            break;
          }
          case Opcode::Invoke: {
            std::vector<Value> call_args;
            call_args.reserve(instr.srcs.size());
            for (int r : instr.srcs)
                call_args.push_back(reg(r));

            const Method *target = nullptr;
            if (instr.invokeKind == InvokeKind::Static) {
                target = _cha.resolveStatic(instr.method.className,
                                            instr.method.methodName);
            } else if (instr.invokeKind == InvokeKind::Special) {
                target = _cha.resolveVirtual(instr.method.className,
                                             instr.method.methodName);
            } else {
                if (call_args.empty() || !call_args[0].isRef())
                    return Value::null();
                target = _cha.resolveVirtual(
                    _heap[call_args[0].ref].klass,
                    instr.method.methodName);
            }

            Value result;
            if (target && target->hasBody() &&
                target->owner()->name() != "sierra.Nondet") {
                result = invoke(target, std::move(call_args), depth + 1);
            } else if (target &&
                       target->owner()->name() == "sierra.Nondet") {
                result =
                    Value::ofInt(static_cast<int64_t>(_rng() % 3));
            } else {
                framework::KnownApis apis(_app.module());
                ApiKind kind = apis.classify(instr.method);
                result = intrinsic(kind, instr, method, call_args);
            }
            if (instr.dst >= 0) {
                reg(instr.dst) = result;
                clear_prov(instr.dst);
            }
            break;
          }
          case Opcode::Return:
            return reg(instr.srcs[0]);
          case Opcode::ReturnVoid:
          case Opcode::Throw:
            return Value::null();
          case Opcode::If: {
            note_guard(instr.srcs[0]);
            note_guard(instr.srcs[1]);
            bool taken = air::evalCond(
                instr.cond, reg(instr.srcs[0]).asCondInt(),
                reg(instr.srcs[1]).asCondInt());
            if (taken) {
                pc = instr.target;
                continue;
            }
            break;
          }
          case Opcode::IfZ: {
            note_guard(instr.srcs[0]);
            bool taken = air::evalCond(
                instr.cond, reg(instr.srcs[0]).asCondInt(), 0);
            if (taken) {
                pc = instr.target;
                continue;
            }
            break;
          }
          case Opcode::Goto:
            pc = instr.target;
            continue;
          case Opcode::MonitorEnter:
          case Opcode::MonitorExit:
            // Within one trace, events run to completion on their
            // thread, so monitors never block; acquire/release is a
            // no-op with (vacuous) HB semantics here.
            break;
        }
        ++pc;
    }
    return Value::null();
}

void
Interpreter::execute(PendingEvent ev)
{
    TraceEvent te;
    te.id = static_cast<int>(_trace.events.size());
    te.label = ev.label;
    te.kind = ev.kind;
    te.onMainLooper = ev.onMainLooper;
    te.creator = ev.creator;
    if (ev.creator >= 0)
        te.hbPreds.push_back(ev.creator);
    // FIFO on the main looper: two events posted by the same creator
    // execute in posting order (a forced ordering even for a predictive
    // detector).
    if (ev.queueSeq >= 0 && ev.creator >= 0) {
        auto key = std::make_pair(ev.creator, ev.looperRef);
        auto it = _lastPostedBy.find(key);
        if (it != _lastPostedBy.end())
            te.hbPreds.push_back(it->second);
        _lastPostedBy[key] = te.id;
    }
    _trace.events.push_back(te);
    _currentEvent = te.id;

    Value result;
    if (ev.method)
        result = invoke(ev.method, ev.args, 0);

    // AsyncTask continuation: doInBackground's completion posts
    // onPostExecute back to the main looper.
    if (ev.asyncTaskRef >= 0 && ev.kind == "async-bg") {
        const std::string &cls = _heap[ev.asyncTaskRef].klass;
        const Method *postm = _cha.resolveVirtual(cls, "onPostExecute");
        if (postm && postm->hasBody()) {
            PendingEvent pe;
            pe.label = cls + ".onPostExecute";
            pe.kind = "async-post";
            pe.method = postm;
            pe.args = {Value::ofRef(ev.asyncTaskRef), result};
            pe.onMainLooper = true;
            pe.creator = _currentEvent;
            post(std::move(pe));
        }
    }
    _currentEvent = -1;
}

void
Interpreter::fireLifecycle(int act_ref, const std::string &activity,
                           const std::string &cb, int creator)
{
    const Method *m = _cha.resolveVirtual(activity, cb);
    PendingEvent ev;
    ev.label = activity + "." + cb;
    ev.kind = "lifecycle";
    ev.method = (m && m->hasBody()) ? m : nullptr;
    ev.args = {Value::ofRef(act_ref)};
    ev.onMainLooper = true;
    ev.creator = creator;
    execute(std::move(ev));
}

void
Interpreter::driveActivity(const std::string &activity)
{
    if (!_app.module().getClass(activity))
        return;
    int act_ref = newObject(activity);
    if (const Method *init = _cha.resolveVirtual(activity, "<init>")) {
        if (init->hasBody())
            invoke(init, {Value::ofRef(act_ref)}, 0);
    }

    // Lifecycle chain edges: consecutive lifecycle events are ordered
    // (delivered in state-machine order by the framework).
    int last_lifecycle = -1;
    auto lifecycle = [&](const std::string &cb) {
        fireLifecycle(act_ref, activity, cb, last_lifecycle);
        last_lifecycle = static_cast<int>(_trace.events.size()) - 1;
    };

    lifecycle("onCreate");
    lifecycle("onStart");
    lifecycle("onResume");

    // Manifest receivers are registered by the system before the app
    // becomes interactive (creator: none).
    for (const auto &spec : _app.manifest().receivers) {
        if (!spec.declaredInManifest ||
            !_app.module().getClass(spec.className)) {
            continue;
        }
        int r = newObject(spec.className);
        if (const Method *init =
                _cha.resolveVirtual(spec.className, "<init>")) {
            if (init->hasBody()) {
                // Receivers that need the activity get it.
                std::vector<Value> args{Value::ofRef(r)};
                if (init->numParams() >= 1)
                    args.push_back(Value::ofRef(act_ref));
                invoke(init, std::move(args), 0);
            }
        }
        _receivers.emplace_back(r, -1);
    }

    bool resumed = true;
    int iterations = 0;
    while (_eventBudget > 0 && iterations++ < _opts.maxEvents) {
        --_eventBudget;
        int choice = static_cast<int>(_rng() % 8);
        switch (choice) {
          case 0:
          case 1: { // drain one event from a random non-empty looper
            std::vector<int> ready;
            for (auto &[looper, queue] : _looperQueues) {
                if (!queue.empty())
                    ready.push_back(looper);
            }
            if (ready.empty())
                break;
            auto &queue = _looperQueues[ready[_rng() % ready.size()]];
            PendingEvent ev = std::move(queue.front());
            queue.pop_front();
            execute(std::move(ev));
            break;
          }
          case 2: { // run a background body
            if (_background.empty())
                break;
            size_t idx = _rng() % _background.size();
            PendingEvent ev = std::move(_background[idx]);
            _background.erase(_background.begin() + idx);
            execute(std::move(ev));
            break;
          }
          case 3: { // GUI event (dynamic listeners + XML widgets)
            if (!resumed)
                break;
            struct GuiChoice {
                const Method *m;
                std::vector<Value> args;
                std::string label;
                int creator;
            };
            std::vector<GuiChoice> choices;
            for (const auto &reg : _listeners) {
                const Method *m = _cha.resolveVirtual(
                    _heap[reg.listener].klass, reg.callback);
                if (!m || !m->hasBody())
                    continue;
                choices.push_back({m,
                                   {Value::ofRef(reg.listener),
                                    Value::ofRef(reg.view)},
                                   _heap[reg.listener].klass + "." +
                                       reg.callback,
                                   reg.registrar});
            }
            const framework::Layout *layout =
                _app.layoutFor(activity);
            if (layout) {
                for (const auto &w : layout->widgets()) {
                    if (w.xmlOnClick.empty())
                        continue;
                    const Method *m =
                        _cha.resolveVirtual(activity, w.xmlOnClick);
                    if (!m || !m->hasBody())
                        continue;
                    auto vit = _viewObjects.find(w.id);
                    Value view =
                        vit != _viewObjects.end()
                            ? Value::ofRef(vit->second)
                            : Value::null();
                    choices.push_back({m,
                                       {Value::ofRef(act_ref), view},
                                       activity + "." + w.xmlOnClick,
                                       -1});
                }
            }
            if (choices.empty())
                break;
            GuiChoice &c = choices[_rng() % choices.size()];
            PendingEvent ev;
            ev.label = c.label;
            ev.kind = "gui";
            ev.method = c.m;
            ev.args = c.args;
            ev.onMainLooper = true;
            ev.creator = c.creator;
            execute(std::move(ev));
            break;
          }
          case 4: // pause/resume cycle
            lifecycle("onPause");
            lifecycle("onResume");
            break;
          case 5: { // broadcast delivery
            if (_receivers.empty())
                break;
            auto [recv, registrar] =
                _receivers[_rng() % _receivers.size()];
            const Method *m = _cha.resolveVirtual(
                _heap[recv].klass, "onReceive");
            if (!m || !m->hasBody())
                break;
            PendingEvent ev;
            ev.label = _heap[recv].klass + ".onReceive";
            ev.kind = "receive";
            ev.method = m;
            ev.args = {Value::ofRef(recv), Value::ofRef(act_ref),
                       Value::ofRef(newObject(names::intent))};
            ev.onMainLooper = true;
            ev.creator = registrar;
            execute(std::move(ev));
            break;
          }
          case 6: { // service events
            if (_app.manifest().services.empty())
                break;
            const auto &svc = _app.manifest()
                                  .services[_rng() %
                                            _app.manifest()
                                                .services.size()];
            const char *cb = _rng() % 2 ? "onCreate" : "onStartCommand";
            const Method *m = _cha.resolveVirtual(svc.className, cb);
            if (!m || !m->hasBody())
                break;
            PendingEvent ev;
            ev.label = svc.className + "." + cb;
            ev.kind = "service";
            ev.method = m;
            ev.args = {Value::ofRef(newObject(svc.className))};
            if (m->numParams() >= 1)
                ev.args.push_back(Value::ofRef(newObject(names::intent)));
            ev.onMainLooper = true;
            ev.creator = -1;
            execute(std::move(ev));
            break;
          }
          case 7: // stop/restart cycle
            lifecycle("onPause");
            lifecycle("onStop");
            lifecycle("onRestart");
            lifecycle("onStart");
            lifecycle("onResume");
            break;
        }
    }

    lifecycle("onPause");
    lifecycle("onStop");
    lifecycle("onDestroy");

    // Drain whatever is still pending (the looper keeps running).
    // Note: executing an event may insert a new looper key into
    // _looperQueues mid-iteration; std::map insertion keeps iterators
    // valid, and the outer while() re-sweeps, so nothing is lost.
    int drain = 0;
    bool any = true;
    while (any && drain < _opts.maxEvents) {
        any = false;
        for (auto &[looper, queue] : _looperQueues) {
            if (queue.empty())
                continue;
            PendingEvent ev = std::move(queue.front());
            queue.pop_front();
            execute(std::move(ev));
            ++drain;
            any = true;
        }
    }
    for (auto &ev : _background) {
        if (drain++ >= 2 * _opts.maxEvents)
            break;
        execute(std::move(ev));
    }
    _background.clear();
    _listeners.clear();
    _receivers.clear();
}

Trace
Interpreter::run()
{
    _eventBudget = _opts.maxEvents;
    for (const auto &activity : _app.manifest().activities)
        driveActivity(activity);
    return std::move(_trace);
}

Value
Interpreter::evalStatic(const std::string &class_name,
                        const std::string &method_name,
                        std::vector<Value> args)
{
    const Method *m = _cha.resolveStatic(class_name, method_name);
    if (!m || !m->hasBody() || !m->isStatic())
        return Value::null();
    if (_currentEvent < 0) {
        TraceEvent te;
        te.id = static_cast<int>(_trace.events.size());
        te.label = class_name + "." + method_name;
        te.kind = "eval";
        _trace.events.push_back(te);
        _currentEvent = te.id;
    }
    return invoke(m, std::move(args), 0);
}

Value
Interpreter::staticField(const std::string &key) const
{
    auto it = _statics.find(key);
    return it == _statics.end() ? Value::null() : it->second;
}

} // namespace sierra::dynamic
