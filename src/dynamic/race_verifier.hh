/**
 * @file
 * Dynamic verification of statically-reported races (the combination
 * the paper proposes in Section 6.4: "the static approach can find
 * over-approximate candidate races which the dynamic approach can
 * then verify", citing the authors' deterministic-replay work).
 *
 * For each statically-reported race location the verifier runs a batch
 * of randomized schedules and looks for *order nondeterminism*: the
 * same pair of conflicting access sites observed in both orders across
 * schedules. A race confirmed this way is certainly real; an
 * unconfirmed one may still be real (schedules are not exhaustive --
 * the dynamic tool's usual caveat).
 */

#ifndef SIERRA_DYNAMIC_RACE_VERIFIER_HH
#define SIERRA_DYNAMIC_RACE_VERIFIER_HH

#include <string>
#include <vector>

#include "interpreter.hh"

namespace sierra::dynamic {

/** Verification status of one reported race location. */
struct VerifiedRace {
    std::string fieldKey;
    bool conflictObserved{false};  //!< conflicting accesses executed
    bool bothOrdersObserved{false};//!< ...in both orders across runs
    int schedulesWithConflict{0};
};

/** Verifier options. */
struct RaceVerifierOptions {
    RunOptions run;
    int numSchedules{8};
};

/** Aggregate result. */
struct RaceVerificationReport {
    std::vector<VerifiedRace> races;
    int confirmed{0};   //!< bothOrdersObserved
    int observed{0};    //!< conflictObserved but single order
    int unobserved{0};  //!< never executed a conflict

    const VerifiedRace *find(const std::string &key) const;
};

/**
 * Run randomized schedules and classify each reported race key.
 * `race_keys` are canonical "Class.field" locations (e.g. the
 * surviving keys of an AppReport).
 */
RaceVerificationReport
verifyRacesDynamically(const framework::App &app,
                       const std::vector<std::string> &race_keys,
                       const RaceVerifierOptions &options = {});

} // namespace sierra::dynamic

#endif // SIERRA_DYNAMIC_RACE_VERIFIER_HH
