/**
 * @file
 * Synthetic app generator for the 174-app F-Droid dataset analogue
 * (paper Section 6.6). Apps are fully deterministic functions of their
 * index, so every run of the Table 5 bench sees the same corpus.
 */

#ifndef SIERRA_CORPUS_GENERATOR_HH
#define SIERRA_CORPUS_GENERATOR_HH

#include <cstdint>

#include "app_factory.hh"

namespace sierra::corpus {

/** Parameters of one synthetic app. */
struct SyntheticSpec {
    uint32_t seed{0};
    int activities{2};
    int minPatternsPerActivity{1};
    int maxPatternsPerActivity{3};
};

/** Generate one synthetic app from a spec. */
BuiltApp generateSyntheticApp(const std::string &name,
                              const SyntheticSpec &spec);

/** Number of apps in the F-Droid dataset analogue. */
inline constexpr int kFdroidAppCount = 174;

/** Build the i-th F-Droid-analogue app (0 <= i < kFdroidAppCount). */
BuiltApp buildFdroidApp(int index);

} // namespace sierra::corpus

#endif // SIERRA_CORPUS_GENERATOR_HH
