#include "generator.hh"

#include <cstdio>
#include <random>

#include "air/logging.hh"
#include "patterns.hh"

namespace sierra::corpus {

BuiltApp
generateSyntheticApp(const std::string &name, const SyntheticSpec &spec)
{
    AppFactory factory(name);
    std::mt19937 rng(spec.seed);
    // Frozen pool: catalog growth must not reshuffle synthetic apps.
    const auto &pool = randomPatternPool();

    for (int i = 0; i < spec.activities; ++i) {
        ActivityBuilder &act = factory.addActivity(
            name + "$Activity" + std::to_string(i));
        int span =
            spec.maxPatternsPerActivity - spec.minPatternsPerActivity;
        int count = spec.minPatternsPerActivity +
                    (span > 0 ? static_cast<int>(rng() % (span + 1))
                              : 0);
        for (int p = 0; p < count; ++p) {
            const auto &entry = pool[rng() % pool.size()];
            entry.fn(factory, act);
        }
    }
    return factory.finish();
}

BuiltApp
buildFdroidApp(int index)
{
    SIERRA_ASSERT(index >= 0 && index < kFdroidAppCount,
                  "fdroid index out of range: ", index);
    SyntheticSpec spec;
    spec.seed = 0x5EED0000u + static_cast<uint32_t>(index);
    // Sizes follow a small spread around the paper's 1.1 MB median:
    // 1-4 activities, 1-3 patterns each.
    spec.activities = 1 + index % 4;
    spec.minPatternsPerActivity = 1;
    spec.maxPatternsPerActivity = 3;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "fdroid-%03d", index);
    return generateSyntheticApp(buf, spec);
}

} // namespace sierra::corpus
