/**
 * @file
 * Scaffolding for building corpus apps: activity builders that let
 * several race patterns contribute code to shared lifecycle callbacks.
 */

#ifndef SIERRA_CORPUS_APP_FACTORY_HH
#define SIERRA_CORPUS_APP_FACTORY_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "air/builder.hh"
#include "framework/app.hh"
#include "ground_truth.hh"

namespace sierra::corpus {

/** A built corpus app plus its seeded ground truth. */
struct BuiltApp {
    std::unique_ptr<framework::App> app;
    GroundTruth truth;
};

/**
 * Collects per-callback code snippets for one Activity class and
 * materializes the callback methods at finalize() time.
 *
 * Snippets receive a MethodBuilder whose register 0 is `this`.
 */
class ActivityBuilder
{
  public:
    ActivityBuilder(framework::App &app, std::string name);

    const std::string &name() const { return _name; }
    air::Klass *klass() const { return _klass; }
    framework::Layout &layout() { return _layout; }

    /** Append code to a lifecycle callback (onCreate, onStart, ...). */
    void on(const std::string &callback,
            std::function<void(air::MethodBuilder &)> code);

    /** Declare a field on the activity; returns its canonical key. */
    std::string addField(const std::string &name, air::Type type);

    /** Create the callback methods and attach the layout. Call once. */
    void finalize();

  private:
    framework::App &_app;
    std::string _name;
    air::Klass *_klass;
    framework::Layout _layout;
    std::map<std::string,
             std::vector<std::function<void(air::MethodBuilder &)>>>
        _snippets;
    bool _finalized{false};
};

/**
 * Builds one app: manifest, activities, patterns.
 *
 * Typical use: construct, addActivity() a few times, apply patterns
 * from patterns.hh, then finish().
 */
class AppFactory
{
  public:
    explicit AppFactory(const std::string &app_name);

    framework::App &app() { return *_built.app; }
    GroundTruth &truth() { return _built.truth; }

    /** Create an activity class (registered in the manifest). */
    ActivityBuilder &addActivity(const std::string &name);

    /** Register a manifest service class (caller defines the class). */
    void addManifestService(const std::string &class_name);
    /** Register a manifest receiver class. */
    void addManifestReceiver(const std::string &class_name);

    /** A fresh app-unique view id. */
    int nextViewId() { return _nextViewId++; }
    /** A fresh app-unique suffix for class/field names. */
    int nextUnique() { return _nextUnique++; }

    /** Finalize all activities and return the app. */
    BuiltApp finish();

  private:
    BuiltApp _built;
    std::vector<std::unique_ptr<ActivityBuilder>> _activities;
    int _nextViewId{1000};
    int _nextUnique{0};
    bool _finished{false};
};

/** Shorthand: a FieldRef on a class. */
inline air::FieldRef
fieldRef(const std::string &klass, const std::string &field)
{
    return {klass, field};
}

} // namespace sierra::corpus

#endif // SIERRA_CORPUS_APP_FACTORY_HH
