/**
 * @file
 * Race patterns for corpus apps.
 *
 * Each pattern injects classes/callbacks into an activity and seeds the
 * app's ground truth. The catalog mirrors the paper's scenarios:
 *
 *  - asyncNewsRace      Fig. 1: AsyncTask vs. scroll on an adapter
 *  - receiverDbRace     Fig. 2: BroadcastReceiver vs. lifecycle DB
 *  - guardedTimer       Fig. 8: ad-hoc sync refutable by symbolic exec
 *  - computedGuard      Fig. 8 with a computed guard value: refutable
 *                       only with intraprocedural constant facts
 *  - messageGuard       Section 5: Message.what constant propagation
 *  - orderedPosts       HB rule 4 negative (posting order)
 *  - threadRace         background thread vs. GUI read
 *  - actionAliasTrap    Section 3.3: action-sensitivity ablation
 *  - serviceStaticRace  static field, service vs. activity
 *  - lifecycleSafe      ordered lifecycle accesses (negative)
 *  - guiFlowSafe        enabledAfter GUI ordering (negative)
 *  - implicitDepTrap    Section 6.5: implicit dependency (known FP)
 *  - connectionRace     onServiceConnected vs onDestroy (true race)
 *  - handlerThreadRace  custom background looper (HandlerThread):
 *                       unordered posts race, FIFO posts do not
 *  - executorRace       Executor pool task vs GUI read (true race)
 *  - arrayIndexTrap     Section 6.5: index-insensitive array (known FP)
 *  - workSession        Section 3.3 ablation amplifier (per-action
 *                       sessions falsely alias without AS contexts)
 *  - lockGuarded        background thread and GUI callback hold the
 *                       same field monitor (FP without lock sets)
 *  - localScratch       method-local buffers (pruned by escape
 *                       analysis; never a race)
 *  - interprocGuard     guard cleared through a 9-deep setter chain:
 *                       refutable only with interprocedural constants
 *  - useAfterDestroy    field nulled in onDestroy, dereferenced from a
 *                       posted task (IFDS use-after-destroy client)
 *  - deadlockCycle      two background threads acquire two field
 *                       monitors in opposite orders (UNDEAD-style
 *                       cyclic acquisition; the deadlock stage must
 *                       report the A->B->A cycle)
 *  - deadlockOrdered    both threads acquire the monitors in the same
 *                       order (negative control: no cycle)
 *  - iccStartActivity   sender writes a static from a worker thread
 *                       and startActivity()s an explicit-Intent target
 *                       whose onCreate reads it: a cross-component
 *                       race visible only with ICC modeling
 *  - iccPendingIntent   same shape through a field-stored PendingIntent
 *                       fired from a GUI handler (atypical ICC)
 *  - registeredWindow   receiver registered onCreate / unregistered
 *                       onPause: a true race inside the window plus a
 *                       post-teardown FP the enablement stage refutes
 *  - unregisteredFpTrap receiverDbRace with the teardown in onPause:
 *                       the onDestroy read is a pure enablement FP
 *  - removedCallback    Handler.post in onCreate, removeCallbacks in
 *                       onPause: the onDestroy read is a pure
 *                       enablement FP
 *  - nullSourceCrash    the racing worker write is the ref field's
 *                       only store (no initialization), so the losing
 *                       GUI read dereferences null: nullflow HARMFUL
 *  - guardedNullRead    same race but every handler use sits behind a
 *                       null check on the field itself: the report
 *                       survives with nullflow severity GUARDED
 *  - iccNullCrash       iccStartActivity with a ref-typed static whose
 *                       sole write is the sender's worker: the
 *                       launched activity's unguarded onCreate read is
 *                       a cross-component nullflow HARMFUL
 */

#ifndef SIERRA_CORPUS_PATTERNS_HH
#define SIERRA_CORPUS_PATTERNS_HH

#include "app_factory.hh"

namespace sierra::corpus {

void addAsyncNewsRace(AppFactory &f, ActivityBuilder &act);
void addReceiverDbRace(AppFactory &f, ActivityBuilder &act);
void addGuardedTimer(AppFactory &f, ActivityBuilder &act);
void addComputedGuard(AppFactory &f, ActivityBuilder &act);
void addMessageGuard(AppFactory &f, ActivityBuilder &act);
void addOrderedPosts(AppFactory &f, ActivityBuilder &act);
void addThreadRace(AppFactory &f, ActivityBuilder &act);
void addActionAliasTrap(AppFactory &f, ActivityBuilder &act);
void addServiceStaticRace(AppFactory &f, ActivityBuilder &act);
void addLifecycleSafe(AppFactory &f, ActivityBuilder &act);
void addGuiFlowSafe(AppFactory &f, ActivityBuilder &act);
void addImplicitDepTrap(AppFactory &f, ActivityBuilder &act);
void addConnectionRace(AppFactory &f, ActivityBuilder &act);
void addHandlerThreadRace(AppFactory &f, ActivityBuilder &act);
void addExecutorRace(AppFactory &f, ActivityBuilder &act);
void addArrayIndexTrap(AppFactory &f, ActivityBuilder &act);
void addWorkSession(AppFactory &f, ActivityBuilder &act);
void addLockGuarded(AppFactory &f, ActivityBuilder &act);
void addLocalScratch(AppFactory &f, ActivityBuilder &act);
void addInterprocGuard(AppFactory &f, ActivityBuilder &act);
void addUseAfterDestroy(AppFactory &f, ActivityBuilder &act);
void addDeadlockCycle(AppFactory &f, ActivityBuilder &act);
void addDeadlockOrdered(AppFactory &f, ActivityBuilder &act);
void addIccStartActivity(AppFactory &f, ActivityBuilder &act);
void addIccPendingIntent(AppFactory &f, ActivityBuilder &act);
void addRegisteredWindow(AppFactory &f, ActivityBuilder &act);
void addUnregisteredFpTrap(AppFactory &f, ActivityBuilder &act);
void addRemovedCallback(AppFactory &f, ActivityBuilder &act);
void addNullSourceCrash(AppFactory &f, ActivityBuilder &act);
void addGuardedNullRead(AppFactory &f, ActivityBuilder &act);
void addIccNullCrash(AppFactory &f, ActivityBuilder &act);

/** All pattern functions, for sweep-style corpus generation. */
using PatternFn = void (*)(AppFactory &, ActivityBuilder &);
struct PatternEntry {
    const char *name;
    PatternFn fn;
    int seededTrueRaces; //!< TrueRace locations this pattern seeds
    int seededTraps;     //!< FpTrap locations this pattern seeds
    int seededDeadlocks{0}; //!< cyclic-acquisition findings seeded
};
const std::vector<PatternEntry> &patternCatalog();

/**
 * The frozen pool random corpus generation draws from: the first 21
 * catalog entries, pinned forever. Growing patternCatalog() must NOT
 * reshuffle the pseudo-random pattern assignment of existing synthetic
 * apps (it would invalidate every golden report), so random draws index
 * this pool; new patterns reach apps only through explicit signature
 * lists.
 */
const std::vector<PatternEntry> &randomPatternPool();

} // namespace sierra::corpus

#endif // SIERRA_CORPUS_PATTERNS_HH
