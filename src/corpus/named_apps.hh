/**
 * @file
 * The 20-app dataset (paper Table 2), modeled as deterministic corpus
 * apps. Each app's size class derives from its real bytecode size; its
 * first activity carries a fixed "signature" pattern (e.g. OpenSudoku
 * carries the paper's Fig. 8 guarded timer), and the remaining
 * activities get a deterministic pattern mix seeded by the app name.
 */

#ifndef SIERRA_CORPUS_NAMED_APPS_HH
#define SIERRA_CORPUS_NAMED_APPS_HH

#include <string>
#include <vector>

#include "app_factory.hh"

namespace sierra::corpus {

/** One Table 2 row. */
struct NamedAppSpec {
    std::string name;
    std::string installs;   //!< Google Play install bracket (Table 2)
    int bytecodeKb{0};      //!< real app's .dex size, drives our scale
    int activities{1};
    std::vector<std::string> signaturePatterns; //!< first activity's
};

/** The 20 apps of Table 2. */
const std::vector<NamedAppSpec> &namedAppSpecs();

/** Find a spec by name; fatal() if unknown. */
const NamedAppSpec &namedAppSpec(const std::string &name);

/** Build the model app for a spec. */
BuiltApp buildNamedApp(const NamedAppSpec &spec);
BuiltApp buildNamedApp(const std::string &name);

} // namespace sierra::corpus

#endif // SIERRA_CORPUS_NAMED_APPS_HH
