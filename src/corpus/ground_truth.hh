/**
 * @file
 * Seeded ground truth for corpus apps.
 *
 * Every corpus pattern seeds races with known identities (canonical
 * field keys), so the paper's "manual inspection" columns (true races
 * vs. false positives, Table 3) are scored automatically.
 */

#ifndef SIERRA_CORPUS_GROUND_TRUTH_HH
#define SIERRA_CORPUS_GROUND_TRUTH_HH

#include <string>
#include <vector>

#include "sierra/detector.hh"

namespace sierra::corpus {

/** Classification of a seeded location. */
enum class SeedClass {
    TrueRace, //!< a real (possibly benign) event race; must be reported
    FpTrap,   //!< accesses are actually ordered/guarded; a surviving
              //!< report on this location is a false positive
    KnownFp,  //!< not a real race, but beyond static reasoning (implicit
              //!< dependencies, index-insensitive containers -- the
              //!< paper's Section 6.5 FP classes); SIERRA is *expected*
              //!< to report it, and such reports count as FPs
};

/** One seeded location. */
struct SeededRace {
    std::string fieldKey; //!< canonical "Class.field"
    SeedClass cls{SeedClass::TrueRace};
    std::string note;     //!< which pattern seeded it and why
    //! the race crosses components: only reachable when ICC modeling
    //! drives the target's lifecycle from the sender's harness, so
    //! `--no-icc` runs are *expected* to miss it
    bool requiresIcc{false};
    //! losing the race dereferences null (the racing write is the sole
    //! non-null source): the nullflow stage must classify a surviving
    //! report on this key HARMFUL (bench_ablation_nullflow gates it)
    bool harmful{false};
};

/** All seeds of one app. */
struct GroundTruth {
    std::vector<SeededRace> seeded;
    //! cyclic-acquisition findings the app's patterns guarantee (the
    //! deadlock stage must report at least this many cycles)
    int seededDeadlocks{0};

    void
    add(std::string key, SeedClass cls, std::string note,
        bool requires_icc = false, bool harmful = false)
    {
        seeded.push_back({std::move(key), cls, std::move(note),
                          requires_icc, harmful});
    }
    void addDeadlock() { ++seededDeadlocks; }
    void
    merge(const GroundTruth &other)
    {
        seeded.insert(seeded.end(), other.seeded.begin(),
                      other.seeded.end());
        seededDeadlocks += other.seededDeadlocks;
    }
    bool isTrueRaceKey(const std::string &key) const;
    bool isSeededKey(const std::string &key) const;
    bool isKnownFpKey(const std::string &key) const;
    /** True if the key is a TrueRace seed flagged requiresIcc. */
    bool isIccOnlyTrueKey(const std::string &key) const;
    /** True if the key is a seed flagged harmful (a surviving report
     *  on it must classify HARMFUL under the nullflow stage). */
    bool isHarmfulKey(const std::string &key) const;
};

/** Scoring of a detector run against the ground truth. */
struct Score {
    int truePositives{0};  //!< surviving reports on TrueRace keys
    int falsePositives{0}; //!< surviving reports on other keys
    int missedTrueKeys{0}; //!< TrueRace keys with no surviving report
    //! FPs on KnownFp keys (expected static-analysis limitations)
    int knownFalsePositives{0};
    //! FPs on neither TrueRace nor KnownFp keys (real precision bugs)
    int unexpectedFalsePositives{0};
};

/** Score an app-level SIERRA report. */
Score scoreReport(const AppReport &report, const GroundTruth &truth);

/** Score an arbitrary set of surviving race keys (used for the dynamic
 *  detector comparison). */
Score scoreKeys(const std::vector<std::string> &surviving_keys,
                const GroundTruth &truth);

} // namespace sierra::corpus

#endif // SIERRA_CORPUS_GROUND_TRUTH_HH
