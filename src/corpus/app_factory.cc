#include "app_factory.hh"

#include "air/logging.hh"
#include "framework/known_api.hh"

namespace sierra::corpus {

using air::MethodBuilder;
using air::Type;

ActivityBuilder::ActivityBuilder(framework::App &app, std::string name)
    : _app(app), _name(std::move(name)), _layout(_name)
{
    _klass = app.module().addClass(_name, framework::names::activity);
    // A trivial constructor so harnesses can invoke-special it.
    air::Method *init =
        _klass->addMethod("<init>", {}, Type::voidTy(), false);
    MethodBuilder b(init);
    b.finish();
}

void
ActivityBuilder::on(const std::string &callback,
                    std::function<void(air::MethodBuilder &)> code)
{
    SIERRA_ASSERT(!_finalized, "on() after finalize()");
    _snippets[callback].push_back(std::move(code));
}

std::string
ActivityBuilder::addField(const std::string &name, air::Type type)
{
    _klass->addField({name, std::move(type), false});
    return _name + "." + name;
}

void
ActivityBuilder::finalize()
{
    SIERRA_ASSERT(!_finalized, "finalize() twice");
    _finalized = true;
    for (auto &[callback, snippets] : _snippets) {
        air::Method *m =
            _klass->addMethod(callback, {}, Type::voidTy(), false);
        MethodBuilder b(m);
        for (auto &snippet : snippets)
            snippet(b);
        b.finish();
    }
    if (!_layout.widgets().empty())
        _app.setLayout(_name, _layout);
}

AppFactory::AppFactory(const std::string &app_name)
{
    _built.app = std::make_unique<framework::App>(app_name);
    _built.app->manifest().packageName = "org.sierra." + app_name;
    framework::installFrameworkModel(_built.app->module());
}

ActivityBuilder &
AppFactory::addActivity(const std::string &name)
{
    auto ab = std::make_unique<ActivityBuilder>(*_built.app, name);
    _built.app->manifest().activities.push_back(name);
    if (_built.app->manifest().mainActivity.empty())
        _built.app->manifest().mainActivity = name;
    _activities.push_back(std::move(ab));
    return *_activities.back();
}

void
AppFactory::addManifestService(const std::string &class_name)
{
    _built.app->manifest().services.push_back({class_name});
}

void
AppFactory::addManifestReceiver(const std::string &class_name)
{
    framework::ReceiverSpec spec;
    spec.className = class_name;
    spec.declaredInManifest = true;
    _built.app->manifest().receivers.push_back(std::move(spec));
}

BuiltApp
AppFactory::finish()
{
    SIERRA_ASSERT(!_finished, "finish() twice");
    _finished = true;
    for (auto &ab : _activities)
        ab->finalize();
    return std::move(_built);
}

} // namespace sierra::corpus
