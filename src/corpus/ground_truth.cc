#include "ground_truth.hh"

#include <set>

namespace sierra::corpus {

bool
GroundTruth::isTrueRaceKey(const std::string &key) const
{
    for (const auto &s : seeded) {
        if (s.fieldKey == key && s.cls == SeedClass::TrueRace)
            return true;
    }
    return false;
}

bool
GroundTruth::isSeededKey(const std::string &key) const
{
    for (const auto &s : seeded) {
        if (s.fieldKey == key)
            return true;
    }
    return false;
}

bool
GroundTruth::isKnownFpKey(const std::string &key) const
{
    for (const auto &s : seeded) {
        if (s.fieldKey == key && s.cls == SeedClass::KnownFp)
            return true;
    }
    return false;
}

bool
GroundTruth::isIccOnlyTrueKey(const std::string &key) const
{
    for (const auto &s : seeded) {
        if (s.fieldKey == key && s.cls == SeedClass::TrueRace &&
            s.requiresIcc)
            return true;
    }
    return false;
}

bool
GroundTruth::isHarmfulKey(const std::string &key) const
{
    for (const auto &s : seeded) {
        if (s.fieldKey == key && s.harmful)
            return true;
    }
    return false;
}

Score
scoreKeys(const std::vector<std::string> &surviving_keys,
          const GroundTruth &truth)
{
    Score score;
    std::set<std::string> found;
    for (const auto &key : surviving_keys) {
        if (truth.isTrueRaceKey(key)) {
            ++score.truePositives;
            found.insert(key);
        } else {
            ++score.falsePositives;
            if (truth.isKnownFpKey(key))
                ++score.knownFalsePositives;
            else
                ++score.unexpectedFalsePositives;
        }
    }
    std::set<std::string> true_keys;
    for (const auto &s : truth.seeded) {
        if (s.cls == SeedClass::TrueRace)
            true_keys.insert(s.fieldKey);
    }
    for (const auto &key : true_keys) {
        if (!found.count(key))
            ++score.missedTrueKeys;
    }
    return score;
}

Score
scoreReport(const AppReport &report, const GroundTruth &truth)
{
    std::vector<std::string> surviving;
    for (const auto &race : report.races) {
        if (!race.refuted)
            surviving.push_back(race.fieldKey);
    }
    return scoreKeys(surviving, truth);
}

} // namespace sierra::corpus
