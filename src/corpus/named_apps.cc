#include "named_apps.hh"

#include <random>

#include "air/logging.hh"
#include "patterns.hh"

namespace sierra::corpus {

namespace {

/** Deterministic seed from an app name. */
uint32_t
nameSeed(const std::string &name)
{
    uint32_t h = 2166136261u;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 16777619u;
    }
    return h;
}

PatternFn
patternByName(const std::string &name)
{
    for (const auto &entry : patternCatalog()) {
        if (name == entry.name)
            return entry.fn;
    }
    fatal("unknown pattern ", name);
}

} // namespace

const std::vector<NamedAppSpec> &
namedAppSpecs()
{
    // Install brackets and byte sizes are from paper Table 2; the
    // signature pattern ties each app to the paper scenario it is best
    // known for in the text (OpenSudoku: Fig. 8; NPR News: Section 6.3).
    static const std::vector<NamedAppSpec> specs = {
        {"APV", "500,000-1,000,000", 736, 3,
         {"threadRace", "guardedTimer", "interprocGuard"}},
        {"Astrid", "100,000-500,000", 5400, 8,
         {"asyncNewsRace", "messageGuard", "workSession",
          "guardedNullRead"}},
        {"Barcode Scanner", "100,000,000-500,000,000", 808, 3,
         {"messageGuard", "threadRace"}},
        {"Beem", "50,000-100,000", 1700, 5,
         {"receiverDbRace", "orderedPosts", "arrayIndexTrap",
          "unregisteredFpTrap"}},
        {"ConnectBot", "1,000,000-5,000,000", 700, 3,
         {"threadRace", "receiverDbRace", "lockGuarded"}},
        {"FBReader", "10,000,000-50,000,000", 1013, 4,
         {"asyncNewsRace", "actionAliasTrap", "workSession",
          "nullSourceCrash"}},
        {"K-9 Mail", "5,000,000-10,000,000", 2800, 6,
         {"receiverDbRace", "serviceStaticRace", "implicitDepTrap",
          "useAfterDestroy"}},
        {"KeePassDroid", "1,000,000-5,000,000", 489, 2,
         {"guardedTimer", "lifecycleSafe", "deadlockOrdered"}},
        {"Mileage", "500,000-1,000,000", 641, 3,
         {"asyncNewsRace", "guiFlowSafe"}},
        {"MyTracks", "500,000-1,000,000", 5300, 7,
         {"serviceStaticRace", "threadRace", "workSession",
          "iccPendingIntent"}},
        {"NPR News", "1,000,000-5,000,000", 1500, 4,
         {"asyncNewsRace", "threadRace", "implicitDepTrap",
          "registeredWindow"}},
        {"NotePad", "10,000,000-50,000,000", 228, 2,
         {"orderedPosts", "threadRace"}},
        {"OpenManager", "N/A", 77, 1,
         {"implicitDepTrap", "threadRace"}},
        {"OpenSudoku", "1,000,000-5,000,000", 170, 2,
         {"guardedTimer", "messageGuard", "computedGuard",
          "removedCallback"}},
        {"SipDroid", "1,000,000-5,000,000", 539, 3,
         {"receiverDbRace", "messageGuard", "arrayIndexTrap",
          "deadlockCycle"}},
        {"SuperGenPass", "10,000-50,000", 137, 1,
         {"guiFlowSafe", "threadRace"}},
        {"TippyTipper", "100,000-500,000", 79, 1,
         {"actionAliasTrap", "threadRace"}},
        {"VLC", "100,000,000-500,000,000", 1100, 4,
         {"serviceStaticRace", "asyncNewsRace", "iccStartActivity"}},
        {"VuDroid", "100,000-500,000", 63, 1,
         {"threadRace", "localScratch"}},
        {"XBMC remote", "100,000-500,000", 1100, 4,
         {"messageGuard", "receiverDbRace", "workSession",
          "iccNullCrash"}},
    };
    return specs;
}

const NamedAppSpec &
namedAppSpec(const std::string &name)
{
    for (const auto &spec : namedAppSpecs()) {
        if (spec.name == name)
            return spec;
    }
    fatal("unknown named app ", name);
}

BuiltApp
buildNamedApp(const NamedAppSpec &spec)
{
    AppFactory factory(spec.name);
    std::mt19937 rng(nameSeed(spec.name));
    // Random fills draw from the frozen pool so catalog growth does not
    // reshuffle existing apps; new patterns arrive via signature lists.
    const auto &pool = randomPatternPool();

    for (int i = 0; i < spec.activities; ++i) {
        ActivityBuilder &act = factory.addActivity(
            "Activity" + std::to_string(i) + "$" +
            std::to_string(nameSeed(spec.name) % 1000));
        if (i == 0) {
            for (const auto &pname : spec.signaturePatterns)
                patternByName(pname)(factory, act);
        } else {
            // 2-4 additional patterns, deterministic per app.
            int count = 2 + static_cast<int>(rng() % 3);
            for (int p = 0; p < count; ++p) {
                const auto &entry = pool[rng() % pool.size()];
                entry.fn(factory, act);
            }
        }
    }
    return factory.finish();
}

BuiltApp
buildNamedApp(const std::string &name)
{
    return buildNamedApp(namedAppSpec(name));
}

} // namespace sierra::corpus
