#include "patterns.hh"

#include "air/logging.hh"
#include "framework/known_api.hh"

namespace sierra::corpus {

using air::CondKind;
using air::InvokeKind;
using air::Klass;
using air::Label;
using air::Method;
using air::MethodBuilder;
using air::Type;
namespace names = framework::names;

namespace {

/** Define a method with a builder callback. */
Method *
defineMethod(Klass *k, const std::string &name,
             std::vector<Type> params, Type ret, bool is_static,
             const std::function<void(MethodBuilder &)> &body)
{
    Method *m = k->addMethod(name, std::move(params), ret, is_static);
    MethodBuilder b(m);
    body(b);
    b.finish();
    return m;
}

/** Define an empty constructor. */
void
emptyCtor(Klass *k)
{
    defineMethod(k, "<init>", {}, Type::voidTy(), false,
                 [](MethodBuilder &) {});
}

/** Define a one-field "store the argument" constructor. */
void
storingCtor(Klass *k, const std::string &field_class,
            const std::string &field, Type param_type)
{
    defineMethod(k, "<init>", {std::move(param_type)}, Type::voidTy(),
                 false, [&](MethodBuilder &b) {
                     b.putField(b.thisReg(),
                                fieldRef(field_class, field),
                                b.paramReg(0));
                 });
}

} // namespace

// --------------------------------------------------------------------
// Pattern: Fig. 1 intra-component race (AsyncTask vs. scroll).
// --------------------------------------------------------------------
void
addAsyncNewsRace(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    int view_id = f.nextViewId();
    std::string adapter_cls = "NewsAdapter$" + std::to_string(n);
    std::string task_cls = "LoaderTask$" + std::to_string(n);
    std::string click_cls = "NewsClick$" + std::to_string(n);
    std::string scroll_cls = "NewsScroll$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string adapter_field = "adapter$" + std::to_string(n);
    std::string rv_field = "rv$" + std::to_string(n);

    air::Module &mod = f.app().module();

    // The adapter: data written on the background thread, counters read
    // from GUI events.
    Klass *adapter = mod.addClass(adapter_cls, names::baseAdapter);
    adapter->addField({"data", Type::object(names::object), false});
    adapter->addField({"count", Type::intTy(), false});
    adapter->addField({"cachedCount", Type::intTy(), false});
    emptyCtor(adapter);
    defineMethod(adapter, "addItem", {Type::object(names::object)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     b.putField(b.thisReg(), fieldRef(adapter_cls, "data"),
                                b.paramReg(0));
                     int r = b.newReg();
                     int rc = b.newReg();
                     int r2 = b.newReg();
                     b.getField(r, b.thisReg(),
                                fieldRef(adapter_cls, "count"));
                     b.constInt(rc, 1);
                     b.binOp(r2, air::BinOpKind::Add, r, rc);
                     b.putField(b.thisReg(),
                                fieldRef(adapter_cls, "count"), r2);
                 });
    defineMethod(adapter, "notifyChanged", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int r = b.newReg();
                     b.getField(r, b.thisReg(),
                                fieldRef(adapter_cls, "count"));
                     b.putField(b.thisReg(),
                                fieldRef(adapter_cls, "cachedCount"), r);
                 });

    // The AsyncTask.
    Klass *task = mod.addClass(task_cls, names::asyncTask);
    task->addField({"adapter", Type::object(adapter_cls), false});
    storingCtor(task, task_cls, "adapter", Type::object(adapter_cls));
    defineMethod(task, "doInBackground", {},
                 Type::object(names::object), false,
                 [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int rn = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(task_cls, "adapter"));
                     b.newObject(rn, names::object);
                     b.call(ra, adapter_cls, "addItem", {rn});
                     b.ret(rn);
                 });
    defineMethod(task, "onPostExecute", {Type::object(names::object)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(task_cls, "adapter"));
                     b.call(ra, adapter_cls, "notifyChanged");
                 });

    // Listeners.
    Klass *click = mod.addClass(click_cls, names::object);
    click->addInterface(names::onClickListener);
    click->addField({"act", Type::object(act_cls), false});
    storingCtor(click, click_cls, "act", Type::object(act_cls));
    defineMethod(click, "onClick", {Type::object(names::view)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int rad = b.newReg();
                     int rt = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(click_cls, "act"));
                     b.getField(rad, ra, fieldRef(act_cls, adapter_field));
                     b.newObject(rt, task_cls);
                     b.invoke(-1, InvokeKind::Special,
                              {task_cls, "<init>", 0}, {rt, rad});
                     b.call(rt, task_cls, "execute");
                 });

    Klass *scroll = mod.addClass(scroll_cls, names::object);
    scroll->addInterface(names::onScrollListener);
    scroll->addField({"act", Type::object(act_cls), false});
    storingCtor(scroll, scroll_cls, "act", Type::object(act_cls));
    defineMethod(scroll, "onScroll", {Type::object(names::view)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int rad = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(scroll_cls, "act"));
                     b.getField(rad, ra, fieldRef(act_cls, adapter_field));
                     int r1 = b.newReg();
                     int r2 = b.newReg();
                     int r3 = b.newReg();
                     b.getField(r1, rad, fieldRef(adapter_cls, "count"));
                     b.getField(r2, rad,
                                fieldRef(adapter_cls, "cachedCount"));
                     b.getField(r3, rad, fieldRef(adapter_cls, "data"));
                 });

    // Activity wiring.
    act.addField(adapter_field, Type::object(adapter_cls));
    act.addField(rv_field, Type::object(names::recycleView));
    framework::Widget w;
    w.id = view_id;
    w.name = "rvNews$" + std::to_string(n);
    w.widgetClass = names::recycleView;
    act.layout().addWidget(w);

    act.on("onCreate", [=](MethodBuilder &b) {
        int rid = b.newReg();
        int rv = b.newReg();
        int rad = b.newReg();
        int rcl = b.newReg();
        int rsl = b.newReg();
        b.constInt(rid, view_id);
        b.callTo(rv, b.thisReg(), act_cls, "findViewById", {rid});
        b.putField(b.thisReg(), fieldRef(act_cls, rv_field), rv);
        b.newObject(rad, adapter_cls);
        b.invoke(-1, InvokeKind::Special, {adapter_cls, "<init>", 0},
                 {rad});
        b.putField(b.thisReg(), fieldRef(act_cls, adapter_field), rad);
        b.newObject(rcl, click_cls);
        b.invoke(-1, InvokeKind::Special, {click_cls, "<init>", 0},
                 {rcl, b.thisReg()});
        b.call(rv, names::view, "setOnClickListener", {rcl});
        b.newObject(rsl, scroll_cls);
        b.invoke(-1, InvokeKind::Special, {scroll_cls, "<init>", 0},
                 {rsl, b.thisReg()});
        b.call(rv, names::view, "setOnScrollListener", {rsl});
    });

    f.truth().add(adapter_cls + ".count", SeedClass::TrueRace,
                  "asyncNewsRace: background add vs scroll read");
    f.truth().add(adapter_cls + ".data", SeedClass::TrueRace,
                  "asyncNewsRace: background add vs scroll read (ref)");
    f.truth().add(adapter_cls + ".cachedCount", SeedClass::TrueRace,
                  "asyncNewsRace: onPostExecute vs scroll");
}

// --------------------------------------------------------------------
// Pattern: Fig. 2 inter-component race (receiver vs. lifecycle DB).
// --------------------------------------------------------------------
void
addReceiverDbRace(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string db_cls = "DataBase$" + std::to_string(n);
    std::string recv_cls = "Recv$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string db_field = "mDB$" + std::to_string(n);
    std::string recv_field = "recv$" + std::to_string(n);

    air::Module &mod = f.app().module();

    Klass *db = mod.addClass(db_cls, names::object);
    db->addField({"conn", Type::object(names::object), false});
    db->addField({"isOpen", Type::intTy(), false});
    emptyCtor(db);
    defineMethod(db, "open", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int rc = b.newReg();
                     int r1 = b.newReg();
                     b.newObject(rc, names::object);
                     b.putField(b.thisReg(), fieldRef(db_cls, "conn"), rc);
                     b.constInt(r1, 1);
                     b.putField(b.thisReg(), fieldRef(db_cls, "isOpen"),
                                r1);
                 });
    defineMethod(db, "close", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int rn = b.newReg();
                     int r0 = b.newReg();
                     b.constNull(rn);
                     b.putField(b.thisReg(), fieldRef(db_cls, "conn"), rn);
                     b.constInt(r0, 0);
                     b.putField(b.thisReg(), fieldRef(db_cls, "isOpen"),
                                r0);
                 });
    defineMethod(db, "update", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int r = b.newReg();
                     int r2 = b.newReg();
                     b.getField(r, b.thisReg(), fieldRef(db_cls, "conn"));
                     b.getField(r2, b.thisReg(),
                                fieldRef(db_cls, "isOpen"));
                 });

    Klass *recv = mod.addClass(recv_cls, names::receiver);
    recv->addField({"act", Type::object(act_cls), false});
    storingCtor(recv, recv_cls, "act", Type::object(act_cls));
    defineMethod(recv, "onReceive",
                 {Type::object(names::object),
                  Type::object(names::intent)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int rdb = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(recv_cls, "act"));
                     b.getField(rdb, ra, fieldRef(act_cls, db_field));
                     b.call(rdb, db_cls, "update");
                 });

    act.addField(db_field, Type::object(db_cls));
    act.addField(recv_field, Type::object(recv_cls));

    act.on("onCreate", [=](MethodBuilder &b) {
        int rdb = b.newReg();
        int rr = b.newReg();
        int rs = b.newReg();
        b.newObject(rdb, db_cls);
        b.invoke(-1, InvokeKind::Special, {db_cls, "<init>", 0}, {rdb});
        b.putField(b.thisReg(), fieldRef(act_cls, db_field), rdb);
        b.newObject(rr, recv_cls);
        b.invoke(-1, InvokeKind::Special, {recv_cls, "<init>", 0},
                 {rr, b.thisReg()});
        b.putField(b.thisReg(), fieldRef(act_cls, recv_field), rr);
        b.constStr(rs, "org.sierra.DATA_READY");
        b.call(b.thisReg(), act_cls, "registerReceiver", {rr, rs});
    });
    act.on("onStart", [=](MethodBuilder &b) {
        int rdb = b.newReg();
        b.getField(rdb, b.thisReg(), fieldRef(act_cls, db_field));
        b.call(rdb, db_cls, "open");
    });
    act.on("onStop", [=](MethodBuilder &b) {
        int rdb = b.newReg();
        b.getField(rdb, b.thisReg(), fieldRef(act_cls, db_field));
        b.call(rdb, db_cls, "close");
    });
    act.on("onDestroy", [=](MethodBuilder &b) {
        int rr = b.newReg();
        int rn = b.newReg();
        b.getField(rr, b.thisReg(), fieldRef(act_cls, recv_field));
        b.call(b.thisReg(), act_cls, "unregisterReceiver", {rr});
        b.constNull(rn);
        b.putField(b.thisReg(), fieldRef(act_cls, db_field), rn);
    });

    f.truth().add(db_cls + ".conn", SeedClass::TrueRace,
                  "receiverDbRace: close(onStop) vs update(onReceive)");
    f.truth().add(db_cls + ".isOpen", SeedClass::TrueRace,
                  "receiverDbRace: guard variable race");
    f.truth().add(act_cls + "." + db_field, SeedClass::TrueRace,
                  "receiverDbRace: onDestroy null vs onReceive read");
}

// --------------------------------------------------------------------
// Pattern: Fig. 8 guarded timer (refutable by symbolic execution).
// --------------------------------------------------------------------
void
addGuardedTimer(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string timer_cls = "Timer$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string timer_field = "timer$" + std::to_string(n);

    air::Module &mod = f.app().module();

    Klass *timer = mod.addClass(timer_cls, names::object);
    timer->addInterface(names::runnable);
    timer->addField({"mIsRunning", Type::intTy(), false});
    timer->addField({"mAccumTime", Type::intTy(), false});
    timer->addField({"handler", Type::object(names::handler), false});
    emptyCtor(timer);
    defineMethod(timer, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     Label l_end = b.newLabel();
                     Label l_else = b.newLabel();
                     int r = b.newReg();
                     b.getField(r, b.thisReg(),
                                fieldRef(timer_cls, "mIsRunning"));
                     b.ifz(r, CondKind::Eq, l_end);
                     int rt = b.newReg();
                     int rc = b.newReg();
                     int rt2 = b.newReg();
                     b.getField(rt, b.thisReg(),
                                fieldRef(timer_cls, "mAccumTime"));
                     b.constInt(rc, 10);
                     b.binOp(rt2, air::BinOpKind::Add, rt, rc);
                     b.putField(b.thisReg(),
                                fieldRef(timer_cls, "mAccumTime"), rt2);
                     int rnd = b.newReg();
                     b.callStatic(rnd, "sierra.Nondet", "choose");
                     b.ifz(rnd, CondKind::Eq, l_else);
                     int rh = b.newReg();
                     int rdel = b.newReg();
                     b.getField(rh, b.thisReg(),
                                fieldRef(timer_cls, "handler"));
                     b.constInt(rdel, 100);
                     b.call(rh, names::handler, "postDelayed",
                            {b.thisReg(), rdel});
                     b.gotoLabel(l_end);
                     b.bind(l_else);
                     int rz = b.newReg();
                     b.constInt(rz, 0);
                     b.putField(b.thisReg(),
                                fieldRef(timer_cls, "mIsRunning"), rz);
                     b.bind(l_end);
                     b.retVoid();
                 });
    defineMethod(timer, "stop", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     Label l_end = b.newLabel();
                     int r = b.newReg();
                     b.getField(r, b.thisReg(),
                                fieldRef(timer_cls, "mIsRunning"));
                     b.ifz(r, CondKind::Eq, l_end);
                     int rz = b.newReg();
                     b.constInt(rz, 0);
                     b.putField(b.thisReg(),
                                fieldRef(timer_cls, "mIsRunning"), rz);
                     int rz2 = b.newReg();
                     b.constInt(rz2, 0);
                     b.putField(b.thisReg(),
                                fieldRef(timer_cls, "mAccumTime"), rz2);
                     b.bind(l_end);
                     b.retVoid();
                 });

    act.addField(timer_field, Type::object(timer_cls));

    // The timer starts once, at creation (a single posting site keeps
    // the pattern's ground truth crisp: the only unrefutable race left
    // is the mIsRunning guard itself, as in the paper's Fig. 8).
    act.on("onCreate", [=](MethodBuilder &b) {
        int rt = b.newReg();
        int rh = b.newReg();
        int r1 = b.newReg();
        b.newObject(rt, timer_cls);
        b.invoke(-1, InvokeKind::Special, {timer_cls, "<init>", 0}, {rt});
        b.newObject(rh, names::handler);
        b.invoke(-1, InvokeKind::Special,
                 {names::handler, "<init>", 0}, {rh});
        b.putField(rt, fieldRef(timer_cls, "handler"), rh);
        b.putField(b.thisReg(), fieldRef(act_cls, timer_field), rt);
        b.constInt(r1, 1);
        b.putField(rt, fieldRef(timer_cls, "mIsRunning"), r1);
        b.getField(rh, rt, fieldRef(timer_cls, "handler"));
        b.call(rh, names::handler, "post", {rt});
    });
    act.on("onPause", [=](MethodBuilder &b) {
        int rt = b.newReg();
        b.getField(rt, b.thisReg(), fieldRef(act_cls, timer_field));
        b.call(rt, timer_cls, "stop");
    });

    f.truth().add(timer_cls + ".mIsRunning", SeedClass::TrueRace,
                  "guardedTimer: guard variable race (benign)");
    f.truth().add(timer_cls + ".mAccumTime", SeedClass::FpTrap,
                  "guardedTimer: protected by mIsRunning; refutable");
}

// --------------------------------------------------------------------
// Pattern: Fig. 8 variant whose guard is cleared with a *computed*
// zero (1 - 1). Weakest-precondition refutation alone treats the
// arithmetic as opaque and keeps the report; the intraprocedural
// constant fixpoint folds it and refutes, mirroring the paper's
// on-demand constant propagation (Section 5).
// --------------------------------------------------------------------
void
addComputedGuard(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string timer_cls = "CGuard$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string timer_field = "cguard$" + std::to_string(n);

    air::Module &mod = f.app().module();

    Klass *timer = mod.addClass(timer_cls, names::object);
    timer->addInterface(names::runnable);
    timer->addField({"mActive", Type::intTy(), false});
    timer->addField({"mTicks", Type::intTy(), false});
    timer->addField({"handler", Type::object(names::handler), false});
    emptyCtor(timer);
    defineMethod(timer, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     Label l_end = b.newLabel();
                     int r = b.newReg();
                     b.getField(r, b.thisReg(),
                                fieldRef(timer_cls, "mActive"));
                     b.ifz(r, CondKind::Eq, l_end);
                     int rt = b.newReg();
                     int rc = b.newReg();
                     int rt2 = b.newReg();
                     b.getField(rt, b.thisReg(),
                                fieldRef(timer_cls, "mTicks"));
                     b.constInt(rc, 1);
                     b.binOp(rt2, air::BinOpKind::Add, rt, rc);
                     b.putField(b.thisReg(),
                                fieldRef(timer_cls, "mTicks"), rt2);
                     b.bind(l_end);
                     b.retVoid();
                 });
    defineMethod(timer, "stop", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     Label l_end = b.newLabel();
                     int r = b.newReg();
                     b.getField(r, b.thisReg(),
                                fieldRef(timer_cls, "mActive"));
                     b.ifz(r, CondKind::Eq, l_end);
                     // The crux: the cleared guard value is computed.
                     int r1 = b.newReg();
                     int rz = b.newReg();
                     b.constInt(r1, 1);
                     b.binOp(rz, air::BinOpKind::Sub, r1, r1);
                     b.putField(b.thisReg(),
                                fieldRef(timer_cls, "mActive"), rz);
                     b.putField(b.thisReg(),
                                fieldRef(timer_cls, "mTicks"), rz);
                     b.bind(l_end);
                     b.retVoid();
                 });

    act.addField(timer_field, Type::object(timer_cls));

    act.on("onCreate", [=](MethodBuilder &b) {
        int rt = b.newReg();
        int rh = b.newReg();
        int r1 = b.newReg();
        b.newObject(rt, timer_cls);
        b.invoke(-1, InvokeKind::Special, {timer_cls, "<init>", 0}, {rt});
        b.newObject(rh, names::handler);
        b.invoke(-1, InvokeKind::Special,
                 {names::handler, "<init>", 0}, {rh});
        b.putField(rt, fieldRef(timer_cls, "handler"), rh);
        b.putField(b.thisReg(), fieldRef(act_cls, timer_field), rt);
        b.constInt(r1, 1);
        b.putField(rt, fieldRef(timer_cls, "mActive"), r1);
        b.getField(rh, rt, fieldRef(timer_cls, "handler"));
        b.call(rh, names::handler, "post", {rt});
    });
    act.on("onPause", [=](MethodBuilder &b) {
        int rt = b.newReg();
        b.getField(rt, b.thisReg(), fieldRef(act_cls, timer_field));
        b.call(rt, timer_cls, "stop");
    });

    f.truth().add(timer_cls + ".mActive", SeedClass::TrueRace,
                  "computedGuard: guard variable race (benign)");
    f.truth().add(timer_cls + ".mTicks", SeedClass::FpTrap,
                  "computedGuard: cleared guard is 1-1; refutable "
                  "only with constant facts");
}

// --------------------------------------------------------------------
// Pattern: Message.what guard (on-demand constant propagation).
// --------------------------------------------------------------------
void
addMessageGuard(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string handler_cls = "MsgHandler$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string mh_field = "mh$" + std::to_string(n);
    int w1 = f.nextViewId();
    int w2 = f.nextViewId();
    std::string send1 = "onSendOne$" + std::to_string(n);
    std::string send2 = "onSendTwo$" + std::to_string(n);

    air::Module &mod = f.app().module();

    Klass *handler = mod.addClass(handler_cls, names::handler);
    handler->addField({"flagA", Type::intTy(), false});
    handler->addField({"flagB", Type::intTy(), false});
    defineMethod(handler, "<init>", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     b.invoke(-1, InvokeKind::Special,
                              {names::handler, "<init>", 0},
                              {b.thisReg()});
                 });
    defineMethod(handler, "handleMessage",
                 {Type::object(names::message)}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     Label l_two = b.newLabel();
                     Label l_end = b.newLabel();
                     int rw = b.newReg();
                     int rc = b.newReg();
                     b.getField(rw, b.paramReg(0),
                                fieldRef(names::message, "what"));
                     b.constInt(rc, 2);
                     b.iff(rw, CondKind::Eq, rc, l_two);
                     int r1 = b.newReg();
                     b.constInt(r1, 1);
                     b.putField(b.thisReg(),
                                fieldRef(handler_cls, "flagA"), r1);
                     b.gotoLabel(l_end);
                     b.bind(l_two);
                     int r2 = b.newReg();
                     b.constInt(r2, 1);
                     b.putField(b.thisReg(),
                                fieldRef(handler_cls, "flagB"), r2);
                     b.bind(l_end);
                     b.retVoid();
                 });

    act.addField(mh_field, Type::object(handler_cls));
    framework::Widget wa;
    wa.id = w1;
    wa.name = "btnOne$" + std::to_string(n);
    wa.widgetClass = names::button;
    wa.xmlOnClick = send1;
    act.layout().addWidget(wa);
    framework::Widget wb;
    wb.id = w2;
    wb.name = "btnTwo$" + std::to_string(n);
    wb.widgetClass = names::button;
    wb.xmlOnClick = send2;
    act.layout().addWidget(wb);

    act.on("onCreate", [=](MethodBuilder &b) {
        int rm = b.newReg();
        b.newObject(rm, handler_cls);
        b.invoke(-1, InvokeKind::Special, {handler_cls, "<init>", 0},
                 {rm});
        b.putField(b.thisReg(), fieldRef(act_cls, mh_field), rm);
    });

    // XML onClick handlers take the clicked view as a parameter.
    auto send_body = [=](MethodBuilder &b, int what, bool read_flag_b) {
        int rh = b.newReg();
        int rmsg = b.newReg();
        int rc = b.newReg();
        b.getField(rh, b.thisReg(), fieldRef(act_cls, mh_field));
        b.callStatic(rmsg, names::message, "obtain");
        b.constInt(rc, what);
        b.putField(rmsg, fieldRef(names::message, "what"), rc);
        b.call(rh, handler_cls, "sendMessage", {rmsg});
        if (read_flag_b) {
            int rb = b.newReg();
            b.getField(rb, rh, fieldRef(handler_cls, "flagB"));
        }
    };
    defineMethod(act.klass(), send1, {Type::object(names::view)},
                 Type::voidTy(), false,
                 [&](MethodBuilder &b) { send_body(b, 1, true); });
    defineMethod(act.klass(), send2, {Type::object(names::view)},
                 Type::voidTy(), false,
                 [&](MethodBuilder &b) { send_body(b, 2, false); });

    f.truth().add(handler_cls + ".flagB", SeedClass::TrueRace,
                  "messageGuard: what=2 write vs gui read");
    f.truth().add(handler_cls + ".flagA", SeedClass::FpTrap,
                  "messageGuard: only what!=2 writes flagA; candidate "
                  "pairs are refuted via message-what constants");
}

// --------------------------------------------------------------------
// Pattern: posting order (HB rule 4 negative).
// --------------------------------------------------------------------
void
addOrderedPosts(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string init_cls = "InitTask$" + std::to_string(n);
    std::string use_cls = "UseTask$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string cfg_field = "cfg$" + std::to_string(n);

    air::Module &mod = f.app().module();

    Klass *init = mod.addClass(init_cls, names::object);
    init->addInterface(names::runnable);
    init->addField({"act", Type::object(act_cls), false});
    storingCtor(init, init_cls, "act", Type::object(act_cls));
    defineMethod(init, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int rn = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(init_cls, "act"));
                     b.newObject(rn, names::object);
                     b.putField(ra, fieldRef(act_cls, cfg_field), rn);
                 });

    Klass *use = mod.addClass(use_cls, names::object);
    use->addInterface(names::runnable);
    use->addField({"act", Type::object(act_cls), false});
    storingCtor(use, use_cls, "act", Type::object(act_cls));
    defineMethod(use, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int r = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(use_cls, "act"));
                     b.getField(r, ra, fieldRef(act_cls, cfg_field));
                 });

    act.addField(cfg_field, Type::object(names::object));
    act.on("onCreate", [=](MethodBuilder &b) {
        int rh = b.newReg();
        int r1 = b.newReg();
        int r2 = b.newReg();
        b.newObject(rh, names::handler);
        b.invoke(-1, InvokeKind::Special,
                 {names::handler, "<init>", 0}, {rh});
        b.newObject(r1, init_cls);
        b.invoke(-1, InvokeKind::Special, {init_cls, "<init>", 0},
                 {r1, b.thisReg()});
        b.newObject(r2, use_cls);
        b.invoke(-1, InvokeKind::Special, {use_cls, "<init>", 0},
                 {r2, b.thisReg()});
        // Posted in order: rule 4 orders the two actions, so the
        // write/read on cfg$N is NOT a race.
        b.call(rh, names::handler, "post", {r1});
        b.call(rh, names::handler, "post", {r2});
    });

    f.truth().add(act_cls + "." + cfg_field, SeedClass::FpTrap,
                  "orderedPosts: rule 4 orders the posted runnables");
}

// --------------------------------------------------------------------
// Pattern: background thread vs. GUI read (true race).
// --------------------------------------------------------------------
void
addThreadRace(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string worker_cls = "Worker$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string result_field = "result$" + std::to_string(n);
    std::string done_field = "done$" + std::to_string(n);
    int wid = f.nextViewId();
    std::string show = "onShow$" + std::to_string(n);

    air::Module &mod = f.app().module();

    Klass *worker = mod.addClass(worker_cls, names::thread);
    worker->addField({"act", Type::object(act_cls), false});
    storingCtor(worker, worker_cls, "act", Type::object(act_cls));
    defineMethod(worker, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int rn = b.newReg();
                     int r1 = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(worker_cls, "act"));
                     b.newObject(rn, names::object);
                     b.putField(ra, fieldRef(act_cls, result_field), rn);
                     b.constInt(r1, 1);
                     b.putField(ra, fieldRef(act_cls, done_field), r1);
                 });

    act.addField(result_field, Type::object(names::object));
    act.addField(done_field, Type::intTy());
    framework::Widget w;
    w.id = wid;
    w.name = "btnShow$" + std::to_string(n);
    w.widgetClass = names::button;
    w.xmlOnClick = show;
    act.layout().addWidget(w);

    act.on("onCreate", [=](MethodBuilder &b) {
        int rn = b.newReg();
        int rw = b.newReg();
        b.constNull(rn);
        b.putField(b.thisReg(), fieldRef(act_cls, result_field), rn);
        b.newObject(rw, worker_cls);
        b.invoke(-1, InvokeKind::Special, {worker_cls, "<init>", 0},
                 {rw, b.thisReg()});
        b.call(rw, worker_cls, "start");
    });
    defineMethod(act.klass(), show, {Type::object(names::view)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     int r1 = b.newReg();
                     int r2 = b.newReg();
                     b.getField(r1, b.thisReg(),
                                fieldRef(act_cls, result_field));
                     b.getField(r2, b.thisReg(),
                                fieldRef(act_cls, done_field));
                 });

    f.truth().add(act_cls + "." + result_field, SeedClass::TrueRace,
                  "threadRace: thread write vs gui read (ref)");
    f.truth().add(act_cls + "." + done_field, SeedClass::TrueRace,
                  "threadRace: thread write vs gui read");
}

// --------------------------------------------------------------------
// Pattern: action-sensitivity ablation trap (paper Section 3.3).
// --------------------------------------------------------------------
void
addActionAliasTrap(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string util_cls = "Util$" + std::to_string(n);
    std::string buf_cls = "Buffer$" + std::to_string(n);
    std::string act_cls = act.name();
    int w1 = f.nextViewId();
    int w2 = f.nextViewId();
    std::string h1 = "onAlias1$" + std::to_string(n);
    std::string h2 = "onAlias2$" + std::to_string(n);

    air::Module &mod = f.app().module();

    Klass *buf = mod.addClass(buf_cls, names::object);
    buf->addField({"v", Type::intTy(), false});
    emptyCtor(buf);

    // Two call layers: with k=1 hybrid contexts the allocation in
    // makeBuf merges across the two GUI actions; action-sensitivity
    // keeps the objects distinct (the paper's foo()/bar() example).
    Klass *util = mod.addClass(util_cls, names::object);
    defineMethod(util, "makeBuf", {}, Type::object(buf_cls), true,
                 [&](MethodBuilder &b) {
                     int rb = b.newReg();
                     b.newObject(rb, buf_cls);
                     b.invoke(-1, InvokeKind::Special,
                              {buf_cls, "<init>", 0}, {rb});
                     b.ret(rb);
                 });
    defineMethod(util, "helper", {}, Type::object(buf_cls), true,
                 [&](MethodBuilder &b) {
                     int rb = b.newReg();
                     b.callStatic(rb, util_cls, "makeBuf");
                     b.ret(rb);
                 });

    framework::Widget wa;
    wa.id = w1;
    wa.name = "btnAlias1$" + std::to_string(n);
    wa.widgetClass = names::button;
    wa.xmlOnClick = h1;
    act.layout().addWidget(wa);
    framework::Widget wb;
    wb.id = w2;
    wb.name = "btnAlias2$" + std::to_string(n);
    wb.widgetClass = names::button;
    wb.xmlOnClick = h2;
    act.layout().addWidget(wb);

    auto body = [=](MethodBuilder &b) {
        int rb = b.newReg();
        int rv = b.newReg();
        b.callStatic(rb, util_cls, "helper");
        b.constInt(rv, 7);
        b.putField(rb, fieldRef(buf_cls, "v"), rv);
    };
    defineMethod(act.klass(), h1, {Type::object(names::view)},
                 Type::voidTy(), false, body);
    defineMethod(act.klass(), h2, {Type::object(names::view)},
                 Type::voidTy(), false, body);

    f.truth().add(buf_cls + ".v", SeedClass::FpTrap,
                  "actionAliasTrap: per-action buffers never alias; "
                  "reported only without action-sensitivity");
}

// --------------------------------------------------------------------
// Pattern: static field race between a service and the activity.
// --------------------------------------------------------------------
void
addServiceStaticRace(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string cfg_cls = "Cfg$" + std::to_string(n);
    std::string svc_cls = "SyncService$" + std::to_string(n);
    std::string act_cls = act.name();

    air::Module &mod = f.app().module();

    Klass *cfg = mod.addClass(cfg_cls, names::object);
    cfg->addField({"flag", Type::intTy(), true});

    Klass *svc = mod.addClass(svc_cls, names::service);
    emptyCtor(svc);
    defineMethod(svc, "onStartCommand",
                 {Type::object(names::intent)}, Type::intTy(), false,
                 [&](MethodBuilder &b) {
                     int r1 = b.newReg();
                     b.constInt(r1, 1);
                     b.putStatic(fieldRef(cfg_cls, "flag"), r1);
                     int rz = b.newReg();
                     b.constInt(rz, 0);
                     b.ret(rz);
                 });
    f.addManifestService(svc_cls);

    act.on("onResume", [=](MethodBuilder &b) {
        int r = b.newReg();
        b.getStatic(r, fieldRef(cfg_cls, "flag"));
    });

    f.truth().add(cfg_cls + ".flag", SeedClass::TrueRace,
                  "serviceStaticRace: service write vs activity read");
}

// --------------------------------------------------------------------
// Pattern: ordered lifecycle accesses (negative control).
// --------------------------------------------------------------------
void
addLifecycleSafe(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string act_cls = act.name();
    std::string field = "init$" + std::to_string(n);

    act.addField(field, Type::object(names::object));
    act.on("onCreate", [=](MethodBuilder &b) {
        int rn = b.newReg();
        b.newObject(rn, names::object);
        b.putField(b.thisReg(), fieldRef(act_cls, field), rn);
    });
    act.on("onDestroy", [=](MethodBuilder &b) {
        int r = b.newReg();
        int rn = b.newReg();
        b.getField(r, b.thisReg(), fieldRef(act_cls, field));
        b.constNull(rn);
        b.putField(b.thisReg(), fieldRef(act_cls, field), rn);
    });

    f.truth().add(act_cls + "." + field, SeedClass::FpTrap,
                  "lifecycleSafe: onCreate < onDestroy orders accesses");
}

// --------------------------------------------------------------------
// Pattern: enabledAfter GUI flow (negative control).
// --------------------------------------------------------------------
void
addGuiFlowSafe(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string act_cls = act.name();
    std::string field = "sel$" + std::to_string(n);
    int w1 = f.nextViewId();
    int w2 = f.nextViewId();
    std::string h1 = "onPick$" + std::to_string(n);
    std::string h2 = "onConfirm$" + std::to_string(n);

    act.addField(field, Type::object(names::object));
    framework::Widget wa;
    wa.id = w1;
    wa.name = "btnPick$" + std::to_string(n);
    wa.widgetClass = names::button;
    wa.xmlOnClick = h1;
    act.layout().addWidget(wa);
    framework::Widget wb;
    wb.id = w2;
    wb.name = "btnConfirm$" + std::to_string(n);
    wb.widgetClass = names::button;
    wb.xmlOnClick = h2;
    wb.enabledAfter = {w1}; // confirm only reachable after pick
    act.layout().addWidget(wb);

    defineMethod(act.klass(), h1, {Type::object(names::view)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     int rn = b.newReg();
                     b.newObject(rn, names::object);
                     b.putField(b.thisReg(), fieldRef(act_cls, field),
                                rn);
                 });
    defineMethod(act.klass(), h2, {Type::object(names::view)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     int r = b.newReg();
                     b.getField(r, b.thisReg(),
                                fieldRef(act_cls, field));
                 });

    f.truth().add(act_cls + "." + field, SeedClass::FpTrap,
                  "guiFlowSafe: enabledAfter orders the GUI actions");
}

// --------------------------------------------------------------------
// Pattern: implicit dependency (paper Section 6.5, the OpenManager FP).
// A thread started in onCreate fills the list; the click handler can
// only fire after the user sees the filled list, but no static (or
// dynamic) happens-before captures that -- SIERRA reports the pair.
// --------------------------------------------------------------------
void
addImplicitDepTrap(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string filler_cls = "Filler$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string list_field = "list$" + std::to_string(n);
    int wid = f.nextViewId();
    std::string open = "onOpen$" + std::to_string(n);

    air::Module &mod = f.app().module();
    Klass *filler = mod.addClass(filler_cls, names::thread);
    filler->addField({"act", Type::object(act_cls), false});
    storingCtor(filler, filler_cls, "act", Type::object(act_cls));
    defineMethod(filler, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int rn = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(filler_cls, "act"));
                     b.newObject(rn, names::object);
                     b.putField(ra, fieldRef(act_cls, list_field), rn);
                 });

    act.addField(list_field, Type::object(names::object));
    framework::Widget w;
    w.id = wid;
    w.name = "lstOpen$" + std::to_string(n);
    w.widgetClass = names::listView;
    w.xmlOnClick = open;
    act.layout().addWidget(w);

    act.on("onCreate", [=](MethodBuilder &b) {
        int rw = b.newReg();
        b.newObject(rw, filler_cls);
        b.invoke(-1, InvokeKind::Special, {filler_cls, "<init>", 0},
                 {rw, b.thisReg()});
        b.call(rw, filler_cls, "start");
    });
    defineMethod(act.klass(), open, {Type::object(names::view)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     int r = b.newReg();
                     b.getField(r, b.thisReg(),
                                fieldRef(act_cls, list_field));
                 });

    f.truth().add(act_cls + "." + list_field, SeedClass::KnownFp,
                  "implicitDepTrap: the user clicks only after the "
                  "fill; beyond static reasoning");
}

// --------------------------------------------------------------------
// Pattern: index-insensitive container (paper Section 6.5's second FP
// class). Two GUI handlers touch disjoint array slots; the analysis
// merges all elements into one $elems location and reports a race.
// --------------------------------------------------------------------
void
addArrayIndexTrap(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string slot_cls = "Slot$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string arr_field = "slots$" + std::to_string(n);
    int w1 = f.nextViewId();
    int w2 = f.nextViewId();
    std::string h1 = "onSlotA$" + std::to_string(n);
    std::string h2 = "onSlotB$" + std::to_string(n);

    air::Module &mod = f.app().module();
    Klass *slot = mod.addClass(slot_cls, names::object);
    emptyCtor(slot);

    act.addField(arr_field, Type::array(slot_cls));
    framework::Widget wa;
    wa.id = w1;
    wa.name = "btnSlotA$" + std::to_string(n);
    wa.widgetClass = names::button;
    wa.xmlOnClick = h1;
    act.layout().addWidget(wa);
    framework::Widget wb;
    wb.id = w2;
    wb.name = "btnSlotB$" + std::to_string(n);
    wb.widgetClass = names::button;
    wb.xmlOnClick = h2;
    act.layout().addWidget(wb);

    act.on("onCreate", [=](MethodBuilder &b) {
        int rlen = b.newReg();
        int rarr = b.newReg();
        b.constInt(rlen, 4);
        b.newArray(rarr, slot_cls, rlen);
        b.putField(b.thisReg(), fieldRef(act_cls, arr_field), rarr);
    });
    auto handler = [=](int index) {
        return [=](MethodBuilder &b) {
            int rarr = b.newReg();
            int ri = b.newReg();
            int rs = b.newReg();
            b.getField(rarr, b.thisReg(),
                       fieldRef(act_cls, arr_field));
            b.constInt(ri, index);
            b.newObject(rs, slot_cls);
            b.invoke(-1, InvokeKind::Special, {slot_cls, "<init>", 0},
                     {rs});
            b.arrayPut(rarr, ri, rs);
        };
    };
    defineMethod(act.klass(), h1, {Type::object(names::view)},
                 Type::voidTy(), false, handler(0));
    defineMethod(act.klass(), h2, {Type::object(names::view)},
                 Type::voidTy(), false, handler(1));

    f.truth().add(slot_cls + "[].$elems", SeedClass::KnownFp,
                  "arrayIndexTrap: disjoint indices merged by the "
                  "index-insensitive heap model");
}

// --------------------------------------------------------------------
// Pattern: per-event session objects through a helper chain. With
// plain hybrid k=1 contexts the helper's allocation merges across GUI
// actions (false aliasing, paper Section 3.3); action-sensitive
// contexts keep the sessions separate. Amplifies the Table 3 column
// 6-vs-7 ablation.
// --------------------------------------------------------------------
void
addWorkSession(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string sess_cls = "Session$" + std::to_string(n);
    std::string fac_cls = "SessFactory$" + std::to_string(n);
    std::string act_cls = act.name();
    int w1 = f.nextViewId();
    int w2 = f.nextViewId();
    int w3 = f.nextViewId();
    std::string h1 = "onWork1$" + std::to_string(n);
    std::string h2 = "onWork2$" + std::to_string(n);
    std::string h3 = "onWork3$" + std::to_string(n);

    air::Module &mod = f.app().module();
    Klass *sess = mod.addClass(sess_cls, names::object);
    sess->addField({"tag", Type::intTy(), false});
    sess->addField({"payload", Type::object(names::object), false});
    emptyCtor(sess);

    Klass *fac = mod.addClass(fac_cls, names::object);
    defineMethod(fac, "make", {}, Type::object(sess_cls), true,
                 [&](MethodBuilder &b) {
                     int rs = b.newReg();
                     b.newObject(rs, sess_cls);
                     b.invoke(-1, InvokeKind::Special,
                              {sess_cls, "<init>", 0}, {rs});
                     b.ret(rs);
                 });
    defineMethod(fac, "open", {}, Type::object(sess_cls), true,
                 [&](MethodBuilder &b) {
                     int rs = b.newReg();
                     b.callStatic(rs, fac_cls, "make");
                     b.ret(rs);
                 });

    auto add_widget = [&](int id, const std::string &cb) {
        framework::Widget w;
        w.id = id;
        w.name = "btn" + cb;
        w.widgetClass = names::button;
        w.xmlOnClick = cb;
        act.layout().addWidget(w);
    };
    add_widget(w1, h1);
    add_widget(w2, h2);
    add_widget(w3, h3);

    auto body = [=](int tag) {
        return [=](MethodBuilder &b) {
            int rs = b.newReg();
            int rv = b.newReg();
            int rn = b.newReg();
            int rr = b.newReg();
            b.callStatic(rs, fac_cls, "open");
            b.constInt(rv, tag);
            b.putField(rs, fieldRef(sess_cls, "tag"), rv);
            b.newObject(rn, names::object);
            b.putField(rs, fieldRef(sess_cls, "payload"), rn);
            b.getField(rr, rs, fieldRef(sess_cls, "tag"));
        };
    };
    defineMethod(act.klass(), h1, {Type::object(names::view)},
                 Type::voidTy(), false, body(1));
    defineMethod(act.klass(), h2, {Type::object(names::view)},
                 Type::voidTy(), false, body(2));
    defineMethod(act.klass(), h3, {Type::object(names::view)},
                 Type::voidTy(), false, body(3));

    f.truth().add(sess_cls + ".tag", SeedClass::FpTrap,
                  "workSession: per-action sessions never alias");
    f.truth().add(sess_cls + ".payload", SeedClass::FpTrap,
                  "workSession: per-action sessions never alias");
}

// --------------------------------------------------------------------
// Pattern: ServiceConnection vs. lifecycle (bindService).
// onServiceConnected caches the binder in an activity field that
// onDestroy clears -- unordered, a true race (Table 1's
// onServiceConnected row).
// --------------------------------------------------------------------
void
addConnectionRace(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string conn_cls = "Conn$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string binder_field = "binder$" + std::to_string(n);

    air::Module &mod = f.app().module();
    Klass *conn = mod.addClass(conn_cls, names::object);
    conn->addInterface(names::serviceConnection);
    conn->addField({"act", Type::object(act_cls), false});
    storingCtor(conn, conn_cls, "act", Type::object(act_cls));
    defineMethod(conn, "onServiceConnected",
                 {Type::object(names::object)}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(conn_cls, "act"));
                     b.putField(ra, fieldRef(act_cls, binder_field),
                                b.paramReg(0));
                 });
    defineMethod(conn, "onServiceDisconnected",
                 {Type::object(names::object)}, Type::voidTy(), false,
                 [&](MethodBuilder &b) { (void)b; });

    act.addField(binder_field, Type::object(names::object));
    act.on("onCreate", [=](MethodBuilder &b) {
        int rc = b.newReg();
        int ri = b.newReg();
        b.newObject(rc, conn_cls);
        b.invoke(-1, InvokeKind::Special, {conn_cls, "<init>", 0},
                 {rc, b.thisReg()});
        b.newObject(ri, names::intent);
        b.call(b.thisReg(), act_cls, "bindService", {ri, rc});
    });
    act.on("onDestroy", [=](MethodBuilder &b) {
        int rn = b.newReg();
        b.constNull(rn);
        b.putField(b.thisReg(), fieldRef(act_cls, binder_field), rn);
    });

    f.truth().add(act_cls + "." + binder_field, SeedClass::TrueRace,
                  "connectionRace: onServiceConnected write vs "
                  "onDestroy null");
}

// --------------------------------------------------------------------
// Pattern: Executor pool task vs. GUI read (Table 1's Runnable row).
// --------------------------------------------------------------------
void
addExecutorRace(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string job_cls = "PoolJob$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string out_field = "poolOut$" + std::to_string(n);
    int wid = f.nextViewId();
    std::string show = "onPool$" + std::to_string(n);

    air::Module &mod = f.app().module();
    Klass *job = mod.addClass(job_cls, names::object);
    job->addInterface(names::runnable);
    job->addField({"act", Type::object(act_cls), false});
    storingCtor(job, job_cls, "act", Type::object(act_cls));
    defineMethod(job, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int rn = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(job_cls, "act"));
                     b.newObject(rn, names::object);
                     b.putField(ra, fieldRef(act_cls, out_field), rn);
                 });

    act.addField(out_field, Type::object(names::object));
    framework::Widget w;
    w.id = wid;
    w.name = "btnPool$" + std::to_string(n);
    w.widgetClass = names::button;
    w.xmlOnClick = show;
    act.layout().addWidget(w);

    act.on("onCreate", [=](MethodBuilder &b) {
        int rj = b.newReg();
        b.newObject(rj, job_cls);
        b.invoke(-1, InvokeKind::Special, {job_cls, "<init>", 0},
                 {rj, b.thisReg()});
        // Submit through the Executor interface (invoke-interface).
        int rexec = b.newReg();
        b.newObject(rexec, names::executor);
        b.invoke(-1, InvokeKind::Interface,
                 {names::executor, "execute", 0}, {rexec, rj});
    });
    defineMethod(act.klass(), show, {Type::object(names::view)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     int r = b.newReg();
                     b.getField(r, b.thisReg(),
                                fieldRef(act_cls, out_field));
                 });

    f.truth().add(act_cls + "." + out_field, SeedClass::TrueRace,
                  "executorRace: pool write vs gui read");
}

// --------------------------------------------------------------------
// Pattern: HandlerThread (custom background looper). Two GUI handlers
// post jobs touching shared state to the same background looper: the
// posts are unordered (true event race on the custom looper). Jobs
// posted in order from onCreate are FIFO-ordered (rule 4 negative).
// --------------------------------------------------------------------
void
addHandlerThreadRace(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string act_cls = act.name();
    std::string job_a = "BgJobA$" + std::to_string(n);
    std::string job_b = "BgJobB$" + std::to_string(n);
    std::string init1 = "BgInit1$" + std::to_string(n);
    std::string init2 = "BgInit2$" + std::to_string(n);
    std::string handler_field = "bgHandler$" + std::to_string(n);
    std::string shared_field = "bgShared$" + std::to_string(n);
    std::string cfg_field = "bgCfg$" + std::to_string(n);
    int w1 = f.nextViewId();
    int w2 = f.nextViewId();
    std::string h1 = "onBgA$" + std::to_string(n);
    std::string h2 = "onBgB$" + std::to_string(n);

    air::Module &mod = f.app().module();
    auto make_runnable = [&](const std::string &cls,
                             const std::string &field, bool write) {
        Klass *k = mod.addClass(cls, names::object);
        k->addInterface(names::runnable);
        k->addField({"act", Type::object(act_cls), false});
        storingCtor(k, cls, "act", Type::object(act_cls));
        defineMethod(k, "run", {}, Type::voidTy(), false,
                     [&](MethodBuilder &b) {
                         int ra = b.newReg();
                         b.getField(ra, b.thisReg(),
                                    fieldRef(cls, "act"));
                         if (write) {
                             int rn = b.newReg();
                             b.newObject(rn, names::object);
                             b.putField(ra, fieldRef(act_cls, field),
                                        rn);
                         } else {
                             int r = b.newReg();
                             b.getField(r, ra,
                                        fieldRef(act_cls, field));
                         }
                     });
    };
    make_runnable(job_a, shared_field, true);
    make_runnable(job_b, shared_field, true);
    make_runnable(init1, cfg_field, true);
    make_runnable(init2, cfg_field, false);

    act.addField(handler_field, Type::object(names::handler));
    act.addField(shared_field, Type::object(names::object));
    act.addField(cfg_field, Type::object(names::object));
    framework::Widget wa;
    wa.id = w1;
    wa.name = "btnBgA$" + std::to_string(n);
    wa.widgetClass = names::button;
    wa.xmlOnClick = h1;
    act.layout().addWidget(wa);
    framework::Widget wb;
    wb.id = w2;
    wb.name = "btnBgB$" + std::to_string(n);
    wb.widgetClass = names::button;
    wb.xmlOnClick = h2;
    act.layout().addWidget(wb);

    act.on("onCreate", [=](MethodBuilder &b) {
        int rt = b.newReg();
        int rs = b.newReg();
        int rl = b.newReg();
        int rh = b.newReg();
        b.newObject(rt, names::handlerThread);
        b.constStr(rs, "bg-worker");
        b.invoke(-1, InvokeKind::Special,
                 {names::handlerThread, "<init>", 0}, {rt, rs});
        b.call(rt, names::handlerThread, "start");
        b.callTo(rl, rt, names::handlerThread, "getLooper");
        b.newObject(rh, names::handler);
        b.invoke(-1, InvokeKind::Special,
                 {names::handler, "<init>", 0}, {rh, rl});
        b.putField(b.thisReg(), fieldRef(act_cls, handler_field), rh);
        // Ordered posts: init1 (write) then init2 (read) -- FIFO on
        // the background looper, so no race on the cfg field.
        int r1 = b.newReg();
        int r2 = b.newReg();
        b.newObject(r1, init1);
        b.invoke(-1, InvokeKind::Special, {init1, "<init>", 0},
                 {r1, b.thisReg()});
        b.newObject(r2, init2);
        b.invoke(-1, InvokeKind::Special, {init2, "<init>", 0},
                 {r2, b.thisReg()});
        b.call(rh, names::handler, "post", {r1});
        b.call(rh, names::handler, "post", {r2});
    });
    auto click_body = [=](const std::string &job_cls) {
        return [=](MethodBuilder &b) {
            int rh = b.newReg();
            int rj = b.newReg();
            b.getField(rh, b.thisReg(),
                       fieldRef(act_cls, handler_field));
            b.newObject(rj, job_cls);
            b.invoke(-1, InvokeKind::Special, {job_cls, "<init>", 0},
                     {rj, b.thisReg()});
            b.call(rh, names::handler, "post", {rj});
        };
    };
    defineMethod(act.klass(), h1, {Type::object(names::view)},
                 Type::voidTy(), false, click_body(job_a));
    defineMethod(act.klass(), h2, {Type::object(names::view)},
                 Type::voidTy(), false, click_body(job_b));

    f.truth().add(act_cls + "." + shared_field, SeedClass::TrueRace,
                  "handlerThreadRace: unordered posts on a custom "
                  "looper");
    f.truth().add(act_cls + "." + cfg_field, SeedClass::FpTrap,
                  "handlerThreadRace: FIFO-ordered posts (rule 4)");
}

// --------------------------------------------------------------------
// Pattern: background thread and GUI callback guarded by the same
// field monitor (false positive unless lock sets are on).
// --------------------------------------------------------------------
void
addLockGuarded(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string worker_cls = "Locker$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string lock_field = "lock$" + std::to_string(n);
    std::string shared_field = "guardedVal$" + std::to_string(n);
    int wid = f.nextViewId();
    std::string show = "onGuarded$" + std::to_string(n);

    air::Module &mod = f.app().module();

    // The worker writes the shared field under the activity's lock.
    Klass *worker = mod.addClass(worker_cls, names::thread);
    worker->addField({"act", Type::object(act_cls), false});
    storingCtor(worker, worker_cls, "act", Type::object(act_cls));
    defineMethod(worker, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int rl = b.newReg();
                     int rv = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(worker_cls, "act"));
                     b.getField(rl, ra, fieldRef(act_cls, lock_field));
                     b.monitorEnter(rl);
                     b.newObject(rv, names::object);
                     b.putField(ra, fieldRef(act_cls, shared_field),
                                rv);
                     b.monitorExit(rl);
                 });

    act.addField(lock_field, Type::object(names::object));
    act.addField(shared_field, Type::object(names::object));
    framework::Widget w;
    w.id = wid;
    w.name = "btnGuarded$" + std::to_string(n);
    w.widgetClass = names::button;
    w.xmlOnClick = show;
    act.layout().addWidget(w);

    act.on("onCreate", [=](MethodBuilder &b) {
        int rl = b.newReg();
        int rw = b.newReg();
        b.newObject(rl, names::object);
        b.putField(b.thisReg(), fieldRef(act_cls, lock_field), rl);
        b.newObject(rw, worker_cls);
        b.invoke(-1, InvokeKind::Special, {worker_cls, "<init>", 0},
                 {rw, b.thisReg()});
        b.call(rw, worker_cls, "start");
    });
    // The GUI read holds the same monitor: the pair has a common
    // must-held lock and one background side, so the lock-set stage
    // refutes it; symbolic execution alone cannot (no guards).
    defineMethod(act.klass(), show, {Type::object(names::view)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     int rl = b.newReg();
                     int rv = b.newReg();
                     b.getField(rl, b.thisReg(),
                                fieldRef(act_cls, lock_field));
                     b.monitorEnter(rl);
                     b.getField(rv, b.thisReg(),
                                fieldRef(act_cls, shared_field));
                     b.monitorExit(rl);
                 });

    f.truth().add(act_cls + "." + shared_field, SeedClass::FpTrap,
                  "lockGuarded: both sides hold the same field "
                  "monitor");
}

// --------------------------------------------------------------------
// Pattern: method-local scratch buffers (pruned by escape analysis).
// --------------------------------------------------------------------
void
addLocalScratch(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string scratch_cls = "Scratch$" + std::to_string(n);
    std::string worker_cls = "Cruncher$" + std::to_string(n);
    std::string act_cls = act.name();

    air::Module &mod = f.app().module();

    Klass *scratch = mod.addClass(scratch_cls, names::object);
    scratch->addField({"val", Type::intTy(), false});
    scratch->addField({"sum", Type::intTy(), false});
    emptyCtor(scratch);

    // A background thread that only touches a buffer it allocates
    // itself: the accesses never pair with another action, and the
    // escape stage drops them before the quadratic loop.
    Klass *worker = mod.addClass(worker_cls, names::thread);
    emptyCtor(worker);
    defineMethod(worker, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int rs = b.newReg();
                     int r1 = b.newReg();
                     int r2 = b.newReg();
                     b.newObject(rs, scratch_cls);
                     b.invoke(-1, InvokeKind::Special,
                              {scratch_cls, "<init>", 0}, {rs});
                     b.constInt(r1, 7);
                     b.putField(rs, fieldRef(scratch_cls, "val"), r1);
                     b.getField(r2, rs, fieldRef(scratch_cls, "val"));
                     b.putField(rs, fieldRef(scratch_cls, "sum"), r2);
                 });

    act.on("onCreate", [=](MethodBuilder &b) {
        // A second local scratch in the lifecycle action: same class,
        // different allocation site; neither object escapes.
        int rs = b.newReg();
        int r1 = b.newReg();
        int rw = b.newReg();
        b.newObject(rs, scratch_cls);
        b.invoke(-1, InvokeKind::Special, {scratch_cls, "<init>", 0},
                 {rs});
        b.constInt(r1, 1);
        b.putField(rs, fieldRef(scratch_cls, "val"), r1);
        b.newObject(rw, worker_cls);
        b.invoke(-1, InvokeKind::Special, {worker_cls, "<init>", 0},
                 {rw});
        b.call(rw, worker_cls, "start");
    });

    f.truth().add(scratch_cls + ".val", SeedClass::FpTrap,
                  "localScratch: thread-local buffers never pair");
}

// --------------------------------------------------------------------
// Pattern: computedGuard taken interprocedural. stop() clears the
// guard through a 9-deep chain of setter helpers (clear0 .. clear8),
// deeper than the executor's call-descend limit, so backward execution
// havocs the call and keeps the report. The IFDS stage's must-write
// summaries prove the chain stores the constant 0 into both fields,
// turning the havoc back into a strong update that conflicts with the
// guard constraint -- refutable only with interprocedural constants.
// --------------------------------------------------------------------
void
addInterprocGuard(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string timer_cls = "IPGuard$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string timer_field = "ipguard$" + std::to_string(n);

    air::Module &mod = f.app().module();

    Klass *timer = mod.addClass(timer_cls, names::object);
    timer->addInterface(names::runnable);
    timer->addField({"mOn", Type::intTy(), false});
    timer->addField({"mHits", Type::intTy(), false});
    timer->addField({"handler", Type::object(names::handler), false});
    emptyCtor(timer);
    defineMethod(timer, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     Label l_end = b.newLabel();
                     int r = b.newReg();
                     b.getField(r, b.thisReg(),
                                fieldRef(timer_cls, "mOn"));
                     b.ifz(r, CondKind::Eq, l_end);
                     int rt = b.newReg();
                     int rc = b.newReg();
                     int rt2 = b.newReg();
                     b.getField(rt, b.thisReg(),
                                fieldRef(timer_cls, "mHits"));
                     b.constInt(rc, 1);
                     b.binOp(rt2, air::BinOpKind::Add, rt, rc);
                     b.putField(b.thisReg(),
                                fieldRef(timer_cls, "mHits"), rt2);
                     b.bind(l_end);
                     b.retVoid();
                 });
    // clear0 .. clear7 forward their argument down the chain; clear8
    // stores it. Every link just rides `this`, so the chain's
    // must-write summary stays exclusive.
    for (int i = 0; i < 8; ++i) {
        std::string link = "clear" + std::to_string(i);
        std::string next = "clear" + std::to_string(i + 1);
        defineMethod(timer, link, {Type::intTy()}, Type::voidTy(),
                     false, [&](MethodBuilder &b) {
                         b.call(b.thisReg(), timer_cls, next,
                                {b.paramReg(0)});
                     });
    }
    defineMethod(timer, "clear8", {Type::intTy()}, Type::voidTy(),
                 false, [&](MethodBuilder &b) {
                     b.putField(b.thisReg(),
                                fieldRef(timer_cls, "mOn"),
                                b.paramReg(0));
                     b.putField(b.thisReg(),
                                fieldRef(timer_cls, "mHits"),
                                b.paramReg(0));
                 });
    defineMethod(timer, "stop", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     Label l_end = b.newLabel();
                     int r = b.newReg();
                     b.getField(r, b.thisReg(),
                                fieldRef(timer_cls, "mOn"));
                     b.ifz(r, CondKind::Eq, l_end);
                     int rz = b.newReg();
                     b.constInt(rz, 0);
                     b.call(b.thisReg(), timer_cls, "clear0", {rz});
                     b.bind(l_end);
                     b.retVoid();
                 });

    act.addField(timer_field, Type::object(timer_cls));

    act.on("onCreate", [=](MethodBuilder &b) {
        int rt = b.newReg();
        int rh = b.newReg();
        int r1 = b.newReg();
        b.newObject(rt, timer_cls);
        b.invoke(-1, InvokeKind::Special, {timer_cls, "<init>", 0},
                 {rt});
        b.newObject(rh, names::handler);
        b.invoke(-1, InvokeKind::Special,
                 {names::handler, "<init>", 0}, {rh});
        b.putField(rt, fieldRef(timer_cls, "handler"), rh);
        b.putField(b.thisReg(), fieldRef(act_cls, timer_field), rt);
        b.constInt(r1, 1);
        b.putField(rt, fieldRef(timer_cls, "mOn"), r1);
        b.getField(rh, rt, fieldRef(timer_cls, "handler"));
        b.call(rh, names::handler, "post", {rt});
    });
    act.on("onPause", [=](MethodBuilder &b) {
        int rt = b.newReg();
        b.getField(rt, b.thisReg(), fieldRef(act_cls, timer_field));
        b.call(rt, timer_cls, "stop");
    });

    f.truth().add(timer_cls + ".mOn", SeedClass::TrueRace,
                  "interprocGuard: guard variable race (benign)");
    f.truth().add(timer_cls + ".mHits", SeedClass::FpTrap,
                  "interprocGuard: guard cleared through a 9-deep "
                  "setter chain; refutable only with interprocedural "
                  "constants");
}

// --------------------------------------------------------------------
// Pattern: use-after-destroy. onDestroy nulls a view field (through a
// release helper, so the null rides a parameter) while a posted task
// still dereferences it -- unordered, so the posted read can follow
// the teardown. The IFDS use-after-destroy client reports it.
// --------------------------------------------------------------------
void
addUseAfterDestroy(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string render_cls = "Render$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string view_field = "view$" + std::to_string(n);
    std::string release = "release$" + std::to_string(n);

    air::Module &mod = f.app().module();

    Klass *render = mod.addClass(render_cls, names::object);
    render->addInterface(names::runnable);
    render->addField({"act", Type::object(act_cls), false});
    storingCtor(render, render_cls, "act", Type::object(act_cls));
    defineMethod(render, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int rv = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(render_cls, "act"));
                     b.getField(rv, ra,
                                fieldRef(act_cls, view_field));
                 });

    act.addField(view_field, Type::object(names::view));
    defineMethod(act.klass(), release, {Type::object(names::view)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     b.putField(b.thisReg(),
                                fieldRef(act_cls, view_field),
                                b.paramReg(0));
                 });

    act.on("onCreate", [=](MethodBuilder &b) {
        int rv = b.newReg();
        int rr = b.newReg();
        int rh = b.newReg();
        b.newObject(rv, names::view);
        b.putField(b.thisReg(), fieldRef(act_cls, view_field), rv);
        b.newObject(rr, render_cls);
        b.invoke(-1, InvokeKind::Special, {render_cls, "<init>", 0},
                 {rr, b.thisReg()});
        b.newObject(rh, names::handler);
        b.invoke(-1, InvokeKind::Special,
                 {names::handler, "<init>", 0}, {rh});
        b.call(rh, names::handler, "post", {rr});
    });
    act.on("onDestroy", [=](MethodBuilder &b) {
        int rn = b.newReg();
        b.constNull(rn);
        b.call(b.thisReg(), act_cls, release, {rn});
    });

    f.truth().add(act_cls + "." + view_field, SeedClass::TrueRace,
                  "useAfterDestroy: view nulled in onDestroy, read "
                  "from a posted task");
}

namespace {

/** A Thread subclass whose run() acquires two activity field monitors
 *  in the given order and writes a shared field under both. */
void
defineTwoLockWorker(air::Module &mod, const std::string &worker_cls,
                    const std::string &act_cls,
                    const std::string &first_lock,
                    const std::string &second_lock,
                    const std::string &shared_field)
{
    Klass *worker = mod.addClass(worker_cls, names::thread);
    worker->addField({"act", Type::object(act_cls), false});
    storingCtor(worker, worker_cls, "act", Type::object(act_cls));
    defineMethod(worker, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int r1 = b.newReg();
                     int r2 = b.newReg();
                     int rv = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(worker_cls, "act"));
                     b.getField(r1, ra, fieldRef(act_cls, first_lock));
                     b.getField(r2, ra, fieldRef(act_cls, second_lock));
                     b.monitorEnter(r1);
                     b.monitorEnter(r2);
                     b.newObject(rv, names::object);
                     b.putField(ra, fieldRef(act_cls, shared_field),
                                rv);
                     b.monitorExit(r2);
                     b.monitorExit(r1);
                 });
}

/** Common body of the two deadlock patterns: two field monitors, two
 *  background threads, acquisition orders as given. */
void
addTwoLockThreads(AppFactory &f, ActivityBuilder &act, bool opposite)
{
    int n = f.nextUnique();
    std::string w1_cls = "Transfer$" + std::to_string(n);
    std::string w2_cls = "Audit$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string lock_a = "lockA$" + std::to_string(n);
    std::string lock_b = "lockB$" + std::to_string(n);
    std::string shared = "balance$" + std::to_string(n);

    air::Module &mod = f.app().module();
    defineTwoLockWorker(mod, w1_cls, act_cls, lock_a, lock_b, shared);
    defineTwoLockWorker(mod, w2_cls, act_cls,
                        opposite ? lock_b : lock_a,
                        opposite ? lock_a : lock_b, shared);

    act.addField(lock_a, Type::object(names::object));
    act.addField(lock_b, Type::object(names::object));
    act.addField(shared, Type::object(names::object));
    act.on("onCreate", [=](MethodBuilder &b) {
        int rla = b.newReg();
        int rlb = b.newReg();
        b.newObject(rla, names::object);
        b.putField(b.thisReg(), fieldRef(act_cls, lock_a), rla);
        b.newObject(rlb, names::object);
        b.putField(b.thisReg(), fieldRef(act_cls, lock_b), rlb);
        for (const std::string &w : {w1_cls, w2_cls}) {
            int rw = b.newReg();
            b.newObject(rw, w);
            b.invoke(-1, InvokeKind::Special, {w, "<init>", 0},
                     {rw, b.thisReg()});
            b.call(rw, w, "start");
        }
    });

    // Both writers hold both monitors at the write, so the racy pair
    // on `shared` is lockset-refuted either way — the two patterns
    // differ only in the acquisition *order*, i.e. in the deadlock
    // verdict.
    f.truth().add(act_cls + "." + shared, SeedClass::FpTrap,
                  opposite ? "deadlockCycle: writes guarded by both "
                             "monitors (but acquired in opposite "
                             "orders)"
                           : "deadlockOrdered: writes guarded by both "
                             "monitors, consistent order");
    if (opposite)
        f.truth().addDeadlock();
}

} // namespace

// --------------------------------------------------------------------
// Pattern: UNDEAD-style cyclic lock acquisition (deadlock positive).
// --------------------------------------------------------------------
void
addDeadlockCycle(AppFactory &f, ActivityBuilder &act)
{
    addTwoLockThreads(f, act, /*opposite=*/true);
}

// --------------------------------------------------------------------
// Pattern: consistent lock order (deadlock negative control).
// --------------------------------------------------------------------
void
addDeadlockOrdered(AppFactory &f, ActivityBuilder &act)
{
    addTwoLockThreads(f, act, /*opposite=*/false);
}

// --------------------------------------------------------------------
// Pattern: cross-component race through an explicit startActivity.
// --------------------------------------------------------------------
void
addIccStartActivity(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string feed_cls = "Feed$" + std::to_string(n);
    std::string worker_cls = "Fetcher$" + std::to_string(n);
    // No '$' in the activity name: it must match the manifest entry
    // the Intent string names.
    std::string target_cls = "IccDetail" + std::to_string(n);
    std::string act_cls = act.name();

    air::Module &mod = f.app().module();

    Klass *feed = mod.addClass(feed_cls, names::object);
    feed->addField({"article", Type::object(names::object), true});

    Klass *worker = mod.addClass(worker_cls, names::thread);
    emptyCtor(worker);
    defineMethod(worker, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int rv = b.newReg();
                     b.newObject(rv, names::object);
                     b.putStatic(fieldRef(feed_cls, "article"), rv);
                 });

    // The target component: its onCreate reads what the sender's
    // worker writes. In the target's *own* harness no writer runs, and
    // without ICC the sender's harness never drives this onCreate — so
    // the race is reachable only through the ICC edge.
    ActivityBuilder &target = f.addActivity(target_cls);
    target.on("onCreate", [=](MethodBuilder &b) {
        int r = b.newReg();
        b.getStatic(r, fieldRef(feed_cls, "article"));
    });

    act.on("onCreate", [=](MethodBuilder &b) {
        int rw = b.newReg();
        b.newObject(rw, worker_cls);
        b.invoke(-1, InvokeKind::Special, {worker_cls, "<init>", 0},
                 {rw});
        b.call(rw, worker_cls, "start");
        int rs = b.newReg();
        int ri = b.newReg();
        b.constStr(rs, target_cls);
        b.newObject(ri, names::intent);
        b.invoke(-1, InvokeKind::Special, {names::intent, "<init>", 0},
                 {ri, rs});
        b.call(b.thisReg(), act_cls, "startActivity", {ri});
    });

    f.truth().add(feed_cls + ".article", SeedClass::TrueRace,
                  "iccStartActivity: worker write vs launched "
                  "activity's onCreate read",
                  /*requires_icc=*/true);
}

// --------------------------------------------------------------------
// Pattern: cross-component race through a field-stored PendingIntent.
// --------------------------------------------------------------------
void
addIccPendingIntent(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string box_cls = "AlarmBox$" + std::to_string(n);
    std::string worker_cls = "Refresher$" + std::to_string(n);
    std::string target_cls = "IccAlert" + std::to_string(n);
    std::string act_cls = act.name();
    std::string pending_field = "alarm$" + std::to_string(n);
    int wid = f.nextViewId();
    std::string fire = "onFire$" + std::to_string(n);

    air::Module &mod = f.app().module();

    Klass *box = mod.addClass(box_cls, names::object);
    box->addField({"payload", Type::object(names::object), true});

    Klass *worker = mod.addClass(worker_cls, names::thread);
    emptyCtor(worker);
    defineMethod(worker, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int rv = b.newReg();
                     b.newObject(rv, names::object);
                     b.putStatic(fieldRef(box_cls, "payload"), rv);
                 });

    ActivityBuilder &target = f.addActivity(target_cls);
    target.on("onCreate", [=](MethodBuilder &b) {
        int r = b.newReg();
        b.getStatic(r, fieldRef(box_cls, "payload"));
    });

    act.addField(pending_field, Type::object(names::pendingIntent));
    framework::Widget w;
    w.id = wid;
    w.name = "btnFire$" + std::to_string(n);
    w.widgetClass = names::button;
    w.xmlOnClick = fire;
    act.layout().addWidget(w);

    // onCreate wraps the explicit Intent in a PendingIntent and parks
    // it in a field; the GUI handler fires it later — RAICC's
    // "atypical ICC", resolved via the field-stored target pass.
    act.on("onCreate", [=](MethodBuilder &b) {
        int rw = b.newReg();
        b.newObject(rw, worker_cls);
        b.invoke(-1, InvokeKind::Special, {worker_cls, "<init>", 0},
                 {rw});
        b.call(rw, worker_cls, "start");
        int rs = b.newReg();
        int ri = b.newReg();
        int rp = b.newReg();
        b.constStr(rs, target_cls);
        b.newObject(ri, names::intent);
        b.invoke(-1, InvokeKind::Special, {names::intent, "<init>", 0},
                 {ri, rs});
        b.callStatic(rp, names::pendingIntent, "getActivity", {ri});
        b.putField(b.thisReg(), fieldRef(act_cls, pending_field), rp);
    });
    defineMethod(act.klass(), fire, {Type::object(names::view)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     int rp = b.newReg();
                     b.getField(rp, b.thisReg(),
                                fieldRef(act_cls, pending_field));
                     b.call(rp, names::pendingIntent, "send");
                 });

    f.truth().add(box_cls + ".payload", SeedClass::TrueRace,
                  "iccPendingIntent: worker write vs PendingIntent "
                  "target's onCreate read",
                  /*requires_icc=*/true);
}

// --------------------------------------------------------------------
// Pattern: registration window (enablement-stage positive + negative).
//
// A receiver registered in onCreate and unregistered in onPause writes
// two activity fields from onReceive: one also written by a click
// listener (a true race — the click can interleave with deliveries
// inside the registration window), one read only by onDestroy (a false
// positive — onPause must-unregisters before onDestroy can run, so no
// delivery can overlap the epilogue read).
// --------------------------------------------------------------------
void
addRegisteredWindow(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    int view_id = f.nextViewId();
    std::string recv_cls = "Win$" + std::to_string(n);
    std::string click_cls = "WinClick$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string recv_field = "winRecv$" + std::to_string(n);
    std::string state_field = "winState$" + std::to_string(n);
    std::string buf_field = "winBuf$" + std::to_string(n);

    air::Module &mod = f.app().module();

    Klass *recv = mod.addClass(recv_cls, names::receiver);
    recv->addField({"act", Type::object(act_cls), false});
    storingCtor(recv, recv_cls, "act", Type::object(act_cls));
    defineMethod(recv, "onReceive",
                 {Type::object(names::object),
                  Type::object(names::intent)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int r1 = b.newReg();
                     int r2 = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(recv_cls, "act"));
                     b.constInt(r1, 1);
                     b.putField(ra, fieldRef(act_cls, state_field), r1);
                     b.constInt(r2, 7);
                     b.putField(ra, fieldRef(act_cls, buf_field), r2);
                 });

    Klass *click = mod.addClass(click_cls, names::object);
    click->addInterface(names::onClickListener);
    click->addField({"act", Type::object(act_cls), false});
    storingCtor(click, click_cls, "act", Type::object(act_cls));
    defineMethod(click, "onClick", {Type::object(names::view)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int r2 = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(click_cls, "act"));
                     b.constInt(r2, 2);
                     b.putField(ra, fieldRef(act_cls, state_field), r2);
                 });

    act.addField(recv_field, Type::object(recv_cls));
    act.addField(state_field, Type::intTy());
    act.addField(buf_field, Type::intTy());
    framework::Widget w;
    w.id = view_id;
    w.name = "btnWin$" + std::to_string(n);
    w.widgetClass = names::button;
    act.layout().addWidget(w);

    act.on("onCreate", [=](MethodBuilder &b) {
        int rid = b.newReg();
        int rv = b.newReg();
        int rcl = b.newReg();
        int rr = b.newReg();
        int rs = b.newReg();
        b.constInt(rid, view_id);
        b.callTo(rv, b.thisReg(), act_cls, "findViewById", {rid});
        b.newObject(rcl, click_cls);
        b.invoke(-1, InvokeKind::Special, {click_cls, "<init>", 0},
                 {rcl, b.thisReg()});
        b.call(rv, names::view, "setOnClickListener", {rcl});
        b.newObject(rr, recv_cls);
        b.invoke(-1, InvokeKind::Special, {recv_cls, "<init>", 0},
                 {rr, b.thisReg()});
        b.putField(b.thisReg(), fieldRef(act_cls, recv_field), rr);
        b.constStr(rs, "org.sierra.WIN_UPDATE");
        b.call(b.thisReg(), act_cls, "registerReceiver", {rr, rs});
    });
    act.on("onPause", [=](MethodBuilder &b) {
        int rr = b.newReg();
        b.getField(rr, b.thisReg(), fieldRef(act_cls, recv_field));
        b.call(b.thisReg(), act_cls, "unregisterReceiver", {rr});
    });
    act.on("onDestroy", [=](MethodBuilder &b) {
        int rb = b.newReg();
        b.getField(rb, b.thisReg(), fieldRef(act_cls, buf_field));
    });

    f.truth().add(act_cls + "." + state_field, SeedClass::TrueRace,
                  "registeredWindow: onReceive vs onClick inside the "
                  "registration window");
    f.truth().add(act_cls + "." + buf_field, SeedClass::FpTrap,
                  "registeredWindow: onPause must-unregisters before "
                  "onDestroy reads");
}

// --------------------------------------------------------------------
// Pattern: symmetric unregistration (enablement-stage negative).
//
// The receiverDbRace motif with the teardown moved from onDestroy to
// onPause: every onDestroy read of the receiver-written field is then
// ordered after a must-unregister, so the report is a false positive
// exactly of the kind the enablement stage refutes.
// --------------------------------------------------------------------
void
addUnregisteredFpTrap(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string recv_cls = "Gate$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string recv_field = "gateRecv$" + std::to_string(n);
    std::string val_field = "gateVal$" + std::to_string(n);

    air::Module &mod = f.app().module();

    Klass *recv = mod.addClass(recv_cls, names::receiver);
    recv->addField({"act", Type::object(act_cls), false});
    storingCtor(recv, recv_cls, "act", Type::object(act_cls));
    defineMethod(recv, "onReceive",
                 {Type::object(names::object),
                  Type::object(names::intent)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int r1 = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(recv_cls, "act"));
                     b.constInt(r1, 1);
                     b.putField(ra, fieldRef(act_cls, val_field), r1);
                 });

    act.addField(recv_field, Type::object(recv_cls));
    act.addField(val_field, Type::intTy());

    act.on("onCreate", [=](MethodBuilder &b) {
        int rr = b.newReg();
        int rs = b.newReg();
        b.newObject(rr, recv_cls);
        b.invoke(-1, InvokeKind::Special, {recv_cls, "<init>", 0},
                 {rr, b.thisReg()});
        b.putField(b.thisReg(), fieldRef(act_cls, recv_field), rr);
        b.constStr(rs, "org.sierra.GATE_OPEN");
        b.call(b.thisReg(), act_cls, "registerReceiver", {rr, rs});
    });
    act.on("onPause", [=](MethodBuilder &b) {
        int rr = b.newReg();
        b.getField(rr, b.thisReg(), fieldRef(act_cls, recv_field));
        b.call(b.thisReg(), act_cls, "unregisterReceiver", {rr});
    });
    act.on("onDestroy", [=](MethodBuilder &b) {
        int rv = b.newReg();
        b.getField(rv, b.thisReg(), fieldRef(act_cls, val_field));
    });

    f.truth().add(act_cls + "." + val_field, SeedClass::FpTrap,
                  "unregisteredFpTrap: onPause must-unregisters before "
                  "onDestroy reads");
}

// --------------------------------------------------------------------
// Pattern: removed callback (enablement-stage negative, Handler side).
//
// A runnable posted in onCreate is removed via removeCallbacks in
// onPause; its write can therefore never overlap the onDestroy read —
// the Handler.removeCallbacks purge drops pending posts, and the
// epilogue orders onPause before onDestroy.
// --------------------------------------------------------------------
void
addRemovedCallback(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string job_cls = "Job$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string handler_field = "jobHandler$" + std::to_string(n);
    std::string job_field = "job$" + std::to_string(n);
    std::string ticks_field = "jobTicks$" + std::to_string(n);

    air::Module &mod = f.app().module();

    Klass *job = mod.addClass(job_cls, names::object);
    job->addInterface(names::runnable);
    job->addField({"act", Type::object(act_cls), false});
    storingCtor(job, job_cls, "act", Type::object(act_cls));
    defineMethod(job, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int r1 = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(job_cls, "act"));
                     b.constInt(r1, 1);
                     b.putField(ra, fieldRef(act_cls, ticks_field), r1);
                 });

    act.addField(handler_field, Type::object(names::handler));
    act.addField(job_field, Type::object(job_cls));
    act.addField(ticks_field, Type::intTy());

    act.on("onCreate", [=](MethodBuilder &b) {
        int rh = b.newReg();
        int rj = b.newReg();
        b.newObject(rh, names::handler);
        b.invoke(-1, InvokeKind::Special,
                 {names::handler, "<init>", 0}, {rh});
        b.putField(b.thisReg(), fieldRef(act_cls, handler_field), rh);
        b.newObject(rj, job_cls);
        b.invoke(-1, InvokeKind::Special, {job_cls, "<init>", 0},
                 {rj, b.thisReg()});
        b.putField(b.thisReg(), fieldRef(act_cls, job_field), rj);
        b.call(rh, names::handler, "post", {rj});
    });
    act.on("onPause", [=](MethodBuilder &b) {
        int rh = b.newReg();
        int rj = b.newReg();
        b.getField(rh, b.thisReg(), fieldRef(act_cls, handler_field));
        b.getField(rj, b.thisReg(), fieldRef(act_cls, job_field));
        b.call(rh, names::handler, "removeCallbacks", {rj});
    });
    act.on("onDestroy", [=](MethodBuilder &b) {
        int rv = b.newReg();
        b.getField(rv, b.thisReg(), fieldRef(act_cls, ticks_field));
    });

    f.truth().add(act_cls + "." + ticks_field, SeedClass::FpTrap,
                  "removedCallback: onPause removeCallbacks before "
                  "onDestroy reads");
}

// --------------------------------------------------------------------
// Pattern: harmful null race (nullflow HARMFUL). The racing write is
// the field's ONLY store -- the activity never initializes it -- so a
// GUI read that loses the race observes the absent-initialization null
// and the dereference crashes.
// --------------------------------------------------------------------
void
addNullSourceCrash(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string worker_cls = "Loader$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string payload_field = "payload$" + std::to_string(n);
    int wid = f.nextViewId();
    std::string open = "onOpen$" + std::to_string(n);

    air::Module &mod = f.app().module();

    Klass *worker = mod.addClass(worker_cls, names::thread);
    worker->addField({"act", Type::object(act_cls), false});
    storingCtor(worker, worker_cls, "act", Type::object(act_cls));
    defineMethod(worker, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int rn = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(worker_cls, "act"));
                     b.newObject(rn, names::object);
                     b.putField(ra, fieldRef(act_cls, payload_field),
                                rn);
                 });

    act.addField(payload_field, Type::object(names::object));
    framework::Widget w;
    w.id = wid;
    w.name = "btnOpen$" + std::to_string(n);
    w.widgetClass = names::button;
    w.xmlOnClick = open;
    act.layout().addWidget(w);

    // Unlike threadRace, onCreate deliberately does NOT null-init the
    // field: the worker's store is its sole write anywhere, so the
    // null the losing read observes is the absent initialization.
    act.on("onCreate", [=](MethodBuilder &b) {
        int rw = b.newReg();
        b.newObject(rw, worker_cls);
        b.invoke(-1, InvokeKind::Special, {worker_cls, "<init>", 0},
                 {rw, b.thisReg()});
        b.call(rw, worker_cls, "start");
    });
    defineMethod(act.klass(), open, {Type::object(names::view)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     int r1 = b.newReg();
                     b.getField(r1, b.thisReg(),
                                fieldRef(act_cls, payload_field));
                 });

    f.truth().add(act_cls + "." + payload_field, SeedClass::TrueRace,
                  "nullSourceCrash: sole non-null write races the "
                  "unguarded GUI read",
                  /*requires_icc=*/false, /*harmful=*/true);
}

// --------------------------------------------------------------------
// Pattern: guarded null race (nullflow GUARDED). Same write/read race
// as nullSourceCrash -- it must still be reported -- but every use of
// the field in the GUI handler sits behind a null check on the field
// itself, so losing the race cannot dereference null.
// --------------------------------------------------------------------
void
addGuardedNullRead(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string worker_cls = "Primer$" + std::to_string(n);
    std::string act_cls = act.name();
    std::string session_field = "session$" + std::to_string(n);
    int wid = f.nextViewId();
    std::string use = "onUse$" + std::to_string(n);

    air::Module &mod = f.app().module();

    Klass *worker = mod.addClass(worker_cls, names::thread);
    worker->addField({"act", Type::object(act_cls), false});
    storingCtor(worker, worker_cls, "act", Type::object(act_cls));
    defineMethod(worker, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int ra = b.newReg();
                     int rn = b.newReg();
                     b.getField(ra, b.thisReg(),
                                fieldRef(worker_cls, "act"));
                     b.newObject(rn, names::object);
                     b.putField(ra, fieldRef(act_cls, session_field),
                                rn);
                 });

    act.addField(session_field, Type::object(names::object));
    framework::Widget w;
    w.id = wid;
    w.name = "btnUse$" + std::to_string(n);
    w.widgetClass = names::button;
    w.xmlOnClick = use;
    act.layout().addWidget(w);

    act.on("onCreate", [=](MethodBuilder &b) {
        int rn = b.newReg();
        int rw = b.newReg();
        b.constNull(rn);
        b.putField(b.thisReg(), fieldRef(act_cls, session_field), rn);
        b.newObject(rw, worker_cls);
        b.invoke(-1, InvokeKind::Special, {worker_cls, "<init>", 0},
                 {rw, b.thisReg()});
        b.call(rw, worker_cls, "start");
    });
    // The guard tests the racy field itself (not a separate flag), so
    // symbolic refutation cannot order the accesses away: the race
    // survives and nullflow alone downgrades it to GUARDED.
    defineMethod(act.klass(), use, {Type::object(names::view)},
                 Type::voidTy(), false, [&](MethodBuilder &b) {
                     Label l_end = b.newLabel();
                     int r1 = b.newReg();
                     b.getField(r1, b.thisReg(),
                                fieldRef(act_cls, session_field));
                     b.ifz(r1, CondKind::Eq, l_end);
                     int r2 = b.newReg();
                     b.getField(r2, b.thisReg(),
                                fieldRef(act_cls, session_field));
                     b.bind(l_end);
                     b.retVoid();
                 });

    f.truth().add(act_cls + "." + session_field, SeedClass::TrueRace,
                  "guardedNullRead: racy but null-guarded GUI read "
                  "(benign severity)");
}

// --------------------------------------------------------------------
// Pattern: cross-component harmful null race (nullflow HARMFUL via
// ICC). iccStartActivity's shape with a reference-typed static whose
// only write is the sender's worker: the launched activity's onCreate
// read crashes when it wins the race.
// --------------------------------------------------------------------
void
addIccNullCrash(AppFactory &f, ActivityBuilder &act)
{
    int n = f.nextUnique();
    std::string cache_cls = "Cache$" + std::to_string(n);
    std::string worker_cls = "Warmer$" + std::to_string(n);
    // No '$' in the activity name: it must match the manifest entry
    // the Intent string names.
    std::string target_cls = "IccNullDetail" + std::to_string(n);
    std::string act_cls = act.name();

    air::Module &mod = f.app().module();

    Klass *cache = mod.addClass(cache_cls, names::object);
    cache->addField({"entry", Type::object(names::object), true});

    Klass *worker = mod.addClass(worker_cls, names::thread);
    emptyCtor(worker);
    defineMethod(worker, "run", {}, Type::voidTy(), false,
                 [&](MethodBuilder &b) {
                     int rv = b.newReg();
                     b.newObject(rv, names::object);
                     b.putStatic(fieldRef(cache_cls, "entry"), rv);
                 });

    // The target dereferences the cache entry with no null check; the
    // worker's store is the field's only write, so the ICC-ordered
    // read is null whenever the worker loses the race.
    ActivityBuilder &target = f.addActivity(target_cls);
    target.on("onCreate", [=](MethodBuilder &b) {
        int r = b.newReg();
        b.getStatic(r, fieldRef(cache_cls, "entry"));
    });

    act.on("onCreate", [=](MethodBuilder &b) {
        int rw = b.newReg();
        b.newObject(rw, worker_cls);
        b.invoke(-1, InvokeKind::Special, {worker_cls, "<init>", 0},
                 {rw});
        b.call(rw, worker_cls, "start");
        int rs = b.newReg();
        int ri = b.newReg();
        b.constStr(rs, target_cls);
        b.newObject(ri, names::intent);
        b.invoke(-1, InvokeKind::Special, {names::intent, "<init>", 0},
                 {ri, rs});
        b.call(b.thisReg(), act_cls, "startActivity", {ri});
    });

    f.truth().add(cache_cls + ".entry", SeedClass::TrueRace,
                  "iccNullCrash: sole non-null worker write vs "
                  "launched activity's unguarded onCreate read",
                  /*requires_icc=*/true, /*harmful=*/true);
}

const std::vector<PatternEntry> &
patternCatalog()
{
    static const std::vector<PatternEntry> catalog = {
        {"asyncNewsRace", &addAsyncNewsRace, 3, 0},
        {"receiverDbRace", &addReceiverDbRace, 3, 0},
        {"guardedTimer", &addGuardedTimer, 1, 1},
        {"computedGuard", &addComputedGuard, 1, 1},
        {"messageGuard", &addMessageGuard, 1, 1},
        {"orderedPosts", &addOrderedPosts, 0, 1},
        {"threadRace", &addThreadRace, 2, 0},
        {"actionAliasTrap", &addActionAliasTrap, 0, 1},
        {"serviceStaticRace", &addServiceStaticRace, 1, 0},
        {"lifecycleSafe", &addLifecycleSafe, 0, 1},
        {"guiFlowSafe", &addGuiFlowSafe, 0, 1},
        {"implicitDepTrap", &addImplicitDepTrap, 0, 1},
        {"connectionRace", &addConnectionRace, 1, 0},
        {"handlerThreadRace", &addHandlerThreadRace, 1, 1},
        {"executorRace", &addExecutorRace, 1, 0},
        {"arrayIndexTrap", &addArrayIndexTrap, 0, 1},
        {"workSession", &addWorkSession, 0, 2},
        {"lockGuarded", &addLockGuarded, 0, 1},
        {"localScratch", &addLocalScratch, 0, 1},
        {"interprocGuard", &addInterprocGuard, 1, 1},
        {"useAfterDestroy", &addUseAfterDestroy, 1, 0},
        {"deadlockCycle", &addDeadlockCycle, 0, 1, 1},
        {"deadlockOrdered", &addDeadlockOrdered, 0, 1, 0},
        {"iccStartActivity", &addIccStartActivity, 1, 0, 0},
        {"iccPendingIntent", &addIccPendingIntent, 1, 0, 0},
        // Entries past the frozen 21-entry random pool (see
        // randomPatternPool): reachable only via named-app signatures.
        {"registeredWindow", &addRegisteredWindow, 1, 1, 0},
        {"unregisteredFpTrap", &addUnregisteredFpTrap, 0, 1, 0},
        {"removedCallback", &addRemovedCallback, 0, 1, 0},
        {"nullSourceCrash", &addNullSourceCrash, 1, 0, 0},
        {"guardedNullRead", &addGuardedNullRead, 1, 0, 0},
        {"iccNullCrash", &addIccNullCrash, 1, 0, 0},
    };
    return catalog;
}

const std::vector<PatternEntry> &
randomPatternPool()
{
    // The first 21 entries, frozen at the size the random corpus was
    // generated with. Appending to patternCatalog() must not change
    // rng() % pool.size() for existing apps.
    static const std::vector<PatternEntry> pool = [] {
        const auto &catalog = patternCatalog();
        return std::vector<PatternEntry>(catalog.begin(),
                                         catalog.begin() + 21);
    }();
    return pool;
}

} // namespace sierra::corpus
