/**
 * @file
 * Dense bitset over small non-negative integer ids (ObjId, NodeId,
 * interned FieldId), the memory substrate of the hot analyses.
 *
 * ObjBitset replaces std::set<int> wherever the id space is dense:
 * points-to sets, escape closures, effect summaries, reader indexes.
 * Two words (128 ids) live inline; larger sets spill into an Arena
 * when one is attached, or the heap otherwise. Iteration is ascending,
 * exactly like std::set<int>, so swapping containers never perturbs
 * any order-sensitive traversal — the load-bearing property behind the
 * byte-identical-report contract.
 *
 * Every mutation bumps a monotone version counter. Versions never
 * decrease, so a sum of versions across a set of inputs changes iff at
 * least one input changed — the signature trick the points-to engine
 * uses for delta propagation (skip re-executing an instruction whose
 * inputs are unchanged since its last visit).
 */

#ifndef SIERRA_UTIL_BITSET_HH
#define SIERRA_UTIL_BITSET_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iterator>

#include "arena.hh"

namespace sierra::util {

class ObjBitset
{
  public:
    static constexpr uint32_t kInlineWords = 2; //!< 128 ids inline

    ObjBitset() = default;
    explicit ObjBitset(Arena *arena) : _arena(arena) {}

    ObjBitset(const ObjBitset &o) { copyFrom(o); }
    ObjBitset &
    operator=(const ObjBitset &o)
    {
        if (this != &o) {
            freeExt();
            copyFrom(o);
        }
        return *this;
    }
    ObjBitset(ObjBitset &&o) noexcept { moveFrom(o); }
    ObjBitset &
    operator=(ObjBitset &&o) noexcept
    {
        if (this != &o) {
            freeExt();
            moveFrom(o);
        }
        return *this;
    }
    ~ObjBitset() { freeExt(); }

    /** Attach an arena for spill storage (before first spill). */
    void
    setArena(Arena *arena)
    {
        if (_ext == nullptr)
            _arena = arena;
    }

    /** Insert; returns true when the bit was newly set. */
    bool
    insert(int id)
    {
        uint32_t w = static_cast<uint32_t>(id) >> 6;
        uint64_t bit = uint64_t(1) << (id & 63);
        if (w >= _nwords)
            ensureWords(w + 1);
        uint64_t *ws = words();
        if (ws[w] & bit)
            return false;
        ws[w] |= bit;
        ++_version;
        return true;
    }

    /** Remove; returns true when the bit was set. */
    bool
    erase(int id)
    {
        uint32_t w = static_cast<uint32_t>(id) >> 6;
        if (w >= _nwords)
            return false;
        uint64_t bit = uint64_t(1) << (id & 63);
        uint64_t *ws = words();
        if (!(ws[w] & bit))
            return false;
        ws[w] &= ~bit;
        ++_version;
        return true;
    }

    bool
    test(int id) const
    {
        uint32_t w = static_cast<uint32_t>(id) >> 6;
        if (id < 0 || w >= _nwords)
            return false;
        return (words()[w] >> (id & 63)) & 1;
    }

    /** std::set-compatible membership count (0 or 1). */
    size_t count(int id) const { return test(id) ? 1 : 0; }

    /** Union in `o`; returns true when any bit was added. */
    bool
    unionWith(const ObjBitset &o)
    {
        uint32_t need = o.topWord();
        if (need == 0)
            return false;
        if (need > _nwords)
            ensureWords(need);
        uint64_t *dst = words();
        const uint64_t *src = o.words();
        uint64_t changed = 0;
        for (uint32_t i = 0; i < need; ++i) {
            uint64_t before = dst[i];
            uint64_t after = before | src[i];
            changed |= before ^ after;
            dst[i] = after;
        }
        if (changed)
            ++_version;
        return changed != 0;
    }

    /** Do the two sets share any element? Pure word-AND scan. */
    bool
    intersects(const ObjBitset &o) const
    {
        uint32_t n = _nwords < o._nwords ? _nwords : o._nwords;
        const uint64_t *a = words();
        const uint64_t *b = o.words();
        for (uint32_t i = 0; i < n; ++i) {
            if (a[i] & b[i])
                return true;
        }
        return false;
    }

    bool
    empty() const
    {
        const uint64_t *ws = words();
        for (uint32_t i = 0; i < _nwords; ++i) {
            if (ws[i])
                return false;
        }
        return true;
    }

    /** Population count (std::set::size equivalent). */
    size_t
    size() const
    {
        size_t n = 0;
        const uint64_t *ws = words();
        for (uint32_t i = 0; i < _nwords; ++i)
            n += static_cast<size_t>(std::popcount(ws[i]));
        return n;
    }

    void
    clear()
    {
        uint64_t *ws = words();
        bool any = false;
        for (uint32_t i = 0; i < _nwords; ++i) {
            any = any || ws[i];
            ws[i] = 0;
        }
        if (any)
            ++_version;
    }

    /** Monotone mutation counter (never decreases). */
    uint32_t version() const { return _version; }

    bool
    operator==(const ObjBitset &o) const
    {
        uint32_t n = _nwords > o._nwords ? _nwords : o._nwords;
        for (uint32_t i = 0; i < n; ++i) {
            uint64_t a = i < _nwords ? words()[i] : 0;
            uint64_t b = i < o._nwords ? o.words()[i] : 0;
            if (a != b)
                return false;
        }
        return true;
    }

    /** Ascending-order iteration, matching std::set<int>. */
    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = int;
        using difference_type = std::ptrdiff_t;
        using pointer = const int *;
        using reference = int;

        const_iterator(const ObjBitset *s, uint32_t word, uint64_t bits)
            : _set(s), _word(word), _bits(bits)
        {
            advance();
        }

        int
        operator*() const
        {
            return static_cast<int>(_word * 64 +
                                    std::countr_zero(_bits));
        }
        const_iterator &
        operator++()
        {
            _bits &= _bits - 1; // clear lowest set bit
            advance();
            return *this;
        }
        bool
        operator!=(const const_iterator &o) const
        {
            return _word != o._word || _bits != o._bits;
        }
        bool
        operator==(const const_iterator &o) const
        {
            return !(*this != o);
        }

      private:
        void
        advance()
        {
            while (_bits == 0 && _word + 1 < _set->_nwords)
                _bits = _set->words()[++_word];
            if (_bits == 0)
                _word = _set->_nwords; // end sentinel
        }

        const ObjBitset *_set;
        uint32_t _word;
        uint64_t _bits;
    };

    const_iterator
    begin() const
    {
        if (_nwords == 0)
            return end();
        return const_iterator(this, 0, words()[0]);
    }
    const_iterator
    end() const
    {
        return const_iterator(this, _nwords, 0);
    }

  private:
    const uint64_t *words() const { return _ext ? _ext : _inline; }
    uint64_t *words() { return _ext ? _ext : _inline; }

    /** Highest word index with any bit set, as a count. */
    uint32_t
    topWord() const
    {
        const uint64_t *ws = words();
        uint32_t n = _nwords;
        while (n > 0 && ws[n - 1] == 0)
            --n;
        return n;
    }

    void
    ensureWords(uint32_t need)
    {
        if (need <= _nwords)
            return;
        if (need <= kInlineWords) {
            for (uint32_t i = _nwords; i < kInlineWords; ++i)
                _inline[i] = 0;
            _nwords = kInlineWords;
            return;
        }
        uint32_t cap = _nwords * 2 > need ? _nwords * 2 : need;
        if (cap < kInlineWords * 2)
            cap = kInlineWords * 2;
        uint64_t *mem = _arena ? _arena->allocArray<uint64_t>(cap)
                               : new uint64_t[cap];
        std::memcpy(mem, words(), _nwords * sizeof(uint64_t));
        std::memset(mem + _nwords, 0,
                    (cap - _nwords) * sizeof(uint64_t));
        freeExt();
        _ext = mem;
        _nwords = cap;
    }

    void
    copyFrom(const ObjBitset &o)
    {
        _arena = o._arena;
        _version = o._version;
        uint32_t top = o.topWord();
        if (top <= kInlineWords) {
            _ext = nullptr;
            _nwords = top;
            std::memcpy(_inline, o.words(), top * sizeof(uint64_t));
        } else {
            _ext = _arena ? _arena->allocArray<uint64_t>(top)
                          : new uint64_t[top];
            _nwords = top;
            std::memcpy(_ext, o.words(), top * sizeof(uint64_t));
        }
    }

    void
    moveFrom(ObjBitset &o) noexcept
    {
        _arena = o._arena;
        _version = o._version;
        _nwords = o._nwords;
        _ext = o._ext;
        if (_ext == nullptr)
            std::memcpy(_inline, o._inline,
                        (_nwords < kInlineWords ? _nwords : kInlineWords) *
                            sizeof(uint64_t));
        o._ext = nullptr;
        o._nwords = 0;
    }

    void
    freeExt()
    {
        // Arena-backed spill is abandoned; the arena frees slabs.
        if (_ext != nullptr && _arena == nullptr)
            delete[] _ext;
        _ext = nullptr;
    }

    uint64_t _inline[kInlineWords] = {};
    uint64_t *_ext{nullptr};
    uint32_t _nwords{0};
    uint32_t _version{0};
    Arena *_arena{nullptr};
};

} // namespace sierra::util

#endif // SIERRA_UTIL_BITSET_HH
