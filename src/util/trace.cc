#include "trace.hh"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <vector>

namespace sierra::util::trace {

namespace detail {
std::atomic<bool> g_collecting{false};
} // namespace detail

namespace {

struct Event {
    char phase;       //!< 'B', 'E', or 'i'
    int tid;          //!< stable per-thread track id
    int64_t tsNs;     //!< nanoseconds since session start
    const char *cat;  //!< category (string literal, stored by pointer)
    std::string name;
    std::string args; //!< complete JSON object, or empty
};

struct Session {
    std::mutex mutex;
    std::vector<Event> events;
    //! tid -> track name; process-lifetime so pool workers named
    //! before start() keep their names across sessions
    std::map<int, std::string> threadNames;
    std::chrono::steady_clock::time_point epoch;
};

Session &
session()
{
    static Session s;
    return s;
}

/** Stable per-thread track id, assigned on first use. The main thread
 *  usually claims 0 but nothing relies on that. */
int
tidOf()
{
    static std::atomic<int> next{0};
    thread_local int tid = next.fetch_add(1);
    return tid;
}

/** Append one event. Timestamps are taken under the session lock so
 *  the epoch written by start() is properly synchronized. */
void
record(char phase, const char *cat, std::string name,
       std::string args)
{
    Session &s = session();
    int tid = tidOf();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!detail::g_collecting.load(std::memory_order_relaxed))
        return; // stopped between the caller's check and here
    int64_t ts = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - s.epoch)
                     .count();
    s.events.push_back(
        {phase, tid, ts, cat, std::move(name), std::move(args)});
}

std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void
start()
{
    Session &s = session();
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        s.events.clear();
        s.epoch = std::chrono::steady_clock::now();
        int tid = tidOf();
        if (!s.threadNames.count(tid))
            s.threadNames[tid] = "main";
        detail::g_collecting.store(true, std::memory_order_relaxed);
    }
}

void
stop()
{
    Session &s = session();
    std::lock_guard<std::mutex> lock(s.mutex);
    detail::g_collecting.store(false, std::memory_order_relaxed);
}

void
clear()
{
    Session &s = session();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.events.clear();
}

size_t
eventCount()
{
    Session &s = session();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.events.size();
}

void
beginSpan(const char *cat, std::string name, std::string args)
{
    if (!enabled())
        return;
    record('B', cat, std::move(name), std::move(args));
}

void
endSpan(const char *cat, std::string name)
{
    record('E', cat, std::move(name), "");
}

void
instant(const char *cat, std::string name, std::string args)
{
    if (!enabled())
        return;
    record('i', cat, std::move(name), std::move(args));
}

void
setThreadName(const std::string &name)
{
    Session &s = session();
    int tid = tidOf();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.threadNames[tid] = name;
}

std::string
arg(const std::string &key, const std::string &value)
{
    return "{\"" + jsonEscape(key) + "\":\"" + jsonEscape(value) +
           "\"}";
}

std::string
toJson()
{
    Session &s = session();
    std::lock_guard<std::mutex> lock(s.mutex);

    std::string out = "{\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const std::string &event) {
        if (!first)
            out += ",\n";
        else
            out += "\n";
        first = false;
        out += event;
    };

    // Metadata first: name the tracks that actually carry events.
    std::map<int, bool> seen;
    for (const Event &e : s.events)
        seen[e.tid] = true;
    for (const auto &[tid, name] : s.threadNames) {
        if (!seen.count(tid))
            continue;
        emit("{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(tid) +
             ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
             jsonEscape(name) + "\"}}");
    }

    char ts[64];
    for (const Event &e : s.events) {
        std::snprintf(ts, sizeof(ts), "%.3f",
                      static_cast<double>(e.tsNs) / 1e3);
        std::string ev = "{\"ph\":\"";
        ev += e.phase;
        ev += "\",\"pid\":0,\"tid\":" + std::to_string(e.tid) +
              ",\"ts\":" + ts + ",\"cat\":\"" + jsonEscape(e.cat) +
              "\",\"name\":\"" + jsonEscape(e.name) + "\"";
        if (e.phase == 'i')
            ev += ",\"s\":\"t\"";
        if (!e.args.empty())
            ev += ",\"args\":" + e.args;
        ev += "}";
        emit(ev);
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

bool
writeJson(const std::string &path)
{
    stop();
    std::ofstream file(path);
    if (!file)
        return false;
    file << toJson();
    return static_cast<bool>(file);
}

} // namespace sierra::util::trace
