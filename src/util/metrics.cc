#include "metrics.hh"

#include <cstdio>
#include <ctime>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace sierra::util::metrics {

double
threadCpuSeconds()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    struct timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return 0.0;
}

int64_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
        return static_cast<int64_t>(ru.ru_maxrss); // already bytes
#else
        return static_cast<int64_t>(ru.ru_maxrss) * 1024; // KiB
#endif
    }
#endif
    return 0;
}

void
Registry::add(const std::string &name, int64_t delta)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _counters[name] += delta;
}

void
Registry::observe(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(_mutex);
    HistogramSnapshot &h = _histograms[name];
    if (h.count == 0 || value < h.min)
        h.min = value;
    if (h.count == 0 || value > h.max)
        h.max = value;
    ++h.count;
    h.sum += value;
    size_t bucket = kNumBuckets - 1;
    for (size_t i = 0; i < kNumBuckets - 1; ++i) {
        if (value <= kBucketBounds[i]) {
            bucket = i;
            break;
        }
    }
    ++h.buckets[bucket];
}

int64_t
Registry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _counters.find(name);
    return it == _counters.end() ? 0 : it->second;
}

HistogramSnapshot
Registry::histogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _histograms.find(name);
    return it == _histograms.end() ? HistogramSnapshot{} : it->second;
}

std::vector<std::pair<std::string, int64_t>>
Registry::counters() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return {_counters.begin(), _counters.end()};
}

std::vector<std::pair<std::string, HistogramSnapshot>>
Registry::histograms() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return {_histograms.begin(), _histograms.end()};
}

void
Registry::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _counters.clear();
    _histograms.clear();
}

std::string
Registry::toJson() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::ostringstream os;
    os << "{\"counters\": {";
    bool first = true;
    for (const auto &[name, value] : _counters) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << name << "\": " << value;
    }
    os << "}, \"histograms\": {";
    first = true;
    char buf[64];
    auto num = [&](double v) {
        std::snprintf(buf, sizeof(buf), "%.9g", v);
        return std::string(buf);
    };
    for (const auto &[name, h] : _histograms) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << name << "\": {\"count\": " << h.count
           << ", \"sum\": " << num(h.sum) << ", \"min\": " << num(h.min)
           << ", \"max\": " << num(h.max)
           << ", \"mean\": " << num(h.mean()) << "}";
    }
    os << "}}";
    return os.str();
}

std::string
Registry::toText() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::ostringstream os;
    os << "metrics:\n";
    for (const auto &[name, value] : _counters)
        os << "  " << name << ": " << value << "\n";
    char buf[160];
    for (const auto &[name, h] : _histograms) {
        std::snprintf(buf, sizeof(buf),
                      "  %s: count %lld  sum %.6fs  mean %.6fs  "
                      "min %.6fs  max %.6fs\n",
                      name.c_str(), static_cast<long long>(h.count),
                      h.sum, h.mean(), h.min, h.max);
        os << buf;
    }
    return os.str();
}

} // namespace sierra::util::metrics
