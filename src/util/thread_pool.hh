/**
 * @file
 * A fixed-size thread pool with a bounded work queue, plus the
 * `parallelFor`/`parallelMap` helpers the analysis stages build on.
 *
 * Job-count policy (used by every parallel stage): an explicit request
 * wins; otherwise the `SIERRA_JOBS` environment variable; otherwise
 * `std::thread::hardware_concurrency()`. `parallelFor(1, ...)` runs
 * inline on the calling thread, so a jobs=1 run never spawns threads
 * and is the bit-exact reference for the determinism tests.
 */

#ifndef SIERRA_UTIL_THREAD_POOL_HH
#define SIERRA_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sierra::util {

/**
 * Resolve a requested job count to the number of workers to use.
 *
 * @param requested  > 0: use as-is. <= 0: consult `SIERRA_JOBS`, then
 *                   `hardware_concurrency()`. Never returns less than 1.
 */
int resolveJobs(int requested = 0);

/**
 * Fixed-size worker pool. Tasks are queued FIFO; `submit` blocks when
 * the queue is full (backpressure instead of unbounded growth). The
 * destructor drains the queue and joins.
 */
class ThreadPool
{
  public:
    explicit ThreadPool(int workers, size_t queue_capacity = 1024);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; blocks while the queue is at capacity. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished executing. */
    void wait();

    int workers() const { return static_cast<int>(_threads.size()); }

  private:
    void workerLoop(int index);

    std::mutex _mutex;
    std::condition_variable _notEmpty; //!< workers wait for tasks
    std::condition_variable _notFull;  //!< submitters wait for room
    std::condition_variable _idle;     //!< wait() waits for quiescence
    std::deque<std::function<void()>> _queue;
    size_t _capacity;
    int _inFlight{0}; //!< queued + currently executing tasks
    bool _stopping{false};
    std::vector<std::thread> _threads;
};

/**
 * Run `fn(i)` for every i in [0, n), distributing iterations across
 * `jobs` workers (work-stealing via a shared atomic index, so uneven
 * iterations balance). With jobs <= 1 (or n <= 1) everything runs
 * inline on the calling thread in index order.
 *
 * The first exception thrown by any iteration is rethrown on the
 * calling thread after all workers stop picking up new iterations.
 */
void parallelFor(int jobs, int n, const std::function<void(int)> &fn);

/** parallelFor that collects `fn(i)` into a vector, in index order. */
template <typename T, typename Fn>
std::vector<T>
parallelMap(int jobs, int n, Fn fn)
{
    std::vector<T> out(static_cast<size_t>(n < 0 ? 0 : n));
    parallelFor(jobs, n, [&](int i) { out[i] = fn(i); });
    return out;
}

} // namespace sierra::util

#endif // SIERRA_UTIL_THREAD_POOL_HH
