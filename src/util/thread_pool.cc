#include "thread_pool.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "trace.hh"

namespace sierra::util {

int
resolveJobs(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("SIERRA_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end && *end == '\0' && v > 0)
            return static_cast<int>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int workers, size_t queue_capacity)
    : _capacity(queue_capacity > 0 ? queue_capacity : 1)
{
    if (workers < 1)
        workers = 1;
    _threads.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i)
        _threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _notEmpty.notify_all();
    _notFull.notify_all();
    for (std::thread &t : _threads)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _notFull.wait(lock, [this] {
            return _queue.size() < _capacity || _stopping;
        });
        if (_stopping)
            return;
        _queue.push_back(std::move(task));
        ++_inFlight;
    }
    _notEmpty.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _idle.wait(lock, [this] { return _inFlight == 0; });
}

void
ThreadPool::workerLoop(int index)
{
    // Name this thread's trace track; names persist per thread, so the
    // cost is one registration even across many trace sessions.
    trace::setThreadName("pool-worker-" + std::to_string(index));
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _notEmpty.wait(lock, [this] {
                return !_queue.empty() || _stopping;
            });
            if (_queue.empty())
                return; // stopping and drained
            task = std::move(_queue.front());
            _queue.pop_front();
        }
        _notFull.notify_one();
        task();
        {
            std::unique_lock<std::mutex> lock(_mutex);
            if (--_inFlight == 0)
                _idle.notify_all();
        }
    }
}

void
parallelFor(int jobs, int n, const std::function<void(int)> &fn)
{
    if (n <= 0)
        return;
    if (jobs > n)
        jobs = n;
    if (jobs <= 1) {
        for (int i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<int> next{0};
    std::exception_ptr first_error;
    std::once_flag error_once;

    auto drain = [&] {
        // One span per participating worker ("worker" category: the
        // number of these varies with the jobs count by design).
        SIERRA_TRACE_SPAN(span, "worker", "parallel_for.drain",
                          std::string());
        for (;;) {
            int i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::call_once(error_once, [&] {
                    first_error = std::current_exception();
                });
                // Stop handing out iterations; in-flight ones finish.
                next.store(n, std::memory_order_relaxed);
                return;
            }
        }
    };

    {
        // The calling thread is worker zero; only jobs-1 threads spawn.
        ThreadPool pool(jobs - 1);
        for (int w = 1; w < jobs; ++w)
            pool.submit(drain);
        drain();
        pool.wait();
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace sierra::util
