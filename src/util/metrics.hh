/**
 * @file
 * A thread-safe metrics registry: named monotonic counters plus
 * duration histograms, filled by the pipeline when the caller opts in
 * (`SierraOptions::metrics`, `sierra_cli analyze --metrics`). The
 * metric name catalog — every name, its unit, and the stage that owns
 * it — lives in docs/OBSERVABILITY.md; tests assert the counters stay
 * consistent with the report fields they mirror.
 *
 * The registry itself is mutex-protected and meant for merge-point
 * granularity (per harness, per stage); hot loops accumulate plain
 * struct counters (PtaStats, RacyStats, ExecutorStats) that are folded
 * in deterministically afterwards, so enabling metrics never perturbs
 * the parallel engine or its jobs-determinism.
 */

#ifndef SIERRA_UTIL_METRICS_HH
#define SIERRA_UTIL_METRICS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sierra::util::metrics {

/** Seconds of CPU time consumed by the calling thread (not wall
 *  time): the primitive behind per-worker CPU attribution in
 *  StageTimes. Falls back to 0 on platforms without a thread clock. */
double threadCpuSeconds();

/** Peak resident set size of this process in bytes (getrusage), the
 *  primitive behind the `mem.peak_rss_bytes` counter. Returns 0 on
 *  platforms without getrusage. */
int64_t peakRssBytes();

/** Decimal duration-bucket boundaries (seconds): 1us .. 10s. An
 *  observation lands in the first bucket whose boundary it does not
 *  exceed; larger values land in the overflow bucket. */
inline constexpr double kBucketBounds[] = {1e-6, 1e-5, 1e-4, 1e-3,
                                           1e-2, 1e-1, 1.0,  10.0};
inline constexpr size_t kNumBuckets =
    sizeof(kBucketBounds) / sizeof(kBucketBounds[0]) + 1;

/** Point-in-time view of one histogram. */
struct HistogramSnapshot {
    int64_t count{0};
    double sum{0};
    double min{0};
    double max{0};
    int64_t buckets[kNumBuckets] = {};

    double mean() const { return count ? sum / count : 0.0; }
};

/**
 * Named counters and histograms. All methods are thread-safe; reads
 * return snapshots. Counter reads of never-written names return 0, so
 * report code never has to guard lookups.
 */
class Registry
{
  public:
    /** Add `delta` to a monotonic counter (creates it at 0). */
    void add(const std::string &name, int64_t delta = 1);

    /** Record one observation (seconds for `*.seconds` metrics). */
    void observe(const std::string &name, double value);

    int64_t counter(const std::string &name) const;
    HistogramSnapshot histogram(const std::string &name) const;

    /** All counters, name-sorted. */
    std::vector<std::pair<std::string, int64_t>> counters() const;
    /** All histograms, name-sorted. */
    std::vector<std::pair<std::string, HistogramSnapshot>>
    histograms() const;

    void clear();

    /**
     * `{"counters": {...}, "histograms": {name: {count, sum, min,
     * max, mean}}}` — the object embedded under `"metrics"` in the
     * CLI's `--json` report.
     */
    std::string toJson() const;

    /** Human-readable block for the text report (name-sorted). */
    std::string toText() const;

  private:
    mutable std::mutex _mutex;
    std::map<std::string, int64_t> _counters;
    std::map<std::string, HistogramSnapshot> _histograms;
};

} // namespace sierra::util::metrics

#endif // SIERRA_UTIL_METRICS_HH
