/**
 * @file
 * Bump-pointer arena allocation for analysis-lifetime objects.
 *
 * An Arena hands out aligned chunks from large slabs and frees them all
 * at once when it is destroyed: per-app analysis state (AIR instruction
 * storage, constraint-graph edges, spilled bitset words) tears down in
 * O(slabs) frees instead of one `free` per node. Allocations are never
 * returned individually — growth simply abandons the old block inside
 * the arena, which is the usual bump-pointer trade-off and is bounded
 * by the geometric growth of the containers built on top.
 *
 * ArenaVector<T> is the typed container built on the arena: a minimal
 * std::vector replacement whose backing store comes from an Arena (or
 * from the heap when constructed without one, so value types stay
 * usable in tests and in long-lived structures that outlive any arena).
 * Element destructors still run — T may own heap memory (std::string
 * members of air::Instruction) — but the backing store itself is never
 * individually freed when arena-backed.
 */

#ifndef SIERRA_UTIL_ARENA_HH
#define SIERRA_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace sierra::util {

/** A bump-pointer slab allocator. Not thread-safe: each arena belongs
 *  to one analysis (one harness, one engine), which is single-threaded
 *  by the determinism contract. */
class Arena
{
  public:
    static constexpr size_t kDefaultSlabBytes = 64 * 1024;

    explicit Arena(size_t slabBytes = kDefaultSlabBytes)
        : _slabBytes(slabBytes)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Allocate `bytes` with `align` alignment (power of two). */
    void *
    allocate(size_t bytes, size_t align = alignof(std::max_align_t))
    {
        uintptr_t cur = reinterpret_cast<uintptr_t>(_cur);
        uintptr_t aligned = (cur + (align - 1)) & ~uintptr_t(align - 1);
        if (aligned + bytes > reinterpret_cast<uintptr_t>(_end)) {
            newSlab(bytes + align);
            cur = reinterpret_cast<uintptr_t>(_cur);
            aligned = (cur + (align - 1)) & ~uintptr_t(align - 1);
        }
        _cur = reinterpret_cast<char *>(aligned + bytes);
        _bytesAllocated += bytes;
        return reinterpret_cast<void *>(aligned);
    }

    /** Typed array allocation; memory only, no constructors run. */
    template <typename T>
    T *
    allocArray(size_t n)
    {
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /** Total bytes handed out (not slab capacity): the figure behind
     *  the `arena.bytes_allocated` metric. */
    size_t bytesAllocated() const { return _bytesAllocated; }

    /** Number of slabs owned (the teardown cost is O(this)). */
    size_t numSlabs() const { return _slabs.size(); }

  private:
    void
    newSlab(size_t atLeast)
    {
        size_t size = _slabBytes;
        // Grow slabs geometrically so huge arenas stay O(log n) slabs.
        if (!_slabs.empty())
            size = _slabs.back().size * 2;
        if (size < atLeast)
            size = atLeast;
        _slabs.push_back({std::make_unique<char[]>(size), size});
        _cur = _slabs.back().mem.get();
        _end = _cur + size;
    }

    struct Slab {
        std::unique_ptr<char[]> mem;
        size_t size;
    };
    std::vector<Slab> _slabs;
    char *_cur{nullptr};
    char *_end{nullptr};
    size_t _slabBytes;
    size_t _bytesAllocated{0};
};

/**
 * A minimal vector whose backing store comes from an Arena when one is
 * attached, or from the heap otherwise. Move-only (the arena-backed
 * buffer cannot be copied without knowing which arena to copy into);
 * use assign() for explicit copies.
 */
template <typename T>
class ArenaVector
{
  public:
    ArenaVector() = default;
    explicit ArenaVector(Arena *arena) : _arena(arena) {}

    ArenaVector(ArenaVector &&o) noexcept
        : _data(o._data), _size(o._size), _cap(o._cap), _arena(o._arena)
    {
        o._data = nullptr;
        o._size = o._cap = 0;
    }
    ArenaVector &
    operator=(ArenaVector &&o) noexcept
    {
        if (this != &o) {
            destroyAll();
            _data = o._data;
            _size = o._size;
            _cap = o._cap;
            _arena = o._arena;
            o._data = nullptr;
            o._size = o._cap = 0;
        }
        return *this;
    }
    ArenaVector(const ArenaVector &) = delete;
    ArenaVector &operator=(const ArenaVector &) = delete;

    ~ArenaVector() { destroyAll(); }

    /** Late arena attachment (only valid before the first insert). */
    void
    setArena(Arena *arena)
    {
        if (_data == nullptr)
            _arena = arena;
    }

    void
    push_back(const T &v)
    {
        emplace_back(v);
    }
    void
    push_back(T &&v)
    {
        emplace_back(std::move(v));
    }
    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        if (_size == _cap)
            grow();
        T *slot = _data + _size;
        ::new (static_cast<void *>(slot)) T(std::forward<Args>(args)...);
        ++_size;
        return *slot;
    }

    void
    pop_back()
    {
        --_size;
        _data[_size].~T();
    }

    void
    clear()
    {
        for (size_t i = 0; i < _size; ++i)
            _data[i].~T();
        _size = 0;
    }

    template <typename It>
    void
    assign(It first, It last)
    {
        clear();
        for (; first != last; ++first)
            emplace_back(*first);
    }

    T &operator[](size_t i) { return _data[i]; }
    const T &operator[](size_t i) const { return _data[i]; }
    T &front() { return _data[0]; }
    const T &front() const { return _data[0]; }
    T &back() { return _data[_size - 1]; }
    const T &back() const { return _data[_size - 1]; }

    T *begin() { return _data; }
    T *end() { return _data + _size; }
    const T *begin() const { return _data; }
    const T *end() const { return _data + _size; }

    size_t size() const { return _size; }
    bool empty() const { return _size == 0; }

  private:
    void
    grow()
    {
        size_t newCap = _cap ? _cap * 2 : 8;
        T *mem;
        if (_arena)
            mem = _arena->allocArray<T>(newCap);
        else
            mem = static_cast<T *>(
                ::operator new(newCap * sizeof(T), std::align_val_t(alignof(T))));
        for (size_t i = 0; i < _size; ++i) {
            ::new (static_cast<void *>(mem + i)) T(std::move(_data[i]));
            _data[i].~T();
        }
        freeBuffer();
        _data = mem;
        _cap = newCap;
    }

    void
    destroyAll()
    {
        for (size_t i = 0; i < _size; ++i)
            _data[i].~T();
        freeBuffer();
        _data = nullptr;
        _size = _cap = 0;
    }

    void
    freeBuffer()
    {
        // Arena-backed buffers are abandoned in place; the arena frees
        // the slabs wholesale.
        if (_data != nullptr && _arena == nullptr)
            ::operator delete(_data, std::align_val_t(alignof(T)));
    }

    T *_data{nullptr};
    size_t _size{0};
    size_t _cap{0};
    Arena *_arena{nullptr};
};

} // namespace sierra::util

#endif // SIERRA_UTIL_ARENA_HH
