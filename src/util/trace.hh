/**
 * @file
 * Low-overhead structured tracing in Chrome trace-event JSON format
 * (the `chrome://tracing` / Perfetto "JSON Array" dialect; see
 * docs/OBSERVABILITY.md for the schema and the metric/span catalog).
 *
 * One process-global session collects events from every thread:
 * duration spans (`B`/`E` pairs, RAII via `Span`), instant events
 * (`i`), and `thread_name` metadata so per-worker tracks render with
 * readable names. Threads get stable, monotonically assigned track
 * ids on first use.
 *
 * Overhead contract: with no session running, every instrumentation
 * point costs exactly one relaxed atomic load and a branch
 * (`enabled()`); argument strings are never built (the macros guard
 * their evaluation). With a session running, events append to a
 * mutex-protected buffer — acceptable at stage/pair granularity, not
 * meant for per-instruction events. Compiling with
 * `-DSIERRA_TRACE_DISABLED` (CMake: `-DSIERRA_DISABLE_TRACING=ON`)
 * removes the macro call sites entirely.
 */

#ifndef SIERRA_UTIL_TRACE_HH
#define SIERRA_UTIL_TRACE_HH

#include <atomic>
#include <string>

namespace sierra::util::trace {

namespace detail {
extern std::atomic<bool> g_collecting;
} // namespace detail

/** Is a trace session collecting right now? One relaxed atomic load —
 *  the entire hot-path cost when tracing is off. */
inline bool
enabled()
{
    return detail::g_collecting.load(std::memory_order_relaxed);
}

/** Start collecting (clears any previously collected events). The
 *  calling thread is named "main" unless it already has a name. */
void start();

/** Stop collecting. Events already recorded stay available to
 *  toJson()/writeJson(). Must be called with no Span still open, or
 *  the B/E pairing of the open spans will be truncated. */
void stop();

/** Drop all collected events (does not change the enabled state). */
void clear();

/** Number of events collected so far (metadata excluded). */
size_t eventCount();

/**
 * Serialize the collected events as a Chrome trace-event JSON object:
 * `{"traceEvents": [...], "displayTimeUnit": "ms"}`. Timestamps are
 * microseconds since start(). Callable while collecting (snapshots
 * under the session lock) or after stop().
 */
std::string toJson();

/** stop() + serialize + write to `path`. False on I/O failure. */
bool writeJson(const std::string &path);

/**
 * Record a duration-begin event. `cat` must be a string literal (it
 * is stored by pointer); `name` and `args` are copied. `args`, when
 * non-empty, must be a complete JSON object, e.g. from arg().
 */
void beginSpan(const char *cat, std::string name,
               std::string args = "");

/** Record the matching duration-end event. */
void endSpan(const char *cat, std::string name);

/** Record an instant event (scope: thread). */
void instant(const char *cat, std::string name,
             std::string args = "");

/**
 * Name the calling thread's track. Names are remembered per thread
 * for the whole process (cheap: one lock per call), so pool workers
 * created before start() still render with names.
 */
void setThreadName(const std::string &name);

/** One-pair JSON object fragment: `{"key":"value"}` (escaped). */
std::string arg(const std::string &key, const std::string &value);

/** RAII duration span. Emits B at construction when a session is
 *  collecting, and the matching E at destruction. */
class Span
{
  public:
    Span(const char *cat, std::string name, std::string args = "")
    {
        if (enabled()) {
            _cat = cat;
            _name = std::move(name);
            beginSpan(_cat, _name, std::move(args));
            _armed = true;
        }
    }
    ~Span()
    {
        if (_armed)
            endSpan(_cat, _name);
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *_cat{nullptr};
    std::string _name;
    bool _armed{false};
};

} // namespace sierra::util::trace

/*
 * Instrumentation macros. `args` is evaluated only when a session is
 * collecting, so building argument strings costs nothing when tracing
 * is off. With SIERRA_TRACE_DISABLED the call sites vanish.
 */
#ifndef SIERRA_TRACE_DISABLED
#define SIERRA_TRACE_SPAN(var, cat, name, args)                        \
    ::sierra::util::trace::Span var(                                   \
        cat, name,                                                     \
        ::sierra::util::trace::enabled() ? (args) : std::string())
#define SIERRA_TRACE_INSTANT(cat, name, args)                          \
    do {                                                               \
        if (::sierra::util::trace::enabled())                          \
            ::sierra::util::trace::instant(cat, name, args);           \
    } while (0)
#else
#define SIERRA_TRACE_SPAN(var, cat, name, args)                        \
    do {                                                               \
    } while (0)
#define SIERRA_TRACE_INSTANT(cat, name, args)                          \
    do {                                                               \
    } while (0)
#endif

#endif // SIERRA_UTIL_TRACE_HH
