/**
 * @file
 * Deterministic string interning: dense u32 ids for field keys, method
 * names, static keys, and action labels.
 *
 * Ids are assigned in first-intern order, so an interner populated by a
 * deterministic serial phase (the points-to solver, access extraction)
 * yields the same id for the same string on every run and at every
 * --jobs count. After the serial phases the owner calls freeze(): the
 * primary table becomes read-only — lock-free for the parallel
 * refutation stage — and any genuinely novel string interned late goes
 * to a mutex-protected overflow table. Overflow ids may vary run to
 * run, which is why order-sensitive consumers (report dedup keys,
 * symbolic cache keys) always round-trip through name() rather than
 * comparing raw ids across interners.
 */

#ifndef SIERRA_UTIL_INTERN_HH
#define SIERRA_UTIL_INTERN_HH

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace sierra::util {

/** Dense id for an interned string. */
using InternId = uint32_t;

class StringInterner
{
  public:
    static constexpr InternId kInvalid = 0xffffffffu;

    StringInterner() = default;
    StringInterner(const StringInterner &) = delete;
    StringInterner &operator=(const StringInterner &) = delete;

    /** Id for `s`, interning it on first sight. Pre-freeze this must
     *  only be called from one thread; post-freeze it is thread-safe
     *  (primary lookups are lock-free, misses take the overflow
     *  mutex). */
    InternId
    intern(std::string_view s)
    {
        auto it = _primary.find(s);
        if (it != _primary.end())
            return it->second;
        if (!_frozen) {
            _names.emplace_back(s);
            InternId id = static_cast<InternId>(_names.size() - 1);
            _primary.emplace(_names.back(), id);
            return id;
        }
        std::lock_guard<std::mutex> lock(_overflowMutex);
        auto oit = _overflow.find(s);
        if (oit != _overflow.end())
            return oit->second;
        _overflowNames.emplace_back(s);
        InternId id = static_cast<InternId>(_frozenSize +
                                            _overflowNames.size() - 1);
        _overflow.emplace(_overflowNames.back(), id);
        return id;
    }

    /** Id for `s` if already interned, else kInvalid. Thread-safe
     *  post-freeze. */
    InternId
    find(std::string_view s) const
    {
        auto it = _primary.find(s);
        if (it != _primary.end())
            return it->second;
        if (!_frozen)
            return kInvalid;
        std::lock_guard<std::mutex> lock(_overflowMutex);
        auto oit = _overflow.find(s);
        return oit != _overflow.end() ? oit->second : kInvalid;
    }

    /** The string behind an id. The reference is stable for the
     *  interner's lifetime (deque storage never reallocates
     *  elements). */
    const std::string &
    name(InternId id) const
    {
        if (!_frozen || id < _frozenSize)
            return _names[id];
        std::lock_guard<std::mutex> lock(_overflowMutex);
        return _overflowNames[id - _frozenSize];
    }

    /** Number of interned strings (including overflow). */
    size_t
    size() const
    {
        if (!_frozen)
            return _names.size();
        std::lock_guard<std::mutex> lock(_overflowMutex);
        return _frozenSize + _overflowNames.size();
    }

    /** End the single-threaded population phase: primary table becomes
     *  read-only; later interns go to the overflow table. */
    void
    freeze()
    {
        _frozenSize = _names.size();
        _frozen = true;
    }

    bool frozen() const { return _frozen; }

  private:
    // Keys are views into the deques, whose elements never move.
    std::unordered_map<std::string_view, InternId> _primary;
    std::deque<std::string> _names;
    bool _frozen{false};
    size_t _frozenSize{0};

    mutable std::mutex _overflowMutex;
    std::unordered_map<std::string_view, InternId> _overflow;
    std::deque<std::string> _overflowNames;
};

} // namespace sierra::util

#endif // SIERRA_UTIL_INTERN_HH
