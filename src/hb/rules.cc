#include "rules.hh"

#include <array>
#include <map>
#include <set>
#include <unordered_map>

#include "air/logging.hh"
#include "analysis/cfg.hh"
#include "analysis/dominators.hh"
#include "util/trace.hh"

namespace sierra::hb {

using analysis::Action;
using analysis::ActionKind;
using analysis::Cfg;
using analysis::DominatorTree;
using analysis::EntryEventSite;
using analysis::NodeId;
using analysis::PointsToResult;
using analysis::SiteId;
using analysis::SpawnEdge;

class HbBuilder::Impl
{
  public:
    Impl(const PointsToResult &r, const analysis::EntryPlan &plan,
         const framework::App &app, HbOptions options)
        : _r(r), _plan(plan), _app(app), _opts(options)
    {
    }

    std::unique_ptr<Shbg> build();

  private:
    const DominatorTree &domOf(const air::Method *m);

    void ruleInvocation(Shbg &g);
    void ruleAsyncChains(Shbg &g);
    void ruleHarnessDominance(Shbg &g);
    void ruleGuiModel(Shbg &g);
    void ruleIntraProcDom(Shbg &g);
    void ruleInterProcDom(Shbg &g);
    void ruleInterActionTrans(Shbg &g);

    /** Same-looper test for the post-order rules. */
    bool
    sameLooper(int a, int b) const
    {
        analysis::ObjId la = _r.looperOfAction(a);
        analysis::ObjId lb = _r.looperOfAction(b);
        return la >= 0 && la == lb;
    }

    /** Removal-reachability: can e2 execute when e1's program point is
     *  removed from action `act`'s ICFG? */
    bool reachableWithout(int act, NodeId n1, int e1, NodeId n2, int e2);

    const PointsToResult &_r;
    const analysis::EntryPlan &_plan;
    const framework::App &_app;
    HbOptions _opts;

    std::unordered_map<const air::Method *, std::unique_ptr<Cfg>> _cfgs;
    std::unordered_map<const air::Method *,
                       std::unique_ptr<DominatorTree>>
        _doms;
    //! SiteId of a harness event site -> its description
    std::unordered_map<SiteId, const EntryEventSite *> _harnessSites;
    //! action -> harness event site it was spawned at (if any)
    std::unordered_map<int, const EntryEventSite *> _actionSite;
};

const DominatorTree &
HbBuilder::Impl::domOf(const air::Method *m)
{
    auto it = _doms.find(m);
    if (it != _doms.end())
        return *it->second;
    auto cfg = std::make_unique<Cfg>(*m);
    auto dom = std::make_unique<DominatorTree>(*cfg);
    const DominatorTree &ref = *dom;
    _cfgs.emplace(m, std::move(cfg));
    _doms.emplace(m, std::move(dom));
    return ref;
}

std::unique_ptr<Shbg>
HbBuilder::Impl::build()
{
    SIERRA_TRACE_SPAN(span, "hb", "shbg.build", std::string());
    auto g = std::make_unique<Shbg>(_r.actions.size());

    // Index the harness event sites by interned SiteId, and map actions
    // spawned in the harness to their site descriptions. Sites were
    // interned during the pointer analysis; unvisited ones are absent.
    for (const auto &ev : _plan.eventSites) {
        SiteId s = _r.sites.find(ev.method, ev.instrIdx);
        if (s != analysis::kNoSite)
            _harnessSites[s] = &ev;
    }
    for (const Action &a : _r.actions.all()) {
        auto it = _harnessSites.find(a.creationSite);
        if (it != _harnessSites.end() && a.creator == _r.rootAction)
            _actionSite[a.id] = it->second;
    }

    ruleInvocation(*g);
    ruleAsyncChains(*g);
    ruleHarnessDominance(*g);
    ruleGuiModel(*g);
    if (_opts.enableRule4)
        ruleIntraProcDom(*g);
    if (_opts.enableRule5)
        ruleInterProcDom(*g);
    if (_opts.enableRule6)
        ruleInterActionTrans(*g);
    return g;
}

void
HbBuilder::Impl::ruleInvocation(Shbg &g)
{
    for (const Action &a : _r.actions.all()) {
        if (a.creator >= 0)
            g.addEdge(a.creator, a.id, HbRule::Invocation);
    }
}

void
HbBuilder::Impl::ruleAsyncChains(Shbg &g)
{
    // Group AsyncTask phase actions by their execute() site + creator.
    std::map<std::pair<SiteId, int>, std::array<int, 3>> chains;
    for (const Action &a : _r.actions.all()) {
        int slot = -1;
        if (a.kind == ActionKind::AsyncPre)
            slot = 0;
        else if (a.kind == ActionKind::AsyncBackground)
            slot = 1;
        else if (a.kind == ActionKind::AsyncPost)
            slot = 2;
        if (slot < 0)
            continue;
        auto key = std::make_pair(a.creationSite, a.creator);
        auto it = chains.find(key);
        if (it == chains.end())
            it = chains.emplace(key, std::array<int, 3>{-1, -1, -1})
                     .first;
        it->second[slot] = a.id;
    }
    for (const auto &[key, slots] : chains) {
        int prev = -1;
        for (int id : slots) {
            if (id < 0)
                continue;
            if (prev >= 0)
                g.addEdge(prev, id, HbRule::AsyncChain);
            prev = id;
        }
    }
}

void
HbBuilder::Impl::ruleHarnessDominance(Shbg &g)
{
    // Rule 2 (and the dominance part of rule 3): harness event sites are
    // invoked synchronously on the main thread, so pre-dominance between
    // sites orders their actions. Distinct call sites of the same
    // callback are distinct actions, which is exactly the "onStart '1'"
    // vs "onStart '2'" split of Fig. 5.
    const DominatorTree &dom = domOf(_plan.mainMethod);
    std::vector<std::pair<int, const EntryEventSite *>> acts(
        _actionSite.begin(), _actionSite.end());
    for (const auto &[id_a, ev_a] : acts) {
        for (const auto &[id_b, ev_b] : acts) {
            if (id_a == id_b)
                continue;
            if (!dom.instrDominates(ev_a->instrIdx, ev_b->instrIdx))
                continue;
            bool lifecycle =
                ev_a->kind == ActionKind::Lifecycle &&
                ev_b->kind == ActionKind::Lifecycle;
            g.addEdge(id_a, id_b,
                      lifecycle ? HbRule::Lifecycle : HbRule::GuiOrder);
        }
    }
}

void
HbBuilder::Impl::ruleGuiModel(Shbg &g)
{
    // Identify the lifecycle anchors: the initial onResume and the final
    // onPause/onStop/onDestroy (the harness sites outside the loop).
    int first_resume = -1;
    std::vector<int> finals;
    for (const auto &[id, ev] : _actionSite) {
        if (ev->kind != ActionKind::Lifecycle || ev->inEventLoop)
            continue;
        if (ev->callbackName == "onResume")
            first_resume = id;
        else if (ev->callbackName == "onPause" ||
                 ev->callbackName == "onStop" ||
                 ev->callbackName == "onDestroy")
            finals.push_back(id);
    }

    // GUI events require a resumed, visible activity: they follow the
    // first onResume and precede the final onPause/onStop/onDestroy.
    std::vector<const Action *> guis;
    for (const Action &a : _r.actions.all()) {
        if (a.kind == ActionKind::Gui || a.kind == ActionKind::XmlGui)
            guis.push_back(&a);
    }
    for (const Action *gui : guis) {
        if (first_resume >= 0)
            g.addEdge(first_resume, gui->id, HbRule::GuiOrder);
        for (int f : finals)
            g.addEdge(gui->id, f, HbRule::GuiOrder);
    }

    // Layout "enabledAfter" constraints (Fig. 6's onClick2 < onClick3).
    for (const auto &[activity, layout] : _app.layouts()) {
        for (const auto &widget : layout.widgets()) {
            for (int dep : widget.enabledAfter) {
                for (const Action *before : guis) {
                    if (before->widgetId != dep)
                        continue;
                    for (const Action *after : guis) {
                        if (after->widgetId == widget.id) {
                            g.addEdge(before->id, after->id,
                                      HbRule::GuiOrder);
                        }
                    }
                }
            }
        }
    }
}

void
HbBuilder::Impl::ruleIntraProcDom(Shbg &g)
{
    // Rule 4: two posting sites in the same call-graph node, targeting
    // the same looper: if the first dominates the second, the posted
    // actions execute in that order (looper FIFO).
    const auto &spawns = _r.cg.spawns();
    for (size_t i = 0; i < spawns.size(); ++i) {
        for (size_t j = 0; j < spawns.size(); ++j) {
            if (i == j)
                continue;
            const SpawnEdge &s1 = spawns[i];
            const SpawnEdge &s2 = spawns[j];
            if (s1.creator != s2.creator ||
                s1.actionId == s2.actionId)
                continue;
            const air::Method *m = _r.sites.methodOf(s1.site);
            if (m == _plan.mainMethod)
                continue; // harness sites: handled by rule 2
            if (!analysis::isQueuePosted(
                    _r.actions.get(s1.actionId).kind) ||
                !analysis::isQueuePosted(
                    _r.actions.get(s2.actionId).kind))
                continue;
            if (!sameLooper(s1.actionId, s2.actionId))
                continue;
            if (g.reaches(s1.actionId, s2.actionId))
                continue;
            const DominatorTree &dom = domOf(m);
            if (dom.instrDominates(_r.sites.instrOf(s1.site),
                                   _r.sites.instrOf(s2.site))) {
                g.addEdge(s1.actionId, s2.actionId,
                          HbRule::IntraProcDom);
            }
        }
    }
}

bool
HbBuilder::Impl::reachableWithout(int act, NodeId n1, int e1, NodeId n2,
                                  int e2)
{
    // BFS over (node, instr) states of action `act`'s ICFG, skipping
    // the removed point (n1, e1). Calls descend into in-action callees,
    // and a call only *continues* when some callee's exit is reachable
    // (context-insensitive return linkage): stepping over a call whose
    // body is blocked by the removed site would make removal
    // meaningless. Calls with no in-action callee (framework
    // intrinsics) fall through directly.
    const Action &a = _r.actions.get(act);
    if (a.entryNode < 0)
        return true; // no body: be conservative
    std::set<std::pair<NodeId, int>> visited;
    std::vector<std::pair<NodeId, int>> work{{a.entryNode, 0}};
    // Return linkage, built lazily: callee node -> caller resume
    // points discovered when the call was expanded.
    std::map<NodeId, std::set<std::pair<NodeId, int>>> resume_points;
    int budget = _opts.rule5MaxStates;
    while (!work.empty()) {
        auto [n, i] = work.back();
        work.pop_back();
        if (n == n1 && i == e1)
            continue; // removed point
        if (n == n2 && i == e2)
            return true;
        if (!visited.insert({n, i}).second)
            continue;
        if (--budget <= 0)
            return true; // budget exhausted: conservatively reachable
        const air::Method *m = _r.cg.node(n).method;
        if (i >= m->numInstrs())
            continue;
        const air::Instruction &instr = m->instr(i);
        if (instr.isInvoke()) {
            SiteId s = _r.sites.find(m, i);
            bool has_callee = false;
            for (const auto &edge : _r.cg.edgesOf(n)) {
                if (edge.site != s)
                    continue;
                if (!_r.cg.actionsOf(edge.callee).count(act))
                    continue;
                has_callee = true;
                work.emplace_back(edge.callee, 0);
                // Register the resume point; if the callee's exit was
                // already reached, resume immediately.
                auto [it, fresh] = resume_points[edge.callee].insert(
                    {n, i + 1});
                (void)it;
                if (fresh &&
                    visited.count({edge.callee, -1})) {
                    work.emplace_back(n, i + 1);
                }
            }
            if (!has_callee)
                work.emplace_back(n, i + 1);
            continue; // successors come via return linkage
        }
        switch (instr.op) {
          case air::Opcode::Goto:
            work.emplace_back(n, instr.target);
            break;
          case air::Opcode::If:
          case air::Opcode::IfZ:
            work.emplace_back(n, instr.target);
            work.emplace_back(n, i + 1);
            break;
          case air::Opcode::Return:
          case air::Opcode::ReturnVoid:
          case air::Opcode::Throw: {
            // The node's exit is reachable: resume every registered
            // caller; mark with the (node, -1) sentinel so later-
            // registered callers resume too. Throw counts as an exit
            // (over-approximate reachability -> fewer HB edges, the
            // sound direction).
            if (visited.insert({n, -1}).second) {
                for (const auto &resume : resume_points[n])
                    work.push_back(resume);
            }
            break;
          }
          default:
            work.emplace_back(n, i + 1);
            break;
        }
    }
    return false;
}

void
HbBuilder::Impl::ruleInterProcDom(Shbg &g)
{
    // Rule 5: posting sites in different methods of the same action.
    const auto &spawns = _r.cg.spawns();
    for (size_t i = 0; i < spawns.size(); ++i) {
        for (size_t j = 0; j < spawns.size(); ++j) {
            if (i == j)
                continue;
            const SpawnEdge &s1 = spawns[i];
            const SpawnEdge &s2 = spawns[j];
            if (s1.actionId == s2.actionId)
                continue;
            const air::Method *m1 = _r.sites.methodOf(s1.site);
            const air::Method *m2 = _r.sites.methodOf(s2.site);
            if (m1 == _plan.mainMethod || m2 == _plan.mainMethod)
                continue;
            if (s1.creator == s2.creator)
                continue; // rule 4's case
            if (!analysis::isQueuePosted(
                    _r.actions.get(s1.actionId).kind) ||
                !analysis::isQueuePosted(
                    _r.actions.get(s2.actionId).kind))
                continue;
            if (!sameLooper(s1.actionId, s2.actionId))
                continue;
            if (g.reaches(s1.actionId, s2.actionId) ||
                g.reaches(s2.actionId, s1.actionId))
                continue;
            // Common enclosing action of both posting nodes.
            const auto &acts1 = _r.cg.actionsOf(s1.creator);
            const auto &acts2 = _r.cg.actionsOf(s2.creator);
            int common = -1;
            for (int a : acts1) {
                if (acts2.count(a)) {
                    common = a;
                    break;
                }
            }
            if (common < 0)
                continue;
            if (!reachableWithout(common, s1.creator,
                                  _r.sites.instrOf(s1.site), s2.creator,
                                  _r.sites.instrOf(s2.site))) {
                g.addEdge(s1.actionId, s2.actionId,
                          HbRule::InterProcDom);
            }
        }
    }
}

void
HbBuilder::Impl::ruleInterActionTrans(Shbg &g)
{
    // Rule 6, iterated with the closure (rule 7) to a fixpoint: if
    // A1 < A2, A1 posts A3, A2 posts A4, and A3/A4 target the same
    // looper, then A3 < A4 (Fig. 7; needs looper atomicity).
    const auto &actions = _r.actions.all();
    bool changed = true;
    int rounds = 0;
    while (changed) {
        changed = false;
        if (++rounds > 64) {
            warn("rule 6 fixpoint did not settle after 64 rounds");
            break;
        }
        for (const Action &a3 : actions) {
            if (a3.creator < 0 || !analysis::isQueuePosted(a3.kind))
                continue;
            for (const Action &a4 : actions) {
                if (a4.creator < 0 || a4.id == a3.id)
                    continue;
                if (!analysis::isQueuePosted(a4.kind))
                    continue;
                if (a3.creator == a4.creator)
                    continue;
                if (!sameLooper(a3.id, a4.id))
                    continue;
                if (!g.reaches(a3.creator, a4.creator))
                    continue;
                if (g.reaches(a3.id, a4.id) || g.reaches(a4.id, a3.id))
                    continue;
                g.addEdge(a3.id, a4.id, HbRule::InterActionTrans);
                changed = true;
            }
        }
    }
}

HbBuilder::HbBuilder(const PointsToResult &result,
                     const analysis::EntryPlan &plan,
                     const framework::App &app, HbOptions options)
    : _impl(std::make_unique<Impl>(result, plan, app, options))
{
}

HbBuilder::~HbBuilder() = default;

std::unique_ptr<Shbg>
HbBuilder::build()
{
    return _impl->build();
}

} // namespace sierra::hb
