#include "shbg.hh"

#include <sstream>

#include "air/logging.hh"

namespace sierra::hb {

const char *
hbRuleName(HbRule r)
{
    switch (r) {
      case HbRule::Invocation: return "invocation";
      case HbRule::Lifecycle: return "lifecycle";
      case HbRule::GuiOrder: return "gui-order";
      case HbRule::IntraProcDom: return "intra-proc-dom";
      case HbRule::InterProcDom: return "inter-proc-dom";
      case HbRule::InterActionTrans: return "inter-action-trans";
      case HbRule::AsyncChain: return "async-chain";
    }
    panic("unreachable hb rule");
}

Shbg::Shbg(int num_actions)
    : _n(num_actions), _words((num_actions + 63) / 64),
      _reach(num_actions, std::vector<uint64_t>(_words, 0))
{
}

bool
Shbg::addEdge(int from, int to, HbRule rule)
{
    SIERRA_ASSERT(from >= 0 && from < _n && to >= 0 && to < _n,
                  "edge out of range: ", from, " -> ", to);
    if (from == to)
        return false;
    // A cycle would mean two actions each complete before the other;
    // rules are designed not to produce this, so flag it loudly.
    if (bit(_reach[to], from)) {
        warn("HB cycle suppressed: ", from, " <-> ", to, " via rule ",
             hbRuleName(rule));
        return false;
    }
    if (bit(_reach[from], to))
        return false; // already implied: no new direct edge recorded
    _directEdges.push_back({from, to, rule});

    // Closure update: every x with x->from also reaches to's cone;
    // from itself reaches to's cone plus to.
    std::vector<uint64_t> delta = _reach[to];
    delta[to >> 6] |= uint64_t(1) << (to & 63);
    bool changed = false;
    for (int x = 0; x < _n; ++x) {
        if (x != from && !bit(_reach[x], from))
            continue;
        auto &row = _reach[x];
        for (size_t w = 0; w < _words; ++w) {
            uint64_t nv = row[w] | delta[w];
            if (nv != row[w]) {
                row[w] = nv;
                changed = true;
            }
        }
    }
    return changed;
}

bool
Shbg::reaches(int a, int b) const
{
    if (a == b)
        return false;
    return bit(_reach[a], b);
}

int64_t
Shbg::numClosurePairs() const
{
    int64_t count = 0;
    for (const auto &row : _reach) {
        for (uint64_t w : row)
            count += __builtin_popcountll(w);
    }
    return count;
}

double
Shbg::orderedFraction() const
{
    if (_n < 2)
        return 0.0;
    double max_pairs = static_cast<double>(_n) * (_n - 1) / 2.0;
    return static_cast<double>(numClosurePairs()) / max_pairs;
}

int
Shbg::numEdgesByRule(HbRule rule) const
{
    int count = 0;
    for (const auto &e : _directEdges) {
        if (e.rule == rule)
            ++count;
    }
    return count;
}

std::string
Shbg::toString() const
{
    std::ostringstream os;
    for (const auto &e : _directEdges) {
        os << e.from << " -> " << e.to << " [" << hbRuleName(e.rule)
           << "]\n";
    }
    return os.str();
}

} // namespace sierra::hb
