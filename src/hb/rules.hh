/**
 * @file
 * Construction of the Static Happens-Before Graph: HB rules 1-7 from
 * paper Section 4.3.
 */

#ifndef SIERRA_HB_RULES_HH
#define SIERRA_HB_RULES_HH

#include <memory>

#include "analysis/entry_plan.hh"
#include "analysis/points_to.hh"
#include "framework/app.hh"
#include "shbg.hh"

namespace sierra::hb {

/** Knobs for SHBG construction. */
struct HbOptions {
    bool enableRule4{true}; //!< intra-procedural domination
    bool enableRule5{true}; //!< inter-procedural ICFG domination
    bool enableRule6{true}; //!< inter-action transitivity
    int rule5MaxStates{200000}; //!< ICFG reachability state budget
};

/**
 * Applies the HB rules over a pointer-analysis result:
 *
 *  1. action invocation: creator < created;
 *  2. lifecycle order via dominance between harness event sites, which
 *     splits cyclic callbacks into per-site instances (Fig. 5);
 *  3. GUI model order: first-onResume < GUI events < final onStop/
 *     onDestroy, plus layout "enabledAfter" edges (Fig. 6);
 *  4. intra-procedural domination of posting sites (same looper);
 *  5. inter-procedural intra-action domination via removal-reachability
 *     on the action-local ICFG;
 *  6. inter-action transitivity (Fig. 7), iterated with
 *  7. transitive closure (maintained incrementally by Shbg).
 *
 * The AsyncTask pre < background < post chain is added alongside rule 1.
 */
class HbBuilder
{
  public:
    HbBuilder(const analysis::PointsToResult &result,
              const analysis::EntryPlan &plan,
              const framework::App &app, HbOptions options = {});
    ~HbBuilder();

    std::unique_ptr<Shbg> build();

  private:
    class Impl;
    std::unique_ptr<Impl> _impl;
};

} // namespace sierra::hb

#endif // SIERRA_HB_RULES_HH
