/**
 * @file
 * The Static Happens-Before Graph (paper Section 4).
 *
 * Nodes are actions; an edge a -> b means "a is statically proven to
 * complete before b starts". The graph maintains its transitive closure
 * incrementally via bitset rows.
 */

#ifndef SIERRA_HB_SHBG_HH
#define SIERRA_HB_SHBG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sierra::hb {

/** Which rule introduced an edge (for reporting and tests). */
enum class HbRule {
    Invocation,     //!< rule 1: creator happens-before created
    Lifecycle,      //!< rule 2: harness-CFG dominance of lifecycle sites
    GuiOrder,       //!< rule 3: GUI model order
    IntraProcDom,   //!< rule 4: posting-site domination within a method
    InterProcDom,   //!< rule 5: ICFG removal-reachability domination
    InterActionTrans, //!< rule 6: posts of ordered actions stay ordered
    AsyncChain,     //!< pre < background < post for AsyncTask phases
};

const char *hbRuleName(HbRule r);

/** One direct (non-closure) edge with provenance. */
struct HbEdge {
    int from;
    int to;
    HbRule rule;
};

/**
 * The SHBG over a fixed number of actions.
 *
 * reaches() answers over the transitive closure (rule 7), which is kept
 * up to date on every insertion.
 */
class Shbg
{
  public:
    explicit Shbg(int num_actions);

    int numActions() const { return _n; }

    /** Add a direct edge (and its transitive consequences). Returns true
     *  if the closure changed. Self-edges are ignored. */
    bool addEdge(int from, int to, HbRule rule);

    /** a happens-before b (irreflexive, closed). */
    bool reaches(int a, int b) const;

    /** Neither a<b nor b<a. */
    bool
    unordered(int a, int b) const
    {
        return a != b && !reaches(a, b) && !reaches(b, a);
    }

    /** Number of ordered pairs in the closure. */
    int64_t numClosurePairs() const;

    /** Fraction of ordered pairs out of n*(n-1)/2 (paper Table 3 "%"). */
    double orderedFraction() const;

    const std::vector<HbEdge> &directEdges() const
    {
        return _directEdges;
    }

    /** Direct edges introduced by one rule. */
    int numEdgesByRule(HbRule rule) const;

    std::string toString() const;

  private:
    int _n;
    size_t _words;
    std::vector<std::vector<uint64_t>> _reach; //!< closure rows
    std::vector<HbEdge> _directEdges;

    bool bit(const std::vector<uint64_t> &row, int i) const
    {
        return (row[i >> 6] >> (i & 63)) & 1;
    }
    void setBit(std::vector<uint64_t> &row, int i)
    {
        row[i >> 6] |= uint64_t(1) << (i & 63);
    }
};

} // namespace sierra::hb

#endif // SIERRA_HB_SHBG_HH
