/**
 * @file
 * Interned canonical field keys.
 *
 * A FieldKey is the dense-id replacement for the `std::string key`
 * that used to ride on every memory location: a u32 id from the
 * per-result StringInterner plus a stable pointer to the interned
 * string (interner storage never moves). Hot paths — points-to maps,
 * access aliasing, constraint substitution — compare ids; report and
 * test code reads the string through the same value, so nothing
 * re-resolves ids at the boundary.
 *
 * Ids are only meaningful within one interner (one PointsToResult /
 * one harness). Cross-harness consumers (the detector's report dedup)
 * must compare via str().
 */

#ifndef SIERRA_ANALYSIS_FIELD_KEY_HH
#define SIERRA_ANALYSIS_FIELD_KEY_HH

#include <ostream>
#include <string>
#include <string_view>

#include "util/intern.hh"

namespace sierra::analysis {

/** Dense id of an interned canonical key. */
using FieldId = util::InternId;

struct FieldKey {
    static constexpr uint8_t kArray = 1;    //!< names an array location
    static constexpr uint8_t kWildcard = 2; //!< unknown-index wildcard

    FieldId id{util::StringInterner::kInvalid};
    const std::string *name{nullptr}; //!< interned string (stable)
    uint8_t flags{0};

    /** Intern `s` in `table` and build the key. */
    static FieldKey
    intern(util::StringInterner &table, std::string_view s,
           uint8_t flags = 0)
    {
        FieldId id = table.intern(s);
        return {id, &table.name(id), flags};
    }

    const std::string &
    str() const
    {
        static const std::string empty;
        return name ? *name : empty;
    }

    bool isArray() const { return flags & kArray; }
    bool isWildcard() const { return flags & kWildcard; }

    /** Id comparison (same-interner contexts; determinism makes ids
     *  comparable across runs too, which parallel-determinism tests
     *  rely on). */
    bool operator==(const FieldKey &o) const { return id == o.id; }
    bool
    operator<(const FieldKey &o) const
    {
        return id < o.id;
    }

    // String-compatible surface for tests/report code.
    bool operator==(std::string_view s) const { return str() == s; }
    size_t
    find(std::string_view needle, size_t pos = 0) const
    {
        return str().find(needle, pos);
    }
};

inline std::ostream &
operator<<(std::ostream &os, const FieldKey &k)
{
    return os << k.str();
}

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_FIELD_KEY_HH
