/**
 * @file
 * Intra-procedural control-flow graphs over AIR method bodies.
 */

#ifndef SIERRA_ANALYSIS_CFG_HH
#define SIERRA_ANALYSIS_CFG_HH

#include <string>
#include <vector>

#include "air/method.hh"

namespace sierra::analysis {

/** A maximal straight-line instruction sequence. */
struct BasicBlock {
    int id{-1};
    int first{0}; //!< index of the first instruction
    int last{0};  //!< index of the last instruction (inclusive)
    std::vector<int> succs;
    std::vector<int> preds;
};

/**
 * The CFG of one method.
 *
 * Block 0 is the entry block; a synthetic exit block (with no
 * instructions) collects all returns/throws so dominance queries have a
 * single sink.
 */
class Cfg
{
  public:
    explicit Cfg(const air::Method &method);

    const air::Method &method() const { return _method; }

    const std::vector<BasicBlock> &blocks() const { return _blocks; }
    int numBlocks() const { return static_cast<int>(_blocks.size()); }

    int entryBlock() const { return 0; }
    int exitBlock() const { return _exitBlock; }

    /** Block containing the given instruction index. */
    int blockOf(int instr_idx) const { return _blockOfInstr[instr_idx]; }

    /** Instruction-level successor indices of an instruction. */
    std::vector<int> instrSuccs(int instr_idx) const;
    /** Instruction-level predecessor indices of an instruction. */
    std::vector<int> instrPreds(int instr_idx) const;

    /** Debug rendering: one line per block with ranges and edges. */
    std::string toString() const;

  private:
    const air::Method &_method;
    std::vector<BasicBlock> _blocks;
    std::vector<int> _blockOfInstr;
    int _exitBlock{-1};
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_CFG_HH
