#include "store.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "air/klass.hh"
#include "air/method.hh"
#include "air/printer.hh"
#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "framework/app.hh"
#include "framework/app_text.hh"
#include "framework/known_api.hh"

namespace sierra::analysis::store {

namespace fs = std::filesystem;

uint64_t
fnv64(std::string_view bytes, uint64_t seed)
{
    uint64_t h = seed;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

uint64_t
mixHash(uint64_t acc, uint64_t value)
{
    // Order-dependent: hash the value's bytes into the accumulator.
    char buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
    return fnv64(std::string_view(buf, 8), acc);
}

std::string
hashHex(uint64_t value)
{
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[i] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

uint64_t
classSliceHash(const air::Klass &klass)
{
    std::ostringstream os;
    os << (klass.isInterface() ? "interface " : "class ")
       << klass.name() << " extends " << klass.superName() << "\n";
    for (const std::string &iface : klass.interfaces())
        os << "implements " << iface << "\n";
    for (const air::Field &f : klass.fields()) {
        os << "field " << (f.isStatic ? "static " : "") << f.name
           << ": " << f.type.toString() << "\n";
    }
    return fnv64(os.str());
}

namespace {

/**
 * Content hash of one method: signature plus every instruction's
 * semantic fields, mixed in order. Hashing the fields directly instead
 * of the printed text discriminates at least as finely (the text is a
 * function of the fields) at a fraction of the cost -- this runs for
 * every method on every submission, warm or cold.
 */
uint64_t
hashMethodBody(const air::Method &method)
{
    uint64_t h = fnv64(method.name());
    for (const air::Type &t : method.paramTypes())
        h = fnv64(t.toString(), h);
    h = fnv64(method.returnType().toString(), h);
    h = mixHash(h, method.isStatic() ? 1 : 0);
    h = mixHash(h, static_cast<uint64_t>(method.numRegisters()));
    h = mixHash(h, static_cast<uint64_t>(method.numInstrs()));
    for (int i = 0; i < method.numInstrs(); ++i) {
        const air::Instruction &ins = method.instr(i);
        h = mixHash(h, static_cast<uint64_t>(ins.op));
        h = mixHash(h, static_cast<uint64_t>(ins.dst));
        for (int src : ins.srcs)
            h = mixHash(h, static_cast<uint64_t>(src));
        h = mixHash(h, static_cast<uint64_t>(ins.intValue));
        if (!ins.strValue.empty())
            h = fnv64(ins.strValue, h);
        if (!ins.typeName.empty())
            h = fnv64(ins.typeName, h);
        h = fnv64(ins.field.className, h);
        h = fnv64(ins.field.fieldName, h);
        h = fnv64(ins.method.className, h);
        h = fnv64(ins.method.methodName, h);
        h = mixHash(h, static_cast<uint64_t>(ins.method.numArgs));
        h = mixHash(h, static_cast<uint64_t>(ins.invokeKind));
        h = mixHash(h, static_cast<uint64_t>(ins.cond));
        h = mixHash(h, static_cast<uint64_t>(ins.binop));
        h = mixHash(h, static_cast<uint64_t>(ins.unop));
        h = mixHash(h, static_cast<uint64_t>(ins.target));
    }
    return h;
}

uint64_t
envHashWithSlice(const air::Method &method, uint64_t slice_hash)
{
    uint64_t h = hashMethodBody(method);
    h = mixHash(h, slice_hash);
    h = mixHash(h, static_cast<uint64_t>(
                       framework::kKnownApiTableVersion));
    h = mixHash(h, static_cast<uint64_t>(kStoreSchemaVersion));
    return h;
}

} // namespace

uint64_t
methodEnvHash(const air::Method &method)
{
    return envHashWithSlice(
        method, method.owner() ? classSliceHash(*method.owner()) : 0);
}

std::map<std::string, uint64_t>
hashMethods(const framework::App &app)
{
    std::map<std::string, uint64_t> out;
    for (const air::Klass *klass : app.module().classes()) {
        if (klass->isFramework())
            continue;
        // One slice hash per class, not per method: the slice is the
        // same for every member and its string is costly to rebuild.
        const uint64_t slice = classSliceHash(*klass);
        for (const auto &m : klass->methods()) {
            if (!m->hasBody())
                continue;
            out[m->qualifiedName()] = envHashWithSlice(*m, slice);
        }
    }
    return out;
}

uint64_t
shapeHash(const framework::App &app)
{
    // The body-less bundle print covers manifest, layouts and app
    // class shapes: class names, supers, fields, method signatures
    // (including regs=), widget trees -- everything except the
    // instruction lines. A body edit keeps this hash stable.
    uint64_t h = fnv64(framework::printAppText(app, false));
    h = mixHash(h, static_cast<uint64_t>(
                       framework::kKnownApiTableVersion));
    h = mixHash(h, static_cast<uint64_t>(kStoreSchemaVersion));
    return h;
}

std::string
serializeMethodIndex(const std::map<std::string, uint64_t> &index)
{
    std::ostringstream os;
    for (const auto &[name, hash] : index)
        os << name << "\t" << hashHex(hash) << "\n";
    return os.str();
}

std::map<std::string, uint64_t>
parseMethodIndex(const std::string &blob)
{
    std::map<std::string, uint64_t> out;
    std::istringstream in(blob);
    std::string line;
    while (std::getline(in, line)) {
        size_t tab = line.find('\t');
        if (tab == std::string::npos)
            continue;
        std::string name = line.substr(0, tab);
        std::string hex = line.substr(tab + 1);
        if (name.empty() || hex.size() != 16)
            continue;
        uint64_t value = 0;
        bool ok = true;
        for (char c : hex) {
            int digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (c >= 'a' && c <= 'f')
                digit = c - 'a' + 10;
            else {
                ok = false;
                break;
            }
            value = (value << 4) | static_cast<uint64_t>(digit);
        }
        if (ok)
            out[name] = value;
    }
    return out;
}

// ---------------------------------------------------------------------
// DepIndex
// ---------------------------------------------------------------------

void
DepIndex::addEdge(const std::string &caller, const std::string &callee)
{
    if (caller == callee)
        return;
    _callers[callee].insert(caller);
}

void
DepIndex::merge(const DepIndex &other)
{
    for (const auto &[callee, callers] : other._callers)
        _callers[callee].insert(callers.begin(), callers.end());
}

void
DepIndex::prune(const std::set<std::string> &keep)
{
    std::map<std::string, std::set<std::string>> pruned;
    for (const auto &[callee, callers] : _callers) {
        if (!keep.count(callee))
            continue;
        std::set<std::string> kept;
        for (const std::string &c : callers) {
            if (keep.count(c))
                kept.insert(c);
        }
        if (!kept.empty())
            pruned[callee] = std::move(kept);
    }
    _callers = std::move(pruned);
}

std::set<std::string>
DepIndex::dirtyClosure(const std::set<std::string> &changed) const
{
    std::set<std::string> dirty = changed;
    std::vector<std::string> work(changed.begin(), changed.end());
    while (!work.empty()) {
        std::string m = std::move(work.back());
        work.pop_back();
        auto it = _callers.find(m);
        if (it == _callers.end())
            continue;
        for (const std::string &caller : it->second) {
            if (dirty.insert(caller).second)
                work.push_back(caller);
        }
    }
    return dirty;
}

std::vector<std::string>
DepIndex::callersOf(const std::string &method) const
{
    auto it = _callers.find(method);
    if (it == _callers.end())
        return {};
    return {it->second.begin(), it->second.end()};
}

int64_t
DepIndex::numEdges() const
{
    int64_t n = 0;
    for (const auto &[callee, callers] : _callers)
        n += static_cast<int64_t>(callers.size());
    return n;
}

std::string
DepIndex::serialize() const
{
    std::ostringstream os;
    for (const auto &[callee, callers] : _callers) {
        for (const std::string &caller : callers)
            os << caller << "\t" << callee << "\n";
    }
    return os.str();
}

DepIndex
DepIndex::parse(const std::string &blob)
{
    DepIndex out;
    std::istringstream in(blob);
    std::string line;
    while (std::getline(in, line)) {
        size_t tab = line.find('\t');
        if (tab == std::string::npos)
            continue;
        std::string caller = line.substr(0, tab);
        std::string callee = line.substr(tab + 1);
        if (!caller.empty() && !callee.empty())
            out.addEdge(caller, callee);
    }
    return out;
}

// ---------------------------------------------------------------------
// Per-method facts
// ---------------------------------------------------------------------

std::string
sccpFactsBlob(const air::Method &method)
{
    Cfg cfg(method);
    MethodConstants consts(cfg);
    std::ostringstream os;
    for (int i = 0; i < method.numInstrs(); ++i) {
        if (!consts.reachable(i))
            continue;
        for (int r = 0; r < method.numRegisters(); ++r) {
            ConstVal v = consts.before(i, r);
            if (v.isConst())
                os << "const " << i << " " << r << " " << v.value
                   << "\n";
        }
    }
    // Record killed branch edges too: they are the facts the refuter
    // prunes paths with.
    for (int i = 0; i < method.numInstrs(); ++i) {
        const air::Instruction &instr = method.instr(i);
        if (!instr.isBranch())
            continue;
        for (int succ : {instr.target, i + 1}) {
            if (succ >= 0 && succ < method.numInstrs() &&
                !consts.edgeFeasible(i, succ))
                os << "infeasible " << i << " " << succ << "\n";
        }
    }
    return os.str();
}

std::vector<SccpFact>
parseSccpFacts(const std::string &blob)
{
    std::vector<SccpFact> out;
    std::istringstream in(blob);
    std::string tag;
    while (in >> tag) {
        if (tag == "const") {
            SccpFact f;
            if (in >> f.instr >> f.reg >> f.value)
                out.push_back(f);
        } else {
            std::string rest;
            std::getline(in, rest);
        }
    }
    return out;
}

std::string
cfgDigest(const air::Method &method)
{
    Cfg cfg(method);
    std::ostringstream structure;
    int64_t edges = 0;
    for (int b = 0; b < cfg.numBlocks(); ++b) {
        const BasicBlock &block = cfg.blocks()[b];
        structure << b << ":" << block.first << "-" << block.last
                  << "->";
        for (int succ : block.succs) {
            structure << succ << ",";
            ++edges;
        }
        structure << ";";
    }
    std::ostringstream os;
    os << "blocks " << cfg.numBlocks() << " edges " << edges
       << " hash " << hashHex(fnv64(structure.str()));
    return os.str();
}

// ---------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------

std::string
Store::versionStamp()
{
    std::ostringstream os;
    os << "sierra-store schema " << kStoreSchemaVersion
       << " known-api " << framework::kKnownApiTableVersion << "\n";
    return os.str();
}

Store::Store(const std::string &dir) : _dir(dir)
{
    std::error_code ec;
    fs::create_directories(_dir, ec);
    const fs::path version_path = fs::path(_dir) / "VERSION";
    std::string on_disk;
    {
        std::ifstream in(version_path, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        on_disk = ss.str();
    }
    if (!on_disk.empty() && on_disk != versionStamp()) {
        // Incompatible generation: discard rather than read blobs
        // written under another schema or known-API table version.
        for (const auto &entry : fs::directory_iterator(_dir, ec)) {
            if (entry.path().filename() != "VERSION")
                fs::remove_all(entry.path(), ec);
        }
    }
    std::ofstream out(version_path, std::ios::binary);
    out << versionStamp();
}

std::string
Store::pathFor(const std::string &kind, const std::string &key) const
{
    std::string safe;
    for (char c : key) {
        safe += (std::isalnum(static_cast<unsigned char>(c)) ||
                 c == '-' || c == '.' || c == '_')
                    ? c
                    : '_';
    }
    return _dir + "/" + kind + "/" + safe;
}

std::optional<std::string>
Store::get(const std::string &kind, const std::string &key)
{
    ++_stats.gets;
    const std::string mem_key = kind + "/" + key;
    auto it = _blobs.find(mem_key);
    if (it != _blobs.end()) {
        ++_stats.hits;
        return it->second;
    }
    if (_dir.empty())
        return std::nullopt;
    std::ifstream in(pathFor(kind, key), std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    ++_stats.hits;
    ++_stats.diskReads;
    _blobs[mem_key] = ss.str();
    return _blobs[mem_key];
}

void
Store::put(const std::string &kind, const std::string &key,
           const std::string &blob)
{
    ++_stats.puts;
    _stats.bytesWritten += static_cast<int64_t>(blob.size());
    _blobs[kind + "/" + key] = blob;
    if (_dir.empty())
        return;
    std::error_code ec;
    fs::create_directories(fs::path(_dir) / kind, ec);
    const std::string path = pathFor(kind, key);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        out << blob;
    }
    fs::rename(tmp, path, ec);
}

std::vector<std::string>
Store::keys(const std::string &kind) const
{
    std::set<std::string> out;
    const std::string prefix = kind + "/";
    for (const auto &[key, blob] : _blobs) {
        if (key.rfind(prefix, 0) == 0)
            out.insert(key.substr(prefix.size()));
    }
    if (!_dir.empty()) {
        std::error_code ec;
        for (const auto &entry :
             fs::directory_iterator(fs::path(_dir) / kind, ec)) {
            std::string name = entry.path().filename().string();
            if (name.size() > 4 &&
                name.compare(name.size() - 4, 4, ".tmp") == 0)
                continue;
            out.insert(name);
        }
    }
    return {out.begin(), out.end()};
}

} // namespace sierra::analysis::store
