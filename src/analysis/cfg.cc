#include "cfg.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "air/logging.hh"

namespace sierra::analysis {

using air::Instruction;
using air::Opcode;

namespace {

/** Instruction-level fallthrough/branch successors (no exit block). */
std::vector<int>
rawSuccs(const air::Method &m, int idx)
{
    const Instruction &instr = m.instr(idx);
    std::vector<int> out;
    switch (instr.op) {
      case Opcode::Goto:
        out.push_back(instr.target);
        break;
      case Opcode::If:
      case Opcode::IfZ:
        if (idx + 1 < m.numInstrs())
            out.push_back(idx + 1);
        if (instr.target != idx + 1)
            out.push_back(instr.target);
        break;
      case Opcode::Return:
      case Opcode::ReturnVoid:
      case Opcode::Throw:
        break;
      default:
        if (idx + 1 < m.numInstrs())
            out.push_back(idx + 1);
        break;
    }
    return out;
}

} // namespace

Cfg::Cfg(const air::Method &method) : _method(method)
{
    const int n = method.numInstrs();
    SIERRA_ASSERT(n > 0, "CFG over empty method ",
                  method.qualifiedName());

    // Identify leaders: instruction 0, branch targets, and fallthroughs
    // after branches/terminators.
    std::set<int> leaders{0};
    for (int i = 0; i < n; ++i) {
        const Instruction &instr = method.instr(i);
        if (instr.isBranch())
            leaders.insert(instr.target);
        if ((instr.isBranch() || instr.isTerminator()) && i + 1 < n)
            leaders.insert(i + 1);
    }

    _blockOfInstr.assign(n, -1);
    std::vector<int> leader_list(leaders.begin(), leaders.end());
    for (size_t b = 0; b < leader_list.size(); ++b) {
        BasicBlock block;
        block.id = static_cast<int>(b);
        block.first = leader_list[b];
        block.last = (b + 1 < leader_list.size() ? leader_list[b + 1] - 1
                                                 : n - 1);
        for (int i = block.first; i <= block.last; ++i)
            _blockOfInstr[i] = block.id;
        _blocks.push_back(block);
    }

    // Synthetic exit block.
    _exitBlock = static_cast<int>(_blocks.size());
    BasicBlock exit_block;
    exit_block.id = _exitBlock;
    exit_block.first = n; // empty: first > last
    exit_block.last = n - 1;
    _blocks.push_back(exit_block);

    // Wire block-level edges from the last instruction of each block.
    for (size_t b = 0; b + 1 < _blocks.size(); ++b) {
        BasicBlock &block = _blocks[b];
        const Instruction &last = method.instr(block.last);
        std::vector<int> succ_instrs = rawSuccs(method, block.last);
        if (last.op == Opcode::Return || last.op == Opcode::ReturnVoid ||
            last.op == Opcode::Throw) {
            block.succs.push_back(_exitBlock);
        } else if (succ_instrs.empty()) {
            // Falling off the end of the body.
            block.succs.push_back(_exitBlock);
        }
        for (int s : succ_instrs) {
            int sb = _blockOfInstr[s];
            if (std::find(block.succs.begin(), block.succs.end(), sb) ==
                block.succs.end()) {
                block.succs.push_back(sb);
            }
        }
    }
    for (auto &block : _blocks) {
        for (int s : block.succs)
            _blocks[s].preds.push_back(block.id);
    }
}

std::vector<int>
Cfg::instrSuccs(int instr_idx) const
{
    return rawSuccs(_method, instr_idx);
}

std::vector<int>
Cfg::instrPreds(int instr_idx) const
{
    std::vector<int> out;
    const BasicBlock &block = _blocks[blockOf(instr_idx)];
    if (instr_idx > block.first) {
        out.push_back(instr_idx - 1);
        return out;
    }
    for (int pb : block.preds)
        out.push_back(_blocks[pb].last);
    return out;
}

std::string
Cfg::toString() const
{
    std::ostringstream os;
    for (const auto &block : _blocks) {
        os << "B" << block.id;
        if (block.id == _exitBlock)
            os << " (exit)";
        else
            os << " [" << block.first << ".." << block.last << "]";
        os << " ->";
        for (int s : block.succs)
            os << " B" << s;
        os << "\n";
    }
    return os.str();
}

} // namespace sierra::analysis
