/**
 * @file
 * Registration typestate + enablement reachability (see enablement.hh).
 */

#include "enablement.hh"

#include "dataflow.hh"
#include "framework/known_api.hh"

namespace sierra::analysis {

namespace {

/** Key families a callee may enable (kills in the typestate). */
enum EnableBit : uint8_t {
    kEnReceiver = 1,
    kEnRunnable = 2,
    kEnMessage = 4,
    kEnListener = 8,
};

bool
singleton(const ObjSet &s)
{
    return s.size() == 1;
}

ObjId
only(const ObjSet &s)
{
    return *s.begin();
}

/** Which families one classified call site may enable; 0 if none. */
uint8_t
enableBitOf(framework::ApiKind kind)
{
    using framework::ApiKind;
    switch (kind) {
    case ApiKind::RegisterReceiver:
        return kEnReceiver;
    case ApiKind::HandlerPost:
        return kEnRunnable;
    case ApiKind::HandlerSendMessage:
        return kEnMessage;
    case ApiKind::SetListener:
        return kEnListener;
    default:
        return 0;
    }
}

} // namespace

/**
 * The forward must-typestate over one disabler callback's body.
 * Facts: key -> MustOff | MustBound(listener). Merge is intersection
 * of identical entries; enabling calls kill, disabling calls with
 * must-alias operands generate.
 */
struct EnablementAnalysis::TypestateProblem {
    using Domain = EnablementAnalysis::TsDomain;
    static constexpr DataflowDirection kDirection =
        DataflowDirection::Forward;

    const PointsToResult &result;
    const framework::KnownApis &apis;
    NodeId node;
    const air::Method &method;
    const std::map<std::string, int> &slots;
    /** Invoke instr idx -> transitive may-enable mask of its callees. */
    const std::unordered_map<int, uint8_t> &calleeMask;

    Domain boundary() const { return {}; }

    bool
    merge(Domain &into, const Domain &from) const
    {
        bool changed = false;
        for (auto it = into.begin(); it != into.end();) {
            auto f = from.find(it->first);
            if (f == from.end() || !(f->second == it->second)) {
                it = into.erase(it);
                changed = true;
            } else {
                ++it;
            }
        }
        return changed;
    }

    void
    eraseFamily(Domain &d, uint8_t mask) const
    {
        if (mask == 0)
            return;
        for (auto it = d.begin(); it != d.end();) {
            uint8_t bit = 0;
            switch (it->first.kind) {
            case EnablementKind::Receiver:
                bit = kEnReceiver;
                break;
            case EnablementKind::Runnable:
                bit = kEnRunnable;
                break;
            case EnablementKind::Message:
                bit = kEnMessage;
                break;
            case EnablementKind::Listener:
                bit = kEnListener;
                break;
            }
            it = (mask & bit) ? d.erase(it) : std::next(it);
        }
    }

    void
    eraseMessagesOf(Domain &d, ObjId handler) const
    {
        for (auto it = d.begin(); it != d.end();) {
            if (it->first.kind == EnablementKind::Message &&
                it->first.obj == handler) {
                it = d.erase(it);
            } else {
                ++it;
            }
        }
    }

    void
    transfer(int instr_idx, const air::Instruction &in, Domain &d) const
    {
        if (!in.isInvoke())
            return;
        using framework::ApiKind;
        const ApiKind kind = apis.classify(in.method);
        switch (kind) {
        case ApiKind::RegisterReceiver: {
            if (in.srcs.size() < 2)
                break;
            for (int o : result.pointsTo(node, in.srcs[1]))
                d.erase({EnablementKind::Receiver, o, 0});
            break;
        }
        case ApiKind::UnregisterReceiver: {
            if (in.srcs.size() < 2)
                break;
            const ObjSet &recv = result.pointsTo(node, in.srcs[1]);
            if (singleton(recv))
                d[{EnablementKind::Receiver, only(recv), 0}] = {true, -1};
            break;
        }
        case ApiKind::HandlerPost: {
            if (in.srcs.size() < 2)
                break;
            for (int h : result.pointsTo(node, in.srcs[0]))
                for (int r : result.pointsTo(node, in.srcs[1]))
                    d.erase({EnablementKind::Runnable, h, r});
            break;
        }
        case ApiKind::HandlerSendMessage: {
            if (in.srcs.empty())
                break;
            for (int h : result.pointsTo(node, in.srcs[0]))
                eraseMessagesOf(d, h);
            break;
        }
        case ApiKind::HandlerRemove: {
            if (in.srcs.size() < 2)
                break;
            const ObjSet &handler = result.pointsTo(node, in.srcs[0]);
            if (!singleton(handler))
                break;
            if (in.method.methodName == "removeCallbacks") {
                const ObjSet &run = result.pointsTo(node, in.srcs[1]);
                if (singleton(run)) {
                    d[{EnablementKind::Runnable, only(handler),
                       only(run)}] = {true, -1};
                }
            } else { // removeMessages(what)
                ConstVal what = result.constOf(node, in.srcs[1]);
                if (what.isConst()) {
                    d[{EnablementKind::Message, only(handler),
                       static_cast<int>(what.value)}] = {true, -1};
                }
            }
            break;
        }
        case ApiKind::SetListener: {
            if (in.srcs.size() < 2)
                break;
            auto slot_it = slots.find(
                framework::KnownApis::listenerCallback(
                    in.method.methodName));
            if (slot_it == slots.end())
                break;
            const int slot = slot_it->second;
            const ObjSet &view = result.pointsTo(node, in.srcs[0]);
            if (framework::KnownApis::isListenerClear(method,
                                                      instr_idx)) {
                // Clearing never enables: a must-alias view gains the
                // off fact, an ambiguous one changes nothing.
                if (singleton(view)) {
                    d[{EnablementKind::Listener, only(view), slot}] = {
                        true, -1};
                }
                break;
            }
            const ObjSet &listener = result.pointsTo(node, in.srcs[1]);
            if (singleton(view) && singleton(listener)) {
                d[{EnablementKind::Listener, only(view), slot}] = {
                    false, only(listener)};
            } else {
                for (int v : result.pointsTo(node, in.srcs[0]))
                    d.erase({EnablementKind::Listener, v, slot});
            }
            break;
        }
        default: {
            // A call into app code may transitively enable: kill the
            // families its callees can touch.
            auto it = calleeMask.find(instr_idx);
            if (it != calleeMask.end())
                eraseFamily(d, it->second);
            break;
        }
        }
    }
};

EnablementAnalysis::EnablementAnalysis(const PointsToResult &result,
                                       const framework::KnownApis &apis)
    : _result(result), _apis(apis)
{
    computeCalleeEnableMasks();
    scanSites();
    buildRecords();
    buildDisablers();
}

int
EnablementAnalysis::slotOf(const std::string &callback)
{
    auto it = _slots.find(callback);
    if (it != _slots.end())
        return it->second;
    const int id = static_cast<int>(_slots.size());
    _slots.emplace(callback, id);
    return id;
}

void
EnablementAnalysis::computeCalleeEnableMasks()
{
    const CallGraph &cg = _result.cg;
    const int n = cg.numNodes();
    _mayEnable.assign(static_cast<size_t>(n), 0);

    // Direct bits: each node's own classified enable sites.
    for (NodeId node = 0; node < n; ++node) {
        const air::Method *m = cg.node(node).method;
        if (m == nullptr)
            continue;
        for (const air::Instruction &in : m->instrs()) {
            if (in.isInvoke())
                _mayEnable[node] |= enableBitOf(_apis.classify(in.method));
        }
    }
    // Caller absorbs callee, to fixpoint (masks only grow; the loop
    // runs at most 4 extra rounds over the deepest chain).
    bool changed = true;
    while (changed) {
        changed = false;
        for (NodeId node = 0; node < n; ++node) {
            for (const CGEdge &e : cg.edgesOf(node)) {
                const uint8_t merged = static_cast<uint8_t>(
                    _mayEnable[node] | _mayEnable[e.callee]);
                if (merged != _mayEnable[node]) {
                    _mayEnable[node] = merged;
                    changed = true;
                }
            }
        }
    }
}

void
EnablementAnalysis::scanSites()
{
    const CallGraph &cg = _result.cg;
    const int n = cg.numNodes();
    _hasDisableSite.assign(static_cast<size_t>(n), 0);

    for (NodeId node = 0; node < n; ++node) {
        const air::Method *m = cg.node(node).method;
        if (m == nullptr || m->instrs().empty())
            continue;
        const int count = static_cast<int>(m->instrs().size());
        for (int idx = 0; idx < count; ++idx) {
            const air::Instruction &in = m->instr(idx);
            if (!in.isInvoke())
                continue;
            using framework::ApiKind;
            switch (_apis.classify(in.method)) {
            case ApiKind::RegisterReceiver: {
                if (in.srcs.size() < 2)
                    break;
                for (int o : _result.pointsTo(node, in.srcs[1])) {
                    _enableSites[{EnablementKind::Receiver, o, 0}]
                        .push_back({node, {}});
                }
                ++_stats.enableSites;
                break;
            }
            case ApiKind::HandlerPost: {
                if (in.srcs.size() < 2)
                    break;
                for (int h : _result.pointsTo(node, in.srcs[0])) {
                    for (int r : _result.pointsTo(node, in.srcs[1])) {
                        _enableSites[{EnablementKind::Runnable, h, r}]
                            .push_back({node, {}});
                    }
                }
                ++_stats.enableSites;
                break;
            }
            case ApiKind::HandlerSendMessage: {
                if (in.srcs.empty())
                    break;
                // aux -1 = any `what` sent through this handler.
                for (int h : _result.pointsTo(node, in.srcs[0])) {
                    _enableSites[{EnablementKind::Message, h, -1}]
                        .push_back({node, {}});
                }
                ++_stats.enableSites;
                break;
            }
            case ApiKind::SetListener: {
                if (in.srcs.size() < 2)
                    break;
                const std::string cb =
                    framework::KnownApis::listenerCallback(
                        in.method.methodName);
                if (cb.empty())
                    break;
                const int slot = slotOf(cb);
                if (framework::KnownApis::isListenerClear(*m, idx)) {
                    _hasDisableSite[node] = 1;
                    ++_stats.disableSites;
                    break;
                }
                EnableSite site{node, {}};
                for (int l : _result.pointsTo(node, in.srcs[1]))
                    site.listeners.push_back(l);
                for (int v : _result.pointsTo(node, in.srcs[0])) {
                    _enableSites[{EnablementKind::Listener, v, slot}]
                        .push_back(site);
                }
                ++_stats.enableSites;
                break;
            }
            case ApiKind::UnregisterReceiver:
            case ApiKind::HandlerRemove: {
                _hasDisableSite[node] = 1;
                ++_stats.disableSites;
                break;
            }
            default:
                break;
            }
        }
    }
}

void
EnablementAnalysis::buildRecords()
{
    const CallGraph &cg = _result.cg;

    // Group spawn edges by action: one action's edges differ only by
    // the creator node's context, never by the spawn site.
    std::unordered_map<int, std::vector<const SpawnEdge *>> edges_of;
    for (const SpawnEdge &e : cg.spawns())
        edges_of[e.actionId].push_back(&e);

    for (const Action &a : _result.actions.all()) {
        EnablementKind kind;
        switch (a.kind) {
        case ActionKind::Receive:
            kind = EnablementKind::Receiver;
            break;
        case ActionKind::PostedRunnable:
            kind = EnablementKind::Runnable;
            break;
        case ActionKind::PostedMessage:
            kind = EnablementKind::Message;
            break;
        case ActionKind::Gui:
            kind = EnablementKind::Listener;
            break;
        default:
            continue; // XmlGui & co. have no disable API
        }
        auto it = edges_of.find(a.id);
        if (it == edges_of.end())
            continue; // harness-spawned (e.g. manifest receiver)

        // Union the operand objects over every spawn edge; the record
        // exists only when each relevant union is a singleton
        // (must-alias, mirroring refuteWithLockSets).
        ObjSet objs;     // receiver | handler | view
        ObjSet partners; // runnable | listener
        bool conforms = true;
        for (const SpawnEdge *e : it->second) {
            const air::Method *m = _result.sites.methodOf(e->site);
            const int idx = _result.sites.instrOf(e->site);
            if (m == nullptr || idx < 0) {
                conforms = false;
                break;
            }
            const air::Instruction &in = m->instr(idx);
            if (!in.isInvoke() || in.srcs.size() < 2) {
                conforms = false;
                break;
            }
            using framework::ApiKind;
            const ApiKind api = _apis.classify(in.method);
            switch (kind) {
            case EnablementKind::Receiver:
                conforms = api == ApiKind::RegisterReceiver;
                if (conforms) {
                    for (int o :
                         _result.pointsTo(e->creator, in.srcs[1]))
                        objs.insert(o);
                }
                break;
            case EnablementKind::Runnable:
                // View.post / runOnUiThread spawns have no handler and
                // no matching remove API.
                conforms = api == ApiKind::HandlerPost;
                if (conforms) {
                    for (int h :
                         _result.pointsTo(e->creator, in.srcs[0]))
                        objs.insert(h);
                    for (int r :
                         _result.pointsTo(e->creator, in.srcs[1]))
                        partners.insert(r);
                }
                break;
            case EnablementKind::Message:
                conforms = api == ApiKind::HandlerSendMessage &&
                           a.messageWhat >= 0;
                if (conforms) {
                    for (int h :
                         _result.pointsTo(e->creator, in.srcs[0]))
                        objs.insert(h);
                }
                break;
            case EnablementKind::Listener:
                conforms =
                    api == ApiKind::SetListener &&
                    !framework::KnownApis::isListenerClear(*m, idx);
                if (conforms) {
                    for (int v :
                         _result.pointsTo(e->creator, in.srcs[0]))
                        objs.insert(v);
                    for (int l :
                         _result.pointsTo(e->creator, in.srcs[1]))
                        partners.insert(l);
                }
                break;
            }
            if (!conforms)
                break;
        }
        if (!conforms || !singleton(objs))
            continue;

        Record rec;
        switch (kind) {
        case EnablementKind::Receiver:
            rec.key = {kind, only(objs), 0};
            break;
        case EnablementKind::Runnable:
            if (!singleton(partners))
                continue;
            rec.key = {kind, only(objs), only(partners)};
            break;
        case EnablementKind::Message:
            rec.key = {kind, only(objs), a.messageWhat};
            break;
        case EnablementKind::Listener:
            if (!singleton(partners))
                continue;
            rec.key = {kind, only(objs), slotOf(a.callbackName)};
            rec.listener = only(partners);
            break;
        }
        _records.emplace(a.id, rec);
        ++_stats.trackedActions;
    }
}

void
EnablementAnalysis::buildDisablers()
{
    // Solve the typestate only on entry callbacks that directly
    // contain a disable site; memoize per entry node (lifecycle
    // instances of one callback share their facts).
    std::map<NodeId, TsDomain> memo;
    for (const Action &a : _result.actions.all()) {
        const NodeId entry = a.entryNode;
        if (entry < 0 ||
            entry >= static_cast<NodeId>(_hasDisableSite.size()) ||
            !_hasDisableSite[entry]) {
            continue;
        }
        auto it = memo.find(entry);
        if (it == memo.end())
            it = memo.emplace(entry, solveTypestate(entry)).first;
        if (it->second.empty())
            continue;
        _disablers.push_back({a.id, it->second});
        ++_stats.disablers;
    }
}

EnablementAnalysis::TsDomain
EnablementAnalysis::solveTypestate(NodeId node) const
{
    const air::Method *m = _result.cg.node(node).method;
    if (m == nullptr || m->instrs().empty())
        return {};
    const Cfg cfg(*m);

    // Per-invoke transitive may-enable mask of the resolved callees.
    std::unordered_map<int, uint8_t> callee_mask;
    for (const CGEdge &e : _result.cg.edgesOf(node)) {
        if (_result.sites.methodOf(e.site) != m)
            continue;
        callee_mask[_result.sites.instrOf(e.site)] |=
            _mayEnable[e.callee];
    }

    const TypestateProblem problem{_result, _apis,       node,
                                   *m,      _slots,      callee_mask};
    const DataflowResult<TsDomain> solved = solveDataflow(cfg, problem);

    // Exit facts: meet over the reached return blocks (throw paths
    // excluded — an exception aborts the callback, so facts holding on
    // every *normal* completion are what later actions observe).
    TsDomain exit;
    bool first = true;
    for (const BasicBlock &b : cfg.blocks()) {
        if (!solved.reached[b.id] || b.first > b.last)
            continue;
        const air::Opcode op = m->instr(b.last).op;
        if (op != air::Opcode::Return && op != air::Opcode::ReturnVoid)
            continue;
        if (first) {
            exit = solved.atExit[b.id];
            first = false;
        } else {
            problem.merge(exit, solved.atExit[b.id]);
        }
    }
    return first ? TsDomain{} : exit;
}

bool
EnablementAnalysis::reEnableSafe(const Record &rec, int disabler,
                                 const ReachesFn &reaches) const
{
    // Every site that may re-enable the key must belong to actions
    // ordered before the disabler (or be inside the disabler itself,
    // where the exit facts already account for it). This also forces
    // the original registration to be ordered before the disabler.
    const CallGraph &cg = _result.cg;
    auto check = [&](const std::vector<EnableSite> &sites) {
        for (const EnableSite &site : sites) {
            if (rec.key.kind == EnablementKind::Listener) {
                // A set of a *different* listener object does not
                // re-enable this action's callback.
                bool may_bind = false;
                for (ObjId l : site.listeners)
                    may_bind = may_bind || l == rec.listener;
                if (!may_bind)
                    continue;
            }
            for (int owner : cg.actionsOf(site.node)) {
                if (owner != disabler && !reaches(owner, disabler))
                    return false;
            }
        }
        return true;
    };

    auto it = _enableSites.find(rec.key);
    if (it != _enableSites.end() && !check(it->second))
        return false;
    if (rec.key.kind == EnablementKind::Message) {
        // Wildcard sends through the same handler hit every `what`.
        auto any = _enableSites.find(
            {EnablementKind::Message, rec.key.obj, -1});
        if (any != _enableSites.end() && !check(any->second))
            return false;
    }
    return true;
}

bool
EnablementAnalysis::disabledBefore(int a1, int a2,
                                   const ReachesFn &reaches)
{
    ++_stats.queries;
    if (a1 == a2)
        return false;
    auto rec_it = _records.find(a1);
    if (rec_it == _records.end())
        return false;
    const Record &rec = rec_it->second;
    const Action &act1 = _result.actions.get(a1);
    if (!act1.runsOnLooper())
        return false;
    const ObjId looper1 = _result.looperOfAction(a1);
    if (looper1 < 0)
        return false;

    for (const Disabler &d : _disablers) {
        if (d.action == a1)
            continue;
        auto fact = d.exitFacts.find(rec.key);
        if (fact == d.exitFacts.end())
            continue;
        const bool disables =
            fact->second.off ||
            (rec.key.kind == EnablementKind::Listener &&
             fact->second.bound >= 0 &&
             fact->second.bound != rec.listener);
        if (!disables)
            continue;

        // (a) the disabler serializes with a1 on the same looper, so
        // a1's instances run entirely before the disabler or never.
        const Action &da = _result.actions.get(d.action);
        if (!da.runsOnLooper() ||
            _result.looperOfAction(d.action) != looper1) {
            continue;
        }
        // (b) the disabler happens-before a2 — or *is* a1's creator,
        // in which case a1 is disabled from birth.
        if (!reaches(d.action, a2) && d.action != act1.creator)
            continue;
        // (c) nothing re-enables the key after the disabler.
        if (!reEnableSafe(rec, d.action, reaches))
            continue;
        ++_stats.exonerated;
        return true;
    }
    return false;
}

} // namespace sierra::analysis
