#include "class_hierarchy.hh"

#include <algorithm>
#include <unordered_set>

#include "air/logging.hh"

namespace sierra::analysis {

const std::vector<const air::Klass *> ClassHierarchy::_empty;

ClassHierarchy::ClassHierarchy(const air::Module &module) : _module(module)
{
    // Compute, for every class, the set of transitive supertypes.
    for (const air::Klass *k : module.classes()) {
        std::vector<std::string> supers;
        std::unordered_set<std::string> seen;
        // Worklist over the super chain and interfaces.
        std::vector<const air::Klass *> work{k};
        std::vector<std::string> unresolved;
        while (!work.empty()) {
            const air::Klass *cur = work.back();
            work.pop_back();
            if (!seen.insert(cur->name()).second)
                continue;
            supers.push_back(cur->name());
            auto push_name = [&](const std::string &n) {
                if (n.empty() || seen.count(n))
                    return;
                const air::Klass *s = module.getClass(n);
                if (s) {
                    work.push_back(s);
                } else if (seen.insert(n).second) {
                    // Unknown supertype: keep the name itself so subtype
                    // tests against it still succeed.
                    supers.push_back(n);
                }
            };
            push_name(cur->superName());
            for (const auto &iface : cur->interfaces())
                push_name(iface);
        }
        _supers[k->name()] = std::move(supers);
    }

    // Invert into concrete-subtype lists, preserving module order for
    // determinism.
    for (const air::Klass *k : module.classes()) {
        if (k->isInterface())
            continue;
        for (const auto &super : _supers[k->name()])
            _concreteSubtypes[super].push_back(k);
    }
}

bool
ClassHierarchy::isSubtypeOf(const std::string &sub,
                            const std::string &super) const
{
    if (sub == super)
        return true;
    auto it = _supers.find(sub);
    if (it == _supers.end())
        return false;
    return std::find(it->second.begin(), it->second.end(), super) !=
           it->second.end();
}

air::Method *
ClassHierarchy::resolveVirtual(const std::string &class_name,
                               const std::string &method_name) const
{
    const air::Klass *k = _module.getClass(class_name);
    while (k) {
        if (air::Method *m = k->findMethod(method_name))
            return m;
        if (k->superName().empty())
            return nullptr;
        k = _module.getClass(k->superName());
    }
    return nullptr;
}

air::Method *
ClassHierarchy::resolveStatic(const std::string &class_name,
                              const std::string &method_name) const
{
    return resolveVirtual(class_name, method_name);
}

const std::vector<const air::Klass *> &
ClassHierarchy::concreteSubtypes(const std::string &name) const
{
    auto it = _concreteSubtypes.find(name);
    return it == _concreteSubtypes.end() ? _empty : it->second;
}

const air::Field *
ClassHierarchy::resolveField(const std::string &class_name,
                             const std::string &field_name) const
{
    const air::Klass *k = _module.getClass(class_name);
    while (k) {
        if (const air::Field *f = k->findField(field_name))
            return f;
        if (k->superName().empty())
            return nullptr;
        k = _module.getClass(k->superName());
    }
    return nullptr;
}

std::string
ClassHierarchy::declaringClassOfField(const std::string &class_name,
                                      const std::string &field_name) const
{
    const air::Klass *k = _module.getClass(class_name);
    while (k) {
        if (k->findField(field_name))
            return k->name();
        if (k->superName().empty())
            return "";
        k = _module.getClass(k->superName());
    }
    return "";
}

} // namespace sierra::analysis
