/**
 * @file
 * Dominator trees over CFGs (Cooper-Harvey-Kennedy iterative algorithm).
 *
 * Dominance powers HB rules 2 (lifecycle callback splitting) and 4
 * (intra-procedural domination of posting sites) from the paper.
 */

#ifndef SIERRA_ANALYSIS_DOMINATORS_HH
#define SIERRA_ANALYSIS_DOMINATORS_HH

#include <vector>

#include "cfg.hh"

namespace sierra::analysis {

/**
 * The (pre-)dominator tree of a CFG.
 *
 * Blocks unreachable from the entry have no dominator information and
 * dominate nothing.
 */
class DominatorTree
{
  public:
    explicit DominatorTree(const Cfg &cfg);

    const Cfg &cfg() const { return _cfg; }

    /** Immediate dominator of a block; -1 for the entry/unreachable. */
    int idom(int block) const { return _idom[block]; }

    /** True if block a dominates block b (reflexive). */
    bool dominates(int a, int b) const;

    /** True if the instruction at index a dominates the one at b. */
    bool instrDominates(int a, int b) const;

    /** True if the block is reachable from the entry. */
    bool reachable(int block) const
    {
        return block == _cfg.entryBlock() || _idom[block] != -1;
    }

  private:
    const Cfg &_cfg;
    std::vector<int> _idom;
    std::vector<int> _rpoIndex; //!< reverse-postorder number per block
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_DOMINATORS_HH
