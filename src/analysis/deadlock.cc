#include "deadlock.hh"

#include <algorithm>
#include <map>
#include <set>

#include "air/logging.hh"

namespace sierra::analysis {

namespace {

/** Nodes per cycle cap: elementary cycles longer than this are noise
 *  (real deadlocks involve two or three locks) and the enumeration
 *  stays linear in the observation count. */
constexpr size_t kMaxCycleLen = 6;

/** Cap on observation assignments tried per cycle. */
constexpr int kMaxAssignments = 256;

/** One raw acquisition observation: acquire `acq` holding `held`. */
struct Obs {
    ObjId held{-1};
    ObjId acq{-1};
    NodeId node{-1};
    int instrIdx{-1};
};

/**
 * Two observations can run concurrently: distinct actions execute
 * their nodes, neither action happens-before the other, and they do
 * not serialize on the same looper thread. The witnessing actions are
 * returned for provenance (smallest ids win — bitsets iterate
 * ascending, so the choice is deterministic).
 */
bool
concurrentObs(const PointsToResult &r, const Obs &a, const Obs &b,
              const std::function<bool(int, int)> &happens_before,
              int &witness_a, int &witness_b)
{
    for (int a1 : r.cg.actionsOf(a.node)) {
        if (a1 == r.rootAction)
            continue;
        for (int a2 : r.cg.actionsOf(b.node)) {
            if (a2 == r.rootAction || a1 == a2)
                continue;
            if (happens_before(a1, a2) || happens_before(a2, a1))
                continue;
            const Action &x = r.actions.get(a1);
            const Action &y = r.actions.get(a2);
            // Same-looper events serialize; they can interleave in
            // any order but never block each other mid-handler.
            if (x.runsOnLooper() && y.runsOnLooper() &&
                r.looperOfAction(a1) == r.looperOfAction(a2))
                continue;
            witness_a = a1;
            witness_b = a2;
            return true;
        }
    }
    return false;
}

} // namespace

std::string
DeadlockEdge::toString() const
{
    return strCat("acquire ", acquiredLock, " holding ", heldLock,
                  " at ", method, "@", instrIdx, " [", actionLabel,
                  "]");
}

std::string
DeadlockFinding::toString() const
{
    std::string s = "cycle ";
    for (const DeadlockEdge &e : edges)
        s += e.heldLock + " -> ";
    s += edges.empty() ? std::string("?") : edges.front().heldLock;
    s += ": ";
    for (size_t i = 0; i < edges.size(); ++i) {
        if (i)
            s += "; ";
        s += edges[i].toString();
    }
    return s;
}

std::vector<DeadlockFinding>
findDeadlocks(const PointsToResult &result, const LockSetAnalysis &locks,
              const std::function<bool(int, int)> &happensBefore,
              DeadlockStats *stats)
{
    // ---- collect acquisition observations ---------------------------
    std::vector<Obs> obs;
    for (NodeId n = 0; n < result.cg.numNodes(); ++n) {
        const air::Method *m = result.cg.node(n).method;
        if (!m || !m->hasBody())
            continue;
        for (int i = 0; i < m->numInstrs(); ++i) {
            const air::Instruction &instr = m->instr(i);
            if (instr.op != air::Opcode::MonitorEnter)
                continue;
            const ObjSet &pts = result.pointsTo(n, instr.srcs[0]);
            if (pts.size() != 1)
                continue; // ambiguous lock: cannot be named soundly
            ObjId acq = *pts.begin();
            for (ObjId held : locks.locksHeldAt(n, i)) {
                if (held != acq)
                    obs.push_back({held, acq, n, i});
            }
        }
    }

    // ---- the lock-dependency graph ----------------------------------
    // held -> acquired -> indices of the witnessing observations.
    std::map<ObjId, std::map<ObjId, std::vector<int>>> adj;
    std::set<ObjId> lock_nodes;
    int64_t lock_edges = 0;
    for (size_t i = 0; i < obs.size(); ++i) {
        auto &succ = adj[obs[i].held][obs[i].acq];
        if (succ.empty())
            ++lock_edges;
        succ.push_back(static_cast<int>(i));
        lock_nodes.insert(obs[i].held);
        lock_nodes.insert(obs[i].acq);
    }
    if (stats) {
        stats->observations += static_cast<int64_t>(obs.size());
        stats->lockNodes += static_cast<int64_t>(lock_nodes.size());
        stats->lockEdges += lock_edges;
    }

    std::vector<DeadlockFinding> findings;

    // Try to assign one observation per cycle edge such that every
    // pair of assigned observations is concurrently runnable; the
    // first (deterministic) satisfying assignment is reported.
    auto tryCycle = [&](const std::vector<ObjId> &cycle) {
        if (stats)
            ++stats->cyclesExamined;
        size_t k = cycle.size();
        std::vector<const std::vector<int> *> choices(k);
        for (size_t i = 0; i < k; ++i) {
            auto it = adj.find(cycle[i]);
            auto jt = it->second.find(cycle[(i + 1) % k]);
            choices[i] = &jt->second;
        }
        std::vector<int> pick(k, 0);
        int tried = 0;
        std::function<bool(size_t)> assign = [&](size_t depth) {
            if (depth == k) {
                if (++tried > kMaxAssignments)
                    return false;
                int wa = -1, wb = -1;
                for (size_t i = 0; i < k; ++i) {
                    for (size_t j = i + 1; j < k; ++j) {
                        if (!concurrentObs(result,
                                           obs[(*choices[i])[pick[i]]],
                                           obs[(*choices[j])[pick[j]]],
                                           happensBefore, wa, wb))
                            return false;
                    }
                }
                return true;
            }
            for (size_t c = 0; c < choices[depth]->size(); ++c) {
                pick[depth] = static_cast<int>(c);
                if (assign(depth + 1))
                    return true;
                if (tried > kMaxAssignments)
                    return false;
            }
            return false;
        };
        if (!assign(0))
            return;

        DeadlockFinding f;
        for (size_t i = 0; i < k; ++i) {
            const Obs &oi = obs[(*choices[i])[pick[i]]];
            const Obs &next = obs[(*choices[(i + 1) % k])
                                      [pick[(i + 1) % k]]];
            int wa = -1, wb = -1;
            concurrentObs(result, oi, next, happensBefore, wa, wb);
            DeadlockEdge e;
            e.heldLock = result.objects.toString(oi.held, result.sites);
            e.acquiredLock =
                result.objects.toString(oi.acq, result.sites);
            e.method = result.cg.node(oi.node).method->qualifiedName();
            e.instrIdx = oi.instrIdx;
            if (wa >= 0)
                e.actionLabel = result.actions.get(wa).label;
            f.edges.push_back(std::move(e));
        }
        // Canonical rotation: the lexicographically smallest edge
        // sequence, so the same cycle renders identically no matter
        // which harness (and thus which ObjId numbering) found it.
        size_t best = 0;
        auto less_rotated = [&](size_t a, size_t b) {
            for (size_t i = 0; i < k; ++i) {
                std::string ea = f.edges[(a + i) % k].toString();
                std::string eb = f.edges[(b + i) % k].toString();
                if (ea != eb)
                    return ea < eb;
            }
            return false;
        };
        for (size_t r = 1; r < k; ++r) {
            if (less_rotated(r, best))
                best = r;
        }
        std::rotate(f.edges.begin(),
                    f.edges.begin() + static_cast<long>(best),
                    f.edges.end());
        findings.push_back(std::move(f));
    };

    // Elementary cycle enumeration: DFS restricted to lock ids >= the
    // start id, so every cycle is discovered exactly once (from its
    // smallest node).
    std::vector<ObjId> path;
    std::set<ObjId> on_path;
    std::function<void(ObjId, ObjId)> dfs = [&](ObjId start,
                                                ObjId cur) {
        auto it = adj.find(cur);
        if (it == adj.end())
            return;
        for (const auto &[next, witnesses] : it->second) {
            if (next == start && path.size() >= 2) {
                tryCycle(path);
            } else if (next > start && !on_path.count(next) &&
                       path.size() < kMaxCycleLen) {
                path.push_back(next);
                on_path.insert(next);
                dfs(start, next);
                on_path.erase(next);
                path.pop_back();
            }
        }
    };
    for (ObjId start : lock_nodes) {
        path.assign(1, start);
        on_path = {start};
        dfs(start, start);
    }

    std::sort(findings.begin(), findings.end());
    findings.erase(std::unique(findings.begin(), findings.end()),
                   findings.end());
    return findings;
}

} // namespace sierra::analysis
