/**
 * @file
 * Context abstractions for the pointer analysis (paper Section 3.3).
 *
 * A context is an optional action id plus a bounded string of site
 * elements. The action id component implements the paper's novel
 * "action-sensitivity"; the site string implements k-obj / k-cfa /
 * hybrid, selectable per analysis run for the ablation in Table 3
 * (racy pairs with vs. without action sensitivity).
 */

#ifndef SIERRA_ANALYSIS_CONTEXT_HH
#define SIERRA_ANALYSIS_CONTEXT_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "sites.hh"

namespace sierra::analysis {

/** Interned context id; 0 is the empty (root) context. */
using CtxId = int;
inline constexpr CtxId kEmptyCtx = 0;

/** Which context abstraction the pointer analysis uses. */
enum class ContextPolicy {
    Insensitive,     //!< one context for everything
    KCfa,            //!< last-k call sites
    KObj,            //!< last-k allocation sites of the receiver
    Hybrid,          //!< k-obj for dispatch, k-cfa for static calls
    ActionSensitive, //!< hybrid + the enclosing action id (the paper's)
};

const char *contextPolicyName(ContextPolicy p);

/** Context-selection options. */
struct ContextOptions {
    ContextPolicy policy{ContextPolicy::ActionSensitive};
    int k{1};     //!< context string depth
    int heapK{1}; //!< heap-context depth for allocation sites
    bool inflatedViewContext{true}; //!< view-id aliasing for findViewById
};

/** The immutable payload of a context. */
struct ContextData {
    int actionId{-1};           //!< -1 outside action-sensitive mode
    std::vector<SiteId> elems;  //!< most-recent-first context string

    bool operator==(const ContextData &o) const
    {
        return actionId == o.actionId && elems == o.elems;
    }
};

/** Interning table for contexts. */
class ContextTable
{
  public:
    ContextTable() { intern(ContextData{}); } // id 0 = empty

    CtxId intern(const ContextData &data);
    const ContextData &get(CtxId id) const { return _contexts[id]; }

    /** Push an element onto the front of a context string, truncating to
     *  k; preserves the action id. */
    CtxId pushElem(CtxId base, SiteId elem, int k);

    /** A context whose string is `elems` truncated to k, with the given
     *  action id. */
    CtxId make(int action_id, std::vector<SiteId> elems, int k);

    /** Same context data but with a different action id. */
    CtxId withAction(CtxId base, int action_id);

    std::string toString(CtxId id, const SiteTable &sites) const;

    size_t size() const { return _contexts.size(); }

  private:
    struct DataHash {
        size_t
        operator()(const ContextData &d) const
        {
            size_t h = std::hash<int>()(d.actionId);
            for (SiteId e : d.elems)
                h = h * 31 + std::hash<int>()(e);
            return h;
        }
    };

    std::vector<ContextData> _contexts;
    std::unordered_map<ContextData, CtxId, DataHash> _index;
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_CONTEXT_HH
