/**
 * @file
 * Callback-enablement refutation: registration typestate + lifecycle
 * reachability (the refutation stage between lockset and IFDS).
 *
 * A racy pair's entry can be a false positive when one action's
 * *enabling* registration is provably torn down before the other
 * action can run: a receiver's onReceive cannot conflict with an
 * access ordered after `unregisterReceiver`, a posted runnable removed
 * via `removeCallbacks` cannot witness a race with anything ordered
 * after the removal, and a listener slot overwritten or cleared with
 * null stops delivering its old callback.
 *
 * The pass has three parts, all resolved through points-to must-alias
 * exactly like `race::refuteWithLockSets` resolves monitors (a
 * singleton points-to set is treated as one concrete object):
 *
 *  1. **Records** — for each disableable action (Receive,
 *     PostedRunnable, PostedMessage, Gui) resolve its spawn sites to a
 *     registration *key*: the receiver object, the (handler, runnable)
 *     pair, the (handler, message-what) pair, or the (view, listener
 *     slot) pair. Ambiguous (non-singleton) resolutions yield no
 *     record and the action is never exonerated.
 *  2. **Typestate** — a forward must-dataflow (a client of
 *     `solveDataflow`) over candidate disabler callbacks: facts map
 *     keys to MustOff / MustBound(listener); merge is intersection;
 *     may-enabling calls (register/post/send/set) kill facts, and
 *     calls into app code kill by the callee's transitive may-enable
 *     summary. The *exit* fact (meet over return blocks) is what the
 *     action guarantees to every observer ordered after it.
 *  3. **Query** — `disabledBefore(a1, a2)` holds when some disabler D
 *     with a must-disable exit fact for a1's key (a) serializes with
 *     a1 on the same looper, (b) happens-before a2 (or D is a1's own
 *     creator: disabled-from-birth), and (c) every site that may
 *     re-enable the key belongs to an action ordered before D — so
 *     once D completes, no instance of a1 can ever start again.
 *
 * All disable APIs modeled here also drop *pending* instances
 * (removeCallbacks/removeMessages purge the queue, unregisterReceiver
 * drops undelivered broadcasts, listener slots are read at dispatch
 * time), which is what makes (a)+(b)+(c) sufficient: every instance of
 * a1 completes before D does, and D completes before a2 starts.
 *
 * Layering: this module may not include hb/ — SHBG reachability is
 * passed in as a `std::function` closed over the graph.
 */

#ifndef SIERRA_ANALYSIS_ENABLEMENT_HH
#define SIERRA_ANALYSIS_ENABLEMENT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "points_to.hh"

namespace sierra::framework {
class KnownApis;
}

namespace sierra::analysis {

/** Which registration family enables a disableable action. */
enum class EnablementKind : uint8_t {
    Receiver, //!< registerReceiver / unregisterReceiver
    Runnable, //!< Handler.post / Handler.removeCallbacks
    Message,  //!< Handler.sendMessage / Handler.removeMessages
    Listener, //!< View.setOnXxxListener(obj | null)
};

/** Work counters, surfaced as the `enablement.*` metrics. */
struct EnablementStats {
    int64_t trackedActions{0}; //!< actions with a must-alias record
    int64_t enableSites{0};    //!< registration/post sites inventoried
    int64_t disableSites{0};   //!< unregister/remove/clear sites found
    int64_t disablers{0};      //!< actions with a must-disable exit fact
    int64_t queries{0};        //!< disabledBefore() evaluations
    int64_t exonerated{0};     //!< queries that held
};

/**
 * One harness's enablement facts. Construction scans the call graph
 * once for enable/disable sites and solves the registration typestate
 * only on callbacks that directly contain a disable site (the
 * demand-driven part); `disabledBefore` queries are then cheap.
 */
class EnablementAnalysis
{
  public:
    EnablementAnalysis(const PointsToResult &result,
                       const framework::KnownApis &apis);

    /** SHBG reachability, irreflexive and transitively closed. */
    using ReachesFn = std::function<bool(int, int)>;

    /**
     * True when action `a1` is provably disabled at every
     * SHBG-unordered point where action `a2` can run, with no
     * re-enabling site on any interleaved path. Counts into stats().
     */
    bool disabledBefore(int a1, int a2, const ReachesFn &reaches);

    /** Whether the action resolved to a must-alias registration key. */
    bool tracks(int action_id) const
    {
        return _records.find(action_id) != _records.end();
    }

    const EnablementStats &stats() const { return _stats; }

  private:
    /** A registration key: what a disable API must name to turn the
     *  enablement off. `aux` is the runnable ObjId (Runnable), the
     *  message `what` with -1 meaning any (Message), or the listener
     *  slot id (Listener); 0 for Receiver. */
    struct TsKey {
        EnablementKind kind{EnablementKind::Receiver};
        ObjId obj{-1};
        int aux{0};

        auto operator<=>(const TsKey &) const = default;
    };

    /** A must fact about one key: turned off, or (listener slots
     *  only) definitely bound to a specific listener object. */
    struct TsVal {
        bool off{false};
        ObjId bound{-1};

        bool operator==(const TsVal &) const = default;
    };

    /** The typestate lattice element: absent key = unknown. */
    using TsDomain = std::map<TsKey, TsVal>;

    /** A disableable action's resolved registration. */
    struct Record {
        TsKey key;
        ObjId listener{-1}; //!< Listener only: the bound object
    };

    /** One site that may (re-)enable a key. */
    struct EnableSite {
        NodeId node{-1};
        std::vector<ObjId> listeners; //!< Listener only: may-bound set
    };

    /** An action whose entry callback must-disables some keys. */
    struct Disabler {
        int action{-1};
        TsDomain exitFacts;
    };

    /** The dataflow problem (defined in the .cc). */
    struct TypestateProblem;

    int slotOf(const std::string &callback);
    void computeCalleeEnableMasks();
    void scanSites();
    void buildRecords();
    void buildDisablers();
    TsDomain solveTypestate(NodeId node) const;
    bool reEnableSafe(const Record &rec, int disabler,
                      const ReachesFn &reaches) const;

    const PointsToResult &_result;
    const framework::KnownApis &_apis;
    EnablementStats _stats;

    /** Listener callback name -> dense slot id (scan order). */
    std::map<std::string, int> _slots;
    /** Per call-graph node: which key families its transitive callees
     *  may enable (bitmask of EnableBit in the .cc). */
    std::vector<uint8_t> _mayEnable;
    /** Per node: whether the node's method contains a disable site. */
    std::vector<char> _hasDisableSite;

    std::unordered_map<int, Record> _records; //!< action id -> record
    std::map<TsKey, std::vector<EnableSite>> _enableSites;
    std::vector<Disabler> _disablers; //!< ascending action id
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_ENABLEMENT_HH
