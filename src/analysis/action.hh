/**
 * @file
 * Concurrency actions (paper Sections 3.3 and 4.2).
 *
 * An action reifies one unit of event handling: a lifecycle callback
 * invocation, a GUI event, a posted message/runnable, a thread body, or a
 * system event. Actions are the nodes of the Static Happens-Before Graph
 * and the first component of action-sensitive contexts.
 */

#ifndef SIERRA_ANALYSIS_ACTION_HH
#define SIERRA_ANALYSIS_ACTION_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "sites.hh"

namespace sierra::analysis {

/** Classes of actions (paper Table 1, column 1). */
enum class ActionKind {
    HarnessRoot,     //!< the synthetic harness main (not a real event)
    Lifecycle,       //!< onCreate/onStart/... invocation site
    Gui,             //!< dynamically registered GUI listener callback
    XmlGui,          //!< layout-XML registered GUI callback
    PostedRunnable,  //!< Handler.post / View.post / runOnUiThread body
    PostedMessage,   //!< Handler.sendMessage -> handleMessage
    AsyncPre,        //!< AsyncTask.onPreExecute
    AsyncBackground, //!< AsyncTask.doInBackground
    AsyncPost,       //!< AsyncTask.onPostExecute
    ThreadRun,       //!< Thread.start -> run
    ExecutorRun,     //!< Executor.execute -> run
    Receive,         //!< BroadcastReceiver.onReceive
    ServiceCreate,   //!< Service onCreate/onStartCommand
    ServiceConnected,//!< ServiceConnection.onServiceConnected
};

const char *actionKindName(ActionKind k);

/**
 * True for actions that are enqueued on a looper's message queue at a
 * program point inside their creator (Handler.post / sendMessage and
 * kin). Only these obey the looper-FIFO argument behind HB rules 4-6;
 * synchronously invoked callbacks (lifecycle, GUI) and system-triggered
 * events (receivers, services) do not.
 */
bool isQueuePosted(ActionKind k);

/** Which executor runs an action. */
enum class ThreadAffinity {
    MainLooper,   //!< the UI thread's looper
    Background,   //!< a fresh background thread
    CustomLooper, //!< a non-main looper (Handler bound to it)
};

const char *threadAffinityName(ThreadAffinity a);

/** One action (SHBG node). */
struct Action {
    int id{-1};
    ActionKind kind{ActionKind::HarnessRoot};
    std::string label;        //!< human-readable, e.g. "A.onCreate"
    std::string callbackName; //!< entry callback method name
    std::string entryClass;   //!< class whose callback runs
    int creator{-1};          //!< creating action id; -1 for roots
    SiteId creationSite{kNoSite}; //!< site in the creator that spawned it
    int entryNode{-1};        //!< call-graph node id of the entry
    ThreadAffinity affinity{ThreadAffinity::MainLooper};
    int looperObj{-1};        //!< ObjId of the target looper, -1 = n/a
    int widgetId{-1};         //!< GUI actions: the widget's view id
    int messageWhat{-1};      //!< PostedMessage: constant what, -1 unknown

    bool
    runsOnLooper() const
    {
        return affinity != ThreadAffinity::Background;
    }
};

/** Owning registry of all actions discovered for one harness. */
class ActionRegistry
{
  public:
    /** Create an action; (kind, creator, creationSite, callback, class)
     *  is the identity key — re-creation returns the existing id. */
    int create(ActionKind kind, int creator, SiteId creation_site,
               const std::string &entry_class,
               const std::string &callback_name);

    Action &get(int id) { return _actions[id]; }
    const Action &get(int id) const { return _actions[id]; }

    int size() const { return static_cast<int>(_actions.size()); }
    const std::vector<Action> &all() const { return _actions; }
    std::vector<Action> &all() { return _actions; }

  private:
    std::vector<Action> _actions;
    std::unordered_map<std::string, int> _index;
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_ACTION_HH
