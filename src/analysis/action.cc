#include "action.hh"

#include "air/logging.hh"

namespace sierra::analysis {

const char *
actionKindName(ActionKind k)
{
    switch (k) {
      case ActionKind::HarnessRoot: return "harness-root";
      case ActionKind::Lifecycle: return "lifecycle";
      case ActionKind::Gui: return "gui";
      case ActionKind::XmlGui: return "xml-gui";
      case ActionKind::PostedRunnable: return "posted-runnable";
      case ActionKind::PostedMessage: return "posted-message";
      case ActionKind::AsyncPre: return "async-pre";
      case ActionKind::AsyncBackground: return "async-background";
      case ActionKind::AsyncPost: return "async-post";
      case ActionKind::ThreadRun: return "thread-run";
      case ActionKind::ExecutorRun: return "executor-run";
      case ActionKind::Receive: return "receive";
      case ActionKind::ServiceCreate: return "service-create";
      case ActionKind::ServiceConnected: return "service-connected";
    }
    panic("unreachable action kind");
}

bool
isQueuePosted(ActionKind k)
{
    return k == ActionKind::PostedRunnable ||
           k == ActionKind::PostedMessage;
}

const char *
threadAffinityName(ThreadAffinity a)
{
    switch (a) {
      case ThreadAffinity::MainLooper: return "main-looper";
      case ThreadAffinity::Background: return "background";
      case ThreadAffinity::CustomLooper: return "custom-looper";
    }
    panic("unreachable thread affinity");
}

int
ActionRegistry::create(ActionKind kind, int creator, SiteId creation_site,
                       const std::string &entry_class,
                       const std::string &callback_name)
{
    std::string key =
        strCat(static_cast<int>(kind), "/", creator, "/", creation_site,
               "/", entry_class, "/", callback_name);
    auto it = _index.find(key);
    if (it != _index.end())
        return it->second;

    Action a;
    a.id = static_cast<int>(_actions.size());
    a.kind = kind;
    a.creator = creator;
    a.creationSite = creation_site;
    a.entryClass = entry_class;
    a.callbackName = callback_name;
    a.label = entry_class + "." + callback_name;
    _actions.push_back(std::move(a));
    _index.emplace(std::move(key), _actions.back().id);
    return _actions.back().id;
}

} // namespace sierra::analysis
