#include "lint.hh"

#include <algorithm>
#include <set>

#include "air/logging.hh"
#include "cfg.hh"
#include "dataflow.hh"
#include "framework/known_api.hh"

namespace sierra::analysis {

using air::Instruction;
using air::Method;
using air::Opcode;
using air::Severity;
using air::VerifyIssue;

namespace {

/** Forward must-analysis: registers definitely assigned on every path
 *  from method entry. Meet is set intersection. */
struct DefiniteAssignment {
    using Domain = std::vector<char>;
    static constexpr DataflowDirection kDirection =
        DataflowDirection::Forward;

    int numRegisters;
    int firstTempReg;

    Domain
    boundary() const
    {
        Domain d(static_cast<size_t>(numRegisters), 0);
        for (int r = 0; r < firstTempReg; ++r)
            d[r] = 1; // `this` and parameters
        return d;
    }

    bool
    merge(Domain &into, const Domain &from) const
    {
        bool changed = false;
        for (size_t r = 0; r < into.size(); ++r) {
            if (into[r] && !from[r]) {
                into[r] = 0;
                changed = true;
            }
        }
        return changed;
    }

    void
    transfer(int, const Instruction &instr, Domain &d) const
    {
        if (instr.dst >= 0)
            d[instr.dst] = 1;
    }
};

/**
 * Forward may-analysis of the monitor nesting depth: how many monitors
 * might still be held at an instruction. Merge is max (a warning fires
 * if *some* path reaches the post with a lock held); depth is clamped
 * to [0, 8] so unmatched enters/exits cannot diverge the fixpoint.
 */
struct MonitorDepth {
    using Domain = int;
    static constexpr DataflowDirection kDirection =
        DataflowDirection::Forward;

    Domain boundary() const { return 0; }

    bool
    merge(Domain &into, const Domain &from) const
    {
        if (from > into) {
            into = from;
            return true;
        }
        return false;
    }

    void
    transfer(int, const Instruction &instr, Domain &d) const
    {
        if (instr.op == Opcode::MonitorEnter)
            d = std::min(d + 1, 8);
        else if (instr.op == Opcode::MonitorExit)
            d = std::max(d - 1, 0);
    }
};

/** The "post"-family APIs: the argument runs later on a looper queue,
 *  so a monitor held at the call protects none of its execution. */
bool
isPostLikeApi(framework::ApiKind kind)
{
    switch (kind) {
      case framework::ApiKind::HandlerPost:
      case framework::ApiKind::HandlerSendMessage:
      case framework::ApiKind::ViewPost:
      case framework::ApiKind::RunOnUiThread:
        return true;
      default:
        return false;
    }
}

/** Value-producing instructions with no side effect: eliding one only
 *  loses the register value, so an unread destination is a dead store.
 *  Loads, calls and allocations are excluded (effects / site identity),
 *  as are bodies where the value may escape some other way. */
bool
isPureValueOp(Opcode op)
{
    switch (op) {
      case Opcode::ConstInt:
      case Opcode::ConstStr:
      case Opcode::ConstNull:
      case Opcode::Move:
      case Opcode::BinOp:
      case Opcode::UnOp:
        return true;
      default:
        return false;
    }
}

void
lintInto(const Method &method, const LintOptions &opts,
         const framework::KnownApis *apis,
         std::vector<VerifyIssue> &out)
{
    if (!method.hasBody())
        return;
    const Cfg cfg(method);

    auto at = [&](int idx) {
        return strCat(method.qualifiedName(), "@", idx);
    };

    // Entry-reachability of blocks (instruction-level, via the CFG).
    std::vector<char> block_reachable(cfg.numBlocks(), 0);
    {
        std::vector<int> stack{cfg.entryBlock()};
        block_reachable[cfg.entryBlock()] = 1;
        while (!stack.empty()) {
            int b = stack.back();
            stack.pop_back();
            for (int s : cfg.blocks()[b].succs) {
                if (!block_reachable[s]) {
                    block_reachable[s] = 1;
                    stack.push_back(s);
                }
            }
        }
    }

    if (opts.useBeforeDef) {
        DefiniteAssignment problem{method.numRegisters(),
                                   method.firstTempReg()};
        DataflowResult<DefiniteAssignment::Domain> r =
            solveDataflow(cfg, problem);
        for (const BasicBlock &block : cfg.blocks()) {
            if (block.first > block.last || !r.reached[block.id])
                continue;
            DefiniteAssignment::Domain env = r.atEntry[block.id];
            for (int i = block.first; i <= block.last; ++i) {
                const Instruction &instr = method.instr(i);
                for (int src : instr.srcs) {
                    if (!env[src]) {
                        out.push_back(
                            {at(i),
                             strCat("register r", src,
                                         " may be used before "
                                         "assignment"),
                             Severity::Error});
                    }
                }
                problem.transfer(i, instr, env);
            }
        }
    }

    if (opts.unreachableBlocks) {
        for (const BasicBlock &block : cfg.blocks()) {
            if (block.first > block.last)
                continue; // synthetic exit
            if (block_reachable[block.id])
                continue;
            out.push_back(
                {at(block.first),
                 strCat("unreachable basic block (instructions ",
                             block.first, "..", block.last, ")"),
                 Severity::Warning});
        }
    }

    if (opts.lockHeldAtPost) {
        MonitorDepth problem;
        DataflowResult<MonitorDepth::Domain> r =
            solveDataflow(cfg, problem);
        for (const BasicBlock &block : cfg.blocks()) {
            if (block.first > block.last || !r.reached[block.id])
                continue;
            MonitorDepth::Domain depth = r.atEntry[block.id];
            for (int i = block.first; i <= block.last; ++i) {
                const Instruction &instr = method.instr(i);
                if (instr.op == Opcode::Invoke && depth > 0) {
                    // With a module-backed classifier the super chain
                    // resolves app subclasses of Handler etc.; without
                    // one, direct framework references still match.
                    framework::ApiKind kind =
                        apis ? apis->classify(instr.method)
                             : framework::KnownApis::classifyExact(
                                   instr.method.className,
                                   instr.method.methodName);
                    if (isPostLikeApi(kind)) {
                        out.push_back(
                            {at(i),
                             strCat(instr.method.toString(),
                                    " called with a monitor held; "
                                    "the posted callback runs after "
                                    "the critical section and may "
                                    "race or re-enter it"),
                             Severity::Warning});
                    }
                }
                problem.transfer(i, instr, depth);
            }
        }
    }

    if (opts.deadStores) {
        const Liveness live(cfg);
        for (const BasicBlock &block : cfg.blocks()) {
            if (block.first > block.last ||
                !block_reachable[block.id])
                continue; // dead code is flagged above, not here
            for (int i = block.first; i <= block.last; ++i) {
                const Instruction &instr = method.instr(i);
                if (instr.dst < 0 || !isPureValueOp(instr.op))
                    continue;
                if (!live.liveAfter(i, instr.dst)) {
                    out.push_back(
                        {at(i),
                         strCat("dead store to r", instr.dst),
                         Severity::Warning});
                }
            }
        }
    }
}

/**
 * Resolve the object register `reg`, as of instruction `limit`, to the
 * instance field that keeps it alive across callbacks: either the
 * register was loaded from a field, or it holds a fresh allocation the
 * method also stores into one. Walks back through move chains; returns
 * "" when no field is found (the object dies with the method frame).
 */
std::string
fieldKeyOf(const Method &method, int limit, int reg)
{
    for (int i = limit - 1; i >= 0; --i) {
        const Instruction &in = method.instr(i);
        if (in.dst != reg)
            continue;
        if (in.op == Opcode::Move) {
            reg = in.srcs[0];
            continue;
        }
        if (in.op == Opcode::GetField)
            return in.field.toString();
        if (in.op == Opcode::New) {
            for (int j = 0; j < method.numInstrs(); ++j) {
                const Instruction &st = method.instr(j);
                if (st.op == Opcode::PutField && st.srcs[1] == reg)
                    return st.field.toString();
            }
            return {};
        }
        return {};
    }
    return {};
}

/**
 * Forward must-analysis over one teardown callback: the set of
 * registration keys unregistered/cleared on *every* path so far. Meet
 * is set intersection; keys are "recv:<field>" for unregisterReceiver
 * and "lsn:<field>#<setter>" for a null listener store.
 */
struct MustTeardown {
    using Domain = std::set<std::string>;
    static constexpr DataflowDirection kDirection =
        DataflowDirection::Forward;

    const Method *method;
    const framework::KnownApis *apis;

    Domain boundary() const { return {}; }

    bool
    merge(Domain &into, const Domain &from) const
    {
        bool changed = false;
        for (auto it = into.begin(); it != into.end();) {
            if (!from.count(*it)) {
                it = into.erase(it);
                changed = true;
            } else {
                ++it;
            }
        }
        return changed;
    }

    void
    transfer(int idx, const Instruction &instr, Domain &d) const
    {
        if (instr.op != Opcode::Invoke || instr.srcs.size() < 2)
            return;
        framework::ApiKind kind = apis->classify(instr.method);
        if (kind == framework::ApiKind::UnregisterReceiver) {
            std::string key = fieldKeyOf(*method, idx, instr.srcs[1]);
            if (!key.empty())
                d.insert("recv:" + key);
        } else if (kind == framework::ApiKind::SetListener &&
                   framework::KnownApis::isListenerClear(*method, idx)) {
            std::string key = fieldKeyOf(*method, idx, instr.srcs[0]);
            if (!key.empty())
                d.insert("lsn:" + key + "#" + instr.method.methodName);
        }
    }
};

/** Keys a class must-unregister in at least one teardown callback. */
std::set<std::string>
mustTeardownKeys(const air::Klass &klass,
                 const framework::KnownApis &apis)
{
    std::set<std::string> satisfied;
    for (const auto &m : klass.methods()) {
        if (!m->hasBody())
            continue;
        const std::string &n = m->name();
        if (n != "onPause" && n != "onStop" && n != "onDestroy")
            continue;
        const Cfg cfg(*m);
        MustTeardown problem{m.get(), &apis};
        DataflowResult<MustTeardown::Domain> r =
            solveDataflow(cfg, problem);
        // Meet over every reached return block: a key counts only if
        // all normal exits of this callback have seen the unregister.
        std::set<std::string> at_exit;
        bool first = true;
        for (const BasicBlock &block : cfg.blocks()) {
            if (block.first > block.last || !r.reached[block.id])
                continue;
            Opcode last = m->instr(block.last).op;
            if (last != Opcode::Return && last != Opcode::ReturnVoid)
                continue;
            if (first) {
                at_exit = r.atExit[block.id];
                first = false;
            } else {
                problem.merge(at_exit, r.atExit[block.id]);
            }
        }
        satisfied.insert(at_exit.begin(), at_exit.end());
    }
    return satisfied;
}

/**
 * The leaked-registration check: registrations made in lifecycle setup
 * callbacks that no teardown callback of the same class provably undoes
 * stay enabled past the component's useful lifetime — the classic
 * unregistered-receiver leak, and exactly the windows the enablement
 * refutation stage cannot close.
 */
void
lintLeakedRegistrations(const air::Klass &klass,
                        const framework::KnownApis &apis,
                        std::vector<VerifyIssue> &out)
{
    std::set<std::string> satisfied;
    bool satisfied_computed = false;
    for (const auto &m : klass.methods()) {
        if (!m->hasBody())
            continue;
        const std::string &n = m->name();
        if (n != "onCreate" && n != "onStart" && n != "onResume")
            continue;
        for (int i = 0; i < m->numInstrs(); ++i) {
            const Instruction &instr = m->instr(i);
            if (instr.op != Opcode::Invoke || instr.srcs.size() < 2)
                continue;
            framework::ApiKind kind = apis.classify(instr.method);
            std::string key;
            std::string message;
            if (kind == framework::ApiKind::RegisterReceiver) {
                std::string field =
                    fieldKeyOf(*m, i, instr.srcs[1]);
                if (field.empty()) {
                    message = "registered receiver is never stored in "
                              "a field and is not unregistered in any "
                              "teardown callback "
                              "(onPause/onStop/onDestroy)";
                } else {
                    key = "recv:" + field;
                    message = strCat(
                        "receiver ", field,
                        " registered here is not unregistered in any "
                        "teardown callback (onPause/onStop/onDestroy)");
                }
            } else if (kind == framework::ApiKind::SetListener &&
                       !framework::KnownApis::isListenerClear(*m, i)) {
                // Only listeners on field-held (long-lived) views leak;
                // views fetched from the activity's own layout die with
                // the view tree.
                std::string field =
                    fieldKeyOf(*m, i, instr.srcs[0]);
                if (field.empty())
                    continue;
                key = "lsn:" + field + "#" + instr.method.methodName;
                message = strCat(
                    "listener set on ", field,
                    " is not cleared in any teardown callback "
                    "(onPause/onStop/onDestroy)");
            } else {
                continue;
            }
            if (!key.empty()) {
                if (!satisfied_computed) {
                    satisfied = mustTeardownKeys(klass, apis);
                    satisfied_computed = true;
                }
                if (satisfied.count(key))
                    continue;
            }
            out.push_back({strCat(m->qualifiedName(), "@", i),
                           std::move(message), Severity::Warning});
        }
    }
}

} // namespace

std::vector<VerifyIssue>
lintMethod(const Method &method, const LintOptions &opts)
{
    std::vector<VerifyIssue> out;
    lintInto(method, opts, nullptr, out);
    return air::dedupeIssues(std::move(out));
}

std::vector<VerifyIssue>
lintModule(const air::Module &module, const LintOptions &opts)
{
    const framework::KnownApis apis(module);
    std::vector<VerifyIssue> out;
    for (const air::Klass *k : module.classes()) {
        for (const auto &m : k->methods())
            lintInto(*m, opts, &apis, out);
        if (opts.leakedRegistration)
            lintLeakedRegistrations(*k, apis, out);
    }
    return air::dedupeIssues(std::move(out));
}

} // namespace sierra::analysis
