#include "lint.hh"

#include <algorithm>

#include "air/logging.hh"
#include "cfg.hh"
#include "dataflow.hh"
#include "framework/known_api.hh"

namespace sierra::analysis {

using air::Instruction;
using air::Method;
using air::Opcode;
using air::Severity;
using air::VerifyIssue;

namespace {

/** Forward must-analysis: registers definitely assigned on every path
 *  from method entry. Meet is set intersection. */
struct DefiniteAssignment {
    using Domain = std::vector<char>;
    static constexpr DataflowDirection kDirection =
        DataflowDirection::Forward;

    int numRegisters;
    int firstTempReg;

    Domain
    boundary() const
    {
        Domain d(static_cast<size_t>(numRegisters), 0);
        for (int r = 0; r < firstTempReg; ++r)
            d[r] = 1; // `this` and parameters
        return d;
    }

    bool
    merge(Domain &into, const Domain &from) const
    {
        bool changed = false;
        for (size_t r = 0; r < into.size(); ++r) {
            if (into[r] && !from[r]) {
                into[r] = 0;
                changed = true;
            }
        }
        return changed;
    }

    void
    transfer(int, const Instruction &instr, Domain &d) const
    {
        if (instr.dst >= 0)
            d[instr.dst] = 1;
    }
};

/**
 * Forward may-analysis of the monitor nesting depth: how many monitors
 * might still be held at an instruction. Merge is max (a warning fires
 * if *some* path reaches the post with a lock held); depth is clamped
 * to [0, 8] so unmatched enters/exits cannot diverge the fixpoint.
 */
struct MonitorDepth {
    using Domain = int;
    static constexpr DataflowDirection kDirection =
        DataflowDirection::Forward;

    Domain boundary() const { return 0; }

    bool
    merge(Domain &into, const Domain &from) const
    {
        if (from > into) {
            into = from;
            return true;
        }
        return false;
    }

    void
    transfer(int, const Instruction &instr, Domain &d) const
    {
        if (instr.op == Opcode::MonitorEnter)
            d = std::min(d + 1, 8);
        else if (instr.op == Opcode::MonitorExit)
            d = std::max(d - 1, 0);
    }
};

/** The "post"-family APIs: the argument runs later on a looper queue,
 *  so a monitor held at the call protects none of its execution. */
bool
isPostLikeApi(framework::ApiKind kind)
{
    switch (kind) {
      case framework::ApiKind::HandlerPost:
      case framework::ApiKind::HandlerSendMessage:
      case framework::ApiKind::ViewPost:
      case framework::ApiKind::RunOnUiThread:
        return true;
      default:
        return false;
    }
}

/** Value-producing instructions with no side effect: eliding one only
 *  loses the register value, so an unread destination is a dead store.
 *  Loads, calls and allocations are excluded (effects / site identity),
 *  as are bodies where the value may escape some other way. */
bool
isPureValueOp(Opcode op)
{
    switch (op) {
      case Opcode::ConstInt:
      case Opcode::ConstStr:
      case Opcode::ConstNull:
      case Opcode::Move:
      case Opcode::BinOp:
      case Opcode::UnOp:
        return true;
      default:
        return false;
    }
}

void
lintInto(const Method &method, const LintOptions &opts,
         const framework::KnownApis *apis,
         std::vector<VerifyIssue> &out)
{
    if (!method.hasBody())
        return;
    const Cfg cfg(method);

    auto at = [&](int idx) {
        return strCat(method.qualifiedName(), "@", idx);
    };

    // Entry-reachability of blocks (instruction-level, via the CFG).
    std::vector<char> block_reachable(cfg.numBlocks(), 0);
    {
        std::vector<int> stack{cfg.entryBlock()};
        block_reachable[cfg.entryBlock()] = 1;
        while (!stack.empty()) {
            int b = stack.back();
            stack.pop_back();
            for (int s : cfg.blocks()[b].succs) {
                if (!block_reachable[s]) {
                    block_reachable[s] = 1;
                    stack.push_back(s);
                }
            }
        }
    }

    if (opts.useBeforeDef) {
        DefiniteAssignment problem{method.numRegisters(),
                                   method.firstTempReg()};
        DataflowResult<DefiniteAssignment::Domain> r =
            solveDataflow(cfg, problem);
        for (const BasicBlock &block : cfg.blocks()) {
            if (block.first > block.last || !r.reached[block.id])
                continue;
            DefiniteAssignment::Domain env = r.atEntry[block.id];
            for (int i = block.first; i <= block.last; ++i) {
                const Instruction &instr = method.instr(i);
                for (int src : instr.srcs) {
                    if (!env[src]) {
                        out.push_back(
                            {at(i),
                             strCat("register r", src,
                                         " may be used before "
                                         "assignment"),
                             Severity::Error});
                    }
                }
                problem.transfer(i, instr, env);
            }
        }
    }

    if (opts.unreachableBlocks) {
        for (const BasicBlock &block : cfg.blocks()) {
            if (block.first > block.last)
                continue; // synthetic exit
            if (block_reachable[block.id])
                continue;
            out.push_back(
                {at(block.first),
                 strCat("unreachable basic block (instructions ",
                             block.first, "..", block.last, ")"),
                 Severity::Warning});
        }
    }

    if (opts.lockHeldAtPost) {
        MonitorDepth problem;
        DataflowResult<MonitorDepth::Domain> r =
            solveDataflow(cfg, problem);
        for (const BasicBlock &block : cfg.blocks()) {
            if (block.first > block.last || !r.reached[block.id])
                continue;
            MonitorDepth::Domain depth = r.atEntry[block.id];
            for (int i = block.first; i <= block.last; ++i) {
                const Instruction &instr = method.instr(i);
                if (instr.op == Opcode::Invoke && depth > 0) {
                    // With a module-backed classifier the super chain
                    // resolves app subclasses of Handler etc.; without
                    // one, direct framework references still match.
                    framework::ApiKind kind =
                        apis ? apis->classify(instr.method)
                             : framework::KnownApis::classifyExact(
                                   instr.method.className,
                                   instr.method.methodName);
                    if (isPostLikeApi(kind)) {
                        out.push_back(
                            {at(i),
                             strCat(instr.method.toString(),
                                    " called with a monitor held; "
                                    "the posted callback runs after "
                                    "the critical section and may "
                                    "race or re-enter it"),
                             Severity::Warning});
                    }
                }
                problem.transfer(i, instr, depth);
            }
        }
    }

    if (opts.deadStores) {
        const Liveness live(cfg);
        for (const BasicBlock &block : cfg.blocks()) {
            if (block.first > block.last ||
                !block_reachable[block.id])
                continue; // dead code is flagged above, not here
            for (int i = block.first; i <= block.last; ++i) {
                const Instruction &instr = method.instr(i);
                if (instr.dst < 0 || !isPureValueOp(instr.op))
                    continue;
                if (!live.liveAfter(i, instr.dst)) {
                    out.push_back(
                        {at(i),
                         strCat("dead store to r", instr.dst),
                         Severity::Warning});
                }
            }
        }
    }
}

} // namespace

std::vector<VerifyIssue>
lintMethod(const Method &method, const LintOptions &opts)
{
    std::vector<VerifyIssue> out;
    lintInto(method, opts, nullptr, out);
    return air::dedupeIssues(std::move(out));
}

std::vector<VerifyIssue>
lintModule(const air::Module &module, const LintOptions &opts)
{
    const framework::KnownApis apis(module);
    std::vector<VerifyIssue> out;
    for (const air::Klass *k : module.classes()) {
        for (const auto &m : k->methods())
            lintInto(*m, opts, &apis, out);
    }
    return air::dedupeIssues(std::move(out));
}

} // namespace sierra::analysis
