#include "ifds.hh"

#include <algorithm>
#include <optional>

#include "air/logging.hh"
#include "cfg.hh"
#include "dataflow.hh"

namespace sierra::analysis {

using air::Instruction;
using air::Opcode;

namespace {

ConstVal
constTop()
{
    ConstVal v;
    v.state = ConstVal::State::Top;
    return v;
}

ConstVal
constOf(int64_t value)
{
    ConstVal v;
    v.state = ConstVal::State::Const;
    v.value = value;
    return v;
}

/** Meet of two (Const | Top) values, Bottom treated as Top. This is
 *  the path-join used inside one method's SCCP solve. */
ConstVal
constMeet(const ConstVal &a, const ConstVal &b)
{
    if (a.isConst() && b.isConst() && a.value == b.value)
        return a;
    return constTop();
}

/** Optimistic join used across the interprocedural fixpoint: Bottom
 *  is the identity, conflicting constants rise to Top. */
ConstVal
constJoin(const ConstVal &a, const ConstVal &b)
{
    if (a.state == ConstVal::State::Bottom)
        return b;
    if (b.state == ConstVal::State::Bottom)
        return a;
    if (a.isConst() && b.isConst() && a.value == b.value)
        return a;
    return constTop();
}

bool
sameVal(const ConstVal &a, const ConstVal &b)
{
    return a.state == b.state && (!a.isConst() || a.value == b.value);
}

/** Decide a conditional branch under a register environment.
 *  @return 1 = always taken, 0 = never taken, -1 = unknown. */
int
evalBranch(const Instruction &instr, const std::vector<ConstVal> &env)
{
    const ConstVal &lhs = env[instr.srcs[0]];
    if (!lhs.isConst())
        return -1;
    int64_t rhs = 0;
    if (instr.op == Opcode::If) {
        const ConstVal &r = env[instr.srcs[1]];
        if (!r.isConst())
            return -1;
        rhs = r.value;
    }
    return air::evalCond(instr.cond, lhs.value, rhs) ? 1 : 0;
}

/** Identity of one field in the may/must-write summaries (string
 * identity: IFDS summaries are method-scoped and cross harnesses, so
 * they cannot use per-result interned ids). */
struct FieldSlot {
    bool isStatic{false};
    std::string klass;
    std::string field;

    bool operator<(const FieldSlot &o) const
    {
        if (isStatic != o.isStatic)
            return isStatic < o.isStatic;
        if (klass != o.klass)
            return klass < o.klass;
        return field < o.field;
    }
    bool operator==(const FieldSlot &o) const
    {
        return isStatic == o.isStatic && klass == o.klass &&
               field == o.field;
    }
};

/** "Definitely written on every path; last value if known." */
struct WriteVal {
    bool known{false};
    int64_t value{0};
};

using MustEnv = std::map<FieldSlot, WriteVal>;

/** Meet of two must-write environments: intersect keys, values must
 *  agree to stay known. Returns true if `into` changed. */
bool
mustMeet(MustEnv &into, const MustEnv &from)
{
    bool changed = false;
    for (auto it = into.begin(); it != into.end();) {
        auto jt = from.find(it->first);
        if (jt == from.end()) {
            it = into.erase(it);
            changed = true;
            continue;
        }
        if (it->second.known &&
            (!jt->second.known ||
             jt->second.value != it->second.value)) {
            it->second.known = false;
            changed = true;
        }
        ++it;
    }
    return changed;
}

} // namespace

// ---------------------------------------------------------------------
// Engine state
// ---------------------------------------------------------------------

struct InterConstants::MethodInfo {
    const air::Method *method{nullptr};
    std::unique_ptr<Cfg> cfg;
    /** Framework-invoked (action entry / harness root / no callers):
     *  parameters pinned to Top. */
    bool open{false};
    /** Register 0 (`this`) is never redefined in the body. */
    bool thisStable{false};
    int rpo{0};
    int solves{0};

    /** Join of actuals over every call site (size firstTempReg). */
    std::vector<ConstVal> params;
    /** Join of the values the method can return. */
    ConstVal ret;

    /** Per call instruction: universe indices of resolvable callees. */
    std::map<int, std::vector<int>> calleesAt;
    /** Call instructions that may also dispatch to a bodiless target
     *  (return value must stay unknown). */
    std::set<int> unresolvedAt;
    std::vector<int> callers; //!< universe indices, sorted unique

    // Final per-instruction facts (from the converged last solve).
    std::vector<std::vector<ConstVal>> before;
    std::vector<char> reachable;
    std::set<std::pair<int, int>> infeasible;

    // Summaries of field writes.
    std::map<FieldSlot, char> mayWriteOnlyThis; //!< present = may write
    std::vector<MustWrite> mustWrites;
    bool mustDone{false};
};

int
InterConstants::indexOf(const air::Method *m) const
{
    auto it = _index.find(m);
    return it == _index.end() ? -1 : it->second;
}

void
InterConstants::buildUniverse()
{
    for (NodeId n = 0; n < _r.cg.numNodes(); ++n) {
        const air::Method *m = _r.cg.node(n).method;
        if (!m || !m->hasBody() || _index.count(m))
            continue;
        _index.emplace(m, static_cast<int>(_methods.size()));
        MethodInfo mi;
        mi.method = m;
        mi.cfg = std::make_unique<Cfg>(*m);
        mi.params.assign(static_cast<size_t>(m->firstTempReg()),
                         ConstVal{});
        mi.thisStable = !m->isStatic();
        for (int i = 0; i < m->numInstrs() && mi.thisStable; ++i) {
            if (m->instr(i).dst == 0)
                mi.thisStable = false;
        }
        _methods.push_back(std::move(mi));
    }
    _stats.methods = static_cast<int64_t>(_methods.size());

    // Framework-invoked entries: every action entry plus the harness
    // root. Their parameters carry framework values -- pin them Top.
    auto markOpen = [&](NodeId n) {
        if (n < 0)
            return;
        int idx = indexOf(_r.cg.node(n).method);
        if (idx >= 0)
            _methods[idx].open = true;
    };
    markOpen(_r.rootNode);
    for (const Action &a : _r.actions.all())
        markOpen(a.entryNode);
}

void
InterConstants::buildCallLists()
{
    std::vector<std::set<int>> callers(_methods.size());
    for (NodeId n = 0; n < _r.cg.numNodes(); ++n) {
        int caller = indexOf(_r.cg.node(n).method);
        if (caller < 0)
            continue;
        MethodInfo &mi = _methods[caller];
        for (const CGEdge &edge : _r.cg.edgesOf(n)) {
            int instr = _r.sites.instrOf(edge.site);
            const air::Method *cm = _r.cg.node(edge.callee).method;
            int callee = cm ? indexOf(cm) : -1;
            if (callee < 0) {
                mi.unresolvedAt.insert(instr);
                continue;
            }
            std::vector<int> &at = mi.calleesAt[instr];
            if (std::find(at.begin(), at.end(), callee) == at.end())
                at.push_back(callee);
            callers[static_cast<size_t>(callee)].insert(caller);
        }
    }
    for (size_t i = 0; i < _methods.size(); ++i) {
        MethodInfo &mi = _methods[i];
        for (auto &[instr, at] : mi.calleesAt)
            std::sort(at.begin(), at.end());
        mi.callers.assign(callers[i].begin(), callers[i].end());
        // A method no harness code calls is framework-invoked too.
        if (mi.callers.empty())
            mi.open = true;
    }
}

void
InterConstants::computeRpo()
{
    // Reverse post-order over the method-level call graph from the
    // open (framework-invoked) methods, so callers generally solve
    // before their callees and actuals are seeded early.
    const int n = static_cast<int>(_methods.size());
    std::vector<int> postorder;
    std::vector<char> seen(static_cast<size_t>(n), 0);
    auto dfs = [&](int root) {
        std::vector<std::pair<int, size_t>> stack{{root, 0}};
        seen[static_cast<size_t>(root)] = 1;
        std::vector<std::vector<int>> succs_cache(
            static_cast<size_t>(n));
        while (!stack.empty()) {
            auto &[m, cursor] = stack.back();
            std::vector<int> &succs =
                succs_cache[static_cast<size_t>(m)];
            if (succs.empty() && cursor == 0) {
                std::set<int> s;
                for (const auto &[instr, at] :
                     _methods[static_cast<size_t>(m)].calleesAt)
                    s.insert(at.begin(), at.end());
                succs.assign(s.begin(), s.end());
            }
            if (cursor < succs.size()) {
                int t = succs[cursor++];
                if (!seen[static_cast<size_t>(t)]) {
                    seen[static_cast<size_t>(t)] = 1;
                    stack.push_back({t, 0});
                }
            } else {
                postorder.push_back(m);
                stack.pop_back();
            }
        }
    };
    for (int i = 0; i < n; ++i) {
        if (_methods[static_cast<size_t>(i)].open &&
            !seen[static_cast<size_t>(i)])
            dfs(i);
    }
    for (int i = 0; i < n; ++i) {
        if (!seen[static_cast<size_t>(i)])
            dfs(i);
    }
    int next = 0;
    for (auto it = postorder.rbegin(); it != postorder.rend(); ++it)
        _methods[static_cast<size_t>(*it)].rpo = next++;
}

namespace {

/** The per-method SCCP problem, seeded with the interprocedural
 *  parameter facts and callee return summaries. */
struct SeededConstProblem {
    using Domain = std::vector<ConstVal>;
    static constexpr DataflowDirection kDirection =
        DataflowDirection::Forward;

    int numRegisters;
    int numFrameRegs;
    bool open;
    const std::vector<ConstVal> *params;
    /** dst value of each Invoke instruction under current summaries. */
    const std::map<int, ConstVal> *invokeReturns;

    Domain
    boundary() const
    {
        Domain d(static_cast<size_t>(numRegisters), constTop());
        if (!open) {
            for (int r = 0; r < numFrameRegs; ++r)
                d[static_cast<size_t>(r)] =
                    (*params)[static_cast<size_t>(r)];
        }
        return d;
    }

    bool
    merge(Domain &into, const Domain &from) const
    {
        bool changed = false;
        for (size_t r = 0; r < into.size(); ++r) {
            ConstVal met = constMeet(into[r], from[r]);
            if (!sameVal(met, into[r])) {
                into[r] = met;
                changed = true;
            }
        }
        return changed;
    }

    void
    transfer(int instr_idx, const Instruction &instr, Domain &d) const
    {
        if (instr.op == Opcode::Invoke) {
            if (instr.dst >= 0) {
                auto it = invokeReturns->find(instr_idx);
                d[static_cast<size_t>(instr.dst)] =
                    it != invokeReturns->end() ? it->second
                                               : constTop();
            }
            return;
        }
        MethodConstants::transferInstr(instr, d);
    }

    bool
    edgeTransfer(const Cfg &cfg, int from, int to, Domain &d) const
    {
        const auto &fb = cfg.blocks()[from];
        if (fb.first > fb.last)
            return true; // synthetic exit block
        const Instruction &last = cfg.method().instr(fb.last);
        if (!last.isConditionalBranch())
            return true;
        const int target_block = cfg.blockOf(last.target);
        const int fall_block =
            fb.last + 1 < cfg.method().numInstrs()
                ? cfg.blockOf(fb.last + 1)
                : -1;
        if (target_block == fall_block)
            return true; // one edge either way: no information

        const bool is_target_edge = to == target_block;
        const int verdict = evalBranch(last, d);
        if (verdict == 1 && !is_target_edge)
            return false;
        if (verdict == 0 && is_target_edge)
            return false;

        // Refine an equality edge, as the intraprocedural SCCP does.
        air::CondKind effective =
            is_target_edge ? last.cond : air::negateCond(last.cond);
        if (effective == air::CondKind::Eq) {
            int reg = -1;
            int64_t value = 0;
            if (last.op == Opcode::IfZ) {
                reg = last.srcs[0];
                value = 0;
            } else if (d[last.srcs[1]].isConst()) {
                reg = last.srcs[0];
                value = d[last.srcs[1]].value;
            } else if (d[last.srcs[0]].isConst()) {
                reg = last.srcs[1];
                value = d[last.srcs[0]].value;
            }
            if (reg >= 0 && !d[reg].isConst())
                d[reg] = constOf(value);
        }
        return true;
    }
};

} // namespace

/**
 * (Re-)summarize one method under the current interprocedural facts:
 * record its per-instruction facts, join its actuals into callee
 * parameter summaries, and recompute its return summary.
 * @return true if the return summary changed.
 */
bool
InterConstants::solveOne(int idx)
{
    MethodInfo &mi = _methods[static_cast<size_t>(idx)];
    const air::Method &m = *mi.method;
    const Cfg &cfg = *mi.cfg;
    const int n = m.numInstrs();

    // The callee return summary of each call, fixed for this solve.
    std::map<int, ConstVal> invoke_returns;
    for (const auto &[instr, at] : mi.calleesAt) {
        if (mi.unresolvedAt.count(instr)) {
            invoke_returns.emplace(instr, constTop());
            continue;
        }
        ConstVal v; // Bottom
        for (int c : at)
            v = constJoin(v, _methods[static_cast<size_t>(c)].ret);
        invoke_returns.emplace(instr, v);
    }

    SeededConstProblem problem{m.numRegisters(), m.firstTempReg(),
                               mi.open, &mi.params, &invoke_returns};
    DataflowResult<SeededConstProblem::Domain> r =
        solveDataflow(cfg, problem);

    mi.reachable.assign(static_cast<size_t>(n), 0);
    mi.before.assign(static_cast<size_t>(n),
                     std::vector<ConstVal>(
                         static_cast<size_t>(m.numRegisters())));
    mi.infeasible.clear();

    ConstVal ret; // Bottom
    for (const BasicBlock &block : cfg.blocks()) {
        if (block.first > block.last || !r.reached[block.id])
            continue;
        std::vector<ConstVal> env = r.atEntry[block.id];
        for (int i = block.first; i <= block.last; ++i) {
            ++_stats.statesVisited;
            mi.reachable[static_cast<size_t>(i)] = 1;
            mi.before[static_cast<size_t>(i)] = env;
            const Instruction &instr = m.instr(i);
            if (instr.op == Opcode::Invoke) {
                // Flow actuals into the formal summaries of callees.
                auto at = mi.calleesAt.find(i);
                if (at != mi.calleesAt.end()) {
                    for (int c : at->second) {
                        MethodInfo &cm =
                            _methods[static_cast<size_t>(c)];
                        if (cm.open)
                            continue;
                        for (size_t a = 0; a < cm.params.size();
                             ++a) {
                            ConstVal v =
                                a < instr.srcs.size()
                                    ? env[static_cast<size_t>(
                                          instr.srcs[a])]
                                    : constTop();
                            ConstVal joined =
                                constJoin(cm.params[a], v);
                            if (!sameVal(joined, cm.params[a])) {
                                cm.params[a] = joined;
                                _paramsDirty.insert(c);
                            }
                        }
                    }
                }
                problem.transfer(i, instr, env);
            } else {
                MethodConstants::transferInstr(instr, env);
            }
            if (instr.op == Opcode::Return)
                ret = constJoin(
                    ret, mi.before[static_cast<size_t>(i)]
                                  [static_cast<size_t>(
                                      instr.srcs[0])]);
        }

        // Record branch edges the fixpoint proved infeasible.
        const Instruction &last = m.instr(block.last);
        if (!last.isConditionalBranch())
            continue;
        const int target_block = cfg.blockOf(last.target);
        const int fall_block =
            block.last + 1 < n ? cfg.blockOf(block.last + 1) : -1;
        if (target_block == fall_block)
            continue;
        const int verdict =
            evalBranch(last, mi.before[static_cast<size_t>(block.last)]);
        if (verdict == 1 && fall_block >= 0)
            mi.infeasible.insert({block.last, block.last + 1});
        else if (verdict == 0)
            mi.infeasible.insert({block.last, last.target});
    }

    // Monotone replacement keeps termination independent of
    // reachability wobbles near the fixpoint.
    ret = constJoin(mi.ret, ret);
    if (sameVal(ret, mi.ret))
        return false;
    mi.ret = ret;
    return true;
}

void
InterConstants::runFixpoint()
{
    std::set<std::pair<int, int>> worklist; // (rpo, index)
    for (size_t i = 0; i < _methods.size(); ++i)
        worklist.insert({_methods[i].rpo, static_cast<int>(i)});

    while (!worklist.empty()) {
        auto [rpo, idx] = *worklist.begin();
        (void)rpo;
        worklist.erase(worklist.begin());
        MethodInfo &mi = _methods[static_cast<size_t>(idx)];
        if (mi.solves >= _opts.maxSolvesPerMethod ||
            _stats.statesVisited > _opts.maxStates) {
            _stats.budgetExhausted = true;
            return;
        }
        ++mi.solves;
        ++_stats.summaryComputations;
        _paramsDirty.clear();
        bool ret_changed = solveOne(idx);
        for (int c : _paramsDirty)
            worklist.insert({_methods[static_cast<size_t>(c)].rpo, c});
        if (ret_changed) {
            for (int caller : mi.callers)
                worklist.insert(
                    {_methods[static_cast<size_t>(caller)].rpo,
                     caller});
        }
    }
}

void
InterConstants::computeMayWrites()
{
    // Transitive may-write sets with an "only via this" flag per
    // field, to fixpoint (entries only appear, flags only drop).
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < _methods.size(); ++i) {
            MethodInfo &mi = _methods[i];
            const air::Method &m = *mi.method;
            auto record = [&](const FieldSlot &id, bool via_this) {
                auto [it, inserted] =
                    mi.mayWriteOnlyThis.emplace(id, via_this ? 1 : 0);
                if (inserted) {
                    changed = true;
                } else if (it->second && !via_this) {
                    it->second = 0;
                    changed = true;
                }
            };
            for (int k = 0; k < m.numInstrs(); ++k) {
                const Instruction &instr = m.instr(k);
                switch (instr.op) {
                  case Opcode::PutField:
                    record({false, instr.field.className,
                            instr.field.fieldName},
                           !m.isStatic() && instr.srcs[0] == 0 &&
                               mi.thisStable);
                    break;
                  case Opcode::PutStatic:
                    // One global cell: "exclusive" by construction.
                    record({true, instr.field.className,
                            instr.field.fieldName},
                           true);
                    break;
                  case Opcode::Invoke: {
                    auto at = mi.calleesAt.find(k);
                    if (at == mi.calleesAt.end())
                        break;
                    bool this_recv =
                        !m.isStatic() && mi.thisStable &&
                        !instr.srcs.empty() && instr.srcs[0] == 0;
                    for (int c : at->second) {
                        const MethodInfo &cm =
                            _methods[static_cast<size_t>(c)];
                        for (const auto &[id, via] :
                             cm.mayWriteOnlyThis) {
                            bool keeps_chain =
                                id.isStatic ||
                                (via && this_recv &&
                                 !cm.method->isStatic());
                            record(id, id.isStatic ? true
                                                   : keeps_chain &&
                                                         via);
                        }
                    }
                    break;
                  }
                  default:
                    break;
                }
            }
        }
    }
}

void
InterConstants::computeMustWrites()
{
    // Callees first (descending RPO); recursive edges to a method not
    // yet summarized fall back to may-write invalidation only.
    std::vector<int> order(_methods.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return _methods[static_cast<size_t>(a)].rpo >
               _methods[static_cast<size_t>(b)].rpo;
    });

    for (int idx : order) {
        MethodInfo &mi = _methods[static_cast<size_t>(idx)];
        const air::Method &m = *mi.method;
        const Cfg &cfg = *mi.cfg;

        auto transferInstr = [&](int i, const Instruction &instr,
                                 MustEnv &env) {
            ++_stats.statesVisited;
            switch (instr.op) {
              case Opcode::PutField: {
                FieldSlot id{false, instr.field.className,
                           instr.field.fieldName};
                if (!m.isStatic() && instr.srcs[0] == 0 &&
                    mi.thisStable) {
                    ConstVal v =
                        mi.before[static_cast<size_t>(i)]
                                 [static_cast<size_t>(instr.srcs[1])];
                    env[id] = v.isConst() ? WriteVal{true, v.value}
                                          : WriteVal{};
                } else if (auto it = env.find(id); it != env.end()) {
                    // A write through a maybe-aliasing base: the
                    // last value of the `this` cell is now unknown.
                    it->second.known = false;
                }
                break;
              }
              case Opcode::PutStatic: {
                ConstVal v =
                    mi.before[static_cast<size_t>(i)]
                             [static_cast<size_t>(instr.srcs[0])];
                env[FieldSlot{true, instr.field.className,
                            instr.field.fieldName}] =
                    v.isConst() ? WriteVal{true, v.value}
                                : WriteVal{};
                break;
              }
              case Opcode::Invoke: {
                auto at = mi.calleesAt.find(i);
                if (at == mi.calleesAt.end())
                    break; // framework call: no app-field writes
                bool this_recv =
                    !m.isStatic() && mi.thisStable &&
                    !instr.srcs.empty() && instr.srcs[0] == 0;
                // Intersection of the callee summaries (a virtual
                // call runs exactly one of them).
                std::map<FieldSlot, MustWrite> applied;
                bool first = true;
                bool all_done = true;
                for (int c : at->second)
                    all_done &= _methods[static_cast<size_t>(c)]
                                    .mustDone;
                if (all_done) {
                    for (int c : at->second) {
                        const MethodInfo &cm =
                            _methods[static_cast<size_t>(c)];
                        std::map<FieldSlot, MustWrite> cur;
                        for (const MustWrite &mw : cm.mustWrites) {
                            if (!mw.isStatic &&
                                !(this_recv &&
                                  !cm.method->isStatic()))
                                continue;
                            cur.emplace(
                                FieldSlot{mw.isStatic,
                                        mw.field.className,
                                        mw.field.fieldName},
                                mw);
                        }
                        if (first) {
                            applied = std::move(cur);
                            first = false;
                        } else {
                            for (auto it = applied.begin();
                                 it != applied.end();) {
                                auto jt = cur.find(it->first);
                                if (jt == cur.end() ||
                                    jt->second.value !=
                                        it->second.value) {
                                    it = applied.erase(it);
                                } else {
                                    it->second.exclusive &=
                                        jt->second.exclusive;
                                    ++it;
                                }
                            }
                        }
                    }
                }
                // Everything else the callees may write loses its
                // known last value.
                for (int c : at->second) {
                    const MethodInfo &cm =
                        _methods[static_cast<size_t>(c)];
                    for (const auto &[id, via] :
                         cm.mayWriteOnlyThis) {
                        if (applied.count(id))
                            continue;
                        if (auto it = env.find(id); it != env.end())
                            it->second.known = false;
                    }
                }
                for (const auto &[id, mw] : applied)
                    env[id] = WriteVal{true, mw.value};
                break;
              }
              default:
                break;
            }
        };

        // Forward block fixpoint with intersection meet. The domain
        // only descends, so plain iteration terminates.
        const std::vector<int> block_order =
            dataflow_detail::blockOrder(cfg,
                                        DataflowDirection::Forward);
        std::vector<int> priority(
            static_cast<size_t>(cfg.numBlocks()), 0);
        for (size_t p = 0; p < block_order.size(); ++p)
            priority[static_cast<size_t>(block_order[p])] =
                static_cast<int>(p);
        std::vector<std::optional<MustEnv>> in(
            static_cast<size_t>(cfg.numBlocks()));
        in[static_cast<size_t>(cfg.entryBlock())] = MustEnv{};
        std::set<std::pair<int, int>> worklist{
            {priority[static_cast<size_t>(cfg.entryBlock())],
             cfg.entryBlock()}};
        MustEnv exit_env;
        bool exit_seen = false;
        while (!worklist.empty()) {
            int b = worklist.begin()->second;
            worklist.erase(worklist.begin());
            const BasicBlock &block =
                cfg.blocks()[static_cast<size_t>(b)];
            MustEnv env = *in[static_cast<size_t>(b)];
            if (block.first <= block.last) {
                for (int i = block.first; i <= block.last; ++i) {
                    const Instruction &instr = m.instr(i);
                    const bool is_exit =
                        instr.op == Opcode::Return ||
                        instr.op == Opcode::ReturnVoid ||
                        instr.op == Opcode::Throw;
                    if (is_exit &&
                        mi.reachable[static_cast<size_t>(i)]) {
                        if (!exit_seen) {
                            exit_env = env;
                            exit_seen = true;
                        } else {
                            mustMeet(exit_env, env);
                        }
                    }
                    transferInstr(i, instr, env);
                }
            }
            for (int s : block.succs) {
                auto &succ_in = in[static_cast<size_t>(s)];
                if (!succ_in) {
                    succ_in = env;
                } else if (!mustMeet(*succ_in, env)) {
                    continue;
                }
                worklist.insert(
                    {priority[static_cast<size_t>(s)], s});
            }
        }

        if (exit_seen) {
            for (const auto &[id, wv] : exit_env) {
                if (!wv.known)
                    continue;
                MustWrite mw;
                mw.field = air::FieldRef{id.klass, id.field};
                mw.isStatic = id.isStatic;
                mw.value = wv.value;
                auto via = mi.mayWriteOnlyThis.find(id);
                mw.exclusive =
                    id.isStatic ||
                    (via != mi.mayWriteOnlyThis.end() &&
                     via->second != 0);
                mi.mustWrites.push_back(std::move(mw));
            }
            std::sort(mi.mustWrites.begin(), mi.mustWrites.end());
        }
        mi.mustDone = true;
    }
}

void
InterConstants::countSummaryStats()
{
    std::set<int> used;
    for (const MethodInfo &mi : _methods) {
        if (!mi.open) {
            for (const ConstVal &p : mi.params)
                _stats.paramConsts += p.isConst() ? 1 : 0;
        }
        _stats.returnConsts += mi.ret.isConst() ? 1 : 0;
        _stats.mustWriteFacts +=
            static_cast<int64_t>(mi.mustWrites.size());
        for (const auto &[instr, at] : mi.calleesAt) {
            for (int c : at) {
                ++_stats.callSites;
                if (!used.insert(c).second)
                    ++_stats.summaryReuses;
            }
        }
    }
}

InterConstants::InterConstants(const PointsToResult &result,
                               IfdsOptions options)
    : _r(result), _opts(options)
{
    buildUniverse();
    buildCallLists();
    computeRpo();
    runFixpoint();
    if (!_stats.budgetExhausted)
        computeMayWrites();
    if (!_stats.budgetExhausted)
        computeMustWrites();
    if (_stats.budgetExhausted) {
        // Partial fixpoints are not sound facts: degrade to "know
        // nothing" rather than answer from a stale lattice.
        for (MethodInfo &mi : _methods) {
            mi.before.clear();
            mi.reachable.clear();
            mi.infeasible.clear();
            mi.mustWrites.clear();
            mi.ret = constTop();
        }
    }
    countSummaryStats();
}

InterConstants::~InterConstants() = default;

ConstVal
InterConstants::before(const air::Method *m, int instr, int reg) const
{
    int idx = indexOf(m);
    if (idx < 0 || _stats.budgetExhausted)
        return constTop();
    const MethodInfo &mi = _methods[static_cast<size_t>(idx)];
    if (instr < 0 ||
        static_cast<size_t>(instr) >= mi.reachable.size() ||
        !mi.reachable[static_cast<size_t>(instr)])
        return constTop();
    return mi.before[static_cast<size_t>(instr)]
                    [static_cast<size_t>(reg)];
}

ConstVal
InterConstants::after(const air::Method *m, int instr, int reg) const
{
    int idx = indexOf(m);
    if (idx < 0 || _stats.budgetExhausted)
        return constTop();
    const MethodInfo &mi = _methods[static_cast<size_t>(idx)];
    if (instr < 0 ||
        static_cast<size_t>(instr) >= mi.reachable.size() ||
        !mi.reachable[static_cast<size_t>(instr)])
        return constTop();
    std::vector<ConstVal> env = mi.before[static_cast<size_t>(instr)];
    const Instruction &in = m->instr(instr);
    if (in.op == Opcode::Invoke) {
        if (in.dst >= 0) {
            ConstVal v = constTop();
            if (!mi.unresolvedAt.count(instr)) {
                auto at = mi.calleesAt.find(instr);
                if (at != mi.calleesAt.end()) {
                    v = ConstVal{};
                    for (int c : at->second)
                        v = constJoin(
                            v,
                            _methods[static_cast<size_t>(c)].ret);
                }
            }
            env[static_cast<size_t>(in.dst)] = v;
        }
    } else {
        MethodConstants::transferInstr(in, env);
    }
    return env[static_cast<size_t>(reg)];
}

bool
InterConstants::reachable(const air::Method *m, int instr) const
{
    int idx = indexOf(m);
    if (idx < 0 || _stats.budgetExhausted)
        return true;
    const MethodInfo &mi = _methods[static_cast<size_t>(idx)];
    if (instr < 0 || static_cast<size_t>(instr) >= mi.reachable.size())
        return true;
    return mi.reachable[static_cast<size_t>(instr)] != 0;
}

bool
InterConstants::edgeFeasible(const air::Method *m, int from_instr,
                             int to_instr) const
{
    int idx = indexOf(m);
    if (idx < 0 || _stats.budgetExhausted)
        return true;
    return !_methods[static_cast<size_t>(idx)].infeasible.count(
        {from_instr, to_instr});
}

ConstVal
InterConstants::returnConst(const air::Method *m) const
{
    int idx = indexOf(m);
    if (idx < 0 || _stats.budgetExhausted)
        return constTop();
    return _methods[static_cast<size_t>(idx)].ret;
}

const std::vector<InterConstants::MustWrite> &
InterConstants::mustWrites(const air::Method *m) const
{
    static const std::vector<MustWrite> empty;
    int idx = indexOf(m);
    if (idx < 0 || _stats.budgetExhausted)
        return empty;
    return _methods[static_cast<size_t>(idx)].mustWrites;
}

int
InterConstants::solveCountOf(const air::Method *m) const
{
    int idx = indexOf(m);
    return idx < 0 ? 0 : _methods[static_cast<size_t>(idx)].solves;
}

// ---------------------------------------------------------------------
// Summary export (consumed by analysis/store and docs/CACHING.md)
// ---------------------------------------------------------------------

std::vector<InterConstants::ExportedSummary>
InterConstants::exportSummaries() const
{
    std::vector<ExportedSummary> out;
    out.reserve(_methods.size());
    for (const MethodInfo &mi : _methods) {
        ExportedSummary s;
        s.method = mi.method->qualifiedName();
        s.open = mi.open;
        s.params = mi.params;
        s.ret = mi.ret;
        s.mustWrites = mi.mustWrites;
        std::set<std::string> callees;
        for (const auto &[instr, at] : mi.calleesAt) {
            for (int callee : at) {
                callees.insert(_methods[static_cast<size_t>(callee)]
                                   .method->qualifiedName());
            }
        }
        s.callees.assign(callees.begin(), callees.end());
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const ExportedSummary &a, const ExportedSummary &b) {
                  return a.method < b.method;
              });
    return out;
}

namespace {

char
stateChar(ConstVal::State s)
{
    switch (s) {
      case ConstVal::State::Bottom: return 'B';
      case ConstVal::State::Const: return 'C';
      case ConstVal::State::Top: return 'T';
    }
    return 'T';
}

bool
parseStateChar(char c, ConstVal::State &out)
{
    switch (c) {
      case 'B': out = ConstVal::State::Bottom; return true;
      case 'C': out = ConstVal::State::Const; return true;
      case 'T': out = ConstVal::State::Top; return true;
      default: return false;
    }
}

} // namespace

std::string
serializeSummaries(const std::vector<InterConstants::ExportedSummary> &s)
{
    std::ostringstream os;
    for (const auto &sum : s) {
        os << "m " << sum.method << " " << (sum.open ? 1 : 0) << " "
           << stateChar(sum.ret.state) << " " << sum.ret.value << "\n";
        for (size_t i = 0; i < sum.params.size(); ++i) {
            os << "p " << i << " " << stateChar(sum.params[i].state)
               << " " << sum.params[i].value << "\n";
        }
        for (const auto &w : sum.mustWrites) {
            os << "w " << w.field.className << " " << w.field.fieldName
               << " " << (w.isStatic ? 1 : 0) << " "
               << (w.exclusive ? 1 : 0) << " " << w.value << "\n";
        }
        for (const std::string &callee : sum.callees)
            os << "c " << callee << "\n";
    }
    return os.str();
}

std::vector<InterConstants::ExportedSummary>
parseSummaries(const std::string &blob)
{
    std::vector<InterConstants::ExportedSummary> out;
    std::istringstream in(blob);
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag))
            continue;
        if (tag == "m") {
            InterConstants::ExportedSummary s;
            int open;
            char st;
            if (!(ls >> s.method >> open >> st >> s.ret.value) ||
                !parseStateChar(st, s.ret.state))
                continue;
            s.open = open != 0;
            out.push_back(std::move(s));
        } else if (out.empty()) {
            continue; // facts before the first method row: malformed
        } else if (tag == "p") {
            size_t idx;
            char st;
            ConstVal v;
            if (!(ls >> idx >> st >> v.value) ||
                !parseStateChar(st, v.state))
                continue;
            auto &params = out.back().params;
            if (params.size() <= idx)
                params.resize(idx + 1);
            params[idx] = v;
        } else if (tag == "w") {
            InterConstants::MustWrite w;
            int is_static, exclusive;
            if (!(ls >> w.field.className >> w.field.fieldName >>
                  is_static >> exclusive >> w.value))
                continue;
            w.isStatic = is_static != 0;
            w.exclusive = exclusive != 0;
            out.back().mustWrites.push_back(std::move(w));
        } else if (tag == "c") {
            std::string callee;
            if (ls >> callee)
                out.back().callees.push_back(std::move(callee));
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Client 2: use-after-destroy
// ---------------------------------------------------------------------

std::string
UseAfterDestroyFinding::toString() const
{
    return fieldKey + ": nulled in " + teardownAction + " (" +
           writeMethod + ":" + std::to_string(writeInstr) +
           "), read from " + useAction + " (" + readMethod + ":" +
           std::to_string(readInstr) + ")";
}

namespace {

bool
isPostedKind(ActionKind k)
{
    switch (k) {
      case ActionKind::PostedRunnable:
      case ActionKind::PostedMessage:
      case ActionKind::AsyncPre:
      case ActionKind::AsyncBackground:
      case ActionKind::AsyncPost:
      case ActionKind::ThreadRun:
      case ActionKind::ExecutorRun:
        return true;
      default:
        return false;
    }
}

bool
isRefField(const PointsToResult &r, const air::FieldRef &field)
{
    const air::Field *f =
        r.cha.resolveField(field.className, field.fieldName);
    return f && f->type.isReference();
}

} // namespace

std::vector<UseAfterDestroyFinding>
findUseAfterDestroy(const PointsToResult &result,
                    const InterConstants &inter,
                    const std::function<bool(int, int)> &happensBefore)
{
    std::vector<int> teardowns;
    for (const Action &a : result.actions.all()) {
        if (a.kind == ActionKind::Lifecycle &&
            a.callbackName == "onDestroy")
            teardowns.push_back(a.id);
    }
    if (teardowns.empty())
        return {};

    struct NullStore {
        int teardown;
        const air::Method *method;
        int instr;
    };
    std::map<std::string, std::vector<NullStore>> nulled;

    for (NodeId n = 0; n < result.cg.numNodes(); ++n) {
        const air::Method *m = result.cg.node(n).method;
        if (!m || !m->hasBody())
            continue;
        const auto &acts = result.cg.actionsOf(n);
        std::vector<int> here;
        for (int t : teardowns) {
            if (acts.count(t))
                here.push_back(t);
        }
        if (here.empty())
            continue;
        for (int i = 0; i < m->numInstrs(); ++i) {
            const Instruction &instr = m->instr(i);
            int value_reg = -1;
            if (instr.op == Opcode::PutField)
                value_reg = instr.srcs[1];
            else if (instr.op == Opcode::PutStatic)
                value_reg = instr.srcs[0];
            else
                continue;
            if (!isRefField(result, instr.field))
                continue;
            // The stored value must be null on every execution --
            // directly or through a setter parameter the summaries
            // prove null.
            ConstVal v = inter.before(m, i, value_reg);
            if (!v.isConst() || v.value != 0)
                continue;
            std::vector<std::string> keys;
            if (instr.op == Opcode::PutStatic) {
                keys.push_back(result.staticKey(instr.field).str());
            } else {
                for (ObjId o : result.pointsTo(n, instr.srcs[0]))
                    keys.push_back(result.fieldKey(o, instr.field).str());
            }
            for (const std::string &key : keys) {
                for (int t : here)
                    nulled[key].push_back({t, m, i});
            }
        }
    }
    if (nulled.empty())
        return {};

    std::set<UseAfterDestroyFinding> findings;
    for (NodeId n = 0; n < result.cg.numNodes(); ++n) {
        const air::Method *m = result.cg.node(n).method;
        if (!m || !m->hasBody())
            continue;
        std::vector<int> users;
        for (int a : result.cg.actionsOf(n)) {
            if (isPostedKind(result.actions.get(a).kind))
                users.push_back(a);
        }
        if (users.empty())
            continue;
        for (int i = 0; i < m->numInstrs(); ++i) {
            const Instruction &instr = m->instr(i);
            std::vector<std::string> keys;
            if (instr.op == Opcode::GetField) {
                for (ObjId o : result.pointsTo(n, instr.srcs[0]))
                    keys.push_back(result.fieldKey(o, instr.field).str());
            } else if (instr.op == Opcode::GetStatic) {
                keys.push_back(result.staticKey(instr.field).str());
            } else {
                continue;
            }
            for (const std::string &key : keys) {
                auto stores = nulled.find(key);
                if (stores == nulled.end())
                    continue;
                for (const NullStore &ns : stores->second) {
                    for (int use : users) {
                        if (use == ns.teardown)
                            continue;
                        // Only a use the HB graph proves complete
                        // before the teardown is safe.
                        if (happensBefore(use, ns.teardown))
                            continue;
                        UseAfterDestroyFinding f;
                        f.fieldKey = key;
                        f.teardownAction =
                            result.actions.get(ns.teardown).label;
                        f.useAction =
                            result.actions.get(use).label;
                        f.writeMethod = ns.method->qualifiedName();
                        f.readMethod = m->qualifiedName();
                        f.writeInstr = ns.instr;
                        f.readInstr = i;
                        findings.insert(std::move(f));
                    }
                }
            }
        }
    }
    return {findings.begin(), findings.end()};
}

} // namespace sierra::analysis
