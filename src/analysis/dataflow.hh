/**
 * @file
 * Generic intraprocedural dataflow framework over analysis::Cfg.
 *
 * A worklist solver iterates a client-defined lattice to fixpoint over
 * the basic blocks of one method, in reverse post-order (forward
 * problems) or post-order (backward problems). Clients describe their
 * analysis as a *problem* object:
 *
 * @code
 *   struct MyProblem {
 *       using Domain = ...;                       // one lattice element
 *       static constexpr DataflowDirection kDirection =
 *           DataflowDirection::Forward;
 *       Domain boundary() const;   // state at the entry (fwd) / exit (bwd)
 *       // Merge `from` into `into` (meet/join); return true on change.
 *       bool merge(Domain &into, const Domain &from) const;
 *       // Apply one instruction's effect in program order (fwd) or
 *       // reverse program order (bwd).
 *       void transfer(int instr_idx, const air::Instruction &instr,
 *                     Domain &d) const;
 *   };
 * @endcode
 *
 * Two optional hooks extend the basic scheme:
 *  - `bool edgeTransfer(const Cfg &, int from_block, int to_block,
 *     Domain &d) const` refines (or kills, by returning false) the state
 *     flowing along one CFG edge -- this is how conditional constant
 *     propagation prunes branches that cannot be taken;
 *  - `void widen(Domain &d) const`, applied to a block's input after it
 *     has been re-entered more than kWidenAfter times, guarantees
 *     termination for lattices of unbounded height.
 *
 * The solver and every client below are pure functions of one
 * `const Cfg` (itself a pure function of a `const air::Method`), hold
 * no global state, and never mutate their inputs, so they are safe to
 * run concurrently from the per-plan parallel tasks of the detector:
 * each thread solves its own problem instances.
 *
 * Shipped clients: constant propagation with infeasible-edge detection
 * (MethodConstants), reaching definitions (ReachingDefs), and live
 * registers (Liveness). They power the constant-guided symbolic refuter
 * (symbolic/executor.cc) and the AIR lint driver (analysis/lint.cc).
 */

#ifndef SIERRA_ANALYSIS_DATAFLOW_HH
#define SIERRA_ANALYSIS_DATAFLOW_HH

#include <set>
#include <utility>
#include <vector>

#include "cfg.hh"
#include "points_to.hh" // ConstVal

namespace sierra::analysis {

/** Direction of a dataflow problem. */
enum class DataflowDirection { Forward, Backward };

namespace dataflow_detail {

template <typename P>
concept HasEdgeTransfer = requires(const P p, const Cfg &cfg,
                                   typename P::Domain d) {
    { p.edgeTransfer(cfg, 0, 0, d) } -> std::convertible_to<bool>;
};

template <typename P>
concept HasWiden = requires(const P p, typename P::Domain d) {
    p.widen(d);
};

/** Reverse post-order of blocks following `succs` (forward) or `preds`
 *  (backward) from the given root; unreachable blocks are appended in
 *  id order so every block gets a deterministic priority. */
std::vector<int> blockOrder(const Cfg &cfg, DataflowDirection dir);

} // namespace dataflow_detail

/** Per-block fixpoint states of one solved problem. */
template <typename Domain>
struct DataflowResult {
    /** State at the block's program-order start (forward: the solver
     *  input; backward: the solver output). */
    std::vector<Domain> atEntry;
    /** State at the block's program-order end. */
    std::vector<Domain> atExit;
    /** Whether the block was ever reached by the solver; states of
     *  unreached blocks are default-constructed and meaningless. */
    std::vector<char> reached;
};

/**
 * Solve one dataflow problem to fixpoint. Deterministic: iteration
 * order depends only on the CFG shape, never on timing or pointers.
 */
template <typename Problem>
DataflowResult<typename Problem::Domain>
solveDataflow(const Cfg &cfg, const Problem &problem)
{
    using Domain = typename Problem::Domain;
    constexpr bool forward =
        Problem::kDirection == DataflowDirection::Forward;
    /** Re-entries of one block before widening kicks in. */
    constexpr int kWidenAfter = 8;

    const int n = cfg.numBlocks();
    DataflowResult<Domain> r;
    r.atEntry.resize(n);
    r.atExit.resize(n);
    r.reached.assign(n, 0);

    // "in" = solver input side (program entry for forward problems,
    // program exit for backward ones); "out" = the other side.
    std::vector<Domain> &in = forward ? r.atEntry : r.atExit;
    std::vector<Domain> &out = forward ? r.atExit : r.atEntry;

    const std::vector<int> order = dataflow_detail::blockOrder(
        cfg, Problem::kDirection);
    std::vector<int> priority(n, 0);
    for (size_t i = 0; i < order.size(); ++i)
        priority[order[i]] = static_cast<int>(i);

    const int root = forward ? cfg.entryBlock() : cfg.exitBlock();
    in[root] = problem.boundary();
    r.reached[root] = 1;

    std::vector<int> visits(n, 0);
    // Worklist keyed by iteration-order priority: always process the
    // earliest pending block, which converges in near-minimal passes
    // for reducible CFGs.
    std::set<std::pair<int, int>> worklist; // (priority, block)
    worklist.insert({priority[root], root});

    auto instrRange = [&](int b) {
        return std::pair<int, int>(cfg.blocks()[b].first,
                                   cfg.blocks()[b].last);
    };

    while (!worklist.empty()) {
        const int b = worklist.begin()->second;
        worklist.erase(worklist.begin());

        if (++visits[b] > kWidenAfter) {
            if constexpr (dataflow_detail::HasWiden<Problem>)
                problem.widen(in[b]);
        }

        // Push the input through the block body.
        Domain d = in[b];
        auto [first, last] = instrRange(b);
        if (first <= last) { // the synthetic exit block is empty
            if constexpr (forward) {
                for (int i = first; i <= last; ++i)
                    problem.transfer(i, cfg.method().instr(i), d);
            } else {
                for (int i = last; i >= first; --i)
                    problem.transfer(i, cfg.method().instr(i), d);
            }
        }
        out[b] = std::move(d);

        const auto &targets = forward ? cfg.blocks()[b].succs
                                      : cfg.blocks()[b].preds;
        for (int t : targets) {
            Domain onto = out[b];
            if constexpr (dataflow_detail::HasEdgeTransfer<Problem>) {
                // Forward edge b->t; backward edge t->b.
                const int from = forward ? b : t;
                const int to = forward ? t : b;
                if (!problem.edgeTransfer(cfg, from, to, onto))
                    continue; // statically infeasible edge
            }
            bool changed;
            if (!r.reached[t]) {
                in[t] = std::move(onto);
                r.reached[t] = 1;
                changed = true;
            } else {
                changed = problem.merge(in[t], onto);
            }
            if (changed)
                worklist.insert({priority[t], t});
        }
    }
    return r;
}

// ---------------------------------------------------------------------
// Client 1: conditional constant propagation
// ---------------------------------------------------------------------

/**
 * Flow-sensitive constant facts for one method.
 *
 * Registers are propagated through const/move/arith instructions;
 * loads, calls and allocations produce Top, and method parameters start
 * at Top, so every fact holds for *all* invocations of the method.
 * Branches whose condition folds to a constant kill the untaken edge,
 * making the analysis conditional: code behind a constant guard is
 * recognized as unreachable and constants are only merged over
 * feasible paths.
 *
 * Facts are per instruction: `before(i, r)` is the value of register r
 * when instruction i starts executing. The symbolic refuter uses
 * `after()` to concretize otherwise-unknown register writes and
 * `edgeFeasible()` to avoid exploring branch edges that cannot execute
 * (see symbolic/executor.cc).
 */
class MethodConstants
{
  public:
    explicit MethodConstants(const Cfg &cfg);

    /** Value of `reg` just before instruction `instr` executes. */
    ConstVal before(int instr, int reg) const;
    /** Value of `reg` just after instruction `instr` executes. */
    ConstVal after(int instr, int reg) const;

    /** Can instruction `instr` execute at all? */
    bool reachable(int instr) const
    {
        return _reachable[instr] != 0;
    }

    /**
     * Is the CFG edge from the branch at `from_instr` to the block
     * starting at `to_instr` feasible? True for any pair that is not a
     * recorded infeasible branch edge.
     */
    bool edgeFeasible(int from_instr, int to_instr) const
    {
        return !_infeasible.count({from_instr, to_instr});
    }

    /** Number of branch edges statically killed. */
    int numInfeasibleEdges() const
    {
        return static_cast<int>(_infeasible.size());
    }

    /** Apply one instruction's effect on a register environment
     *  (exposed for the solver's problem object and for tests). */
    static void transferInstr(const air::Instruction &instr,
                              std::vector<ConstVal> &env);

  private:
    const air::Method *_method;
    std::vector<std::vector<ConstVal>> _before; //!< per instr, per reg
    std::vector<char> _reachable;               //!< per instr
    std::set<std::pair<int, int>> _infeasible;  //!< (branch, succ) instrs
};

// ---------------------------------------------------------------------
// Client 2: reaching definitions
// ---------------------------------------------------------------------

/**
 * Which definition sites of each register may reach each instruction.
 * Definition sites are instruction indices; kEntryDef stands for the
 * implicit definition of `this` and the parameters at method entry.
 */
class ReachingDefs
{
  public:
    static constexpr int kEntryDef = -1;

    explicit ReachingDefs(const Cfg &cfg);

    /** Definition sites of `reg` that may reach `instr` (sorted). */
    std::vector<int> reaching(int instr, int reg) const;

    /** True if some definition of `reg` (incl. the entry definition of
     *  parameters) may reach `instr`. */
    bool anyDefReaches(int instr, int reg) const
    {
        return !reaching(instr, reg).empty();
    }

  private:
    const Cfg &_cfg;
    //! per block: per register, the def sites reaching block entry
    std::vector<std::vector<std::set<int>>> _atBlockEntry;
    std::vector<char> _reached;
};

// ---------------------------------------------------------------------
// Client 3: live registers
// ---------------------------------------------------------------------

/** Classic backward liveness of registers, per instruction. */
class Liveness
{
  public:
    explicit Liveness(const Cfg &cfg);

    /** Is `reg` read after instruction `instr` completes (before being
     *  redefined)? */
    bool liveAfter(int instr, int reg) const
    {
        return _liveAfter[instr][reg] != 0;
    }

  private:
    std::vector<std::vector<char>> _liveAfter; //!< per instr, per reg
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_DATAFLOW_HH
