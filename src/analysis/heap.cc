#include "heap.hh"

#include "air/logging.hh"

namespace sierra::analysis {

ObjId
ObjectTable::intern(const HeapObject &obj)
{
    auto it = _index.find(obj);
    if (it != _index.end())
        return it->second;
    ObjId id = static_cast<ObjId>(_objects.size());
    _objects.push_back(obj);
    _index.emplace(obj, id);
    return id;
}

std::string
ObjectTable::toString(ObjId id, const SiteTable &sites) const
{
    const HeapObject &o = get(id);
    switch (o.kind) {
      case ObjKind::Site:
        return strCat(o.klassName, "@", sites.toString(o.site));
      case ObjKind::InflatedView:
        return strCat(o.klassName, "#view", o.viewId);
      case ObjKind::Singleton:
        return strCat(o.klassName, "#singleton", o.singletonKey);
      case ObjKind::Synthetic:
        return strCat(o.klassName, "#synthetic@", sites.toString(o.site));
    }
    panic("unreachable obj kind");
}

} // namespace sierra::analysis
