/**
 * @file
 * UNDEAD-style static deadlock detection over the lock-set stage.
 *
 * The client walks every call-graph node's monitor-enter instructions
 * and records acquisition observations "acquire L while holding H",
 * resolved through the points-to result exactly like the lock-set
 * refuter: a monitor-enter acquires the single abstract object its
 * operand must-aliases (|pts| == 1); ambiguous enters are skipped, so
 * the dependency graph under-approximates acquisitions the same sound
 * direction the lock sets do. Observations are tagged with the actions
 * that can execute the acquiring node (CallGraph::actionsOf).
 *
 * Observations form a lock-dependency graph: nodes are abstract lock
 * objects, a directed edge H -> L means some instruction acquires L
 * with H already held. Elementary cycles of that graph are deadlock
 * *candidates*; a cycle is reported only when its edges can be driven
 * from concurrently-runnable contexts — for every pair of edges in the
 * cycle there exist distinct actions that are SHBG-unordered and do
 * not serialize on a common looper thread (mirroring the concurrency
 * test of race::refuteWithLockSets, inverted: there, serialization
 * refutes; here, it exonerates).
 *
 * Findings carry per-edge acquisition-site provenance (lock names,
 * acquiring method + instruction, witnessing action) and canonicalize
 * the cycle rotation, so they deduplicate across harnesses and render
 * identically at every jobs count.
 */

#ifndef SIERRA_ANALYSIS_DEADLOCK_HH
#define SIERRA_ANALYSIS_DEADLOCK_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lockset.hh"
#include "points_to.hh"

namespace sierra::analysis {

/** One edge of a reported cycle: an acquisition observation. */
struct DeadlockEdge {
    std::string heldLock;     //!< printable name of the held lock
    std::string acquiredLock; //!< printable name of the acquired lock
    std::string method;       //!< qualified name of the acquiring method
    int instrIdx{-1};         //!< the monitor-enter instruction
    std::string actionLabel;  //!< witnessing concurrent action

    std::string toString() const;

    bool operator==(const DeadlockEdge &o) const
    {
        return heldLock == o.heldLock &&
               acquiredLock == o.acquiredLock && method == o.method &&
               instrIdx == o.instrIdx;
    }
};

/** One cyclic lock-acquisition finding (a potential deadlock). */
struct DeadlockFinding {
    std::vector<DeadlockEdge> edges; //!< canonical rotation of the cycle

    std::string toString() const;

    bool operator==(const DeadlockFinding &o) const
    {
        if (edges.size() != o.edges.size())
            return false;
        for (size_t i = 0; i < edges.size(); ++i) {
            if (!(edges[i] == o.edges[i]))
                return false;
        }
        return true;
    }
    bool operator<(const DeadlockFinding &o) const
    {
        return toString() < o.toString();
    }
};

/** Work counters (the `deadlock.*` rows of docs/OBSERVABILITY.md). */
struct DeadlockStats {
    int64_t observations{0};   //!< "acquire L holding H" facts recorded
    int64_t lockNodes{0};      //!< distinct lock objects in the graph
    int64_t lockEdges{0};      //!< distinct (H, L) dependency edges
    int64_t cyclesExamined{0}; //!< elementary cycles tested for
                               //!< concurrent runnability
};

/**
 * Find cyclic lock acquisitions that concurrently-runnable contexts
 * can drive to deadlock.
 *
 * `happensBefore(a, b)` must answer "action a always completes before
 * action b starts" (the detector passes Shbg::reaches, the same
 * callback shape findUseAfterDestroy takes). Results are sorted and
 * deterministic.
 */
std::vector<DeadlockFinding>
findDeadlocks(const PointsToResult &result, const LockSetAnalysis &locks,
              const std::function<bool(int, int)> &happensBefore,
              DeadlockStats *stats = nullptr);

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_DEADLOCK_HH
