#include "context.hh"

#include "air/logging.hh"

namespace sierra::analysis {

const char *
contextPolicyName(ContextPolicy p)
{
    switch (p) {
      case ContextPolicy::Insensitive: return "insensitive";
      case ContextPolicy::KCfa: return "k-cfa";
      case ContextPolicy::KObj: return "k-obj";
      case ContextPolicy::Hybrid: return "hybrid";
      case ContextPolicy::ActionSensitive: return "action-sensitive";
    }
    panic("unreachable context policy");
}

CtxId
ContextTable::intern(const ContextData &data)
{
    auto it = _index.find(data);
    if (it != _index.end())
        return it->second;
    CtxId id = static_cast<CtxId>(_contexts.size());
    _contexts.push_back(data);
    _index.emplace(data, id);
    return id;
}

CtxId
ContextTable::pushElem(CtxId base, SiteId elem, int k)
{
    const ContextData &b = get(base);
    ContextData d;
    d.actionId = b.actionId;
    d.elems.push_back(elem);
    for (SiteId e : b.elems) {
        if (static_cast<int>(d.elems.size()) >= k)
            break;
        d.elems.push_back(e);
    }
    return intern(d);
}

CtxId
ContextTable::make(int action_id, std::vector<SiteId> elems, int k)
{
    ContextData d;
    d.actionId = action_id;
    if (static_cast<int>(elems.size()) > k)
        elems.resize(k);
    d.elems = std::move(elems);
    return intern(d);
}

CtxId
ContextTable::withAction(CtxId base, int action_id)
{
    ContextData d = get(base);
    if (d.actionId == action_id)
        return base;
    d.actionId = action_id;
    return intern(d);
}

std::string
ContextTable::toString(CtxId id, const SiteTable &sites) const
{
    const ContextData &d = get(id);
    std::string out = "[";
    if (d.actionId >= 0)
        out += "act" + std::to_string(d.actionId);
    for (size_t i = 0; i < d.elems.size(); ++i) {
        if (i || d.actionId >= 0)
            out += "; ";
        out += sites.toString(d.elems[i]);
    }
    out += "]";
    return out;
}

} // namespace sierra::analysis
