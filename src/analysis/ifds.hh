/**
 * @file
 * Summary-based interprocedural dataflow (IFDS/IDE-style) over the
 * call graph of one harness, plus its two shipped clients.
 *
 * The engine lifts the PR-2 intraprocedural SCCP facts across calls.
 * Each method in the harness's call-graph envelope gets a *summary*:
 *  - the constant lattice value of every formal parameter, joined over
 *    the actuals of every call site that can reach the method
 *    (framework-invoked entry points are pinned to Top);
 *  - the constant lattice value of its return, joined over every
 *    reachable Return site under those parameter facts;
 *  - the set of fields the method *must* write with a known constant
 *    on every path to every exit ("must-write-constant" facts),
 *    composed through `this`-receiver calls and statics.
 *
 * Summaries are computed once per method by a worklist in reverse
 * post-order over the method-level call graph and cached; call sites
 * reuse the cached summary instead of re-analyzing the callee
 * (IfdsStats::summaryReuses counts those reuses). Tabulation is
 * bounded by IfdsOptions budgets; on exhaustion the whole result
 * degrades to "no facts" (every query answers Top / feasible), never
 * to an unsound partial fixpoint.
 *
 * Client 1 -- InterConstants -- is consumed by the symbolic refuter
 * (ExecutorOptions::inter): it concretizes register reads, prunes
 * interprocedurally-infeasible predecessor edges, and turns call-site
 * havoc into strong constant updates for must-write fields.
 *
 * Client 2 -- use-after-destroy -- is a typestate query on top of the
 * same facts: fields nulled inside `onDestroy` teardown callbacks
 * (directly or through a setter whose parameter the summaries prove
 * null) that a posted/background task can still dereference afterward.
 *
 * Everything here is a pure function of one `const PointsToResult`;
 * queries are const and safe to share across refuter worker threads.
 */

#ifndef SIERRA_ANALYSIS_IFDS_HH
#define SIERRA_ANALYSIS_IFDS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "points_to.hh"

namespace sierra::analysis {

/** Budgets for the interprocedural tabulation. */
struct IfdsOptions {
    /** Re-summarizations of one method before the engine gives up
     *  (the lattice is shallow; real fixpoints take a handful). */
    int maxSolvesPerMethod{16};
    /** Total instruction transfers across all solves, like the HB
     *  rule-5 state budget. */
    int maxStates{1 << 21};
};

/** Counters of one engine run (deterministic). */
struct IfdsStats {
    int64_t methods{0};             //!< methods in the summary universe
    int64_t summaryComputations{0}; //!< method-body solves run
    int64_t summaryReuses{0};       //!< call sites served from the cache
    int64_t callSites{0};           //!< resolved call sites seen
    int64_t paramConsts{0};         //!< formals proven constant
    int64_t returnConsts{0};        //!< methods with a constant return
    int64_t mustWriteFacts{0};      //!< (method, field, value) facts
    int64_t statesVisited{0};       //!< instruction transfers
    bool budgetExhausted{false};    //!< facts discarded for soundness
};

/**
 * Interprocedural constant facts for every method reachable in one
 * harness's call graph. All queries are conservative: a miss (unknown
 * method, exhausted budget) answers Top / reachable / feasible.
 */
class InterConstants
{
  public:
    explicit InterConstants(const PointsToResult &result,
                            IfdsOptions options = {});
    ~InterConstants(); // out-of-line: MethodInfo is incomplete here

    /** Value of `reg` just before instruction `instr` of `m`, valid
     *  for *every* invocation of the method in this harness. */
    ConstVal before(const air::Method *m, int instr, int reg) const;
    /** Value of `reg` just after instruction `instr` executes. */
    ConstVal after(const air::Method *m, int instr, int reg) const;

    /** Can instruction `instr` of `m` execute in any context? */
    bool reachable(const air::Method *m, int instr) const;
    /** Is the branch edge `from_instr` -> `to_instr` feasible under
     *  the interprocedural facts? */
    bool edgeFeasible(const air::Method *m, int from_instr,
                      int to_instr) const;

    /** Join of the values `m` can return (Bottom: no reachable
     *  return; Top: unknown). */
    ConstVal returnConst(const air::Method *m) const;

    /** One field a method writes with the same known constant on
     *  every path to every exit. Instance entries are writes through
     *  `this` (transitively, via `this`-receiver calls). */
    struct MustWrite {
        air::FieldRef field;
        bool isStatic{false};
        /** Every transitive write to this field from the method goes
         *  through the same cell (statics always; instance fields when
         *  all writes ride the `this` chain) -- the symbolic executor
         *  may then keep, not havoc, other constraints on the key. */
        bool exclusive{false};
        int64_t value{0};

        bool operator<(const MustWrite &o) const
        {
            if (field.className != o.field.className)
                return field.className < o.field.className;
            if (field.fieldName != o.field.fieldName)
                return field.fieldName < o.field.fieldName;
            return isStatic < o.isStatic;
        }
    };

    /** Must-write-constant facts of `m`, sorted; empty on a miss. */
    const std::vector<MustWrite> &mustWrites(const air::Method *m) const;

    /**
     * One method's converged summary in exportable form: the facts a
     * later run could reuse, plus the callee list the summary was
     * composed from. The callee lists are what the store layer's
     * reverse-dependency index (analysis/store DepIndex) is built
     * from -- a callee edit dirties every transitive caller exactly
     * because callers embed callee facts (params join, returnConst,
     * must-write composition).
     */
    struct ExportedSummary {
        std::string method; //!< qualified name
        bool open{false};   //!< framework-invoked (params pinned Top)
        std::vector<ConstVal> params; //!< per formal register
        ConstVal ret;
        std::vector<MustWrite> mustWrites;
        std::vector<std::string> callees; //!< sorted unique, with bodies
    };

    /** Every method's summary, sorted by qualified name
     *  (deterministic across processes and jobs counts). */
    std::vector<ExportedSummary> exportSummaries() const;

    /** How many times `m` was (re-)summarized; 0 for unknown methods.
     *  Exposed for the summary-cache unit tests. */
    int solveCountOf(const air::Method *m) const;

    const IfdsStats &stats() const { return _stats; }

  private:
    struct MethodInfo;

    int indexOf(const air::Method *m) const;
    void buildUniverse();
    void buildCallLists();
    void computeRpo();
    bool solveOne(int idx);
    void runFixpoint();
    void computeMayWrites();
    void computeMustWrites();
    void countSummaryStats();

    const PointsToResult &_r;
    IfdsOptions _opts;
    IfdsStats _stats;
    std::vector<MethodInfo> _methods;
    std::map<const air::Method *, int> _index;
    /** Callees whose parameter summaries the current solve widened. */
    std::set<int> _paramsDirty;
};

/** Deterministic text blob for a summary export (byte-stable; the
 *  store layer persists it under the per-method artifact keys). */
std::string
serializeSummaries(const std::vector<InterConstants::ExportedSummary> &s);

/** Parse a `serializeSummaries` blob (malformed rows dropped). */
std::vector<InterConstants::ExportedSummary>
parseSummaries(const std::string &blob);

/** One use-after-destroy finding: a field nulled in a teardown
 *  callback that a posted task can still read afterward. */
struct UseAfterDestroyFinding {
    std::string fieldKey;       //!< canonical "Class.field"
    std::string teardownAction; //!< label of the nulling action
    std::string useAction;      //!< label of the reading action
    std::string writeMethod;    //!< qualified method of the null store
    std::string readMethod;     //!< qualified method of the read
    int writeInstr{-1};
    int readInstr{-1};

    std::string toString() const;

    bool operator<(const UseAfterDestroyFinding &o) const
    {
        if (fieldKey != o.fieldKey)
            return fieldKey < o.fieldKey;
        if (teardownAction != o.teardownAction)
            return teardownAction < o.teardownAction;
        return useAction < o.useAction;
    }
    bool operator==(const UseAfterDestroyFinding &o) const
    {
        return fieldKey == o.fieldKey &&
               teardownAction == o.teardownAction &&
               useAction == o.useAction;
    }
};

/**
 * The use-after-destroy typestate client. Finds reference-typed fields
 * stored null (directly or via a setter parameter the InterConstants
 * facts prove null) inside a Lifecycle `onDestroy` callback, then
 * reports every read of the same field from a posted/background action
 * that is not happens-before-ordered ahead of the teardown.
 *
 * `happensBefore(a, b)` must answer "action a always completes before
 * action b starts" (the detector passes Shbg::reaches). Results are
 * deterministic and sorted.
 */
std::vector<UseAfterDestroyFinding>
findUseAfterDestroy(const PointsToResult &result,
                    const InterConstants &inter,
                    const std::function<bool(int, int)> &happensBefore);

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_IFDS_HH
