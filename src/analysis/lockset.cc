#include "lockset.hh"

#include <algorithm>
#include <utility>

#include "cfg.hh"
#include "dataflow.hh"

namespace sierra::analysis {

const LockState LockSetAnalysis::_emptyState;

namespace {

/** Intersect `from` into `into` (min depths); true on change. */
bool
meetInto(LockState &into, const LockState &from)
{
    bool changed = false;
    for (auto it = into.begin(); it != into.end();) {
        auto fit = from.find(it->first);
        if (fit == from.end()) {
            it = into.erase(it);
            changed = true;
            continue;
        }
        if (fit->second < it->second) {
            it->second = fit->second;
            changed = true;
        }
        ++it;
    }
    return changed;
}

/** Does the method body contain any monitor instruction? */
bool
hasMonitors(const air::Method *method)
{
    if (!method || !method->hasBody())
        return false;
    for (const air::Instruction &instr : method->instrs()) {
        if (instr.op == air::Opcode::MonitorEnter ||
            instr.op == air::Opcode::MonitorExit) {
            return true;
        }
    }
    return false;
}

/** The forward must-lock dataflow problem for one call-graph node. */
struct LockProblem {
    using Domain = LockState;
    static constexpr DataflowDirection kDirection =
        DataflowDirection::Forward;

    const PointsToResult &pts;
    NodeId node;
    const LockState &entry;

    Domain boundary() const { return entry; }

    bool merge(Domain &into, const Domain &from) const
    {
        return meetInto(into, from);
    }

    void
    transfer(int, const air::Instruction &instr, Domain &d) const
    {
        if (instr.op == air::Opcode::MonitorEnter) {
            if (instr.srcs.empty())
                return;
            const ObjSet &objs = pts.pointsTo(node, instr.srcs[0]);
            // Must-alias approximation: only a singleton points-to set
            // names the held lock. Ambiguous enters acquire nothing
            // (under-approximation; sound for refutation).
            if (objs.size() == 1) {
                int &depth = d[*objs.begin()];
                depth = std::min(depth + 1,
                                 LockSetAnalysis::kDepthCap);
            }
        } else if (instr.op == air::Opcode::MonitorExit) {
            if (instr.srcs.empty())
                return;
            // An exit may release any lock its register may alias, so
            // drop one level from every may-aliased lock.
            for (ObjId obj : pts.pointsTo(node, instr.srcs[0])) {
                auto it = d.find(obj);
                if (it == d.end())
                    continue;
                if (--it->second <= 0)
                    d.erase(it);
            }
        }
    }

    void
    widen(Domain &d) const
    {
        for (auto &[obj, depth] : d)
            depth = std::min(depth, LockSetAnalysis::kDepthCap);
    }
};

} // namespace

LockSetAnalysis::LockSetAnalysis(const PointsToResult &pts)
{
    const CallGraph &cg = pts.cg;
    const int n = cg.numNodes();
    _atInstr.resize(n);
    _entry.resize(n);

    std::vector<char> monitored(n, 0);
    for (NodeId id = 0; id < n; ++id) {
        if (hasMonitors(cg.node(id).method)) {
            monitored[id] = 1;
            ++_monitoredNodes;
        }
    }

    // Framework-invoked entries run with no app locks held.
    std::vector<char> framework_entry(n, 0);
    auto mark_entry = [&](NodeId id) {
        if (id >= 0 && id < n)
            framework_entry[id] = 1;
    };
    mark_entry(pts.rootNode);
    for (const Action &action : pts.actions.all())
        mark_entry(action.entryNode);
    for (NodeId id = 0; id < n; ++id) {
        if (cg.callersOf(id).empty())
            mark_entry(id);
    }

    // Fast exit: without monitor instructions every state is empty.
    if (_monitoredNodes == 0)
        return;

    // Per-node intraprocedural solve under the current entry state.
    auto solveNode = [&](NodeId id) {
        const air::Method *method = cg.node(id).method;
        std::vector<LockState> &states = _atInstr[id];
        states.assign(static_cast<size_t>(method->numInstrs()),
                      LockState{});
        if (!monitored[id]) {
            // No monitor instruction: the entry state holds everywhere.
            for (LockState &s : states)
                s = _entry[id];
            return;
        }
        Cfg cfg(*method);
        LockProblem problem{pts, id, _entry[id]};
        DataflowResult<LockState> r = solveDataflow(cfg, problem);
        for (const BasicBlock &block : cfg.blocks()) {
            if (block.id >= 0 &&
                !r.reached[static_cast<size_t>(block.id)]) {
                continue;
            }
            LockState d = r.atEntry[static_cast<size_t>(block.id)];
            for (int i = block.first; i <= block.last; ++i) {
                states[static_cast<size_t>(i)] = d;
                problem.transfer(i, method->instr(i), d);
            }
        }
    };

    // Interprocedural entry locks: the entry state of a callee is the
    // intersection of the locks held at every call site reaching it.
    // Optimistic fixpoint: entries start at (implicit) Top, designated
    // framework entries at empty; contributions only shrink, so the
    // meet over the recorded ones converges from above.
    std::vector<char> known(n, 0);
    // Per callee: (caller, site) -> locks held at that call site.
    std::vector<std::map<std::pair<NodeId, SiteId>, LockState>>
        contributions(static_cast<size_t>(n));

    std::vector<NodeId> work;
    for (NodeId id = 0; id < n; ++id) {
        if (framework_entry[id]) {
            known[id] = 1;
            work.push_back(id);
        }
    }

    while (!work.empty()) {
        NodeId id = work.back();
        work.pop_back();
        const air::Method *method = cg.node(id).method;
        if (!method || !method->hasBody())
            continue;
        solveNode(id);
        for (const CGEdge &edge : cg.edgesOf(id)) {
            int call_instr = pts.sites.instrOf(edge.site);
            LockState held;
            if (call_instr >= 0 &&
                call_instr <
                    static_cast<int>(_atInstr[id].size())) {
                held = _atInstr[id][static_cast<size_t>(call_instr)];
            }
            auto &contrib =
                contributions[static_cast<size_t>(edge.callee)];
            auto key = std::make_pair(id, edge.site);
            auto it = contrib.find(key);
            if (it != contrib.end() && it->second == held)
                continue;
            contrib[std::move(key)] = std::move(held);

            if (framework_entry[edge.callee])
                continue; // pinned to empty
            LockState merged;
            bool first = true;
            for (const auto &[k, state] : contrib) {
                if (first) {
                    merged = state;
                    first = false;
                } else {
                    meetInto(merged, state);
                }
            }
            if (!known[edge.callee] ||
                merged != _entry[edge.callee]) {
                known[edge.callee] = 1;
                _entry[edge.callee] = std::move(merged);
                work.push_back(edge.callee);
            }
        }
    }
}

std::set<ObjId>
LockSetAnalysis::locksHeldAt(NodeId node, int instr_idx) const
{
    std::set<ObjId> out;
    for (const auto &[obj, depth] : stateAt(node, instr_idx))
        out.insert(obj);
    return out;
}

LockState
LockSetAnalysis::stateAt(NodeId node, int instr_idx) const
{
    if (node < 0 || node >= static_cast<NodeId>(_atInstr.size()))
        return {};
    const auto &states = _atInstr[static_cast<size_t>(node)];
    if (states.empty()) {
        // Node never solved (no monitors anywhere, or unreached by the
        // interprocedural fixpoint): its state is its entry state.
        return _entry[static_cast<size_t>(node)];
    }
    if (instr_idx < 0 || instr_idx >= static_cast<int>(states.size()))
        return {};
    return states[static_cast<size_t>(instr_idx)];
}

const LockState &
LockSetAnalysis::entryLocks(NodeId node) const
{
    if (node < 0 || node >= static_cast<NodeId>(_entry.size()))
        return _emptyState;
    return _entry[static_cast<size_t>(node)];
}

} // namespace sierra::analysis
