/**
 * @file
 * Thread-escape analysis over the points-to heap.
 *
 * An abstract object is *thread-shared* (it "escapes" its creating
 * action) when some second concurrency action can reach it:
 *
 *  - StaticField: it is reachable from a static field (any action can
 *    load the root and walk to it);
 *  - SyntheticPayload: it is a per-action payload object (Message /
 *    Intent / interned string) handed across the action boundary by
 *    the framework;
 *  - MultiAction: it sits in a register of some call-graph node that
 *    two or more distinct actions can execute (posted Runnable and
 *    AsyncTask captures, listener fields read from callbacks, a second
 *    action's locals all surface here).
 *
 * Escaping-ness is closed under field reachability: everything a
 * shared object's fields point to is shared too.
 *
 * The race stage uses this to drop accesses whose every base object is
 * thread-local *before* the quadratic pair loop. The filter is
 * report-preserving: a non-escaping base is touched by at most one
 * action, so every action pair on it has action1 == action2 — exactly
 * the pairs findRacyPairs already discards.
 */

#ifndef SIERRA_ANALYSIS_ESCAPE_HH
#define SIERRA_ANALYSIS_ESCAPE_HH

#include <vector>

#include "points_to.hh"

namespace sierra::analysis {

/** Why an object is considered thread-shared. */
enum class EscapeReason : uint8_t {
    None,             //!< does not escape
    StaticField,      //!< reachable from a static field
    SyntheticPayload, //!< framework payload crossing actions
    MultiAction,      //!< reachable from two or more actions' code
};

const char *escapeReasonName(EscapeReason r);

/** Escape classification of every abstract object. */
class EscapeAnalysis
{
  public:
    explicit EscapeAnalysis(const PointsToResult &pts);

    bool escapes(ObjId obj) const
    {
        return reasonOf(obj) != EscapeReason::None;
    }
    /** First reason that marked the object (root order: static,
     *  payload, multi-action; closure inherits the root's reason). */
    EscapeReason reasonOf(ObjId obj) const;

    int numObjects() const
    {
        return static_cast<int>(_reasons.size());
    }
    int numEscaping() const { return _numEscaping; }

  private:
    std::vector<EscapeReason> _reasons;
    int _numEscaping{0};
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_ESCAPE_HH
