/**
 * @file
 * Demand-driven null-value-flow classification of surviving races.
 *
 * The refutation stages answer "can these two accesses interleave?";
 * this pass answers the follow-up the paper's motivating bugs hinge on:
 * *does the interleaving matter?* A surviving pair is HARMFUL when the
 * second access reads a reference field whose only writes ordered
 * before it (per the SHBG and the harness lifecycle) are null stores,
 * resets, or absent initializations, while the racing write is the
 * sole non-null source — losing the race then dereferences null.
 * It is GUARDED when a dominating null check on the same field
 * protects the sink read. Everything else stays UNKNOWN.
 *
 * The analysis is a second demand-driven client beside InterConstants
 * (BackDroid-style: start from the few interesting sinks, walk
 * backward): nothing is computed until the first query, and a harness
 * with zero surviving pairs does zero work. The store index and the
 * per-method dominator trees are built lazily and shared across
 * queries of one harness.
 *
 * Layering: like the enablement stage, analysis/ may not depend on
 * race/ or hb/, so the race layer adapts RacyPairs into classifyRead
 * queries (race::classifyWithNullFlow) and SHBG reachability arrives
 * as a closure.
 */

#ifndef SIERRA_ANALYSIS_NULLFLOW_HH
#define SIERRA_ANALYSIS_NULLFLOW_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "framework/known_api.hh"
#include "ifds.hh"
#include "points_to.hh"

namespace sierra::analysis {

/** Severity verdict for one surviving racy pair. */
enum class NullVerdict : uint8_t {
    Unknown, //!< value effect beyond this analysis (default)
    Guarded, //!< a dominating null check protects the sink read
    Harmful, //!< the read can observe null/absent state and crash
};

/** Upper-case report tag ("UNKNOWN" / "GUARDED" / "HARMFUL"). */
const char *nullVerdictName(NullVerdict v);

/** Inverse of nullVerdictName; false when the tag is unknown. */
bool nullVerdictFromName(const std::string &name, NullVerdict &out);

/**
 * Report-sort rank: harmful races outrank unknown ones, which outrank
 * guarded ones. With the stage off every verdict is Unknown, so the
 * severity-sorted order degenerates to today's order.
 */
int nullVerdictRank(NullVerdict v);

/** Work counters of one harness's classification (deterministic). */
struct NullFlowStats {
    int64_t queries{0};       //!< classifyRead calls
    int64_t sinksExamined{0}; //!< queries that reached the field logic
    int64_t storesIndexed{0}; //!< ref-field stores in the lazy index
    int64_t nullStores{0};    //!< of those, proven null on every path
    int64_t guarded{0};       //!< sinks protected by a dominating check
    int64_t harmful{0};       //!< sinks classified harmful
    int64_t domTrees{0};      //!< dominator trees built on demand
};

/** One verdict with its provenance chain (empty for Unknown). */
struct NullFlowVerdict {
    NullVerdict verdict{NullVerdict::Unknown};
    /**
     * Human-readable provenance, rendered into text and JSON reports:
     * for HARMFUL, `null-source <site> -> <field> -> read <site>`
     * (the null source is `<uninitialized>` when no other write
     * exists at all); for GUARDED, the guarding check's site.
     */
    std::string chain;
};

/**
 * The null-value-flow classifier for one harness.
 *
 * `inter` may be null (--no-ifds): null stores are then proven through
 * the flow-insensitive PointsToResult::constOf facts only, which still
 * covers direct `constNull` stores but not setter-mediated ones.
 * `happensBefore(a, b)` must answer "action a always completes before
 * action b starts" (the detector passes Shbg::reaches).
 */
class NullFlowAnalysis
{
  public:
    NullFlowAnalysis(const PointsToResult &result,
                     const InterConstants *inter,
                     const framework::KnownApis &apis,
                     std::function<bool(int, int)> happensBefore);
    ~NullFlowAnalysis();

    /**
     * Classify one surviving pair's read sink. `read_node`/`read_instr`
     * locate the GetField/GetStatic whose value the race can corrupt;
     * `write_node`/`write_instr` locate the racing write; `key` is the
     * pair's canonical location key (MemLoc::key). Deterministic: the
     * same query always produces the same verdict and chain.
     */
    NullFlowVerdict classifyRead(NodeId read_node, int read_instr,
                                 NodeId write_node, int write_instr,
                                 const std::string &key);

    const NullFlowStats &stats() const { return _stats; }

  private:
    /** One ref-field store site in the lazy index. */
    struct StoreSite {
        const air::Method *method{nullptr};
        int instr{-1};
        NodeId node{-1};
        bool isNull{false}; //!< stored value proven null on every path
    };
    struct DomInfo; //!< Cfg + DominatorTree bundle, built on demand

    void buildStoreIndex();
    bool storesProvenNull(NodeId node, const air::Method *m, int instr,
                          int value_reg) const;
    const DomInfo *domInfoFor(const air::Method *m);
    /** Instruction index of the def of `reg` reaching `before_instr`
     *  on every path (move-chasing, join-aborting walk); -1 if mixed. */
    static int soleDefOf(const air::Method &m, int before_instr,
                         int reg, const std::vector<char> &is_target);
    bool isGuardLoad(const air::Method &m, int read_instr,
                     std::string *chain);
    bool dominatedByNullCheck(const air::Method &m, int read_instr,
                              const air::FieldRef &field,
                              std::string *chain);

    const PointsToResult &_r;
    const InterConstants *_inter;
    const framework::KnownApis &_apis;
    std::function<bool(int, int)> _happensBefore;
    NullFlowStats _stats;
    bool _indexBuilt{false};
    //! canonical key string -> every ref-field store to it, in
    //! (node, instr) scan order (deterministic)
    std::map<std::string, std::vector<StoreSite>> _stores;
    std::map<const air::Method *, std::unique_ptr<DomInfo>> _doms;
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_NULLFLOW_HH
