#include "dominators.hh"

#include <algorithm>

#include "air/logging.hh"

namespace sierra::analysis {

DominatorTree::DominatorTree(const Cfg &cfg) : _cfg(cfg)
{
    const int n = cfg.numBlocks();
    _idom.assign(n, -1);
    _rpoIndex.assign(n, -1);

    // Depth-first postorder from the entry.
    std::vector<int> postorder;
    std::vector<int> state(n, 0); // 0 unvisited, 1 on stack, 2 done
    std::vector<std::pair<int, size_t>> stack{{cfg.entryBlock(), 0}};
    state[cfg.entryBlock()] = 1;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        const auto &succs = cfg.blocks()[b].succs;
        if (next < succs.size()) {
            int s = succs[next++];
            if (state[s] == 0) {
                state[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            state[b] = 2;
            postorder.push_back(b);
            stack.pop_back();
        }
    }
    std::vector<int> rpo(postorder.rbegin(), postorder.rend());
    for (size_t i = 0; i < rpo.size(); ++i)
        _rpoIndex[rpo[i]] = static_cast<int>(i);

    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (_rpoIndex[a] > _rpoIndex[b])
                a = _idom[a];
            while (_rpoIndex[b] > _rpoIndex[a])
                b = _idom[b];
        }
        return a;
    };

    _idom[cfg.entryBlock()] = cfg.entryBlock();
    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : rpo) {
            if (b == cfg.entryBlock())
                continue;
            int new_idom = -1;
            for (int p : cfg.blocks()[b].preds) {
                if (_rpoIndex[p] == -1 || _idom[p] == -1)
                    continue; // unreachable or not yet processed
                new_idom =
                    new_idom == -1 ? p : intersect(p, new_idom);
            }
            if (new_idom != -1 && _idom[b] != new_idom) {
                _idom[b] = new_idom;
                changed = true;
            }
        }
    }
    // Normalize: entry's idom is conventionally -1 externally.
    _idom[cfg.entryBlock()] = -1;
}

bool
DominatorTree::dominates(int a, int b) const
{
    if (_rpoIndex[b] == -1)
        return false; // b unreachable
    int cur = b;
    while (cur != -1) {
        if (cur == a)
            return true;
        cur = _idom[cur];
    }
    return false;
}

bool
DominatorTree::instrDominates(int a, int b) const
{
    int ba = _cfg.blockOf(a);
    int bb = _cfg.blockOf(b);
    if (ba == bb)
        return a <= b;
    return dominates(ba, bb);
}

} // namespace sierra::analysis
