/**
 * @file
 * The interface between the harness generator and the pointer analysis:
 * which synthetic method is the entrypoint and which of its call sites
 * are event sites that spawn actions.
 */

#ifndef SIERRA_ANALYSIS_ENTRY_PLAN_HH
#define SIERRA_ANALYSIS_ENTRY_PLAN_HH

#include <string>
#include <vector>

#include "action.hh"
#include "air/method.hh"

namespace sierra::analysis {

/** One callback invocation site inside a generated harness. */
struct EntryEventSite {
    const air::Method *method{nullptr}; //!< the harness main
    int instrIdx{-1};                   //!< the invoke instruction
    ActionKind kind{ActionKind::Lifecycle};
    std::string callbackName; //!< e.g. "onCreate" or an XML onClick
    std::string targetClass;  //!< class receiving the callback
    int widgetId{-1};         //!< for XmlGui sites
    bool inEventLoop{false};  //!< true for sites inside the while(*)
    int lifecycleInstance{0}; //!< 1, 2, ... for split cyclic callbacks
};

/** The harness entrypoint plan for one activity. */
struct EntryPlan {
    std::string activityClass;
    air::Method *mainMethod{nullptr};
    std::vector<EntryEventSite> eventSites;

    /** Find the event site at the given instruction; null if absent. */
    const EntryEventSite *
    siteAt(const air::Method *m, int instr_idx) const
    {
        for (const auto &s : eventSites) {
            if (s.method == m && s.instrIdx == instr_idx)
                return &s;
        }
        return nullptr;
    }
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_ENTRY_PLAN_HH
