/**
 * @file
 * Abstract heap objects for the pointer analysis.
 */

#ifndef SIERRA_ANALYSIS_HEAP_HH
#define SIERRA_ANALYSIS_HEAP_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "context.hh"
#include "sites.hh"

namespace sierra::analysis {

/** Interned abstract object id; ids start at 0. */
using ObjId = int;

/** Flavors of abstract heap objects. */
enum class ObjKind {
    Site,         //!< allocation-site object under a heap context
    InflatedView, //!< view inflated from layout XML, keyed by view id
                  //!< (the paper's InflatedViewContext, Section 3.3)
    Singleton,    //!< framework singleton, e.g. the main Looper
    Synthetic,    //!< per-action payloads (messages, intents)
};

/** One abstract heap object. */
struct HeapObject {
    ObjKind kind{ObjKind::Site};
    std::string klassName; //!< dynamic type used for dispatch
    SiteId site{kNoSite};  //!< allocation site (Site/Synthetic kinds)
    CtxId heapCtx{kEmptyCtx};
    int viewId{-1};        //!< InflatedView key
    int singletonKey{-1};  //!< Singleton key

    bool operator==(const HeapObject &o) const
    {
        return kind == o.kind && klassName == o.klassName &&
               site == o.site && heapCtx == o.heapCtx &&
               viewId == o.viewId && singletonKey == o.singletonKey;
    }
};

/** Well-known singleton keys. */
enum SingletonKey {
    kMainLooper = 1,
    kSystemIntent = 2, //!< the intent delivered to broadcast receivers
    //! base for per-HandlerThread loopers: key = base + thread ObjId
    kHandlerThreadLooperBase = 1000,
};

/** Interning table for abstract objects. */
class ObjectTable
{
  public:
    ObjId intern(const HeapObject &obj);
    const HeapObject &get(ObjId id) const { return _objects[id]; }

    ObjId siteObject(const std::string &klass, SiteId site, CtxId heap_ctx)
    {
        HeapObject o;
        o.kind = ObjKind::Site;
        o.klassName = klass;
        o.site = site;
        o.heapCtx = heap_ctx;
        return intern(o);
    }

    ObjId inflatedView(const std::string &klass, int view_id)
    {
        HeapObject o;
        o.kind = ObjKind::InflatedView;
        o.klassName = klass;
        o.viewId = view_id;
        return intern(o);
    }

    ObjId singleton(const std::string &klass, int key)
    {
        HeapObject o;
        o.kind = ObjKind::Singleton;
        o.klassName = klass;
        o.singletonKey = key;
        return intern(o);
    }

    ObjId syntheticObject(const std::string &klass, SiteId site)
    {
        HeapObject o;
        o.kind = ObjKind::Synthetic;
        o.klassName = klass;
        o.site = site;
        return intern(o);
    }

    std::string toString(ObjId id, const SiteTable &sites) const;

    size_t size() const { return _objects.size(); }

  private:
    struct ObjHash {
        size_t
        operator()(const HeapObject &o) const
        {
            size_t h = std::hash<int>()(static_cast<int>(o.kind));
            h = h * 31 + std::hash<std::string>()(o.klassName);
            h = h * 31 + std::hash<int>()(o.site);
            h = h * 31 + std::hash<int>()(o.heapCtx);
            h = h * 31 + std::hash<int>()(o.viewId);
            h = h * 31 + std::hash<int>()(o.singletonKey);
            return h;
        }
    };

    std::vector<HeapObject> _objects;
    std::unordered_map<HeapObject, ObjId, ObjHash> _index;
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_HEAP_HH
